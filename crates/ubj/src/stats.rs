//! UBJ counters — including the costs §5.4.4 attributes to the design.

/// Cumulative counters for one [`crate::UbjCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UbjStats {
    pub commits: u64,
    pub committed_blocks: u64,
    /// Out-of-place updates of frozen blocks: each one is a full-block
    /// `memcpy` **on the write critical path** (§5.4.4 difference #2).
    pub frozen_copies: u64,
    /// Bytes copied by those updates.
    pub frozen_copy_bytes: u64,
    /// Checkpoint passes (each stalls for a whole transaction, §5.4.4 #3).
    pub checkpoints: u64,
    /// Blocks written to disk by checkpoints.
    pub checkpoint_blocks: u64,
    /// Simulated ns spent inside checkpoint stalls.
    pub checkpoint_stall_ns: u64,
    pub read_hits: u64,
    pub read_misses: u64,
    pub write_hits: u64,
    pub write_misses: u64,
    pub evictions: u64,
    pub recoveries: u64,
    pub reverted_blocks: u64,
}

impl UbjStats {
    pub fn delta(&self, e: &UbjStats) -> UbjStats {
        UbjStats {
            commits: self.commits - e.commits,
            committed_blocks: self.committed_blocks - e.committed_blocks,
            frozen_copies: self.frozen_copies - e.frozen_copies,
            frozen_copy_bytes: self.frozen_copy_bytes - e.frozen_copy_bytes,
            checkpoints: self.checkpoints - e.checkpoints,
            checkpoint_blocks: self.checkpoint_blocks - e.checkpoint_blocks,
            checkpoint_stall_ns: self.checkpoint_stall_ns - e.checkpoint_stall_ns,
            read_hits: self.read_hits - e.read_hits,
            read_misses: self.read_misses - e.read_misses,
            write_hits: self.write_hits - e.write_hits,
            write_misses: self.write_misses - e.write_misses,
            evictions: self.evictions - e.evictions,
            recoveries: self.recoveries - e.recoveries,
            reverted_blocks: self.reverted_blocks - e.reverted_blocks,
        }
    }

    pub fn write_hit_rate(&self) -> Option<f64> {
        let t = self.write_hits + self.write_misses;
        (t > 0).then(|| self.write_hits as f64 / t as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_rates() {
        let a = UbjStats {
            commits: 1,
            frozen_copies: 2,
            ..Default::default()
        };
        let b = UbjStats {
            commits: 5,
            frozen_copies: 9,
            checkpoints: 1,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.commits, 4);
        assert_eq!(d.frozen_copies, 7);
        assert_eq!(d.checkpoints, 1);
        assert_eq!(UbjStats::default().write_hit_rate(), None);
    }
}
