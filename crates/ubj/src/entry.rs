//! UBJ's 16-byte persistent block entries.

/// `prev` value for "no previous frozen copy".
pub const FRESH: u32 = u32::MAX;

/// Lifecycle of a block in UBJ's NVM buffer cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UbjState {
    /// Cached copy identical to disk; droppable at any time.
    Clean,
    /// Uncommitted working copy; discarded by crash recovery.
    Dirty,
    /// Mid-commit marker: becomes Frozen if the commit flag published,
    /// reverts otherwise.
    PreFrozen,
    /// Committed-in-place, awaiting checkpoint; must not be lost.
    Frozen,
}

const FLAG_VALID: u64 = 1 << 0;
const STATE_SHIFT: u64 = 1;
const STATE_MASK: u64 = 0b11 << STATE_SHIFT;
const DISK_BLK_MAX: u64 = (1 << 56) - 1;

/// One 16-byte entry: `[flags | disk_blk:7B] [prev:u32 | cur:u32]`.
/// Always written with a single 16-byte atomic store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UbjEntry {
    pub valid: bool,
    pub state: UbjState,
    pub disk_blk: u64,
    /// NVM block holding the superseded *frozen* copy while a newer dirty
    /// copy exists ([`FRESH`] otherwise).
    pub prev: u32,
    /// NVM block holding the current copy.
    pub cur: u32,
}

impl UbjEntry {
    pub const INVALID: UbjEntry = UbjEntry {
        valid: false,
        state: UbjState::Clean,
        disk_blk: 0,
        prev: 0,
        cur: 0,
    };

    pub fn new(state: UbjState, disk_blk: u64, prev: u32, cur: u32) -> UbjEntry {
        assert!(disk_blk <= DISK_BLK_MAX);
        UbjEntry {
            valid: true,
            state,
            disk_blk,
            prev,
            cur,
        }
    }

    pub fn encode(&self) -> u128 {
        if !self.valid {
            return 0;
        }
        let state = match self.state {
            UbjState::Clean => 0u64,
            UbjState::Dirty => 1,
            UbjState::PreFrozen => 2,
            UbjState::Frozen => 3,
        };
        let lo = FLAG_VALID | (state << STATE_SHIFT) | (self.disk_blk << 8);
        let hi = (self.prev as u64) | ((self.cur as u64) << 32);
        (lo as u128) | ((hi as u128) << 64)
    }

    pub fn decode(raw: u128) -> UbjEntry {
        let lo = raw as u64;
        let hi = (raw >> 64) as u64;
        if lo & FLAG_VALID == 0 {
            return UbjEntry::INVALID;
        }
        let state = match (lo & STATE_MASK) >> STATE_SHIFT {
            0 => UbjState::Clean,
            1 => UbjState::Dirty,
            2 => UbjState::PreFrozen,
            _ => UbjState::Frozen,
        };
        UbjEntry {
            valid: true,
            state,
            disk_blk: lo >> 8,
            prev: hi as u32,
            cur: (hi >> 32) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_states() {
        for state in [
            UbjState::Clean,
            UbjState::Dirty,
            UbjState::PreFrozen,
            UbjState::Frozen,
        ] {
            let e = UbjEntry::new(state, 0xDEAD_BEEF, 7, 42);
            assert_eq!(UbjEntry::decode(e.encode()), e);
        }
    }

    #[test]
    fn invalid_is_zero() {
        assert_eq!(UbjEntry::INVALID.encode(), 0);
        assert_eq!(UbjEntry::decode(0), UbjEntry::INVALID);
    }

    #[test]
    fn max_disk_blk() {
        let e = UbjEntry::new(UbjState::Frozen, DISK_BLK_MAX, FRESH, 1);
        assert_eq!(UbjEntry::decode(e.encode()).disk_blk, DISK_BLK_MAX);
    }
}
