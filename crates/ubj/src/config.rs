//! UBJ configuration.

/// Tuning for [`crate::UbjCache`].
#[derive(Clone, Debug)]
pub struct UbjConfig {
    /// Checkpoint when free NVM blocks drop below this fraction (per
    /// mill): UBJ checkpoints to free space, not continuously.
    pub checkpoint_low_water_permille: u32,
    /// Transactions checkpointed per space-reclamation stall (UBJ's unit
    /// is whole transactions).
    pub checkpoint_batch_txns: usize,
}

impl Default for UbjConfig {
    fn default() -> Self {
        Self {
            checkpoint_low_water_permille: 100,
            checkpoint_batch_txns: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_low_water_is_ten_percent() {
        let c = super::UbjConfig::default();
        assert_eq!(c.checkpoint_low_water_permille, 100);
        assert_eq!(c.checkpoint_batch_txns, 1);
    }
}
