//! The UBJ-like NVM buffer cache with commit-in-place and
//! transaction-unit checkpointing.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use blockdev::{BlockDevice, BLOCK_SIZE};
use nvmsim::Nvm;

use crate::entry::{UbjEntry, UbjState, FRESH};
use crate::{UbjConfig, UbjStats};

/// Shared handle to the backing disk.
pub type DynDisk = Arc<dyn BlockDevice>;

const MAGIC: u64 = 0x5542_4a76_3120_2020; // "UBJv1"
const MAGIC_OFF: usize = 0;
const ENTRY_COUNT_OFF: usize = 8;
const DATA_BLOCKS_OFF: usize = 16;
/// Commit-publish flag on its own cache line (the commit point).
const FLAG_OFF: usize = 64;
const HEADER_BYTES: usize = 4096;
const ENTRY_BYTES: usize = 16;

#[derive(Clone, Copy, Debug)]
struct Layout {
    entries_off: usize,
    entry_count: u32,
    data_off: usize,
    data_blocks: u32,
}

impl Layout {
    fn compute(capacity: usize) -> Layout {
        assert!(
            capacity > HEADER_BYTES + 2 * BLOCK_SIZE,
            "NVM region too small"
        );
        let usable = capacity - HEADER_BYTES;
        let mut data_blocks = usable / (BLOCK_SIZE + ENTRY_BYTES);
        loop {
            let entry_area = (data_blocks * ENTRY_BYTES).next_multiple_of(BLOCK_SIZE);
            if HEADER_BYTES + entry_area + data_blocks * BLOCK_SIZE <= capacity {
                return Layout {
                    entries_off: HEADER_BYTES,
                    entry_count: data_blocks as u32,
                    data_off: HEADER_BYTES + entry_area,
                    data_blocks: data_blocks as u32,
                };
            }
            data_blocks -= 1;
        }
    }

    fn entry_addr(&self, idx: u32) -> usize {
        self.entries_off + idx as usize * ENTRY_BYTES
    }

    fn data_addr(&self, blk: u32) -> usize {
        self.data_off + blk as usize * BLOCK_SIZE
    }
}

/// A checkpoint work item: entry `idx` froze NVM block `blk` in some
/// committed transaction.
#[derive(Clone, Copy, Debug)]
struct FrozenRef {
    idx: u32,
    blk: u32,
}

/// The UBJ-like cache: NVM buffer cache + in-place journaling.
pub struct UbjCache {
    nvm: Nvm,
    disk: DynDisk,
    layout: Layout,
    cfg: UbjConfig,
    index: HashMap<u64, u32>,
    /// Clean entries in LRU order (front = LRU); only clean blocks are
    /// evictable without a checkpoint.
    clean_lru: VecDeque<u32>,
    free_blocks: Vec<u32>,
    block_free: Vec<bool>,
    free_entries: Vec<u32>,
    /// Committed transactions awaiting checkpoint, oldest first.
    txn_queue: VecDeque<Vec<FrozenRef>>,
    stats: UbjStats,
}

impl UbjCache {
    /// Formats the NVM region and creates an empty cache.
    pub fn format(nvm: Nvm, disk: DynDisk, cfg: UbjConfig) -> UbjCache {
        let layout = Layout::compute(nvm.capacity());
        let zeros = vec![0u8; 64 << 10];
        let entry_bytes = layout.entry_count as usize * ENTRY_BYTES;
        let mut off = 0;
        while off < entry_bytes {
            let n = zeros.len().min(entry_bytes - off);
            nvm.write(layout.entries_off + off, &zeros[..n]);
            nvm.clflush(layout.entries_off + off, n);
            off += n;
        }
        nvm.sfence();
        nvm.atomic_write_u64(ENTRY_COUNT_OFF, layout.entry_count as u64);
        nvm.atomic_write_u64(DATA_BLOCKS_OFF, layout.data_blocks as u64);
        nvm.atomic_write_u64(FLAG_OFF, 0);
        nvm.persist(0, 128);
        nvm.atomic_write_u64(MAGIC_OFF, MAGIC);
        nvm.persist(MAGIC_OFF, 8);
        Self::from_parts(nvm, disk, cfg, layout)
    }

    fn from_parts(nvm: Nvm, disk: DynDisk, cfg: UbjConfig, layout: Layout) -> UbjCache {
        UbjCache {
            nvm,
            disk,
            cfg,
            index: HashMap::new(),
            clean_lru: VecDeque::new(),
            free_blocks: (0..layout.data_blocks).rev().collect(),
            block_free: vec![true; layout.data_blocks as usize],
            free_entries: (0..layout.entry_count).rev().collect(),
            txn_queue: VecDeque::new(),
            stats: UbjStats::default(),
            layout,
        }
    }

    /// Opens an existing region after a crash: resolves the two-phase
    /// commit (publish flag decides), reverts uncommitted working copies,
    /// rebuilds the DRAM structures.
    pub fn recover(nvm: Nvm, disk: DynDisk, cfg: UbjConfig) -> Result<UbjCache, String> {
        if nvm.read_u64(MAGIC_OFF) != MAGIC {
            return Err("not a UBJ region".into());
        }
        let layout = Layout::compute(nvm.capacity());
        if nvm.read_u64(ENTRY_COUNT_OFF) != layout.entry_count as u64
            || nvm.read_u64(DATA_BLOCKS_OFF) != layout.data_blocks as u64
        {
            return Err("header/capacity mismatch".into());
        }
        let committed = nvm.read_u64(FLAG_OFF) == 1;
        let mut c = Self::from_parts(nvm, disk, cfg, layout);
        c.free_blocks.clear();
        c.block_free = vec![false; layout.data_blocks as usize];
        c.free_entries.clear();

        let mut frozen_refs: Vec<FrozenRef> = Vec::new();
        let mut used = vec![false; layout.data_blocks as usize];
        for idx in 0..layout.entry_count {
            let mut e = c.read_entry(idx);
            if !e.valid {
                c.free_entries.push(idx);
                continue;
            }
            match e.state {
                UbjState::PreFrozen if committed => {
                    // The publish flag made the whole txn durable.
                    e = UbjEntry::new(UbjState::Frozen, e.disk_blk, FRESH, e.cur);
                    c.write_entry(idx, e);
                }
                UbjState::PreFrozen | UbjState::Dirty => {
                    // Uncommitted working copy: revert to the superseded
                    // frozen copy, or drop entirely.
                    c.stats.reverted_blocks += 1;
                    if e.prev != FRESH {
                        e = UbjEntry::new(UbjState::Frozen, e.disk_blk, FRESH, e.prev);
                        c.write_entry(idx, e);
                    } else {
                        c.write_entry(idx, UbjEntry::INVALID);
                        c.free_entries.push(idx);
                        continue;
                    }
                }
                _ => {}
            }
            let e = c.read_entry(idx);
            assert!(
                !used[e.cur as usize],
                "two entries share NVM block {}",
                e.cur
            );
            used[e.cur as usize] = true;
            c.index.insert(e.disk_blk, idx);
            match e.state {
                UbjState::Clean => c.clean_lru.push_back(idx),
                UbjState::Frozen => frozen_refs.push(FrozenRef { idx, blk: e.cur }),
                _ => unreachable!("resolved above"),
            }
        }
        for b in 0..layout.data_blocks {
            if !used[b as usize] {
                c.block_free[b as usize] = true;
                c.free_blocks.push(b);
            }
        }
        // All surviving frozen blocks form one pseudo-transaction.
        if !frozen_refs.is_empty() {
            c.txn_queue.push_back(frozen_refs);
        }
        c.nvm.atomic_write_u64(FLAG_OFF, 0);
        c.nvm.persist(FLAG_OFF, 8);
        c.stats.recoveries += 1;
        Ok(c)
    }

    // ------------------------------------------------------------------
    // Transactional write path
    // ------------------------------------------------------------------

    /// Commits `blocks` atomically: applies them to the NVM buffer cache
    /// (with out-of-place `memcpy` for frozen targets), then
    /// commits-in-place by freezing (PreFrozen → publish → Frozen).
    pub fn commit_txn(&mut self, blocks: &[(u64, Box<[u8; BLOCK_SIZE]>)]) -> Result<(), String> {
        if blocks.is_empty() {
            return Ok(());
        }
        if 2 * blocks.len() >= self.layout.data_blocks as usize {
            return Err(format!(
                "transaction of {} blocks cannot fit the {}-block NVM buffer",
                blocks.len(),
                self.layout.data_blocks
            ));
        }
        // Phase 0: apply the writes as dirty working copies.
        let mut touched: Vec<u32> = Vec::with_capacity(blocks.len());
        for (disk_blk, data) in blocks {
            let idx = self.apply_write(*disk_blk, &data[..])?;
            if !touched.contains(&idx) {
                touched.push(idx);
            }
        }
        // Phase 1: persist payloads, mark PreFrozen.
        for &idx in &touched {
            let e = self.read_entry(idx);
            let addr = self.layout.data_addr(e.cur);
            self.nvm.clflush(addr, BLOCK_SIZE);
            self.nvm.sfence();
            self.write_entry(
                idx,
                UbjEntry {
                    state: UbjState::PreFrozen,
                    ..e
                },
            );
        }
        // Phase 2: publish — the commit point.
        self.nvm.atomic_write_u64(FLAG_OFF, 1);
        self.nvm.persist(FLAG_OFF, 8);
        // Phase 3: freeze for real; release superseded frozen copies.
        let mut refs = Vec::with_capacity(touched.len());
        for &idx in &touched {
            let e = self.read_entry(idx);
            let prev = e.prev;
            let frozen = UbjEntry::new(UbjState::Frozen, e.disk_blk, FRESH, e.cur);
            self.write_entry(idx, frozen);
            if prev != FRESH {
                self.release_block(prev);
                self.retire_ref(idx, prev);
            }
            refs.push(FrozenRef { idx, blk: e.cur });
        }
        // Phase 4: clear the flag.
        self.nvm.atomic_write_u64(FLAG_OFF, 0);
        self.nvm.persist(FLAG_OFF, 8);
        self.txn_queue.push_back(refs);
        self.stats.commits += 1;
        self.stats.committed_blocks += blocks.len() as u64;
        self.maybe_checkpoint_for_space();
        Ok(())
    }

    /// Stages one write into the NVM buffer cache; returns the entry.
    fn apply_write(&mut self, disk_blk: u64, data: &[u8]) -> Result<u32, String> {
        assert_eq!(data.len(), BLOCK_SIZE);
        if let Some(&idx) = self.index.get(&disk_blk) {
            let e = self.read_entry(idx);
            match e.state {
                UbjState::Clean => {
                    // Overwrite in place (disk still holds the old copy).
                    // Demote to Dirty *before* scribbling on the block, so
                    // a crash can never leave a Clean entry over torn data.
                    self.unlink_clean(idx);
                    self.write_entry(idx, UbjEntry::new(UbjState::Dirty, disk_blk, FRESH, e.cur));
                    self.nvm.write(self.layout.data_addr(e.cur), data);
                    self.stats.write_hits += 1;
                    Ok(idx)
                }
                UbjState::Dirty | UbjState::PreFrozen => {
                    // Working copy: plain in-place update.
                    self.nvm.write(self.layout.data_addr(e.cur), data);
                    self.stats.write_hits += 1;
                    Ok(idx)
                }
                UbjState::Frozen => {
                    // §5.4.4 #2: a frozen block cannot be overwritten —
                    // memcpy to a fresh block, on the write critical path.
                    let nb = self.alloc_block()?;
                    let mut copy = [0u8; BLOCK_SIZE];
                    self.nvm.read(self.layout.data_addr(e.cur), &mut copy);
                    self.nvm.write(self.layout.data_addr(nb), &copy);
                    self.stats.frozen_copies += 1;
                    self.stats.frozen_copy_bytes += BLOCK_SIZE as u64;
                    // Now apply the new contents over the copy.
                    self.nvm.write(self.layout.data_addr(nb), data);
                    self.write_entry(idx, UbjEntry::new(UbjState::Dirty, disk_blk, e.cur, nb));
                    self.stats.write_hits += 1;
                    Ok(idx)
                }
            }
        } else {
            let blk = self.alloc_block()?;
            let idx = self
                .free_entries
                .pop()
                .expect("entry pool tracks block pool");
            self.nvm.write(self.layout.data_addr(blk), data);
            self.write_entry(idx, UbjEntry::new(UbjState::Dirty, disk_blk, FRESH, blk));
            self.index.insert(disk_blk, idx);
            self.stats.write_misses += 1;
            Ok(idx)
        }
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Reads through the buffer cache.
    pub fn read(&mut self, disk_blk: u64, buf: &mut [u8]) {
        assert_eq!(buf.len(), BLOCK_SIZE);
        if let Some(&idx) = self.index.get(&disk_blk) {
            let e = self.read_entry(idx);
            self.nvm.read(self.layout.data_addr(e.cur), buf);
            if e.state == UbjState::Clean {
                self.touch_clean(idx);
            }
            self.stats.read_hits += 1;
            return;
        }
        self.disk
            .read_block(disk_blk, buf)
            .expect("UBJ cache assumes a fault-free disk");
        self.stats.read_misses += 1;
        if let Ok(blk) = self.alloc_block() {
            let idx = self
                .free_entries
                .pop()
                .expect("entry pool tracks block pool");
            let addr = self.layout.data_addr(blk);
            self.nvm.write(addr, buf);
            self.nvm.persist(addr, BLOCK_SIZE);
            self.write_entry(idx, UbjEntry::new(UbjState::Clean, disk_blk, FRESH, blk));
            self.index.insert(disk_blk, idx);
            self.clean_lru.push_back(idx);
        }
    }

    // ------------------------------------------------------------------
    // Space management & checkpointing
    // ------------------------------------------------------------------

    fn alloc_block(&mut self) -> Result<u32, String> {
        loop {
            if let Some(b) = self.free_blocks.pop() {
                self.block_free[b as usize] = false;
                return Ok(b);
            }
            // Evict a clean block if any.
            if let Some(idx) = self.clean_lru.pop_front() {
                let e = self.read_entry(idx);
                debug_assert_eq!(e.state, UbjState::Clean);
                self.write_entry(idx, UbjEntry::INVALID);
                self.index.remove(&e.disk_blk);
                self.free_entries.push(idx);
                self.release_block(e.cur);
                self.stats.evictions += 1;
                continue;
            }
            // Stall: checkpoint the oldest transaction to free space.
            if !self.checkpoint_oldest() {
                return Err("NVM buffer exhausted: everything dirty or frozen".into());
            }
        }
    }

    /// Checkpoints the oldest committed transaction (§5.4.4 #3: the unit
    /// is one whole transaction; the caller stalls for all of it).
    /// Returns false if there is nothing to checkpoint.
    pub fn checkpoint_oldest(&mut self) -> bool {
        let Some(refs) = self.txn_queue.pop_front() else {
            return false;
        };
        let t0 = self.nvm.clock().now_ns();
        let mut buf = [0u8; BLOCK_SIZE];
        for r in refs {
            let e = self.read_entry(r.idx);
            // Superseded or re-dirtied since committing? The newer version
            // will be checkpointed by its own transaction.
            if !e.valid || e.cur != r.blk || e.state != UbjState::Frozen {
                continue;
            }
            self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
            self.disk
                .write_block(e.disk_blk, &buf)
                .expect("UBJ cache assumes a fault-free disk");
            self.stats.checkpoint_blocks += 1;
            // The block is now clean (disk == NVM): evictable.
            self.write_entry(
                r.idx,
                UbjEntry::new(UbjState::Clean, e.disk_blk, FRESH, e.cur),
            );
            self.clean_lru.push_back(r.idx);
        }
        self.stats.checkpoints += 1;
        self.stats.checkpoint_stall_ns += self.nvm.clock().now_ns() - t0;
        true
    }

    /// Background-style space keeping: checkpoint when free space is low.
    fn maybe_checkpoint_for_space(&mut self) {
        let low_water =
            self.layout.data_blocks as u64 * self.cfg.checkpoint_low_water_permille as u64 / 1000;
        let mut budget = self.cfg.checkpoint_batch_txns;
        while (self.free_blocks.len() + self.clean_lru.len()) < low_water as usize && budget > 0 {
            if !self.checkpoint_oldest() {
                break;
            }
            budget -= 1;
        }
    }

    /// Checkpoints everything (orderly shutdown).
    pub fn checkpoint_all(&mut self) {
        while self.checkpoint_oldest() {}
    }

    // ------------------------------------------------------------------
    // Plumbing & inspection
    // ------------------------------------------------------------------

    fn read_entry(&self, idx: u32) -> UbjEntry {
        UbjEntry::decode(self.nvm.read_u128(self.layout.entry_addr(idx)))
    }

    fn write_entry(&self, idx: u32, e: UbjEntry) {
        let addr = self.layout.entry_addr(idx);
        self.nvm.atomic_write_u128(addr, e.encode());
        self.nvm.persist(addr, 16);
    }

    fn release_block(&mut self, b: u32) {
        debug_assert!(!self.block_free[b as usize], "double free of {b}");
        self.block_free[b as usize] = true;
        self.free_blocks.push(b);
    }

    /// Drops any stale queue references to (idx, blk) after the frozen
    /// copy was superseded and its block released.
    fn retire_ref(&mut self, idx: u32, blk: u32) {
        for txn in &mut self.txn_queue {
            txn.retain(|r| !(r.idx == idx && r.blk == blk));
        }
    }

    fn unlink_clean(&mut self, idx: u32) {
        if let Some(pos) = self.clean_lru.iter().position(|&i| i == idx) {
            self.clean_lru.remove(pos);
        }
    }

    fn touch_clean(&mut self, idx: u32) {
        self.unlink_clean(idx);
        self.clean_lru.push_back(idx);
    }

    /// Reads without populating the cache (verification).
    pub fn read_nocache(&self, disk_blk: u64, buf: &mut [u8]) {
        assert_eq!(buf.len(), BLOCK_SIZE);
        if let Some(&idx) = self.index.get(&disk_blk) {
            let e = self.read_entry(idx);
            self.nvm.read(self.layout.data_addr(e.cur), buf);
        } else {
            self.disk
                .read_block(disk_blk, buf)
                .expect("UBJ cache assumes a fault-free disk");
        }
    }

    pub fn stats(&self) -> UbjStats {
        self.stats
    }

    pub fn nvm(&self) -> &Nvm {
        &self.nvm
    }

    pub fn disk(&self) -> &DynDisk {
        &self.disk
    }

    pub fn cached_blocks(&self) -> usize {
        self.index.len()
    }

    pub fn data_block_count(&self) -> u32 {
        self.layout.data_blocks
    }

    pub fn pending_checkpoint_txns(&self) -> usize {
        self.txn_queue.len()
    }

    /// Invariant self-check for tests and crash verification.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.nvm.read_u64(FLAG_OFF) != 0 {
            return Err("commit flag left set at rest".into());
        }
        let mut seen = vec![false; self.layout.data_blocks as usize];
        let mut valid = 0usize;
        for idx in 0..self.layout.entry_count {
            let e = self.read_entry(idx);
            if !e.valid {
                continue;
            }
            valid += 1;
            if matches!(e.state, UbjState::Dirty | UbjState::PreFrozen) {
                return Err(format!("entry {idx} left in transient state {:?}", e.state));
            }
            if seen[e.cur as usize] {
                return Err(format!("NVM block {} referenced twice", e.cur));
            }
            seen[e.cur as usize] = true;
            if self.block_free[e.cur as usize] {
                return Err(format!("entry {idx} references free block {}", e.cur));
            }
            if self.index.get(&e.disk_blk) != Some(&idx) {
                return Err(format!("entry {idx} not indexed"));
            }
        }
        if valid != self.index.len() {
            return Err(format!("index {} != valid {valid}", self.index.len()));
        }
        Ok(())
    }
}
