//! # ubj — the UBJ-like comparison baseline (§5.4.4 of the Tinca paper)
//!
//! UBJ (Lee, Bahn, Noh — FAST '13) *unions the buffer cache and the
//! journal* in NVM main memory: committing a transaction **freezes** the
//! dirty buffer blocks in place (no copy — "commit-in-place"), and frozen
//! blocks are later **checkpointed** to the file system on disk, a whole
//! transaction at a time, to free NVM space.
//!
//! The Tinca paper's §5.4.4 names three structural costs of this design,
//! all of which this implementation exhibits and the `ubj_compare` bench
//! measures:
//!
//! 1. **Architecture** — UBJ journals in the buffer-cache layer; Tinca
//!    offloads journaling to the disk cache.
//! 2. **Out-of-place updates of frozen data** — writing a block that is
//!    currently frozen cannot overwrite it; UBJ must `memcpy` the block
//!    and update out of place, *on the write critical path*
//!    ([`UbjStats::frozen_copies`] counts these).
//! 3. **Checkpoint unit = one transaction** — freeing NVM space writes
//!    every block of the oldest committed transaction to disk in one
//!    stall ([`UbjStats::checkpoint_stall_ns`] accumulates the cost).
//!
//! The commit protocol is two-phase (PreFrozen → publish flag → Frozen),
//! giving the same all-or-nothing crash atomicity as Tinca so the two are
//! compared at equal consistency.
//!
//! ```
//! use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
//! use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};
//! use ubj::{UbjCache, UbjConfig};
//!
//! let clock = SimClock::new();
//! let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
//! let disk = SimDisk::new(DiskKind::Ssd, 1 << 14, clock);
//! let mut cache = UbjCache::format(nvm, disk, UbjConfig::default());
//! cache.commit_txn(&[(9, Box::new([7u8; BLOCK_SIZE]))]).unwrap();
//! cache.commit_txn(&[(9, Box::new([8u8; BLOCK_SIZE]))]).unwrap();
//! // The second commit found block 9 frozen: one memcpy on the write path.
//! assert_eq!(cache.stats().frozen_copies, 1);
//! ```

mod cache;
mod config;
mod entry;
mod stats;

pub use cache::{DynDisk, UbjCache};
pub use config::UbjConfig;
pub use entry::{UbjEntry, UbjState, FRESH as UBJ_FRESH};
pub use stats::UbjStats;
