//! Behaviour tests for the UBJ-like cache: commit-in-place, out-of-place
//! frozen updates, transaction-unit checkpointing, crash atomicity.

use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{BlockDevice, DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{CrashPolicy, CrashTripped, NvmConfig, NvmDevice, NvmTech, SimClock};
use ubj::{UbjCache, UbjConfig};

fn setup(nvm_bytes: usize) -> (UbjCache, nvmsim::Nvm, blockdev::Disk) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(nvm_bytes, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let cache = UbjCache::format(nvm.clone(), disk.clone(), UbjConfig::default());
    (cache, nvm, disk)
}

fn blk(b: u8) -> Box<[u8; BLOCK_SIZE]> {
    Box::new([b; BLOCK_SIZE])
}

fn quiet() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashTripped>().is_none() {
                default(info);
            }
        }));
    });
}

#[test]
fn commit_then_read_back() {
    let (mut c, _, _) = setup(1 << 20);
    c.commit_txn(&[(10, blk(1)), (20, blk(2))]).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    c.read(10, &mut buf);
    assert_eq!(buf[0], 1);
    c.read(20, &mut buf);
    assert_eq!(buf[0], 2);
    assert_eq!(c.stats().commits, 1);
    assert_eq!(c.pending_checkpoint_txns(), 1);
    c.check_consistency().unwrap();
}

#[test]
fn commit_in_place_writes_payload_once() {
    // The defining property UBJ *shares* with Tinca: committing does not
    // copy the payload (freeze-in-place), so fresh-block commits cost one
    // payload write.
    let (mut c, nvm, _) = setup(4 << 20);
    let before = nvm.stats();
    let blocks: Vec<_> = (0..8u64).map(|i| (i, blk(i as u8))).collect();
    c.commit_txn(&blocks).unwrap();
    let d = nvm.stats().delta(&before);
    let per_block = d.lines_written as f64 / 8.0;
    assert!(
        per_block < 70.0,
        "freeze-in-place must not copy: {per_block} lines/block"
    );
}

#[test]
fn updating_frozen_block_costs_a_memcpy() {
    // §5.4.4 #2: the second commit of the same block finds it frozen and
    // must copy it out of place, on the write critical path.
    let (mut c, _, _) = setup(1 << 20);
    c.commit_txn(&[(5, blk(1))]).unwrap();
    assert_eq!(c.stats().frozen_copies, 0);
    c.commit_txn(&[(5, blk(2))]).unwrap();
    assert_eq!(c.stats().frozen_copies, 1);
    assert_eq!(c.stats().frozen_copy_bytes, BLOCK_SIZE as u64);
    let mut buf = [0u8; BLOCK_SIZE];
    c.read(5, &mut buf);
    assert_eq!(buf[0], 2);
    c.check_consistency().unwrap();
}

#[test]
fn tinca_never_pays_that_memcpy() {
    // Contrast test: Tinca's COW allocates a fresh block and writes the
    // *new* payload directly — no copy of the old version is ever made.
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let mut tinca = tinca::TincaCache::format(
        nvm.clone(),
        disk,
        tinca::TincaConfig {
            ring_bytes: 4096,
            ..Default::default()
        },
    );
    let mut t1 = tinca.init_txn();
    t1.write(5, &blk(1)[..]);
    tinca.commit(&t1).unwrap();
    let before = nvm.stats();
    let mut t2 = tinca.init_txn();
    t2.write(5, &blk(2)[..]);
    tinca.commit(&t2).unwrap();
    let d = nvm.stats().delta(&before);
    // One payload write (64 lines) + metadata; the old version is never
    // read or copied (the few line reads are 16 B entry lookups).
    assert!(
        d.lines_written < 70,
        "Tinca COW should write once: {}",
        d.lines_written
    );
    assert!(
        d.lines_read < 5,
        "Tinca COW must not read the old payload: {}",
        d.lines_read
    );
}

#[test]
fn checkpoint_writes_whole_transaction_to_disk() {
    let (mut c, _, disk) = setup(4 << 20);
    let blocks: Vec<_> = (0..16u64).map(|i| (i, blk(7))).collect();
    c.commit_txn(&blocks).unwrap();
    assert_eq!(disk.stats().writes, 0);
    assert!(c.checkpoint_oldest());
    assert_eq!(disk.stats().writes, 16, "checkpoint unit is the whole txn");
    assert!(c.stats().checkpoint_stall_ns > 0);
    let mut buf = [0u8; BLOCK_SIZE];
    disk.read_block(3, &mut buf).unwrap();
    assert_eq!(buf[0], 7);
    // Blocks stay cached as clean.
    assert_eq!(c.cached_blocks(), 16);
    c.check_consistency().unwrap();
}

#[test]
fn superseded_frozen_versions_are_not_checkpointed() {
    let (mut c, _, disk) = setup(1 << 20);
    c.commit_txn(&[(9, blk(1))]).unwrap();
    c.commit_txn(&[(9, blk(2))]).unwrap(); // supersedes the first
    c.checkpoint_all();
    let mut buf = [0u8; BLOCK_SIZE];
    disk.read_block(9, &mut buf).unwrap();
    assert_eq!(buf[0], 2, "only the newest committed version reaches disk");
    assert_eq!(disk.stats().writes, 1, "the stale version is skipped");
    c.check_consistency().unwrap();
}

#[test]
fn space_pressure_forces_checkpoint_stall() {
    let (mut c, _, disk) = setup(512 << 10);
    let n = c.data_block_count() as u64;
    // Commit more distinct blocks than the buffer holds: allocation must
    // stall on checkpoints.
    for i in 0..n + 20 {
        c.commit_txn(&[(i, blk((i % 250) as u8))]).unwrap();
    }
    assert!(
        c.stats().checkpoints > 0,
        "space pressure must trigger checkpoints"
    );
    assert!(disk.stats().writes > 0);
    c.check_consistency().unwrap();
}

#[test]
fn committed_data_survives_crash() {
    let (mut c, nvm, disk) = setup(1 << 20);
    c.commit_txn(&[(1, blk(0xAA)), (2, blk(0xBB))]).unwrap();
    drop(c);
    nvm.crash(CrashPolicy::Random(3));
    let rec = UbjCache::recover(nvm, disk, UbjConfig::default()).unwrap();
    rec.check_consistency().unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    rec.read_nocache(1, &mut buf);
    assert_eq!(buf[0], 0xAA);
    rec.read_nocache(2, &mut buf);
    assert_eq!(buf[0], 0xBB);
    assert_eq!(
        rec.pending_checkpoint_txns(),
        1,
        "frozen blocks still need checkpointing"
    );
}

#[test]
fn crash_sweep_commit_is_atomic() {
    quiet();
    // Seed v1, then crash a v2 commit at every persistence event.
    let window = {
        let (mut c, nvm, _) = setup(1 << 20);
        c.commit_txn(&[(1, blk(1)), (2, blk(1)), (3, blk(1))])
            .unwrap();
        let e0 = nvm.events();
        c.commit_txn(&[(1, blk(2)), (2, blk(2)), (3, blk(2))])
            .unwrap();
        nvm.events() - e0
    };
    let mut crashed_runs = 0;
    for trip in 1..=window + 2 {
        let (mut c, nvm, disk) = setup(1 << 20);
        c.commit_txn(&[(1, blk(1)), (2, blk(1)), (3, blk(1))])
            .unwrap();
        nvm.set_trip(Some(trip));
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            c.commit_txn(&[(1, blk(2)), (2, blk(2)), (3, blk(2))])
                .unwrap();
        }))
        .is_err();
        nvm.set_trip(None);
        drop(c);
        nvm.crash(CrashPolicy::Random(trip * 31));
        let rec = UbjCache::recover(nvm, disk, UbjConfig::default()).unwrap();
        rec.check_consistency()
            .unwrap_or_else(|e| panic!("trip {trip}: {e}"));
        let mut versions = [0u8; 3];
        let mut buf = [0u8; BLOCK_SIZE];
        for (i, b) in [1u64, 2, 3].iter().enumerate() {
            rec.read_nocache(*b, &mut buf);
            assert!(
                buf.iter().all(|&x| x == buf[0]),
                "torn payload at trip {trip}"
            );
            versions[i] = buf[0];
        }
        let all_old = versions.iter().all(|&v| v == 1);
        let all_new = versions.iter().all(|&v| v == 2);
        assert!(all_old || all_new, "torn txn at trip {trip}: {versions:?}");
        if !crashed {
            assert!(all_new, "completed commit lost at trip {trip}");
        } else {
            crashed_runs += 1;
        }
    }
    assert!(crashed_runs > 0);
}

#[test]
fn crash_after_checkpoint_keeps_data_on_disk_and_cache() {
    let (mut c, nvm, disk) = setup(1 << 20);
    c.commit_txn(&[(4, blk(9))]).unwrap();
    c.checkpoint_all();
    drop(c);
    nvm.crash(CrashPolicy::LoseVolatile);
    let mut rec = UbjCache::recover(nvm, disk, UbjConfig::default()).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    rec.read(4, &mut buf);
    assert_eq!(buf[0], 9);
    rec.check_consistency().unwrap();
}

#[test]
fn read_miss_fills_clean_and_is_evictable() {
    let (mut c, _, disk) = setup(512 << 10);
    disk.write_block(100, &blk(5)[..]).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    c.read(100, &mut buf);
    assert_eq!(buf[0], 5);
    assert_eq!(c.stats().read_misses, 1);
    c.read(100, &mut buf);
    assert_eq!(c.stats().read_hits, 1);
    // Fill the buffer with committed data well past capacity; clean blocks
    // (the fill plus checkpointed ones) must be evicted rather than
    // stalling.
    let n = c.data_block_count() as u64;
    for i in 0..2 * n {
        c.commit_txn(&[(i, blk(1))]).unwrap();
    }
    assert!(c.stats().evictions >= 1);
    c.check_consistency().unwrap();
}

#[test]
fn recovery_of_unformatted_region_fails() {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    assert!(UbjCache::recover(nvm, disk, UbjConfig::default()).is_err());
}
