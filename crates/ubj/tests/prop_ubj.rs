//! Property tests: the UBJ cache must behave as a flat block map under
//! arbitrary commit/read/checkpoint/crash sequences, with transaction
//! atomicity across crashes.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{CrashPolicy, CrashTripped, NvmConfig, NvmDevice, NvmTech, SimClock};
use proptest::prelude::*;
use ubj::{UbjCache, UbjConfig};

const BLOCK_SPACE: u64 = 160;

fn fresh() -> (UbjCache, nvmsim::Nvm, blockdev::Disk) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(512 << 10, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let cache = UbjCache::format(nvm.clone(), disk.clone(), UbjConfig::default());
    (cache, nvm, disk)
}

fn quiet() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashTripped>().is_none() {
                default(info);
            }
        }));
    });
}

#[derive(Clone, Debug)]
enum Op {
    Commit(Vec<(u64, u8)>),
    Read(u64),
    Checkpoint,
    Restart { seed: u64 },
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => proptest::collection::vec((0..BLOCK_SPACE, any::<u8>()), 1..8).prop_map(Op::Commit),
        3 => (0..BLOCK_SPACE).prop_map(Op::Read),
        1 => Just(Op::Checkpoint),
        1 => any::<u64>().prop_map(|seed| Op::Restart { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn ubj_matches_model(seq in proptest::collection::vec(ops(), 1..50)) {
        let (mut cache, nvm, disk) = fresh();
        let mut model: HashMap<u64, u8> = HashMap::new();
        let mut buf = [0u8; BLOCK_SIZE];
        for op in seq {
            match op {
                Op::Commit(writes) => {
                    let blocks: Vec<_> = writes
                        .iter()
                        .map(|&(b, v)| (b, Box::new([v; BLOCK_SIZE])))
                        .collect();
                    cache.commit_txn(&blocks).unwrap();
                    for (b, v) in writes {
                        model.insert(b, v);
                    }
                }
                Op::Read(b) => {
                    cache.read(b, &mut buf);
                    let want = model.get(&b).copied().unwrap_or(0);
                    prop_assert_eq!(buf, [want; BLOCK_SIZE], "read of {}", b);
                }
                Op::Checkpoint => {
                    cache.checkpoint_oldest();
                }
                Op::Restart { seed } => {
                    drop(cache);
                    nvm.crash(CrashPolicy::Random(seed));
                    cache = UbjCache::recover(nvm.clone(), disk.clone(), UbjConfig::default())
                        .map_err(TestCaseError::fail)?;
                    cache.check_consistency().map_err(TestCaseError::fail)?;
                }
            }
        }
        cache.check_consistency().map_err(TestCaseError::fail)?;
        for (&b, &v) in &model {
            cache.read(b, &mut buf);
            prop_assert_eq!(buf, [v; BLOCK_SIZE], "final read of {}", b);
        }
    }

    #[test]
    fn ubj_crash_mid_commit_is_atomic(
        pre in proptest::collection::vec((0..48u64, 1..=200u8), 1..6),
        txn in proptest::collection::vec(0..48u64, 1..6),
        trip in 1..600u64,
        seed in any::<u64>(),
    ) {
        quiet();
        let (mut cache, nvm, disk) = fresh();
        let mut committed: HashMap<u64, u8> = HashMap::new();
        let seed_blocks: Vec<_> = pre
            .iter()
            .map(|&(b, v)| (b, Box::new([v; BLOCK_SIZE])))
            .collect();
        cache.commit_txn(&seed_blocks).unwrap();
        for (b, v) in pre {
            committed.insert(b, v);
        }
        let mut touched: Vec<u64> = Vec::new();
        let blocks: Vec<_> = txn
            .iter()
            .map(|&b| {
                if !touched.contains(&b) {
                    touched.push(b);
                }
                (b, Box::new([255u8; BLOCK_SIZE]))
            })
            .collect();
        nvm.set_trip(Some(trip));
        let done = catch_unwind(AssertUnwindSafe(|| cache.commit_txn(&blocks))).is_ok();
        nvm.set_trip(None);
        drop(cache);
        nvm.crash(CrashPolicy::Random(seed));
        let rec = UbjCache::recover(nvm, disk, UbjConfig::default())
            .map_err(TestCaseError::fail)?;
        rec.check_consistency().map_err(TestCaseError::fail)?;
        let mut buf = [0u8; BLOCK_SIZE];
        let versions: Vec<(u64, u8)> = touched
            .iter()
            .map(|&b| {
                rec.read_nocache(b, &mut buf);
                (b, buf[0])
            })
            .collect();
        let all_new = versions.iter().all(|&(_, v)| v == 255);
        let all_old = versions
            .iter()
            .all(|&(b, v)| v == committed.get(&b).copied().unwrap_or(0));
        prop_assert!(all_old || all_new, "torn at trip {}: {:?}", trip, versions);
        if done {
            prop_assert!(all_new, "completed commit lost");
        }
        // Unrelated committed blocks intact.
        for (&b, &v) in committed.iter().filter(|(b, _)| !touched.contains(b)) {
            rec.read_nocache(b, &mut buf);
            prop_assert_eq!(buf, [v; BLOCK_SIZE], "unrelated block {} damaged", b);
        }
    }
}
