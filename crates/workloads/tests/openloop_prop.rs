//! Property tests for the open-loop tier: seeded streams are replay-
//! identical, whole runs are deterministic, and the harness actually
//! avoids coordinated omission (a stalled shard must inflate p999).

use blockdev::{DiskKind, SimDisk};
use nvmsim::{shard_devices, NvmConfig, NvmTech, SimClock};
use proptest::prelude::*;
use tinca::{PoolConfig, TincaConfig, TincaPool};
use workloads::openloop::{
    Arrival, ArrivalStream, Arrivals, OpKind, OpenLoopDriver, OpenLoopServer, OpenLoopSpec,
    TincaServer,
};

fn spec(seed: u64, rate: f64, bursty: bool) -> OpenLoopSpec {
    OpenLoopSpec {
        users: 100_000,
        arrivals: if bursty {
            Arrivals::Bursty {
                rate_ops_per_sec: rate,
                burst_ns: 500_000,
                idle_ns: 1_500_000,
            }
        } else {
            Arrivals::Poisson {
                rate_ops_per_sec: rate,
            }
        },
        ops: 300,
        read_pct: 30,
        blocks: 256,
        txn_blocks: 2,
        queue_cap: 0,
        limiter: None,
        seed,
    }
}

fn make_pool(shards: usize) -> (TincaPool, SimClock) {
    let devices = shard_devices(&NvmConfig::new(shards * (2 << 20), NvmTech::Pcm), shards);
    let disk_clock = SimClock::new();
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, disk_clock.clone());
    let pool = TincaPool::format(
        devices,
        disk,
        PoolConfig {
            shards,
            cache: TincaConfig {
                ring_bytes: 4096,
                ..TincaConfig::default()
            },
            ..PoolConfig::default()
        },
    );
    (pool, disk_clock)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ bit-identical arrival stream, for both arrival models
    /// and any shard count; different seeds diverge.
    #[test]
    fn seeded_streams_are_replay_identical(
        seed in 0u64..1_000_000,
        rate_kops in 1u64..10_000,
        bursty in any::<bool>(),
        shards in 1usize..=8,
    ) {
        let rate = rate_kops as f64 * 1000.0;
        let s = spec(seed, rate, bursty);
        let a: Vec<Arrival> = ArrivalStream::new(&s, shards).collect();
        let b: Vec<Arrival> = ArrivalStream::new(&s, shards).collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), s.ops as usize);
        // Arrival times are non-decreasing (a stream is a timeline).
        for w in a.windows(2) {
            prop_assert!(w[0].at_ns <= w[1].at_ns);
        }
        let other = spec(seed.wrapping_add(1), rate, bursty);
        let c: Vec<Arrival> = ArrivalStream::new(&other, shards).collect();
        prop_assert!(a != c, "different seeds must diverge");
    }
}

/// A whole run — histograms included — replays identically on a fresh
/// pool: the tier is a deterministic discrete-event simulation.
#[test]
fn full_run_is_replay_identical() {
    let run = |rate: f64| {
        let (pool, disk_clock) = make_pool(4);
        let server = TincaServer::new(&pool, disk_clock);
        OpenLoopDriver::new(spec(0xDE7, rate, false), server).run()
    };
    for rate in [5_000.0, 50_000_000.0] {
        let a = run(rate);
        let b = run(rate);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.horizon_ns, b.horizon_ns);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.queue_wait, b.queue_wait);
        assert_eq!(a.service, b.service);
        assert_eq!(a.shard_latency, b.shard_latency);
    }
}

/// Wraps a server and injects one long stall (a GC pause / device
/// hiccup) into a single op's service on one shard.
struct StallingServer<'a> {
    inner: TincaServer<'a>,
    stall_shard: usize,
    stall_at_op: u64,
    stall_ns: u64,
    served: u64,
}

impl OpenLoopServer for StallingServer<'_> {
    fn shards(&self) -> usize {
        self.inner.shards()
    }
    fn shard_of(&self, op: &OpKind) -> usize {
        self.inner.shard_of(op)
    }
    fn now_ns(&self, s: usize) -> u64 {
        self.inner.now_ns(s)
    }
    fn advance_to(&mut self, s: usize, at_ns: u64) {
        self.inner.advance_to(s, at_ns);
    }
    fn serve(&mut self, op: &OpKind) -> Result<(), String> {
        let s = self.shard_of(op);
        if s == self.stall_shard {
            if self.served == self.stall_at_op {
                // One op stalls; everything queued behind it waits.
                self.inner.advance_to(s, self.now_ns(s) + self.stall_ns);
            }
            self.served += 1;
        }
        self.inner.serve(op)
    }
}

/// The coordinated-omission test: one 50 ms stall early in the run must
/// surface in the *arrival-to-completion* tail, because every arrival
/// behind the stalled op keeps arriving on schedule and queues. A
/// closed-loop harness (which measures only per-op service time and
/// issues the next op after the previous returns) would record one slow
/// op and at most a handful of normal ones — the stall would vanish from
/// its tail.
#[test]
fn stalled_shard_inflates_p999_not_service_bulk() {
    const STALL_NS: u64 = 50_000_000; // 50 ms
    let s = OpenLoopSpec {
        ops: 2_000,
        // ~20k ops/s: ~1000 arrivals land during a 50 ms stall.
        ..spec(0xC0, 20_000.0, false)
    };

    let (pool, disk_clock) = make_pool(2);
    let baseline = OpenLoopDriver::new(s.clone(), TincaServer::new(&pool, disk_clock)).run();

    let (pool2, disk_clock2) = make_pool(2);
    let stalled = OpenLoopDriver::new(
        s,
        StallingServer {
            inner: TincaServer::new(&pool2, disk_clock2),
            stall_shard: 0,
            stall_at_op: 100,
            stall_ns: STALL_NS,
            served: 0,
        },
    )
    .run();

    // The stall dominates the arrival-to-completion tail...
    let p999 = stalled.p999().unwrap();
    assert!(
        p999 >= STALL_NS / 2,
        "p999={p999} does not reflect the {STALL_NS} ns stall"
    );
    assert!(p999 > 10 * baseline.p999().unwrap());
    // ...and it is queue wait, not service time, that carries it: the
    // bulk of services are untouched (the closed-loop blind spot).
    assert!(stalled.queue_wait.p99().unwrap() >= STALL_NS / 4);
    assert!(stalled.service.p50().unwrap() < STALL_NS / 100);
}
