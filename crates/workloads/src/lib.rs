//! # workloads — the benchmarks of Table 2
//!
//! Scaled-down but structurally faithful generators for every benchmark the
//! paper evaluates with:
//!
//! | Paper benchmark | Module | Shape preserved |
//! |---|---|---|
//! | Fio random R/W mix (3/7, 5/5, 7/3; 4 KB; 20 GB) | [`fio`] | request size, ratios, dataset:cache ratio |
//! | TPC-C via MySQL+HammerDB (350 warehouses, 5–60 users) | [`tpcc`] | txn mix, NURand skew, per-user streams, fsync-per-txn |
//! | Filebench fileserver / webproxy / varmail | [`filebench`] | R/W ratios (1/2, 5/1, 1/1), 16 KB requests, file-pool churn, varmail's fsync-heavy pattern |
//! | TeraGen (100 B rows, 100 GB) | [`teragen`] | sequential row append, chunked output files |
//!
//! All generators are seeded and deterministic; every figure harness prints
//! the seed it used. The [`report`] module snapshots NVM / disk / FS / cache
//! counters around the measured phase and computes the per-op metrics the
//! paper's figures report (throughput, `clflush` per op, disk writes per
//! op).

//! ```
//! use fssim::stack::{build, StackConfig, System};
//! use workloads::fio::{Fio, FioSpec};
//!
//! let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
//! let mut fio = Fio::new(FioSpec {
//!     read_pct: 50,
//!     file_bytes: 1 << 20,
//!     req_bytes: 4096,
//!     ops: 100,
//!     fsync_every: 32,
//!     seed: 1,
//! });
//! fio.setup(&mut stack);
//! let report = fio.run(&mut stack);
//! assert!(report.ops_per_sec() > 0.0);
//! ```

pub mod filebench;
pub mod fio;
pub mod mtfio;
pub mod openloop;
pub mod rand_util;
pub mod report;
pub mod spec;
pub mod teragen;
pub mod tpcc;
pub mod trace;

pub use report::{measure, Measurement, RunReport};
