//! Filebench-like macro-benchmark (§5.3.2, Table 2): the fileserver,
//! webproxy, and varmail personalities with the paper's R/W ratios and
//! 16 KB request sizes.

use blockdev::BLOCK_SIZE;
use fssim::stack::Stack;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rand_util::Zipf;
use crate::report::{measure, RunReport};

/// The three personalities the paper runs (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Personality {
    /// "File server operating on a large number of files" — R/W 1/2.
    Fileserver,
    /// "Web proxy server in the Internet" — R/W 5/1, Zipf popularity.
    Webproxy,
    /// "Email server" — R/W 1/1, fsync after every delivery.
    Varmail,
}

impl Personality {
    pub fn name(self) -> &'static str {
        match self {
            Personality::Fileserver => "fileserver",
            Personality::Webproxy => "webproxy",
            Personality::Varmail => "varmail",
        }
    }

    /// (read weight, write weight) per Table 2.
    fn rw_ratio(self) -> (u32, u32) {
        match self {
            Personality::Fileserver => (1, 2),
            Personality::Webproxy => (5, 1),
            Personality::Varmail => (1, 1),
        }
    }

    /// Whether every write is followed by fsync (mail delivery semantics).
    fn fsync_per_write(self) -> bool {
        matches!(self, Personality::Varmail)
    }
}

/// Filebench parameters.
#[derive(Clone, Debug)]
pub struct FilebenchSpec {
    pub personality: Personality,
    /// Files in the pre-created pool.
    pub nfiles: usize,
    /// Mean file size in bytes (requests stay within this).
    pub file_bytes: u64,
    /// I/O request size (paper: 16 KB).
    pub io_bytes: usize,
    /// Measured file operations.
    pub ops: u64,
    pub seed: u64,
}

impl FilebenchSpec {
    /// Scaled paper configuration: the dataset keeps the paper's
    /// dataset-to-cache ratio for the given total size.
    pub fn scaled(personality: Personality, dataset_bytes: u64, ops: u64) -> FilebenchSpec {
        let nfiles = 2048;
        FilebenchSpec {
            personality,
            nfiles,
            file_bytes: dataset_bytes / nfiles as u64,
            io_bytes: 16 << 10,
            ops,
            seed: 0xF11E + personality as u64,
        }
    }
}

/// A Filebench run bound to a file pool in some stack.
pub struct Filebench {
    spec: FilebenchSpec,
    rng: StdRng,
    zipf: Zipf,
    ops_done: u64,
    reads: u64,
    writes: u64,
    appends: u64,
    creates: u64,
    deletes: u64,
}

impl Filebench {
    pub fn new(spec: FilebenchSpec) -> Filebench {
        let rng = StdRng::seed_from_u64(spec.seed);
        let zipf = Zipf::new(spec.nfiles, 0.9);
        Filebench {
            spec,
            rng,
            zipf,
            ops_done: 0,
            reads: 0,
            writes: 0,
            appends: 0,
            creates: 0,
            deletes: 0,
        }
    }

    fn file_name(i: usize) -> String {
        format!("fbpool-{i:05}")
    }

    /// Pre-creates the file pool at its mean size, fsyncing periodically
    /// so the load phase never outgrows one transaction.
    pub fn setup(&mut self, stack: &mut Stack) {
        let chunk = vec![0x33u8; 64 * BLOCK_SIZE];
        for i in 0..self.spec.nfiles {
            let f = stack
                .fs
                .create(&Self::file_name(i))
                .expect("create pool file");
            let mut off = 0u64;
            while off < self.spec.file_bytes {
                let n = chunk.len().min((self.spec.file_bytes - off) as usize);
                stack.fs.write(f, off, &chunk[..n]).expect("fill");
                off += n as u64;
            }
            if i % 16 == 15 {
                stack.fs.fsync().expect("fsync");
            }
        }
        stack.fs.fsync().expect("fsync");
    }

    /// Runs the measured phase; `ops` in the report counts file operations
    /// (Fig. 11 reports OPs/s).
    pub fn run(&mut self, stack: &mut Stack) -> RunReport {
        let m = measure(stack, self.spec.personality.name());
        let (rw_r, rw_w) = self.spec.personality.rw_ratio();
        let mut buf = vec![0u8; self.spec.io_bytes];
        let wbuf = vec![0x44u8; self.spec.io_bytes];
        let max_off = self
            .spec
            .file_bytes
            .saturating_sub(self.spec.io_bytes as u64)
            .max(1);
        for _ in 0..self.spec.ops {
            let i = self.zipf.sample(&mut self.rng);
            let name = Self::file_name(i);
            // 4% of ops churn the pool (delete + recreate), as filebench's
            // create/delete flowlets do — except for the read-mostly proxy.
            if self.spec.personality != Personality::Webproxy && self.rng.gen_range(0..100) < 4 {
                if stack.fs.exists(&name) {
                    stack.fs.delete(&name).expect("delete");
                    self.deletes += 1;
                } else {
                    stack.fs.create(&name).expect("recreate");
                    self.creates += 1;
                }
                self.ops_done += 1;
                continue;
            }
            if !stack.fs.exists(&name) {
                stack.fs.create(&name).expect("recreate");
                self.creates += 1;
                self.ops_done += 1;
                continue;
            }
            let f = stack.fs.open(&name).expect("open");
            let off = self.rng.gen_range(0..max_off) / BLOCK_SIZE as u64 * BLOCK_SIZE as u64;
            if self.rng.gen_range(0..rw_r + rw_w) < rw_r {
                stack.fs.read(f, off, &mut buf).expect("read");
                self.reads += 1;
            } else {
                // Mail delivery and log-style file servers append; other
                // writes go in place. Appended files are capped at 4× the
                // mean size (the churn flowlets recycle them).
                let do_append = self.rng.gen_range(0..100) < 25
                    && stack.fs.file_size(f) < self.spec.file_bytes * 4;
                if do_append {
                    stack.fs.append(f, &wbuf).expect("append");
                    self.appends += 1;
                } else {
                    stack.fs.write(f, off, &wbuf).expect("write");
                }
                self.writes += 1;
                if self.spec.personality.fsync_per_write() {
                    stack.fs.fsync().expect("fsync");
                }
            }
            self.ops_done += 1;
        }
        stack.fs.fsync().expect("final fsync");
        m.finish(stack, self.ops_done)
    }

    pub fn counts(&self) -> (u64, u64, u64, u64) {
        (self.reads, self.writes, self.creates, self.deletes)
    }

    /// Appending writes among [`Self::counts`]'s writes.
    pub fn appends(&self) -> u64 {
        self.appends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssim::stack::{build, StackConfig, System};

    fn spec(p: Personality) -> FilebenchSpec {
        FilebenchSpec {
            personality: p,
            nfiles: 32,
            file_bytes: 64 << 10,
            io_bytes: 16 << 10,
            ops: 300,
            seed: 7,
        }
    }

    #[test]
    fn fileserver_is_write_heavy() {
        let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
        let mut fb = Filebench::new(spec(Personality::Fileserver));
        fb.setup(&mut stack);
        let r = fb.run(&mut stack);
        let (reads, writes, _, _) = fb.counts();
        assert!(
            writes > reads,
            "fileserver is 1/2 R/W: r={reads} w={writes}"
        );
        assert_eq!(r.ops, 300);
    }

    #[test]
    fn webproxy_is_read_heavy_and_stable_pool() {
        let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
        let mut fb = Filebench::new(spec(Personality::Webproxy));
        fb.setup(&mut stack);
        let _ = fb.run(&mut stack);
        let (reads, writes, creates, deletes) = fb.counts();
        assert!(reads > 3 * writes, "webproxy is 5/1: r={reads} w={writes}");
        assert_eq!(creates + deletes, 0, "webproxy does not churn the pool");
    }

    #[test]
    fn varmail_fsyncs_every_write() {
        let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
        let mut fb = Filebench::new(spec(Personality::Varmail));
        fb.setup(&mut stack);
        let r = fb.run(&mut stack);
        let (_, writes, _, _) = fb.counts();
        assert!(r.fs.fsyncs >= writes, "each delivery must fsync");
        assert!(fb.appends() > 0, "mail delivery appends");
    }

    #[test]
    fn appended_files_stay_bounded() {
        let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
        let mut s = spec(Personality::Fileserver);
        s.ops = 1500;
        let mut fb = Filebench::new(s.clone());
        fb.setup(&mut stack);
        let _ = fb.run(&mut stack);
        for i in 0..s.nfiles {
            if stack.fs.exists(&format!("fbpool-{i:05}")) {
                let f = stack.fs.open(&format!("fbpool-{i:05}")).unwrap();
                assert!(
                    stack.fs.file_size(f) <= s.file_bytes * 4 + s.io_bytes as u64,
                    "file {i} grew unboundedly"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut stack = build(&StackConfig::tiny(System::Classic)).unwrap();
            let mut fb = Filebench::new(spec(Personality::Fileserver));
            fb.setup(&mut stack);
            let r = fb.run(&mut stack);
            (r.nvm.clflush, r.disk.writes)
        };
        assert_eq!(run(), run());
    }
}
