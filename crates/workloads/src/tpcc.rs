//! TPC-C-like OLTP generator (§5.2.2): the five standard transaction
//! types in the standard mix, NURand hot-row skew, per-user streams, and
//! fsync-per-transaction durability — the block-level access pattern a
//! MySQL server driven by HammerDB produces, minus the SQL.

use blockdev::BLOCK_SIZE;
use fssim::stack::Stack;
use fssim::FileId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rand_util::nurand;
use crate::report::{measure, RunReport};

/// The five TPC-C transaction types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnType {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

impl TxnType {
    /// Standard TPC-C mix: 45 / 43 / 4 / 4 / 4.
    fn roll(rng: &mut StdRng) -> TxnType {
        match rng.gen_range(0..100) {
            0..=44 => TxnType::NewOrder,
            45..=87 => TxnType::Payment,
            88..=91 => TxnType::OrderStatus,
            92..=95 => TxnType::Delivery,
            _ => TxnType::StockLevel,
        }
    }
}

/// Page-region layout inside a warehouse file, mirroring the locality
/// structure of the TPC-C tables: a single scorching warehouse page, ten
/// hot district pages, NURand-skewed stock and customer regions, and an
/// append-mostly order/history region with a per-warehouse cursor.
#[derive(Clone, Copy, Debug)]
struct Regions {
    stock_start: u64,
    stock_len: u64,
    cust_start: u64,
    cust_len: u64,
    order_start: u64,
    order_len: u64,
}

impl Regions {
    fn new(pages: u64) -> Regions {
        assert!(pages >= 64, "warehouse file too small: {pages} pages");
        let stock_start = 11;
        let stock_len = pages / 4;
        let cust_start = stock_start + stock_len;
        let cust_len = pages / 4;
        let order_start = cust_start + cust_len;
        let order_len = pages - order_start;
        Regions {
            stock_start,
            stock_len,
            cust_start,
            cust_len,
            order_start,
            order_len,
        }
    }

    fn warehouse(&self) -> u64 {
        0
    }

    fn district(&self, rng: &mut StdRng) -> u64 {
        1 + rng.gen_range(0..10)
    }

    /// Row-level NURand composed with page-level heat: popular items and
    /// B-tree upper levels concentrate 70 % of page touches on ⅛ of the
    /// region (the page working set a database buffer hierarchy sees).
    fn hot_skewed(rng: &mut StdRng, start: u64, len: u64, c: u64) -> u64 {
        let hot_len = (len / 8).max(1);
        if rng.gen_range(0..100) < 70 {
            start + nurand(rng, (hot_len / 4).max(1), c, 0, hot_len - 1)
        } else {
            start + nurand(rng, (len / 4).max(1), c, 0, len - 1)
        }
    }

    fn stock(&self, rng: &mut StdRng) -> u64 {
        Self::hot_skewed(rng, self.stock_start, self.stock_len, 7911)
    }

    fn customer(&self, rng: &mut StdRng) -> u64 {
        Self::hot_skewed(rng, self.cust_start, self.cust_len, 5813)
    }

    /// The order/history append page at `cursor` (wrapping). Several
    /// consecutive records share one page (a B-tree leaf fills up before
    /// the insert point moves on), so appends mostly rewrite a hot page.
    fn order(&self, cursor: u64) -> u64 {
        self.order_start + (cursor / 8) % self.order_len
    }
}

/// TPC-C parameters.
#[derive(Clone, Debug)]
pub struct TpccSpec {
    /// Number of warehouses (paper: 350 at ~91 MB each; scale the size).
    pub warehouses: u32,
    /// Bytes per warehouse file.
    pub warehouse_bytes: u64,
    /// Concurrent user streams (the paper sweeps 5–60).
    pub users: u32,
    /// Measured transactions (across all users).
    pub txns: u64,
    pub seed: u64,
}

impl TpccSpec {
    /// Scaled-down paper configuration: the dataset keeps the paper's
    /// 32 GB : 8 GB = 4 : 1 dataset-to-cache ratio.
    pub fn scaled(users: u32, dataset_bytes: u64, txns: u64) -> TpccSpec {
        let warehouses = 16;
        TpccSpec {
            warehouses,
            warehouse_bytes: dataset_bytes / warehouses as u64,
            users,
            txns,
            seed: 0x79CC_u64 ^ users as u64,
        }
    }
}

/// One user's session state.
struct User {
    rng: StdRng,
    home: u32,
}

/// A TPC-C run bound to warehouse files in some stack.
pub struct Tpcc {
    spec: TpccSpec,
    users: Vec<User>,
    files: Vec<FileId>,
    /// Per-warehouse order/history append cursors.
    cursors: Vec<u64>,
    sched_rng: StdRng,
    completed: u64,
    since_fsync: u64,
}

impl Tpcc {
    pub fn new(spec: TpccSpec) -> Tpcc {
        let users = (0..spec.users)
            .map(|u| User {
                rng: StdRng::seed_from_u64(spec.seed ^ (0x1000 + u as u64)),
                home: u % spec.warehouses,
            })
            .collect();
        let sched_rng = StdRng::seed_from_u64(spec.seed ^ 0x5C4E_D001);
        let cursors = vec![0u64; spec.warehouses as usize];
        Tpcc {
            spec,
            users,
            files: Vec::new(),
            cursors,
            sched_rng,
            completed: 0,
            since_fsync: 0,
        }
    }

    /// Creates and pre-allocates the warehouse files ("loading the
    /// database").
    pub fn setup(&mut self, stack: &mut Stack) {
        let chunk = vec![0x11u8; 128 * BLOCK_SIZE];
        for w in 0..self.spec.warehouses {
            let f = stack
                .fs
                .create(&format!("warehouse-{w:03}"))
                .expect("create");
            let mut off = 0u64;
            while off < self.spec.warehouse_bytes {
                let n = chunk.len().min((self.spec.warehouse_bytes - off) as usize);
                stack.fs.write(f, off, &chunk[..n]).expect("load");
                off += n as u64;
            }
            self.files.push(f);
        }
        stack.fs.fsync().expect("fsync");
    }

    /// Fractional per-user contention overhead: each transaction's service
    /// time is inflated by `CONTENTION × users` (locks held across I/O in
    /// the database server). This reproduces the paper's observation that
    /// TPM *declines* as users grow (Fig. 8a: −41 % Classic / −35 % Tinca
    /// from 5 to 60 users) even though a closed loop would otherwise
    /// saturate flat.
    const CONTENTION: f64 = 0.01;

    /// Database-server CPU per transaction (SQL parsing, B-tree descent,
    /// locking — the work MySQL does besides I/O; ≈ 0.4 ms for TPC-C).
    const CPU_NS_PER_TXN: u64 = 400_000;

    /// Executes one transaction for `user`; returns its type.
    ///
    /// Accesses follow the TPC-C tables' locality structure: the
    /// warehouse/district rows are scorching hot, stock/customer are
    /// NURand-skewed, and orders/history are appended at a per-warehouse
    /// cursor. 90 % of accesses hit the home warehouse (remote payments /
    /// order lines take the rest).
    fn run_txn(&mut self, stack: &mut Stack, user: usize) -> TxnType {
        let txn_t0 = stack.clock.now_ns();
        let pages = self.spec.warehouse_bytes / BLOCK_SIZE as u64;
        let regions = Regions::new(pages);
        let t = TxnType::roll(&mut self.users[user].rng);
        let home = self.users[user].home;
        let pick_wh = |rng: &mut StdRng, warehouses: u32| -> u32 {
            if rng.gen_range(0..100) < 90 {
                home
            } else {
                rng.gen_range(0..warehouses)
            }
        };
        let mut reads: Vec<(u32, u64)> = Vec::with_capacity(24);
        let mut writes: Vec<(u32, u64)> = Vec::with_capacity(16);
        // Append-style inserts (orders, history): a fresh page is *not*
        // read first — these are the cache's genuine write misses.
        let mut appends: Vec<(u32, u64)> = Vec::with_capacity(4);
        {
            let warehouses = self.spec.warehouses;
            let u = &mut self.users[user];
            match t {
                TxnType::NewOrder => {
                    // Reads: district, five stock rows, the customer.
                    // Page-cleaner-visible writes: the district page, two
                    // of the five stock pages (the buffer pool coalesces
                    // the rest between flush cycles), the order append.
                    let wh = pick_wh(&mut u.rng, warehouses);
                    let d = regions.district(&mut u.rng);
                    reads.push((wh, d));
                    writes.push((wh, d)); // next order id
                    for k in 0..5 {
                        let swh = pick_wh(&mut u.rng, warehouses);
                        let s = regions.stock(&mut u.rng);
                        reads.push((swh, s));
                        if k < 2 {
                            writes.push((swh, s)); // stock quantity update
                        }
                    }
                    reads.push((wh, regions.customer(&mut u.rng)));
                    let cur = self.cursors[wh as usize];
                    self.cursors[wh as usize] += 1;
                    appends.push((wh, regions.order(cur)));
                }
                TxnType::Payment => {
                    let wh = pick_wh(&mut u.rng, warehouses);
                    let d = regions.district(&mut u.rng);
                    let c = regions.customer(&mut u.rng);
                    reads.push((wh, regions.warehouse()));
                    reads.push((wh, d));
                    reads.push((wh, c));
                    // w_ytd / d_ytd updates coalesce in the buffer pool
                    // (those pages are re-dirtied by nearly every txn);
                    // the customer balance and history append reach the FS.
                    writes.push((wh, c));
                    let cur = self.cursors[wh as usize];
                    appends.push((wh, regions.order(cur))); // history append
                }
                TxnType::OrderStatus => {
                    let wh = pick_wh(&mut u.rng, warehouses);
                    reads.push((wh, regions.customer(&mut u.rng)));
                    let cur = self.cursors[wh as usize];
                    for k in 0..3u64 {
                        reads.push((wh, regions.order(cur.saturating_sub(k))));
                    }
                }
                TxnType::Delivery => {
                    let wh = home;
                    let cur = self.cursors[wh as usize];
                    for k in 0..6u64 {
                        reads.push((wh, regions.order(cur.saturating_sub(k))));
                    }
                    for k in 0..2u64 {
                        writes.push((wh, regions.order(cur.saturating_sub(k))));
                    }
                    let c = regions.customer(&mut u.rng);
                    reads.push((wh, c));
                    writes.push((wh, c));
                }
                TxnType::StockLevel => {
                    let wh = home;
                    reads.push((wh, regions.district(&mut u.rng)));
                    for _ in 0..20 {
                        reads.push((wh, regions.stock(&mut u.rng)));
                    }
                }
            }
        }
        let mut buf = [0u8; BLOCK_SIZE];
        for (wh, page) in reads {
            stack
                .fs
                .read(self.files[wh as usize], page * BLOCK_SIZE as u64, &mut buf)
                .expect("read");
        }
        let did_write = !writes.is_empty() || !appends.is_empty();
        let payload = [0x22u8; BLOCK_SIZE];
        for (wh, page) in writes.into_iter().chain(appends) {
            stack
                .fs
                .write(self.files[wh as usize], page * BLOCK_SIZE as u64, &payload)
                .expect("write");
        }
        if did_write {
            self.since_fsync += 1;
            // Group commit (JBD2 merges concurrent fsyncs into one journal
            // commit): with U users, ~U transactions share a commit.
            if self.since_fsync >= self.group_commit() {
                stack.fs.fsync().expect("fsync");
                self.since_fsync = 0;
            }
        }
        stack.clock.advance(Self::CPU_NS_PER_TXN);
        let service_ns = stack.clock.now_ns() - txn_t0;
        let contention = (service_ns as f64 * Self::CONTENTION * self.spec.users as f64) as u64;
        stack.clock.advance(contention);
        t
    }

    /// Transactions per group commit: grows with concurrency, as JBD2's
    /// commit merging does under multiple fsyncing threads.
    fn group_commit(&self) -> u64 {
        (self.spec.users as u64).clamp(1, 16)
    }

    /// Runs the measured phase: `txns` transactions scheduled round-robin
    /// over the user streams (with a random starting phase per round, as a
    /// thread scheduler would interleave them).
    pub fn run(&mut self, stack: &mut Stack) -> RunReport {
        let m = measure(stack, &format!("tpcc users={}", self.spec.users));
        let n_users = self.users.len();
        for i in 0..self.spec.txns {
            let user = if n_users == 1 {
                0
            } else {
                // Mostly round-robin with jitter.
                (i as usize + self.sched_rng.gen_range(0..n_users)) % n_users
            };
            self.run_txn(stack, user);
            self.completed += 1;
        }
        stack.fs.fsync().expect("final fsync");
        m.finish(stack, self.completed)
    }

    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssim::stack::{build, StackConfig, System};

    fn small_spec(users: u32) -> TpccSpec {
        TpccSpec {
            warehouses: 4,
            warehouse_bytes: 1 << 20,
            users,
            txns: 100,
            seed: 99,
        }
    }

    #[test]
    fn mix_matches_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 5];
        for _ in 0..20_000 {
            match TxnType::roll(&mut rng) {
                TxnType::NewOrder => counts[0] += 1,
                TxnType::Payment => counts[1] += 1,
                TxnType::OrderStatus => counts[2] += 1,
                TxnType::Delivery => counts[3] += 1,
                TxnType::StockLevel => counts[4] += 1,
            }
        }
        let frac = |c: u32| c as f64 / 20_000.0;
        assert!((frac(counts[0]) - 0.45).abs() < 0.02);
        assert!((frac(counts[1]) - 0.43).abs() < 0.02);
        assert!((frac(counts[2]) - 0.04).abs() < 0.01);
    }

    #[test]
    fn runs_transactions() {
        let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
        let mut tpcc = Tpcc::new(small_spec(4));
        tpcc.setup(&mut stack);
        let r = tpcc.run(&mut stack);
        assert_eq!(r.ops, 100);
        assert!(r.fs.fsyncs > 0, "write txns must fsync");
        assert!(r.ops_per_min() > 0.0);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
            let mut tpcc = Tpcc::new(small_spec(2));
            tpcc.setup(&mut stack);
            let r = tpcc.run(&mut stack);
            (r.nvm.clflush, r.disk.writes)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_user_works() {
        let mut stack = build(&StackConfig::tiny(System::Classic)).unwrap();
        let mut tpcc = Tpcc::new(small_spec(1));
        tpcc.setup(&mut stack);
        let r = tpcc.run(&mut stack);
        assert_eq!(r.ops, 100);
    }
}
