//! TPC-C-like OLTP generator (§5.2.2): the five standard transaction
//! types in the standard mix, NURand hot-row skew, per-user streams, and
//! fsync-per-transaction durability — the block-level access pattern a
//! MySQL server driven by HammerDB produces, minus the SQL.

use blockdev::BLOCK_SIZE;
use fssim::stack::Stack;
use fssim::FileId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rand_util::nurand;
use crate::report::{measure, RunReport};

/// The five TPC-C transaction types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnType {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

impl TxnType {
    /// Standard TPC-C mix: 45 / 43 / 4 / 4 / 4.
    fn roll(rng: &mut StdRng) -> TxnType {
        match rng.gen_range(0..100) {
            0..=44 => TxnType::NewOrder,
            45..=87 => TxnType::Payment,
            88..=91 => TxnType::OrderStatus,
            92..=95 => TxnType::Delivery,
            _ => TxnType::StockLevel,
        }
    }
}

/// The TPC-C tables this generator models. The discriminant order is the
/// physical layout order inside a warehouse ([`Regions::page_of`]), so
/// record keys sort by table exactly as their pages are laid out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Table {
    Warehouse = 0,
    District = 1,
    Stock = 2,
    Customer = 3,
    /// Orders and history share one append-mostly region.
    Order = 4,
}

impl Table {
    /// All tables, in key order.
    pub const ALL: [Table; 5] = [
        Table::Warehouse,
        Table::District,
        Table::Stock,
        Table::Customer,
        Table::Order,
    ];

    fn from_code(code: u8) -> Option<Table> {
        Table::ALL.into_iter().find(|t| *t as u8 == code)
    }
}

/// A deterministic TPC-C record key: `(warehouse, table, row)`.
///
/// `row` identifies a page-sized row group within the table's region (rows
/// sharing a leaf page share a row group; for [`Table::Order`] it is the
/// append cursor, eight of which share one page). One key codec serves
/// both personalities of the reproduction: the block-level drivers map a
/// key to a page via [`Regions::page_of`], and `kvdb` stores the record
/// under [`encode`](Self::encode)'s ordered bytes — so fig 8/12 and the
/// WAL-elimination figure exercise the same logical records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordKey {
    pub warehouse: u32,
    pub table: Table,
    pub row: u64,
}

impl RecordKey {
    /// Encoded size: `[warehouse: 4][table: 1][row: 8]`.
    pub const ENCODED_LEN: usize = 13;

    /// Encodes into fixed-width big-endian bytes, so byte-lexicographic
    /// order over encodings equals [`Ord`] order over keys (and the
    /// mapping is injective — equal encodings decode to equal keys).
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[0..4].copy_from_slice(&self.warehouse.to_be_bytes());
        out[4] = self.table as u8;
        out[5..13].copy_from_slice(&self.row.to_be_bytes());
        out
    }

    /// Decodes an [`encode`](Self::encode)d key; `None` on a wrong length
    /// or an unknown table code.
    pub fn decode(bytes: &[u8]) -> Option<RecordKey> {
        let bytes: &[u8; Self::ENCODED_LEN] = bytes.try_into().ok()?;
        Some(RecordKey {
            warehouse: u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            table: Table::from_code(bytes[4])?,
            row: u64::from_be_bytes(bytes[5..13].try_into().ok()?),
        })
    }
}

/// Page-region layout inside a warehouse file, mirroring the locality
/// structure of the TPC-C tables: a single scorching warehouse page, ten
/// hot district pages, NURand-skewed stock and customer regions, and an
/// append-mostly order/history region with a per-warehouse cursor.
#[derive(Clone, Copy, Debug)]
pub struct Regions {
    stock_start: u64,
    stock_len: u64,
    cust_start: u64,
    cust_len: u64,
    order_start: u64,
    order_len: u64,
}

impl Regions {
    /// Region layout of a warehouse spanning `pages` 4 KB pages.
    pub fn new(pages: u64) -> Regions {
        assert!(pages >= 64, "warehouse file too small: {pages} pages");
        let stock_start = 11;
        let stock_len = pages / 4;
        let cust_start = stock_start + stock_len;
        let cust_len = pages / 4;
        let order_start = cust_start + cust_len;
        let order_len = pages - order_start;
        Regions {
            stock_start,
            stock_len,
            cust_start,
            cust_len,
            order_start,
            order_len,
        }
    }

    /// The warehouse-file page holding `key`'s record — the one shared
    /// (warehouse, table, row) → page mapping of the reproduction.
    pub fn page_of(&self, key: RecordKey) -> u64 {
        match key.table {
            Table::Warehouse => 0,
            Table::District => 1 + key.row % 10,
            Table::Stock => self.stock_start + key.row % self.stock_len,
            Table::Customer => self.cust_start + key.row % self.cust_len,
            // Several consecutive appends share one page (a B-tree leaf
            // fills up before the insert point moves on), so appends
            // mostly rewrite a hot page.
            Table::Order => self.order_start + (key.row / 8) % self.order_len,
        }
    }

    /// Rolls a district row (0..10).
    pub fn district_row(rng: &mut StdRng) -> u64 {
        rng.gen_range(0..10)
    }

    /// Row-level NURand composed with page-level heat: popular items and
    /// B-tree upper levels concentrate 70 % of page touches on ⅛ of the
    /// region (the page working set a database buffer hierarchy sees).
    fn hot_skewed(rng: &mut StdRng, len: u64, c: u64) -> u64 {
        let hot_len = (len / 8).max(1);
        if rng.gen_range(0..100) < 70 {
            nurand(rng, (hot_len / 4).max(1), c, 0, hot_len - 1)
        } else {
            nurand(rng, (len / 4).max(1), c, 0, len - 1)
        }
    }

    /// Rolls a NURand-skewed stock row.
    pub fn stock_row(&self, rng: &mut StdRng) -> u64 {
        Self::hot_skewed(rng, self.stock_len, 7911)
    }

    /// Rolls a NURand-skewed customer row.
    pub fn customer_row(&self, rng: &mut StdRng) -> u64 {
        Self::hot_skewed(rng, self.cust_len, 5813)
    }
}

/// One generated transaction: its type and the record keys it touches.
/// Appends (order/history inserts) are separated from in-place writes
/// because a fresh page is *not* read first — they are the cache's
/// genuine write misses.
#[derive(Clone, Debug)]
pub struct TxnKeys {
    pub txn_type: TxnType,
    pub reads: Vec<RecordKey>,
    pub writes: Vec<RecordKey>,
    pub appends: Vec<RecordKey>,
}

/// Rolls one TPC-C transaction's type and record keys for a user homed at
/// warehouse `home`. `cursors` holds the per-warehouse order/history
/// append cursors (advanced by NewOrder). This is the single source of
/// the access pattern: the block-level driver maps each key to a page via
/// [`Regions::page_of`], and kvdb stores each key's record under
/// [`RecordKey::encode`] — one stream, two personalities.
///
/// Accesses follow the TPC-C tables' locality structure: the
/// warehouse/district rows are scorching hot, stock/customer are
/// NURand-skewed, and orders/history are appended at a per-warehouse
/// cursor. 90 % of accesses hit the home warehouse (remote payments /
/// order lines take the rest).
pub fn gen_txn_keys(
    rng: &mut StdRng,
    regions: &Regions,
    home: u32,
    warehouses: u32,
    cursors: &mut [u64],
) -> TxnKeys {
    let t = TxnType::roll(rng);
    let pick_wh = |rng: &mut StdRng| -> u32 {
        if rng.gen_range(0..100) < 90 {
            home
        } else {
            rng.gen_range(0..warehouses)
        }
    };
    let key = |warehouse: u32, table: Table, row: u64| RecordKey {
        warehouse,
        table,
        row,
    };
    let mut reads: Vec<RecordKey> = Vec::with_capacity(24);
    let mut writes: Vec<RecordKey> = Vec::with_capacity(16);
    let mut appends: Vec<RecordKey> = Vec::with_capacity(4);
    match t {
        TxnType::NewOrder => {
            // Reads: district, five stock rows, the customer.
            // Page-cleaner-visible writes: the district page, two
            // of the five stock pages (the buffer pool coalesces
            // the rest between flush cycles), the order append.
            let wh = pick_wh(rng);
            let d = Regions::district_row(rng);
            reads.push(key(wh, Table::District, d));
            writes.push(key(wh, Table::District, d)); // next order id
            for k in 0..5 {
                let swh = pick_wh(rng);
                let s = regions.stock_row(rng);
                reads.push(key(swh, Table::Stock, s));
                if k < 2 {
                    writes.push(key(swh, Table::Stock, s)); // stock quantity update
                }
            }
            reads.push(key(wh, Table::Customer, regions.customer_row(rng)));
            let cur = cursors[wh as usize];
            cursors[wh as usize] += 1;
            appends.push(key(wh, Table::Order, cur));
        }
        TxnType::Payment => {
            let wh = pick_wh(rng);
            let d = Regions::district_row(rng);
            let c = regions.customer_row(rng);
            reads.push(key(wh, Table::Warehouse, 0));
            reads.push(key(wh, Table::District, d));
            reads.push(key(wh, Table::Customer, c));
            // w_ytd / d_ytd updates coalesce in the buffer pool
            // (those pages are re-dirtied by nearly every txn);
            // the customer balance and history append reach the FS.
            writes.push(key(wh, Table::Customer, c));
            let cur = cursors[wh as usize];
            appends.push(key(wh, Table::Order, cur)); // history append
        }
        TxnType::OrderStatus => {
            let wh = pick_wh(rng);
            reads.push(key(wh, Table::Customer, regions.customer_row(rng)));
            let cur = cursors[wh as usize];
            for k in 0..3u64 {
                reads.push(key(wh, Table::Order, cur.saturating_sub(k)));
            }
        }
        TxnType::Delivery => {
            let wh = home;
            let cur = cursors[wh as usize];
            for k in 0..6u64 {
                reads.push(key(wh, Table::Order, cur.saturating_sub(k)));
            }
            for k in 0..2u64 {
                writes.push(key(wh, Table::Order, cur.saturating_sub(k)));
            }
            let c = regions.customer_row(rng);
            reads.push(key(wh, Table::Customer, c));
            writes.push(key(wh, Table::Customer, c));
        }
        TxnType::StockLevel => {
            let wh = home;
            reads.push(key(wh, Table::District, Regions::district_row(rng)));
            for _ in 0..20 {
                reads.push(key(wh, Table::Stock, regions.stock_row(rng)));
            }
        }
    }
    TxnKeys {
        txn_type: t,
        reads,
        writes,
        appends,
    }
}

/// TPC-C parameters.
#[derive(Clone, Debug)]
pub struct TpccSpec {
    /// Number of warehouses (paper: 350 at ~91 MB each; scale the size).
    pub warehouses: u32,
    /// Bytes per warehouse file.
    pub warehouse_bytes: u64,
    /// Concurrent user streams (the paper sweeps 5–60).
    pub users: u32,
    /// Measured transactions (across all users).
    pub txns: u64,
    pub seed: u64,
}

impl TpccSpec {
    /// Scaled-down paper configuration: the dataset keeps the paper's
    /// 32 GB : 8 GB = 4 : 1 dataset-to-cache ratio.
    pub fn scaled(users: u32, dataset_bytes: u64, txns: u64) -> TpccSpec {
        let warehouses = 16;
        TpccSpec {
            warehouses,
            warehouse_bytes: dataset_bytes / warehouses as u64,
            users,
            txns,
            seed: 0x79CC_u64 ^ users as u64,
        }
    }
}

/// One user's session state.
struct User {
    rng: StdRng,
    home: u32,
}

/// A TPC-C run bound to warehouse files in some stack.
pub struct Tpcc {
    spec: TpccSpec,
    users: Vec<User>,
    files: Vec<FileId>,
    /// Per-warehouse order/history append cursors.
    cursors: Vec<u64>,
    sched_rng: StdRng,
    completed: u64,
    since_fsync: u64,
}

impl Tpcc {
    pub fn new(spec: TpccSpec) -> Tpcc {
        let users = (0..spec.users)
            .map(|u| User {
                rng: StdRng::seed_from_u64(spec.seed ^ (0x1000 + u as u64)),
                home: u % spec.warehouses,
            })
            .collect();
        let sched_rng = StdRng::seed_from_u64(spec.seed ^ 0x5C4E_D001);
        let cursors = vec![0u64; spec.warehouses as usize];
        Tpcc {
            spec,
            users,
            files: Vec::new(),
            cursors,
            sched_rng,
            completed: 0,
            since_fsync: 0,
        }
    }

    /// Creates and pre-allocates the warehouse files ("loading the
    /// database").
    pub fn setup(&mut self, stack: &mut Stack) {
        let chunk = vec![0x11u8; 128 * BLOCK_SIZE];
        for w in 0..self.spec.warehouses {
            let f = stack
                .fs
                .create(&format!("warehouse-{w:03}"))
                .expect("create");
            let mut off = 0u64;
            while off < self.spec.warehouse_bytes {
                let n = chunk.len().min((self.spec.warehouse_bytes - off) as usize);
                stack.fs.write(f, off, &chunk[..n]).expect("load");
                off += n as u64;
            }
            self.files.push(f);
        }
        stack.fs.fsync().expect("fsync");
    }

    /// Fractional per-user contention overhead: each transaction's service
    /// time is inflated by `CONTENTION × users` (locks held across I/O in
    /// the database server). This reproduces the paper's observation that
    /// TPM *declines* as users grow (Fig. 8a: −41 % Classic / −35 % Tinca
    /// from 5 to 60 users) even though a closed loop would otherwise
    /// saturate flat.
    const CONTENTION: f64 = 0.01;

    /// Database-server CPU per transaction (SQL parsing, B-tree descent,
    /// locking — the work MySQL does besides I/O; ≈ 0.4 ms for TPC-C).
    const CPU_NS_PER_TXN: u64 = 400_000;

    /// Executes one transaction for `user`; returns its type.
    ///
    /// The access pattern comes from [`gen_txn_keys`]; this driver maps
    /// each record key to its warehouse-file page and replays the reads,
    /// writes, and appends against the filesystem.
    fn run_txn(&mut self, stack: &mut Stack, user: usize) -> TxnType {
        let txn_t0 = stack.clock.now_ns();
        let pages = self.spec.warehouse_bytes / BLOCK_SIZE as u64;
        let regions = Regions::new(pages);
        let warehouses = self.spec.warehouses;
        let u = &mut self.users[user];
        let keys = gen_txn_keys(&mut u.rng, &regions, u.home, warehouses, &mut self.cursors);
        let mut buf = [0u8; BLOCK_SIZE];
        for k in &keys.reads {
            let page = regions.page_of(*k);
            stack
                .fs
                .read(
                    self.files[k.warehouse as usize],
                    page * BLOCK_SIZE as u64,
                    &mut buf,
                )
                .expect("read");
        }
        let did_write = !keys.writes.is_empty() || !keys.appends.is_empty();
        let payload = [0x22u8; BLOCK_SIZE];
        for k in keys.writes.iter().chain(&keys.appends) {
            let page = regions.page_of(*k);
            stack
                .fs
                .write(
                    self.files[k.warehouse as usize],
                    page * BLOCK_SIZE as u64,
                    &payload,
                )
                .expect("write");
        }
        let t = keys.txn_type;
        if did_write {
            self.since_fsync += 1;
            // Group commit (JBD2 merges concurrent fsyncs into one journal
            // commit): with U users, ~U transactions share a commit.
            if self.since_fsync >= self.group_commit() {
                stack.fs.fsync().expect("fsync");
                self.since_fsync = 0;
            }
        }
        stack.clock.advance(Self::CPU_NS_PER_TXN);
        let service_ns = stack.clock.now_ns() - txn_t0;
        let contention = (service_ns as f64 * Self::CONTENTION * self.spec.users as f64) as u64;
        stack.clock.advance(contention);
        t
    }

    /// Transactions per group commit: grows with concurrency, as JBD2's
    /// commit merging does under multiple fsyncing threads.
    fn group_commit(&self) -> u64 {
        (self.spec.users as u64).clamp(1, 16)
    }

    /// Runs the measured phase: `txns` transactions scheduled round-robin
    /// over the user streams (with a random starting phase per round, as a
    /// thread scheduler would interleave them).
    pub fn run(&mut self, stack: &mut Stack) -> RunReport {
        let m = measure(stack, &format!("tpcc users={}", self.spec.users));
        let n_users = self.users.len();
        for i in 0..self.spec.txns {
            let user = if n_users == 1 {
                0
            } else {
                // Mostly round-robin with jitter.
                (i as usize + self.sched_rng.gen_range(0..n_users)) % n_users
            };
            self.run_txn(stack, user);
            self.completed += 1;
        }
        stack.fs.fsync().expect("final fsync");
        m.finish(stack, self.completed)
    }

    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssim::stack::{build, StackConfig, System};

    fn small_spec(users: u32) -> TpccSpec {
        TpccSpec {
            warehouses: 4,
            warehouse_bytes: 1 << 20,
            users,
            txns: 100,
            seed: 99,
        }
    }

    #[test]
    fn mix_matches_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 5];
        for _ in 0..20_000 {
            match TxnType::roll(&mut rng) {
                TxnType::NewOrder => counts[0] += 1,
                TxnType::Payment => counts[1] += 1,
                TxnType::OrderStatus => counts[2] += 1,
                TxnType::Delivery => counts[3] += 1,
                TxnType::StockLevel => counts[4] += 1,
            }
        }
        let frac = |c: u32| c as f64 / 20_000.0;
        assert!((frac(counts[0]) - 0.45).abs() < 0.02);
        assert!((frac(counts[1]) - 0.43).abs() < 0.02);
        assert!((frac(counts[2]) - 0.04).abs() < 0.01);
    }

    #[test]
    fn runs_transactions() {
        let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
        let mut tpcc = Tpcc::new(small_spec(4));
        tpcc.setup(&mut stack);
        let r = tpcc.run(&mut stack);
        assert_eq!(r.ops, 100);
        assert!(r.fs.fsyncs > 0, "write txns must fsync");
        assert!(r.ops_per_min() > 0.0);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
            let mut tpcc = Tpcc::new(small_spec(2));
            tpcc.setup(&mut stack);
            let r = tpcc.run(&mut stack);
            (r.nvm.clflush, r.disk.writes)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_user_works() {
        let mut stack = build(&StackConfig::tiny(System::Classic)).unwrap();
        let mut tpcc = Tpcc::new(small_spec(1));
        tpcc.setup(&mut stack);
        let r = tpcc.run(&mut stack);
        assert_eq!(r.ops, 100);
    }

    #[test]
    fn record_key_round_trips() {
        for table in Table::ALL {
            for (wh, row) in [(0u32, 0u64), (3, 7), (u32::MAX, u64::MAX)] {
                let k = RecordKey {
                    warehouse: wh,
                    table,
                    row,
                };
                assert_eq!(RecordKey::decode(&k.encode()), Some(k));
            }
        }
    }

    #[test]
    fn record_key_decode_rejects_garbage() {
        assert_eq!(RecordKey::decode(&[]), None);
        assert_eq!(RecordKey::decode(&[0u8; 12]), None);
        assert_eq!(RecordKey::decode(&[0u8; 14]), None);
        let mut bad = [0u8; RecordKey::ENCODED_LEN];
        bad[4] = 0xEE; // unknown table code
        assert_eq!(RecordKey::decode(&bad), None);
    }

    #[test]
    fn page_of_matches_region_layout() {
        let regions = Regions::new(256);
        let key = |table, row| RecordKey {
            warehouse: 0,
            table,
            row,
        };
        assert_eq!(regions.page_of(key(Table::Warehouse, 0)), 0);
        assert_eq!(regions.page_of(key(Table::District, 0)), 1);
        assert_eq!(regions.page_of(key(Table::District, 9)), 10);
        // stock_start = 11, stock_len = cust_len = 64, order rest.
        assert_eq!(regions.page_of(key(Table::Stock, 0)), 11);
        assert_eq!(regions.page_of(key(Table::Customer, 0)), 75);
        assert_eq!(regions.page_of(key(Table::Order, 0)), 139);
        // Eight consecutive appends share a page; the ninth moves on.
        assert_eq!(regions.page_of(key(Table::Order, 7)), 139);
        assert_eq!(regions.page_of(key(Table::Order, 8)), 140);
        // Pages never escape the file.
        for table in Table::ALL {
            for row in [0u64, 1, 63, 64, 1000, u64::MAX] {
                assert!(regions.page_of(key(table, row)) < 256);
            }
        }
    }
}

#[cfg(test)]
mod codec_props {
    use super::*;
    use proptest::prelude::*;

    fn arb_key() -> impl Strategy<Value = RecordKey> {
        (any::<u32>(), 0u8..5, any::<u64>()).prop_map(|(warehouse, t, row)| RecordKey {
            warehouse,
            table: Table::from_code(t).expect("codes 0..5 are all tables"),
            row,
        })
    }

    proptest! {
        /// Byte-lexicographic order over encodings equals `Ord` over keys.
        /// (Taking `a < b` to `encode(a) < encode(b)` also proves
        /// injectivity: distinct keys are ordered, so their encodings are
        /// ordered and hence distinct.)
        #[test]
        fn encoding_preserves_order(a in arb_key(), b in arb_key()) {
            prop_assert_eq!(a.cmp(&b), a.encode().cmp(&b.encode()));
        }

        #[test]
        fn encoding_round_trips(k in arb_key()) {
            prop_assert_eq!(RecordKey::decode(&k.encode()), Some(k));
        }
    }
}
