//! Fio-like micro-benchmark: random 4 KB reads/writes at a configured
//! ratio over one pre-allocated file (§5.2.1, Table 2 row 1).

use blockdev::BLOCK_SIZE;
use fssim::stack::Stack;
use fssim::FileId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{measure, RunReport};

/// Fio parameters.
#[derive(Clone, Debug)]
pub struct FioSpec {
    /// Read percentage of the mix (30, 50, 70 — the paper's 3/7, 5/5, 7/3).
    pub read_pct: u32,
    /// File size in bytes (the paper: 20 GB against an 8 GB cache — keep
    /// the 2.5 : 1 dataset-to-cache ratio when scaling).
    pub file_bytes: u64,
    /// Request size (paper: 4 KB).
    pub req_bytes: usize,
    /// Measured operations.
    pub ops: u64,
    /// fsync interval in write ops (0 = rely on transaction batching only).
    pub fsync_every: u64,
    pub seed: u64,
}

impl FioSpec {
    /// The paper's configuration at `scale` (1 = full 20 GB; 128 = default
    /// scaled run).
    pub fn paper(read_pct: u32, scale: u64, ops: u64) -> FioSpec {
        FioSpec {
            read_pct,
            file_bytes: (20 << 30) / scale,
            req_bytes: 4 << 10,
            ops,
            fsync_every: 64,
            seed: 0x0F10 + read_pct as u64,
        }
    }
}

/// A Fio run bound to a file in some stack.
pub struct Fio {
    spec: FioSpec,
    rng: StdRng,
    file: Option<FileId>,
    write_ops: u64,
    read_ops: u64,
}

impl Fio {
    pub fn new(spec: FioSpec) -> Fio {
        let rng = StdRng::seed_from_u64(spec.seed);
        Fio {
            spec,
            rng,
            file: None,
            write_ops: 0,
            read_ops: 0,
        }
    }

    /// Pre-allocates the target file (the paper lets Fio lay out its file
    /// before the measured phase) and warms the cache.
    pub fn setup(&mut self, stack: &mut Stack) {
        let f = stack.fs.create("fio.dat").expect("create fio file");
        let chunk = vec![0x66u8; 256 * BLOCK_SIZE];
        let mut off = 0u64;
        while off < self.spec.file_bytes {
            let n = chunk.len().min((self.spec.file_bytes - off) as usize);
            stack.fs.write(f, off, &chunk[..n]).expect("prealloc");
            off += n as u64;
        }
        stack.fs.fsync().expect("fsync");
        self.file = Some(f);
    }

    /// Runs the measured phase and returns the report. `ops` in the report
    /// counts **write** operations (Fig. 7(a) reports write IOPS and
    /// normalises 7(b)/(c) per write op).
    pub fn run(&mut self, stack: &mut Stack) -> RunReport {
        let f = self.file.expect("setup() first");
        let m = measure(stack, &format!("fio r{}%", self.spec.read_pct));
        let max_req = self.spec.file_bytes / self.spec.req_bytes as u64;
        let mut buf = vec![0u8; self.spec.req_bytes];
        let wbuf = vec![0x77u8; self.spec.req_bytes];
        for op in 0..self.spec.ops {
            let off = self.rng.gen_range(0..max_req) * self.spec.req_bytes as u64;
            if self.rng.gen_range(0..100) < self.spec.read_pct {
                stack.fs.read(f, off, &mut buf).expect("read");
                self.read_ops += 1;
            } else {
                stack.fs.write(f, off, &wbuf).expect("write");
                self.write_ops += 1;
                if self.spec.fsync_every > 0 && self.write_ops.is_multiple_of(self.spec.fsync_every)
                {
                    stack.fs.fsync().expect("fsync");
                }
            }
            let _ = op;
        }
        stack.fs.fsync().expect("final fsync");
        m.finish(stack, self.write_ops.max(1))
    }

    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    pub fn read_ops(&self) -> u64 {
        self.read_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssim::stack::{build, StackConfig, System};

    fn spec(read_pct: u32) -> FioSpec {
        FioSpec {
            read_pct,
            file_bytes: 2 << 20,
            req_bytes: 4096,
            ops: 500,
            fsync_every: 32,
            seed: 42,
        }
    }

    #[test]
    fn runs_and_reports() {
        let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
        let mut fio = Fio::new(spec(50));
        fio.setup(&mut stack);
        let r = fio.run(&mut stack);
        assert!(r.ops > 0);
        assert!(r.sim_ns > 0);
        assert!(r.nvm.clflush > 0);
        let total = fio.write_ops() + fio.read_ops();
        assert_eq!(total, 500);
        // Ratio roughly honoured.
        let read_frac = fio.read_ops() as f64 / total as f64;
        assert!((0.4..0.6).contains(&read_frac), "read fraction {read_frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
            let mut fio = Fio::new(spec(30));
            fio.setup(&mut stack);
            let r = fio.run(&mut stack);
            (r.nvm.clflush, r.disk.writes, r.sim_ns)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pure_write_mix_has_no_reads() {
        let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
        let mut fio = Fio::new(spec(0));
        fio.setup(&mut stack);
        let _ = fio.run(&mut stack);
        assert_eq!(fio.read_ops(), 0);
        assert_eq!(fio.write_ops(), 500);
    }

    #[test]
    fn paper_spec_keeps_dataset_cache_ratio() {
        let s = FioSpec::paper(30, 128, 1000);
        assert_eq!(s.file_bytes, (20 << 30) / 128);
        assert_eq!(s.req_bytes, 4096);
    }
}
