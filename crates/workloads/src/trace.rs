//! Block-trace replay: run recorded (or synthesised) block-level I/O
//! against a stack — the standard way to evaluate a disk cache on
//! production workloads (the paper's related work evaluates caches on
//! MSR-Cambridge-style traces; no such traces ship with this repo, so a
//! seeded synthesiser with the same shape is provided).
//!
//! Trace format (text, one op per line, `#` comments):
//!
//! ```text
//! W,1024,8     # write 8 blocks starting at block 1024
//! R,52,1       # read 1 block at block 52
//! F            # fsync / barrier
//! ```

use fssim::stack::Stack;
use fssim::FileId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rand_util::Zipf;
use crate::report::{measure, RunReport};

/// One trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    Read { blk: u64, len: u32 },
    Write { blk: u64, len: u32 },
    Fsync,
}

/// Parse errors with line context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses the text trace format.
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, TraceParseError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| TraceParseError {
            line: i + 1,
            message,
        };
        let mut parts = line.split(',').map(str::trim);
        let kind = parts.next().unwrap_or("");
        match kind {
            "F" | "f" => ops.push(TraceOp::Fsync),
            "R" | "r" | "W" | "w" => {
                let blk: u64 = parts
                    .next()
                    .ok_or_else(|| err("missing block number".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad block number: {e}")))?;
                let len: u32 = parts
                    .next()
                    .ok_or_else(|| err("missing length".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad length: {e}")))?;
                if len == 0 {
                    return Err(err("zero-length op".into()));
                }
                if kind.eq_ignore_ascii_case("r") {
                    ops.push(TraceOp::Read { blk, len });
                } else {
                    ops.push(TraceOp::Write { blk, len });
                }
            }
            other => return Err(err(format!("unknown op kind {other:?}"))),
        }
    }
    Ok(ops)
}

/// Serialises ops back to the text format (for saving synthesised traces).
pub fn format_trace(ops: &[TraceOp]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            TraceOp::Read { blk, len } => out.push_str(&format!("R,{blk},{len}\n")),
            TraceOp::Write { blk, len } => out.push_str(&format!("W,{blk},{len}\n")),
            TraceOp::Fsync => out.push_str("F\n"),
        }
    }
    out
}

/// Parameters for the trace synthesiser (MSR-like shape: skewed block
/// popularity, mixed request sizes, periodic syncs).
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Address space in blocks.
    pub blocks: u64,
    /// Number of ops to generate.
    pub ops: usize,
    /// Percentage of reads.
    pub read_pct: u32,
    /// Zipf exponent of block popularity.
    pub theta: f64,
    /// Insert an `F` every this many writes (0 = never).
    pub fsync_every: u32,
    pub seed: u64,
}

/// Generates a synthetic trace with the given shape.
pub fn synthesize(spec: &TraceSpec) -> Vec<TraceOp> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Zipf over coarse regions keeps setup cheap for huge address spaces.
    let regions = 1024usize.min(spec.blocks as usize).max(1);
    let zipf = Zipf::new(regions, spec.theta);
    let region_blocks = (spec.blocks / regions as u64).max(1);
    let mut out = Vec::with_capacity(spec.ops);
    let mut writes_since_sync = 0u32;
    for _ in 0..spec.ops {
        let region = zipf.sample(&mut rng) as u64;
        let blk = (region * region_blocks + rng.gen_range(0..region_blocks)).min(spec.blocks - 1);
        let len = *[1u32, 1, 1, 2, 4, 8].get(rng.gen_range(0..6)).unwrap();
        let len = len.min((spec.blocks - blk) as u32).max(1);
        if rng.gen_range(0..100) < spec.read_pct {
            out.push(TraceOp::Read { blk, len });
        } else {
            out.push(TraceOp::Write { blk, len });
            writes_since_sync += 1;
            if spec.fsync_every > 0 && writes_since_sync >= spec.fsync_every {
                out.push(TraceOp::Fsync);
                writes_since_sync = 0;
            }
        }
    }
    out
}

/// Replays a trace against one big file in `stack`, returning the report
/// (`ops` counts trace records excluding fsyncs).
pub struct TraceReplayer {
    ops: Vec<TraceOp>,
    file: Option<FileId>,
    blocks: u64,
}

impl TraceReplayer {
    pub fn new(ops: Vec<TraceOp>) -> TraceReplayer {
        let blocks = ops
            .iter()
            .map(|op| match *op {
                TraceOp::Read { blk, len } | TraceOp::Write { blk, len } => blk + len as u64,
                TraceOp::Fsync => 0,
            })
            .max()
            .unwrap_or(1)
            .max(1);
        TraceReplayer {
            ops,
            file: None,
            blocks,
        }
    }

    /// Blocks the trace's address space spans.
    pub fn address_blocks(&self) -> u64 {
        self.blocks
    }

    /// Creates and pre-allocates the target file.
    pub fn setup(&mut self, stack: &mut Stack) {
        let f = stack.fs.create("trace.img").expect("create trace file");
        let chunk = vec![0x99u8; 256 * blockdev::BLOCK_SIZE];
        let total = self.blocks * blockdev::BLOCK_SIZE as u64;
        let mut off = 0u64;
        while off < total {
            let n = chunk.len().min((total - off) as usize);
            stack.fs.write(f, off, &chunk[..n]).expect("prealloc");
            off += n as u64;
        }
        stack.fs.fsync().expect("fsync");
        self.file = Some(f);
    }

    /// Replays the trace; returns the measurement report.
    pub fn run(&mut self, stack: &mut Stack) -> RunReport {
        let f = self.file.expect("setup() first");
        let bs = blockdev::BLOCK_SIZE as u64;
        let m = measure(stack, "trace replay");
        let mut io = 0u64;
        let mut buf = vec![0u8; 8 * blockdev::BLOCK_SIZE];
        for op in &self.ops {
            match *op {
                TraceOp::Read { blk, len } => {
                    let n = len as usize * blockdev::BLOCK_SIZE;
                    if buf.len() < n {
                        buf.resize(n, 0);
                    }
                    stack.fs.read(f, blk * bs, &mut buf[..n]).expect("read");
                    io += 1;
                }
                TraceOp::Write { blk, len } => {
                    let n = len as usize * blockdev::BLOCK_SIZE;
                    if buf.len() < n {
                        buf.resize(n, 0);
                    }
                    stack.fs.write(f, blk * bs, &buf[..n]).expect("write");
                    io += 1;
                }
                TraceOp::Fsync => stack.fs.fsync().expect("fsync"),
            }
        }
        stack.fs.fsync().expect("final fsync");
        m.finish(stack, io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssim::stack::{build, StackConfig, System};

    #[test]
    fn parse_round_trip() {
        let text = "# comment\nW,1024,8\nR,52,1\nF\n w , 3 , 2 # inline\n";
        let ops = parse_trace(text).unwrap();
        assert_eq!(
            ops,
            vec![
                TraceOp::Write { blk: 1024, len: 8 },
                TraceOp::Read { blk: 52, len: 1 },
                TraceOp::Fsync,
                TraceOp::Write { blk: 3, len: 2 },
            ]
        );
        let reparsed = parse_trace(&format_trace(&ops)).unwrap();
        assert_eq!(reparsed, ops);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_trace("W,1,1\nX,2,3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown op"));
        let e = parse_trace("R,notanumber,1").unwrap_err();
        assert!(e.message.contains("bad block number"));
        let e = parse_trace("W,5").unwrap_err();
        assert!(e.message.contains("missing length"));
        let e = parse_trace("W,5,0").unwrap_err();
        assert!(e.message.contains("zero-length"));
    }

    #[test]
    fn synthesiser_is_seeded_and_in_range() {
        let spec = TraceSpec {
            blocks: 500,
            ops: 2000,
            read_pct: 40,
            theta: 0.9,
            fsync_every: 32,
            seed: 5,
        };
        let a = synthesize(&spec);
        let b = synthesize(&spec);
        assert_eq!(a, b, "deterministic for a seed");
        assert!(a.iter().any(|o| matches!(o, TraceOp::Fsync)));
        for op in &a {
            if let TraceOp::Read { blk, len } | TraceOp::Write { blk, len } = *op {
                assert!(blk + len as u64 <= 500, "op out of range: {op:?}");
            }
        }
    }

    #[test]
    fn replay_runs_on_both_systems() {
        let spec = TraceSpec {
            blocks: 256,
            ops: 400,
            read_pct: 50,
            theta: 0.8,
            fsync_every: 16,
            seed: 9,
        };
        let ops = synthesize(&spec);
        for sys in [System::Tinca, System::Classic] {
            let mut stack = build(&StackConfig::tiny(sys)).unwrap();
            let mut replayer = TraceReplayer::new(ops.clone());
            replayer.setup(&mut stack);
            let r = replayer.run(&mut stack);
            assert!(r.ops > 0, "{}", sys.name());
            assert!(r.sim_ns > 0);
            stack.fs.check_consistency().unwrap();
        }
    }

    #[test]
    fn address_space_derived_from_ops() {
        let r = TraceReplayer::new(vec![TraceOp::Write { blk: 100, len: 4 }]);
        assert_eq!(r.address_blocks(), 104);
        let r = TraceReplayer::new(vec![TraceOp::Fsync]);
        assert_eq!(r.address_blocks(), 1);
    }
}
