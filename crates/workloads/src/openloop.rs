//! Open-loop serving tier: arrival-driven load with queue-wait accounting.
//!
//! Every other driver in this crate is **closed-loop**: each worker
//! issues an op, waits for it, and only then issues the next, so the
//! offered load adapts itself to the system's speed and queueing delay is
//! structurally invisible (`wall = max` in [`mtfio`](crate::mtfio)
//! assumes zero queue wait). Production traffic from 10^5–10^7
//! independent users is **open-loop**: arrivals happen on the wall clock
//! whether or not earlier requests finished, so when a shard saturates, a
//! backlog forms and *arrival-to-completion* latency — queue wait plus
//! service time — explodes while service time alone barely moves. This
//! module measures exactly that, on the simulated clock, with no
//! coordinated omission: every op is stamped with its arrival instant
//! when the stream is generated, never when the server got around to it.
//!
//! ## How queueing is modelled
//!
//! The tier is a discrete-event simulation driven single-threaded. Each
//! pool shard is one FIFO service station with its own simulated clock
//! (the shard's NVM clock — see `TincaPool::shard_clock`). Arrivals are
//! drawn in global time order from a seeded deterministic stream; for an
//! op arriving at `t`:
//!
//! 1. its shard's clock is advanced **up to** `t` if the shard is idle
//!    ([`nvmsim::SimClock::advance_to`] — idle time passes, so
//!    background-lane deadlines like destage expire during load gaps);
//! 2. service starts at `start = max(t, shard_now)` — a busy shard's
//!    clock is already past `t`, and the difference **is** the queue
//!    wait;
//! 3. the op executes against the cache, charging modelled device time
//!    to the shard clock; completion is the clock after the op.
//!
//! Latency = completion − arrival = queue wait + service time, recorded
//! into [`telemetry::Histogram`]s (p50/p99/p999).
//!
//! ## Admission control and backpressure
//!
//! A real serving tier sheds load rather than queue unboundedly. Two
//! policies, both accounted as explicit `Shed*` outcomes rather than
//! silently dropped: a **bounded per-shard queue** (`queue_cap` ops
//! queued + in service; arrivals beyond it are rejected) and an optional
//! **token-bucket limiter** in front of all shards (`rate` tokens/s,
//! `burst` capacity). Shed ops never touch the cache — the crash
//! campaign in `crashsim::backlog` proves a shed/queued backlog cannot
//! corrupt recovery.

use std::collections::VecDeque;

use blockdev::BLOCK_SIZE;
use nvmsim::SimClock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use telemetry::{phase, Histogram};
use tinca::TincaPool;

/// Arrival process of the open-loop stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrivals {
    /// Memoryless arrivals at `rate_ops_per_sec` (exponential
    /// inter-arrival gaps) — the aggregate of many independent users.
    Poisson { rate_ops_per_sec: f64 },
    /// On/off bursts: Poisson arrivals at `rate_ops_per_sec` during each
    /// `burst_ns` window, silence for `idle_ns`, repeating. The *average*
    /// offered rate is `rate · burst / (burst + idle)`.
    Bursty {
        rate_ops_per_sec: f64,
        burst_ns: u64,
        idle_ns: u64,
    },
}

impl Arrivals {
    fn rate(&self) -> f64 {
        match *self {
            Arrivals::Poisson { rate_ops_per_sec } => rate_ops_per_sec,
            Arrivals::Bursty {
                rate_ops_per_sec, ..
            } => rate_ops_per_sec,
        }
    }

    /// Long-run average offered rate (ops/s).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            Arrivals::Poisson { rate_ops_per_sec } => rate_ops_per_sec,
            Arrivals::Bursty {
                rate_ops_per_sec,
                burst_ns,
                idle_ns,
            } => rate_ops_per_sec * burst_ns as f64 / (burst_ns + idle_ns) as f64,
        }
    }
}

/// Token-bucket admission limiter shared by all shards.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TokenBucket {
    /// Sustained admission rate (tokens per second).
    pub rate_ops_per_sec: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: u64,
}

/// Parameters of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// Simulated user population (each arrival is stamped with a user id;
    /// the aggregate arrival process is what matters for queueing).
    pub users: u64,
    pub arrivals: Arrivals,
    /// Total arrivals to generate.
    pub ops: u64,
    /// Read percentage of the op mix.
    pub read_pct: u32,
    /// Addressable disk blocks.
    pub blocks: u64,
    /// Blocks per write transaction (shard-aligned, so every write
    /// commits atomically on one shard).
    pub txn_blocks: usize,
    /// Bounded per-shard queue: max ops queued + in service; `0` means
    /// unbounded (pure queueing, no shedding).
    pub queue_cap: usize,
    /// Optional token-bucket limiter in front of admission.
    pub limiter: Option<TokenBucket>,
    pub seed: u64,
}

impl OpenLoopSpec {
    /// A small deterministic smoke configuration at `rate` ops/s.
    pub fn smoke(rate: f64) -> OpenLoopSpec {
        OpenLoopSpec {
            users: 100_000,
            arrivals: Arrivals::Poisson {
                rate_ops_per_sec: rate,
            },
            ops: 400,
            read_pct: 30,
            blocks: 256,
            txn_blocks: 2,
            queue_cap: 0,
            limiter: None,
            seed: 0x0107,
        }
    }
}

/// One operation of the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpKind {
    Read {
        blk: u64,
    },
    /// A write transaction. All `blks` are congruent mod the shard count
    /// (single-shard, hence atomic); `seq` is the op's unique sequence
    /// number, encoded into the payload so crash oracles can attribute
    /// any recovered block to the exact write that produced it.
    Write {
        blks: Vec<u64>,
        seq: u64,
    },
}

/// One arrival: an op stamped with its arrival instant (relative to the
/// stream's origin) and originating user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time in ns since the stream origin.
    pub at_ns: u64,
    pub user: u64,
    pub kind: OpKind,
}

/// The 4 KB payload of write `seq` to block `blk`: a repeating
/// `(blk, seq)` little-endian pair, so any recovered block identifies
/// both its address and the exact write that produced it. `seq` starts
/// at 1; an all-zero block means "never written".
pub fn write_payload(blk: u64, seq: u64) -> [u8; BLOCK_SIZE] {
    let mut buf = [0u8; BLOCK_SIZE];
    for chunk in buf.chunks_exact_mut(16) {
        chunk[..8].copy_from_slice(&blk.to_le_bytes());
        chunk[8..].copy_from_slice(&seq.to_le_bytes());
    }
    buf
}

/// Deterministic arrival stream: same spec + shard count ⇒ bit-identical
/// sequence of `(at_ns, user, op)` on every run and platform.
pub struct ArrivalStream {
    rng: StdRng,
    arrivals: Arrivals,
    users: u64,
    read_pct: u32,
    blocks: u64,
    txn_blocks: usize,
    shards: u64,
    remaining: u64,
    /// Cumulative "active" (in-burst) time; bursty streams expand it onto
    /// the real timeline by re-inserting the idle windows.
    active_ns: f64,
    next_seq: u64,
}

impl ArrivalStream {
    pub fn new(spec: &OpenLoopSpec, shards: usize) -> ArrivalStream {
        assert!(spec.users >= 1);
        assert!(spec.arrivals.rate() > 0.0, "arrival rate must be positive");
        if let Arrivals::Bursty { burst_ns, .. } = spec.arrivals {
            assert!(burst_ns >= 1, "burst window must be non-empty");
        }
        assert!(shards >= 1);
        assert!(
            spec.blocks / shards as u64 >= spec.txn_blocks as u64,
            "each shard needs at least txn_blocks addressable blocks"
        );
        assert!((0..=100).contains(&spec.read_pct));
        ArrivalStream {
            rng: StdRng::seed_from_u64(spec.seed),
            arrivals: spec.arrivals,
            users: spec.users,
            read_pct: spec.read_pct,
            blocks: spec.blocks,
            txn_blocks: spec.txn_blocks,
            shards: shards as u64,
            remaining: spec.ops,
            active_ns: 0.0,
            next_seq: 1,
        }
    }

    /// Maps cumulative active time onto the real timeline.
    fn expand(&self, active: u64) -> u64 {
        match self.arrivals {
            Arrivals::Poisson { .. } => active,
            Arrivals::Bursty {
                burst_ns, idle_ns, ..
            } => (active / burst_ns) * (burst_ns + idle_ns) + active % burst_ns,
        }
    }
}

impl Iterator for ArrivalStream {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Exponential inter-arrival gap at the in-burst rate.
        let u: f64 = self.rng.gen();
        self.active_ns += -(1.0 - u).ln() / self.arrivals.rate() * 1e9;
        let at_ns = self.expand(self.active_ns as u64);
        let user = self.rng.gen_range(0..self.users);
        let kind = if self.rng.gen_range(0..100) < self.read_pct {
            OpKind::Read {
                blk: self.rng.gen_range(0..self.blocks),
            }
        } else {
            // Shard-aligned write: all blocks ≡ r (mod shards).
            let r = self.rng.gen_range(0..self.shards);
            let span = (self.blocks - r - 1) / self.shards + 1;
            let mut blks: Vec<u64> = Vec::with_capacity(self.txn_blocks);
            while blks.len() < self.txn_blocks {
                let b = self.rng.gen_range(0..span) * self.shards + r;
                if !blks.contains(&b) {
                    blks.push(b);
                }
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            OpKind::Write { blks, seq }
        };
        Some(Arrival { at_ns, user, kind })
    }
}

/// One shard-addressable service backend the open-loop driver can drive.
///
/// Implementations expose per-shard simulated clocks; `serve` must charge
/// the op's modelled device time to the serving shard's clock (that is
/// how service time is measured). Driving is single-threaded: the driver
/// owns the timeline.
pub trait OpenLoopServer {
    fn shards(&self) -> usize;
    /// The shard `op` routes to (every op is single-shard by
    /// construction).
    fn shard_of(&self, op: &OpKind) -> usize;
    /// Shard `s`'s current simulated time.
    fn now_ns(&self, s: usize) -> u64;
    /// Lets idle time pass on shard `s` up to `at_ns` (no-op if the shard
    /// clock is already past it).
    fn advance_to(&mut self, s: usize, at_ns: u64);
    /// Executes `op`, charging its device time to its shard's clock.
    fn serve(&mut self, op: &OpKind) -> Result<(), String>;
    /// Service slots per shard. `1` (the default) models a strict-FIFO
    /// single server: an op waits until the shard clock is free. A
    /// backend whose commit path admits several writers at once — the
    /// lock-free ring of `CommitMode::LockFreeRing` — returns its
    /// admission bound, and the driver lets up to that many ops be in
    /// service concurrently, so queue wait starts only when every slot
    /// is held.
    fn concurrency(&self, _s: usize) -> usize {
        1
    }
}

/// [`OpenLoopServer`] over a sharded [`TincaPool`].
///
/// Each shard's NVM clock is the service clock. The pool's backing disk
/// has its *own* clock (shared across shards); foreground disk time an op
/// causes (miss fill, synchronous writeback) is measured as the disk-
/// clock delta across `serve` and re-charged onto the serving shard's
/// clock — valid because driving is single-threaded, so any disk advance
/// during `serve` belongs to exactly this op. Background destage-lane
/// writebacks deliberately do not advance the disk clock, so they are
/// not double-charged here.
pub struct TincaServer<'a> {
    pool: &'a TincaPool,
    shard_clocks: Vec<SimClock>,
    disk_clock: SimClock,
    /// Per-shard service multiplicity, derived from the pool's commit
    /// mode (1 for the mutex path, the window-descriptor capacity for
    /// the lock-free ring).
    commit_concurrency: usize,
}

impl<'a> TincaServer<'a> {
    /// `disk_clock` is the clock the pool's backing `SimDisk` was built
    /// on.
    pub fn new(pool: &'a TincaPool, disk_clock: SimClock) -> TincaServer<'a> {
        let shard_clocks = (0..pool.shard_count())
            .map(|s| pool.shard_clock(s))
            .collect();
        TincaServer {
            pool,
            shard_clocks,
            disk_clock,
            commit_concurrency: pool.commit_concurrency(),
        }
    }

    /// Overrides the service multiplicity the pool's commit mode implies
    /// (e.g. to model a bounded writer pool narrower than the
    /// descriptor-table capacity).
    pub fn with_commit_concurrency(mut self, c: usize) -> TincaServer<'a> {
        assert!(c >= 1, "a shard serves at least one op at a time");
        self.commit_concurrency = c;
        self
    }
}

impl OpenLoopServer for TincaServer<'_> {
    fn shards(&self) -> usize {
        self.shard_clocks.len()
    }

    fn shard_of(&self, op: &OpKind) -> usize {
        match op {
            OpKind::Read { blk } => self.pool.shard_of(*blk),
            OpKind::Write { blks, .. } => self.pool.shard_of(blks[0]),
        }
    }

    fn now_ns(&self, s: usize) -> u64 {
        self.shard_clocks[s].now_ns()
    }

    fn advance_to(&mut self, s: usize, at_ns: u64) {
        self.shard_clocks[s].advance_to(at_ns);
    }

    fn serve(&mut self, op: &OpKind) -> Result<(), String> {
        let s = self.shard_of(op);
        let disk0 = self.disk_clock.now_ns();
        match op {
            OpKind::Read { blk } => {
                let mut buf = [0u8; BLOCK_SIZE];
                self.pool.read(*blk, &mut buf).map_err(|e| e.to_string())?;
            }
            OpKind::Write { blks, seq } => {
                let mut txn = self.pool.init_txn();
                for &b in blks {
                    txn.write(b, &write_payload(b, *seq));
                }
                self.pool.commit(txn).map_err(|e| e.to_string())?;
            }
        }
        let disk_ns = self.disk_clock.now_ns().saturating_sub(disk0);
        if disk_ns > 0 {
            self.shard_clocks[s].advance(disk_ns);
        }
        Ok(())
    }

    fn concurrency(&self, _s: usize) -> usize {
        self.commit_concurrency
    }
}

/// [`OpenLoopServer`] over the Classic+JBD2 baseline: `S` independent
/// Ext4-like stacks (one per shard, mirroring the pool's symmetric
/// sharding), one data file each. A write transaction writes its blocks
/// and `fsync`s once — the same durable-op granularity as one Tinca
/// commit. Each stack's unified clock is the shard clock.
pub struct ClassicServer {
    stacks: Vec<fssim::stack::Stack>,
    files: Vec<fssim::FileId>,
}

impl ClassicServer {
    pub fn new(shards: usize, cfg: &fssim::stack::StackConfig) -> ClassicServer {
        assert!(matches!(cfg.system, fssim::stack::System::Classic));
        let mut stacks = Vec::with_capacity(shards);
        let mut files = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut stack = fssim::stack::build(cfg).expect("classic stack build");
            let f = stack.fs.create("data").expect("create data file");
            stacks.push(stack);
            files.push(f);
        }
        ClassicServer { stacks, files }
    }

    fn offset_of(&self, blk: u64) -> u64 {
        (blk / self.stacks.len() as u64) * BLOCK_SIZE as u64
    }
}

impl OpenLoopServer for ClassicServer {
    fn shards(&self) -> usize {
        self.stacks.len()
    }

    fn shard_of(&self, op: &OpKind) -> usize {
        let blk = match op {
            OpKind::Read { blk } => *blk,
            OpKind::Write { blks, .. } => blks[0],
        };
        (blk % self.stacks.len() as u64) as usize
    }

    fn now_ns(&self, s: usize) -> u64 {
        self.stacks[s].clock.now_ns()
    }

    fn advance_to(&mut self, s: usize, at_ns: u64) {
        self.stacks[s].clock.advance_to(at_ns);
    }

    fn serve(&mut self, op: &OpKind) -> Result<(), String> {
        let s = self.shard_of(op);
        let ino = self.files[s];
        match op {
            OpKind::Read { blk } => {
                let off = self.offset_of(*blk);
                let mut buf = [0u8; BLOCK_SIZE];
                // Short/empty reads of never-written offsets are valid.
                self.stacks[s]
                    .fs
                    .read(ino, off, &mut buf)
                    .map_err(|e| e.to_string())?;
            }
            OpKind::Write { blks, seq } => {
                for &b in blks {
                    let off = self.offset_of(b);
                    self.stacks[s]
                        .fs
                        .write(ino, off, &write_payload(b, *seq))
                        .map_err(|e| e.to_string())?;
                }
                // Durability parity with a Tinca commit.
                self.stacks[s].fs.fsync().map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }
}

/// Outcome of admitting (or shedding) one arrival.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    Completed {
        shard: usize,
        /// Absolute arrival instant on the simulated timeline.
        arrival_ns: u64,
        queue_wait_ns: u64,
        service_ns: u64,
    },
    /// Rejected: the shard's bounded queue was full at arrival.
    ShedQueueFull { shard: usize },
    /// Rejected: the token bucket was empty at arrival.
    ShedThrottled { shard: usize },
}

/// Aggregate of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    pub shards: usize,
    pub users: u64,
    /// Arrivals generated (admitted + shed).
    pub offered: u64,
    /// Ops served to completion.
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_throttled: u64,
    pub reads: u64,
    pub writes: u64,
    /// Timeline span: first arrival's origin → max(last arrival, last
    /// completion).
    pub horizon_ns: u64,
    /// Arrival-to-completion latency (queue wait + service).
    pub latency: Histogram,
    pub queue_wait: Histogram,
    pub service: Histogram,
    /// Per-shard arrival-to-completion latency (legitimately empty for a
    /// shard that only shed).
    pub shard_latency: Vec<Histogram>,
}

impl OpenLoopReport {
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_throttled
    }

    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed() as f64 / self.offered as f64
    }

    fn per_sec(&self, n: u64) -> f64 {
        if self.horizon_ns == 0 {
            return 0.0;
        }
        n as f64 / (self.horizon_ns as f64 / 1e9)
    }

    /// Measured offered rate over the run's horizon.
    pub fn offered_ops_per_sec(&self) -> f64 {
        self.per_sec(self.offered)
    }

    /// Completions per second — the delivered-throughput axis of the
    /// knee curve.
    pub fn delivered_ops_per_sec(&self) -> f64 {
        self.per_sec(self.completed)
    }

    pub fn p50(&self) -> Option<u64> {
        self.latency.p50()
    }

    pub fn p99(&self) -> Option<u64> {
        self.latency.p99()
    }

    pub fn p999(&self) -> Option<u64> {
        self.latency.p999()
    }
}

/// The open-loop driver: pulls the arrival stream in time order and
/// plays it against an [`OpenLoopServer`], one discrete event per
/// arrival.
///
/// Exposed stepwise (not just as one `run`) so crash campaigns can
/// inject a crash mid-backlog and inspect [`Self::current`] — the op in
/// flight when the server panicked.
pub struct OpenLoopDriver<S: OpenLoopServer> {
    pub server: S,
    spec: OpenLoopSpec,
    stream: ArrivalStream,
    /// Global timeline origin: the latest shard clock at construction.
    t0: u64,
    /// Per-shard completion times of admitted ops not yet finished at the
    /// head arrival (queued + in service) — the bounded queue.
    outstanding: Vec<VecDeque<u64>>,
    tokens: f64,
    last_refill_ns: u64,
    /// The arrival being served right now (set across the `serve` call);
    /// after a crash-trip panic this is the op that was mid-commit.
    pub current: Option<Arrival>,
    offered: u64,
    completed: u64,
    shed_queue_full: u64,
    shed_throttled: u64,
    reads: u64,
    writes: u64,
    last_arrival_ns: u64,
    max_done_ns: u64,
    latency: Histogram,
    queue_wait: Histogram,
    service: Histogram,
    shard_latency: Vec<Histogram>,
}

impl<S: OpenLoopServer> OpenLoopDriver<S> {
    pub fn new(spec: OpenLoopSpec, server: S) -> OpenLoopDriver<S> {
        let shards = server.shards();
        let stream = ArrivalStream::new(&spec, shards);
        let t0 = (0..shards).map(|s| server.now_ns(s)).max().unwrap_or(0);
        let tokens = spec.limiter.map_or(0.0, |tb| tb.burst as f64);
        OpenLoopDriver {
            server,
            spec,
            stream,
            t0,
            outstanding: vec![VecDeque::new(); shards],
            tokens,
            last_refill_ns: t0,
            current: None,
            offered: 0,
            completed: 0,
            shed_queue_full: 0,
            shed_throttled: 0,
            reads: 0,
            writes: 0,
            last_arrival_ns: t0,
            max_done_ns: t0,
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
            service: Histogram::new(),
            shard_latency: vec![Histogram::new(); shards],
        }
    }

    /// Admits (or sheds) the next arrival; `None` when the stream is
    /// exhausted.
    pub fn step(&mut self) -> Option<StepOutcome> {
        let a = self.stream.next()?;
        let at = self.t0 + a.at_ns;
        self.offered += 1;
        self.last_arrival_ns = self.last_arrival_ns.max(at);
        let s = self.server.shard_of(&a.kind);

        // Completions up to this arrival leave the queue.
        let q = &mut self.outstanding[s];
        while q.front().is_some_and(|&done| done <= at) {
            q.pop_front();
        }

        // Token bucket, then bounded queue — both before any cache work.
        if let Some(tb) = self.spec.limiter {
            let dt = at.saturating_sub(self.last_refill_ns);
            self.tokens =
                (self.tokens + dt as f64 / 1e9 * tb.rate_ops_per_sec).min(tb.burst as f64);
            self.last_refill_ns = at;
            if self.tokens < 1.0 {
                self.shed_throttled += 1;
                telemetry::mark(phase::OPENLOOP_SHED, 1);
                return Some(StepOutcome::ShedThrottled { shard: s });
            }
            self.tokens -= 1.0;
        }
        if self.spec.queue_cap > 0 && self.outstanding[s].len() >= self.spec.queue_cap {
            self.shed_queue_full += 1;
            telemetry::mark(phase::OPENLOOP_SHED, 1);
            return Some(StepOutcome::ShedQueueFull { shard: s });
        }

        // Idle time (if any) passes; a busy shard's clock is already
        // ahead of `at`.
        let c = self.server.concurrency(s);
        self.server.advance_to(s, at);
        let start = self.server.now_ns(s);
        self.current = Some(a.clone());
        self.server
            .serve(&a.kind)
            .expect("open-loop workloads run fault-free");
        self.current = None;
        let done = self.server.now_ns(s);
        let service_ns = done - start;

        // With one service slot the shard clock *is* the server: the gap
        // between arrival and clock is the queue wait, and the
        // clock-stamped completion is the op's. With `c` slots — the
        // concurrent commit path — service still charges the shared shard
        // clock (it is the device), but an op only queues while all `c`
        // slots are held: it starts when the oldest of the `c` most
        // recent outstanding completions frees a slot (no strict FIFO on
        // the clock), and its modelled completion is that start plus its
        // own service time.
        let q = &mut self.outstanding[s];
        let (queue_wait_ns, done_model) = if c <= 1 {
            (start - at, done)
        } else {
            let slot_free = if q.len() < c { at } else { q[q.len() - c] };
            let begin = at.max(slot_free);
            (begin - at, begin + service_ns)
        };
        // Completions are no longer monotone under c > 1 (a short op can
        // finish before an earlier long one); keep the deque sorted.
        let pos = q.partition_point(|&d| d <= done_model);
        q.insert(pos, done_model);

        let latency_ns = queue_wait_ns + service_ns;
        self.completed += 1;
        match a.kind {
            OpKind::Read { .. } => self.reads += 1,
            OpKind::Write { .. } => self.writes += 1,
        }
        self.max_done_ns = self.max_done_ns.max(done).max(done_model);
        self.latency.record(latency_ns);
        self.queue_wait.record(queue_wait_ns);
        self.service.record(service_ns);
        self.shard_latency[s].record(latency_ns);
        telemetry::observe(phase::OPENLOOP_LATENCY, latency_ns);
        telemetry::observe(phase::OPENLOOP_QUEUE_WAIT, queue_wait_ns);
        telemetry::observe(phase::OPENLOOP_SERVICE, service_ns);
        Some(StepOutcome::Completed {
            shard: s,
            arrival_ns: at,
            queue_wait_ns,
            service_ns,
        })
    }

    /// Plays the whole stream and returns the report.
    pub fn run(mut self) -> OpenLoopReport {
        while self.step().is_some() {}
        self.into_report()
    }

    /// Finishes early (crash campaigns) or after [`Self::run`]'s loop.
    pub fn into_report(self) -> OpenLoopReport {
        OpenLoopReport {
            shards: self.shard_latency.len(),
            users: self.spec.users,
            offered: self.offered,
            completed: self.completed,
            shed_queue_full: self.shed_queue_full,
            shed_throttled: self.shed_throttled,
            reads: self.reads,
            writes: self.writes,
            horizon_ns: self.last_arrival_ns.max(self.max_done_ns) - self.t0,
            latency: self.latency,
            queue_wait: self.queue_wait,
            service: self.service,
            shard_latency: self.shard_latency,
        }
    }
}

/// Estimates a server's aggregate service capacity (ops/s) by serving
/// `ops` back-to-back ops from `spec`'s mix with zero think time:
/// `capacity ≈ ops · shards / Σ shard busy time`. Mutates the server
/// (clocks advance, caches warm) — probe a scratch instance, or probe
/// first and treat it as warm-up.
pub fn probe_capacity<S: OpenLoopServer>(server: &mut S, spec: &OpenLoopSpec, ops: u64) -> f64 {
    let shards = server.shards();
    let before: Vec<u64> = (0..shards).map(|s| server.now_ns(s)).collect();
    let stream = ArrivalStream::new(spec, shards);
    let mut served = 0u64;
    for a in stream.take(ops as usize) {
        server.serve(&a.kind).expect("capacity probe is fault-free");
        served += 1;
    }
    let busy: u64 = (0..shards).map(|s| server.now_ns(s) - before[s]).sum();
    if busy == 0 {
        return f64::INFINITY;
    }
    served as f64 * shards as f64 / (busy as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{DiskKind, SimDisk};
    use fssim::stack::{StackConfig, System};
    use nvmsim::{shard_devices, NvmConfig, NvmTech};
    use tinca::{PoolConfig, TincaConfig};

    fn make_pool(shards: usize) -> (TincaPool, SimClock) {
        let devices = shard_devices(&NvmConfig::new(shards * (2 << 20), NvmTech::Pcm), shards);
        let disk_clock = SimClock::new();
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, disk_clock.clone());
        let pool = TincaPool::format(
            devices,
            disk,
            PoolConfig {
                shards,
                cache: TincaConfig {
                    ring_bytes: 4096,
                    ..TincaConfig::default()
                },
                ..PoolConfig::default()
            },
        );
        (pool, disk_clock)
    }

    #[test]
    fn stream_is_deterministic_and_time_ordered() {
        let spec = OpenLoopSpec::smoke(50_000.0);
        let a: Vec<Arrival> = ArrivalStream::new(&spec, 4).collect();
        let b: Vec<Arrival> = ArrivalStream::new(&spec, 4).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.ops as usize);
        for w in a.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns, "arrivals out of order");
        }
    }

    #[test]
    fn writes_are_shard_aligned_and_seqs_unique() {
        let spec = OpenLoopSpec::smoke(50_000.0);
        let mut seqs = std::collections::HashSet::new();
        for a in ArrivalStream::new(&spec, 4) {
            if let OpKind::Write { blks, seq } = a.kind {
                assert!(seqs.insert(seq), "duplicate write seq {seq}");
                assert!(blks.iter().all(|b| b % 4 == blks[0] % 4));
                assert!(blks.iter().all(|b| *b < spec.blocks));
                let mut d = blks.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), blks.len(), "duplicate block in txn");
            }
        }
    }

    #[test]
    fn bursty_stream_respects_idle_windows() {
        let spec = OpenLoopSpec {
            arrivals: Arrivals::Bursty {
                rate_ops_per_sec: 100_000.0,
                burst_ns: 1_000_000,
                idle_ns: 4_000_000,
            },
            ..OpenLoopSpec::smoke(0.0)
        };
        let arrivals: Vec<Arrival> = ArrivalStream::new(&spec, 2).collect();
        assert_eq!(arrivals.len(), spec.ops as usize);
        for a in &arrivals {
            assert!(
                a.at_ns % 5_000_000 < 1_000_000,
                "arrival at {} inside an idle window",
                a.at_ns
            );
        }
        // Mean-rate bookkeeping: 100k in-burst at 1/5 duty cycle.
        assert!((spec.arrivals.mean_rate() - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn underloaded_run_has_negligible_queue_wait() {
        let (pool, disk_clock) = make_pool(2);
        let server = TincaServer::new(&pool, disk_clock);
        // 1k ops/s against a cache serving in ~µs: essentially idle.
        let r = OpenLoopDriver::new(OpenLoopSpec::smoke(1_000.0), server).run();
        assert_eq!(r.offered, 400);
        assert_eq!(r.completed, 400);
        assert_eq!(r.shed(), 0);
        assert!(r.reads > 0 && r.writes > 0);
        // Nearly every op finds its shard idle.
        assert_eq!(r.queue_wait.p50(), Some(0), "p50 queue wait must be 0");
        assert!(r.p999().unwrap() >= r.service.p50().unwrap());
        pool.check_consistency().unwrap();
    }

    #[test]
    fn overload_builds_queue_wait_and_tail() {
        let (pool, disk_clock) = make_pool(2);
        let server = TincaServer::new(&pool, disk_clock);
        let quiet = OpenLoopDriver::new(OpenLoopSpec::smoke(1_000.0), server).run();

        let (pool2, disk_clock2) = make_pool(2);
        let server2 = TincaServer::new(&pool2, disk_clock2);
        // Far past capacity: the backlog grows without bound, so
        // arrival-to-completion latency dwarfs service time.
        let hot = OpenLoopDriver::new(OpenLoopSpec::smoke(100_000_000.0), server2).run();
        assert_eq!(hot.completed, hot.offered, "unbounded queue never sheds");
        assert!(
            hot.queue_wait.p99().unwrap() > 10 * hot.service.p99().unwrap(),
            "overload queue wait {} should dwarf service {}",
            hot.queue_wait.p99().unwrap(),
            hot.service.p99().unwrap()
        );
        assert!(hot.p999().unwrap() > quiet.p999().unwrap());
        // Every op completes (unbounded queue), but only long after the
        // arrival window closed: the horizon is completion-bound, so the
        // delivered rate sits far below the configured offered rate.
        assert!(hot.delivered_ops_per_sec() < 0.5 * 100_000_000.0);
    }

    fn make_mw_pool(shards: usize) -> (TincaPool, SimClock) {
        let devices = shard_devices(&NvmConfig::new(shards * (2 << 20), NvmTech::Pcm), shards);
        let disk_clock = SimClock::new();
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, disk_clock.clone());
        let pool = TincaPool::format(
            devices,
            disk,
            PoolConfig {
                shards,
                commit_mode: tinca::CommitMode::LockFreeRing,
                cache: TincaConfig {
                    ring_bytes: 4096,
                    ..TincaConfig::default()
                },
                ..PoolConfig::default()
            },
        );
        (pool, disk_clock)
    }

    #[test]
    fn concurrent_commit_path_cuts_overload_queue_wait() {
        // Same overload against both commit modes. The mutex pool is a
        // strict-FIFO single server per shard, so queue wait stacks up
        // one full service time per backlogged op; the lock-free ring
        // admits a window per writer, and the driver's multi-slot model
        // lets ops wait only for a slot, not for every earlier op.
        let (mutex_pool, mutex_clk) = make_pool(2);
        let mutex_server = TincaServer::new(&mutex_pool, mutex_clk);
        assert_eq!(mutex_server.concurrency(0), 1);
        let mutex = OpenLoopDriver::new(OpenLoopSpec::smoke(100_000_000.0), mutex_server).run();

        let (mw_pool, mw_clk) = make_mw_pool(2);
        let mw_server = TincaServer::new(&mw_pool, mw_clk);
        assert!(mw_server.concurrency(0) > 1, "ring mode must widen service");
        let mw = OpenLoopDriver::new(OpenLoopSpec::smoke(100_000_000.0), mw_server).run();

        assert_eq!(mw.completed, mw.offered);
        assert_eq!(mw.reads + mw.writes, mutex.reads + mutex.writes);
        let (mw_p99, mutex_p99) = (
            mw.queue_wait.p99().unwrap(),
            mutex.queue_wait.p99().unwrap(),
        );
        assert!(
            mw_p99 * 4 < mutex_p99,
            "concurrent path p99 wait {mw_p99} should sit far below mutex {mutex_p99}"
        );
        mw_pool.check_consistency().unwrap();
    }

    #[test]
    fn narrowed_concurrency_degrades_to_fifo_model() {
        // Forcing one slot on a lock-free-ring pool reproduces the
        // strict-FIFO queue-wait accounting: latency == wait + service
        // with completions stamped straight off the shard clock.
        let (pool, clk) = make_mw_pool(1);
        let server = TincaServer::new(&pool, clk).with_commit_concurrency(1);
        assert_eq!(server.concurrency(0), 1);
        let r = OpenLoopDriver::new(OpenLoopSpec::smoke(1_000.0), server).run();
        assert_eq!(r.completed, r.offered);
        assert_eq!(r.queue_wait.p50(), Some(0));
        pool.check_consistency().unwrap();
    }

    #[test]
    fn bounded_queue_sheds_under_overload() {
        let (pool, disk_clock) = make_pool(2);
        let server = TincaServer::new(&pool, disk_clock);
        let spec = OpenLoopSpec {
            queue_cap: 4,
            ..OpenLoopSpec::smoke(100_000_000.0)
        };
        let r = OpenLoopDriver::new(spec, server).run();
        assert!(r.shed_queue_full > 0, "overload must shed");
        assert_eq!(r.shed_throttled, 0);
        assert_eq!(r.completed + r.shed(), r.offered);
        // The bounded queue caps the tail: wait ≤ cap · max service.
        let cap_wait = 4 * r.service.max().unwrap();
        assert!(r.queue_wait.max().unwrap() <= cap_wait);
        pool.check_consistency().unwrap();
    }

    #[test]
    fn token_bucket_throttles_to_its_rate() {
        let (pool, disk_clock) = make_pool(2);
        let server = TincaServer::new(&pool, disk_clock);
        let spec = OpenLoopSpec {
            limiter: Some(TokenBucket {
                rate_ops_per_sec: 10_000.0,
                burst: 8,
            }),
            ..OpenLoopSpec::smoke(100_000.0)
        };
        let r = OpenLoopDriver::new(spec, server).run();
        assert!(r.shed_throttled > 0, "10:1 overadmission must throttle");
        assert_eq!(r.shed_queue_full, 0);
        // Admitted ≈ rate · horizon + burst, well under offered.
        let admitted = r.completed as f64;
        let budget = 10_000.0 * (r.horizon_ns as f64 / 1e9) + 8.0;
        assert!(admitted <= budget * 1.05, "{admitted} > {budget}");
        assert!(r.shed_fraction() > 0.5);
    }

    #[test]
    fn classic_server_serves_and_persists() {
        let server = ClassicServer::new(2, &StackConfig::tiny(System::Classic));
        let spec = OpenLoopSpec {
            blocks: 64,
            ops: 60,
            ..OpenLoopSpec::smoke(1_000.0)
        };
        let r = OpenLoopDriver::new(spec, server).run();
        assert_eq!(r.completed, 60);
        assert!(r.writes > 0);
        assert!(r.p99().is_some());
    }

    #[test]
    fn probe_capacity_is_positive_and_finite() {
        let (pool, disk_clock) = make_pool(2);
        let mut server = TincaServer::new(&pool, disk_clock);
        let cap = probe_capacity(&mut server, &OpenLoopSpec::smoke(1_000.0), 100);
        assert!(cap.is_finite() && cap > 0.0, "capacity {cap}");
    }
}
