//! Skewed samplers: Zipf (Filebench file popularity) and TPC-C's NURand.

use rand::rngs::StdRng;
use rand::Rng;

/// Zipf-distributed sampler over `0..n` with exponent `theta`, using a
/// precomputed CDF (O(n) setup, O(log n) sampling). Filebench's file-set
/// accesses and web-proxy popularity follow this shape.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// TPC-C NURand(A, x, y): non-uniform random over `[x, y]` (TPC-C spec
/// §2.1.6) — the hot-item skew of the OLTP workload.
pub fn nurand(rng: &mut StdRng, a: u64, c: u64, x: u64, y: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_towards_head() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0usize;
        let samples = 20_000;
        for _ in 0..samples {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Top 10% of items should draw far more than 10% of accesses.
        assert!(
            head as f64 / samples as f64 > 0.4,
            "head share {head}/{samples}"
        );
    }

    #[test]
    fn zipf_covers_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..5000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all items reachable");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 1023, 7, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mut buckets = [0u32; 10];
        for _ in 0..n {
            let v = nurand(&mut rng, 255, 13, 0, 999);
            buckets[(v / 100) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap() as f64;
        let min = *buckets.iter().min().unwrap() as f64;
        assert!(max / min > 1.2, "should be visibly skewed: {buckets:?}");
    }
}
