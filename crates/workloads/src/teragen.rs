//! TeraGen-like generator (§5.3.1): sequential 100-byte rows appended to
//! chunked output files — the pure-write stream the paper uses to stress
//! the replication pipeline of HDFS.

use fssim::stack::Stack;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{measure, RunReport};

/// TeraGen parameters.
#[derive(Clone, Debug)]
pub struct TeraGenSpec {
    /// Total bytes to generate (paper: 100 GB across the cluster).
    pub total_bytes: u64,
    /// Bytes per row (paper: 100 B per row).
    pub row_bytes: usize,
    /// Output chunk size — a new file starts at this boundary (HDFS block
    /// 128 MB scaled down).
    pub chunk_bytes: u64,
    /// Rows buffered per FS write call (client-side buffering).
    pub rows_per_write: usize,
    pub seed: u64,
}

impl TeraGenSpec {
    pub fn scaled(total_bytes: u64) -> TeraGenSpec {
        TeraGenSpec {
            total_bytes,
            row_bytes: 100,
            chunk_bytes: 2 << 20,
            rows_per_write: 160, // 16 000 B ≈ 4 blocks per call
            seed: 0x7E7A,
        }
    }
}

/// A TeraGen run writing into some stack.
pub struct TeraGen {
    spec: TeraGenSpec,
    rng: StdRng,
    bytes_written: u64,
}

impl TeraGen {
    pub fn new(spec: TeraGenSpec) -> TeraGen {
        let rng = StdRng::seed_from_u64(spec.seed);
        TeraGen {
            spec,
            rng,
            bytes_written: 0,
        }
    }

    /// Generates the dataset; `ops` in the report counts MB written
    /// (Fig. 10 normalises per MB). Returns (report, execution seconds).
    pub fn run(&mut self, stack: &mut Stack) -> RunReport {
        let m = measure(stack, "teragen");
        let write_bytes = self.spec.row_bytes * self.spec.rows_per_write;
        let mut row_buf = vec![0u8; write_bytes];
        let mut chunk_idx = 0u32;
        let mut file = stack
            .fs
            .create(&format!("teragen-{chunk_idx:04}"))
            .expect("create");
        let mut in_chunk = 0u64;
        while self.bytes_written < self.spec.total_bytes {
            if in_chunk >= self.spec.chunk_bytes {
                stack.fs.fsync().expect("chunk fsync");
                chunk_idx += 1;
                file = stack
                    .fs
                    .create(&format!("teragen-{chunk_idx:04}"))
                    .expect("create");
                in_chunk = 0;
            }
            // TeraGen rows: random key, patterned payload.
            self.rng.fill(&mut row_buf[..]);
            let n = write_bytes.min((self.spec.total_bytes - self.bytes_written) as usize);
            stack.fs.append(file, &row_buf[..n]).expect("append");
            self.bytes_written += n as u64;
            in_chunk += n as u64;
        }
        stack.fs.fsync().expect("final fsync");
        let mb = self.bytes_written / (1 << 20);
        m.finish(stack, mb.max(1))
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssim::stack::{build, StackConfig, System};

    #[test]
    fn generates_exact_volume_across_chunks() {
        let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
        let mut tg = TeraGen::new(TeraGenSpec {
            total_bytes: 3 << 20,
            row_bytes: 100,
            chunk_bytes: 1 << 20,
            rows_per_write: 160,
            seed: 1,
        });
        let r = tg.run(&mut stack);
        assert_eq!(tg.bytes_written(), 3 << 20);
        assert_eq!(r.ops, 3); // MB
                              // 3 chunks + the initial file: at least 3 files exist.
        assert!(stack.fs.file_count() >= 3);
        stack.fs.check_consistency().unwrap();
    }

    #[test]
    fn pure_write_workload() {
        let mut stack = build(&StackConfig::tiny(System::Classic)).unwrap();
        let mut tg = TeraGen::new(TeraGenSpec::scaled(1 << 20));
        let r = tg.run(&mut stack);
        assert_eq!(r.fs.read_ops, 0, "TeraGen never reads");
        assert!(r.fs.bytes_written >= 1 << 20);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
            let mut tg = TeraGen::new(TeraGenSpec::scaled(1 << 20));
            let r = tg.run(&mut stack);
            (r.nvm.clflush, r.sim_ns)
        };
        assert_eq!(run(), run());
    }
}
