//! Measurement plumbing: snapshot device counters around a measured phase
//! and derive the per-op metrics the paper's figures report.

use blockdev::{BlockDevice, DiskStats};
use fssim::stack::Stack;
use fssim::{CacheSnapshot, FsStats};
use nvmsim::NvmStats;

/// A before/after measurement window over one stack.
pub struct Measurement {
    label: String,
    t0: u64,
    nvm0: NvmStats,
    disk0: DiskStats,
    fs0: FsStats,
    cache0: CacheSnapshot,
}

/// Opens a measurement window on `stack`.
pub fn measure(stack: &Stack, label: &str) -> Measurement {
    Measurement {
        label: label.to_string(),
        t0: stack.clock.now_ns(),
        nvm0: stack.nvm.stats(),
        disk0: stack.disk.stats(),
        fs0: stack.fs.stats(),
        cache0: stack.fs.backend().cache_snapshot(),
    }
}

impl Measurement {
    /// Closes the window; `ops` is the number of measured operations
    /// (write ops, file ops, or transactions — whatever the figure
    /// normalises by).
    pub fn finish(self, stack: &Stack, ops: u64) -> RunReport {
        RunReport {
            label: self.label,
            ops,
            sim_ns: stack.clock.now_ns() - self.t0,
            nvm: stack.nvm.stats().delta(&self.nvm0),
            disk: stack.disk.stats().delta(&self.disk0),
            fs: stack.fs.stats().delta(&self.fs0),
            cache: stack.fs.backend().cache_snapshot().delta(&self.cache0),
        }
    }
}

/// Deltas over one measured phase, plus derived metrics.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub label: String,
    pub ops: u64,
    pub sim_ns: u64,
    pub nvm: NvmStats,
    pub disk: DiskStats,
    pub fs: FsStats,
    pub cache: CacheSnapshot,
}

impl RunReport {
    /// Operations per simulated second (IOPS / OPs/s).
    pub fn ops_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            return 0.0;
        }
        self.ops as f64 / (self.sim_ns as f64 / 1e9)
    }

    /// Operations per simulated minute (the TPM of Fig. 8).
    pub fn ops_per_min(&self) -> f64 {
        self.ops_per_sec() * 60.0
    }

    /// `clflush` executions per operation (Figs. 7(b), 8(b), 11(b)).
    pub fn clflush_per_op(&self) -> f64 {
        self.nvm.clflush as f64 / self.ops.max(1) as f64
    }

    /// Disk blocks written per operation (Figs. 7(c), 8(c), 11(c)).
    pub fn disk_writes_per_op(&self) -> f64 {
        self.disk.writes as f64 / self.ops.max(1) as f64
    }

    /// MB written back to the NVM medium (Fig. 3(a)'s write traffic).
    pub fn nvm_mb_written(&self) -> f64 {
        self.nvm.bytes_written_back() as f64 / (1 << 20) as f64
    }

    /// Application bandwidth in MB/s over the measured phase (Fig. 3(b)).
    pub fn app_write_mb_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            return 0.0;
        }
        self.fs.bytes_written as f64 / (1 << 20) as f64 / (self.sim_ns as f64 / 1e9)
    }

    /// `clflush` per MB of application data (Fig. 10(b)).
    pub fn clflush_per_mb(&self) -> f64 {
        let mb = self.fs.bytes_written as f64 / (1 << 20) as f64;
        if mb == 0.0 {
            return 0.0;
        }
        self.nvm.clflush as f64 / mb
    }

    /// Disk blocks written per MB of application data (Fig. 10(c)).
    pub fn disk_writes_per_mb(&self) -> f64 {
        let mb = self.fs.bytes_written as f64 / (1 << 20) as f64;
        if mb == 0.0 {
            return 0.0;
        }
        self.disk.writes as f64 / mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ops: u64, sim_ns: u64) -> RunReport {
        RunReport {
            label: "t".into(),
            ops,
            sim_ns,
            nvm: NvmStats {
                clflush: 640,
                ..Default::default()
            },
            disk: DiskStats {
                writes: 20,
                ..Default::default()
            },
            fs: FsStats {
                bytes_written: 2 << 20,
                ..Default::default()
            },
            cache: CacheSnapshot::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report(10, 1_000_000_000);
        assert_eq!(r.ops_per_sec(), 10.0);
        assert_eq!(r.ops_per_min(), 600.0);
        assert_eq!(r.clflush_per_op(), 64.0);
        assert_eq!(r.disk_writes_per_op(), 2.0);
        assert_eq!(r.clflush_per_mb(), 320.0);
        assert_eq!(r.disk_writes_per_mb(), 10.0);
    }

    #[test]
    fn zero_guards() {
        let r = report(0, 0);
        assert_eq!(r.ops_per_sec(), 0.0);
        assert_eq!(r.app_write_mb_per_sec(), 0.0);
    }
}
