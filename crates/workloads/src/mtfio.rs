//! Multi-threaded Fio-like driver over a sharded [`TincaPool`].
//!
//! The paper drives its prototype with multi-threaded Fio (Table 2); the
//! single-threaded [`fio`](crate::fio) module exercises one stack from one
//! thread. This driver spawns `threads` OS threads against one pool, each
//! with its own seeded RNG stream, issuing random 4 KB block reads and
//! multi-block transactional writes.
//!
//! ## Time model
//!
//! Each pool shard owns an independent [`nvmsim::SimClock`]: shards model disjoint
//! NVM sub-regions that serve flushes concurrently. The report therefore
//! exposes two durations:
//!
//! * `wall_ns` — the **maximum** per-shard clock advance: simulated
//!   wall-clock time assuming perfect shard parallelism;
//! * `busy_ns` — the **sum** of per-shard advances: total device-busy
//!   time, which equals wall time for a single shard.
//!
//! `wall = max` assumes one service context per shard — i.e. zero queue
//! wait on the shard mutexes. When `threads > shards` that is
//! optimistic: excess threads serialise on the shard locks but the model
//! still credits them with perfect parallelism. The report therefore also
//! carries `contended_wall_ns`, a list-scheduling (Graham-bound) estimate
//! that caps parallelism at `min(threads, shards)` service contexts:
//! `min(busy, busy / p + wall)`. It degrades exactly to `busy_ns` for one
//! thread and to `wall_ns` when threads ≥ shards keeps every shard busy.
//!
//! **Which one figures use:** the closed-loop throughput/scaling figures
//! (`scaling`, `phases`) plot `ops_per_sec()` over `wall_ns` — the
//! model's idealised shard-parallel time, consistent across PRs.
//! `contended_ops_per_sec()` over `contended_wall_ns` is the honest lower
//! bound quoted alongside it when `threads > shards`. Queue wait is only
//! *measured* (not bounded) by the open-loop tier
//! ([`openloop`](crate::openloop)), which stamps arrivals and records
//! wait explicitly.
//!
//! ## Multi-writer contention mode
//!
//! [`MtFio::run`] measures *shard*-level parallelism: excess threads on
//! one shard still serialise behind its commit mutex. When the pool runs
//! [`tinca::CommitMode::LockFreeRing`],
//! [`MtFio::run_multi_writer`] instead drives true
//! *intra-shard* write concurrency through the steppable window API —
//! several logical writers hold reserved windows on the **same** shard
//! at once, stage on private clocks, and retire through one sequencer
//! round. Because the interleaving is scripted on a single OS thread, the
//! run is deterministic, which is what mode-vs-mode comparisons (the
//! `mw_scaling` figure) require.

use blockdev::BLOCK_SIZE;
use nvmsim::NvmStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinca::{CacheStats, MwAdmission, MwTicket, TincaPool};

/// Parameters for one multi-threaded run.
#[derive(Clone, Debug)]
pub struct MtFioSpec {
    /// Worker threads.
    pub threads: usize,
    /// Read percentage of the operation mix (paper: 30/50/70).
    pub read_pct: u32,
    /// Addressable disk blocks (dataset size / 4 KB).
    pub blocks: u64,
    /// Operations per thread (an op is one read or one committed txn).
    pub ops_per_thread: u64,
    /// Blocks staged per write transaction.
    pub txn_blocks: usize,
    pub seed: u64,
}

impl MtFioSpec {
    /// A small smoke configuration at `threads` workers.
    pub fn smoke(threads: usize) -> MtFioSpec {
        MtFioSpec {
            threads,
            read_pct: 30,
            blocks: 512,
            ops_per_thread: 200,
            txn_blocks: 2,
            seed: 0x3710,
        }
    }
}

/// Merged counters over one multi-threaded measured phase.
#[derive(Clone, Debug)]
pub struct MtReport {
    pub threads: usize,
    pub shards: usize,
    /// Read operations completed (all threads).
    pub read_ops: u64,
    /// Write transactions committed (all threads).
    pub write_txns: u64,
    /// Max per-shard simulated-clock advance (parallel wall time).
    pub wall_ns: u64,
    /// Sum of per-shard clock advances (device-busy time).
    pub busy_ns: u64,
    /// Contention-aware wall-time upper bound: list-scheduling estimate
    /// with parallelism capped at `min(threads, shards)`. See the module
    /// docs for when figures use this instead of `wall_ns`.
    pub contended_wall_ns: u64,
    /// NVM counters summed over shards.
    pub nvm: NvmStats,
    /// Cache counters summed over shards.
    pub cache: CacheStats,
}

impl MtReport {
    /// Total operations (reads + committed transactions).
    pub fn ops(&self) -> u64 {
        self.read_ops + self.write_txns
    }

    /// Operations per simulated second of parallel wall time (`wall_ns`,
    /// the idealised zero-queue-wait model the scaling figures plot).
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.ops() as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Operations per simulated second of *contended* wall time — the
    /// conservative companion number for runs where `threads > shards`
    /// (threads queue on the shard mutexes; `wall = max` hides that).
    pub fn contended_ops_per_sec(&self) -> f64 {
        if self.contended_wall_ns == 0 {
            return 0.0;
        }
        self.ops() as f64 / (self.contended_wall_ns as f64 / 1e9)
    }

    /// `clflush` executions per committed transaction (the flushes/txn
    /// series of the scaling figure; group commit drives this down).
    pub fn flushes_per_txn(&self) -> f64 {
        self.nvm.clflush as f64 / self.write_txns.max(1) as f64
    }

    /// Fraction of committed transactions that rode a multi-transaction
    /// ring commit.
    pub fn batched_fraction(&self) -> f64 {
        let committed = (self.cache.commits - self.cache.group_commits) + self.cache.batched_txns;
        if committed == 0 {
            return 0.0;
        }
        self.cache.batched_txns as f64 / committed as f64
    }
}

/// Per-shard clock/counter snapshot taken before a measured phase, so the
/// report only covers the phase's own charges.
struct Baseline {
    nvm0: Vec<NvmStats>,
    clk0: Vec<u64>,
    cache0: CacheStats,
}

impl Baseline {
    fn take(pool: &TincaPool) -> Baseline {
        let shards = pool.shard_count();
        Baseline {
            nvm0: (0..shards)
                .map(|s| pool.with_shard(s, |c| c.nvm().stats()))
                .collect(),
            clk0: (0..shards)
                .map(|s| pool.with_shard(s, |c| c.nvm().clock().now_ns()))
                .collect(),
            cache0: pool.stats(),
        }
    }
}

/// The driver. Stateless between runs; everything lives in the spec.
pub struct MtFio {
    spec: MtFioSpec,
}

impl MtFio {
    pub fn new(spec: MtFioSpec) -> MtFio {
        assert!(spec.threads >= 1, "need at least one thread");
        assert!(spec.txn_blocks >= 1, "transactions stage at least a block");
        assert!(spec.blocks >= spec.txn_blocks as u64);
        MtFio { spec }
    }

    /// Pre-commits every `warm_blocks` block so the measured phase sees a
    /// populated cache (mirrors `Fio::setup`'s pre-allocation).
    pub fn setup(&self, pool: &TincaPool, warm_blocks: u64) {
        let payload = [0x66u8; BLOCK_SIZE];
        for b in 0..warm_blocks.min(self.spec.blocks) {
            let mut t = pool.init_txn();
            t.write(b, &payload);
            pool.commit(t).expect("warm-up commit");
        }
    }

    /// Runs the measured phase: `threads` workers over `pool`, each with a
    /// decorrelated RNG stream, and returns the merged report.
    pub fn run(&self, pool: &TincaPool) -> MtReport {
        let base = Baseline::take(pool);
        let spec = &self.spec;
        let mut totals: Vec<(u64, u64)> = Vec::with_capacity(spec.threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spec.threads)
                .map(|t| {
                    scope.spawn(move || {
                        // Stamp a stable trace-thread id well above the
                        // lazily assigned range, so per-shard event traces
                        // carry unambiguous provenance for the race rules.
                        nvmsim::set_trace_thread(1000 + t as u32);
                        // SplitMix-style stream decorrelation per thread.
                        let stream = spec
                            .seed
                            .wrapping_add((t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        let mut rng = StdRng::seed_from_u64(stream);
                        let mut wbuf = [0u8; BLOCK_SIZE];
                        let mut reads = 0u64;
                        let mut txns = 0u64;
                        let mut rbuf = [0u8; BLOCK_SIZE];
                        for _ in 0..spec.ops_per_thread {
                            if rng.gen_range(0..100) < spec.read_pct {
                                let b = rng.gen_range(0..spec.blocks);
                                pool.read(b, &mut rbuf)
                                    .expect("workload disk is fault-free");
                                reads += 1;
                            } else {
                                let mut txn = pool.init_txn();
                                for _ in 0..spec.txn_blocks {
                                    let b = rng.gen_range(0..spec.blocks);
                                    wbuf.fill(rng.gen());
                                    txn.write(b, &wbuf);
                                }
                                pool.commit(txn).expect("mtfio commit");
                                txns += 1;
                            }
                        }
                        (reads, txns)
                    })
                })
                .collect();
            for h in handles {
                totals.push(h.join().expect("worker thread"));
            }
        });

        let read_ops = totals.iter().map(|(r, _)| r).sum();
        let write_txns = totals.iter().map(|(_, w)| w).sum();
        self.finish(pool, base, read_ops, write_txns)
    }

    /// Runs the measured phase in **multi-writer contention mode**: the
    /// pool must run [`tinca::CommitMode::LockFreeRing`], and
    /// `spec.threads` *logical* writers are interleaved deterministically
    /// on one OS thread through the steppable window API
    /// (`mw_try_begin` → `mw_stage` → `mw_publish` → `mw_sequence`).
    ///
    /// Writer `w` targets shard `w % shards` with a block lane disjoint
    /// from every other writer's, so admissions never conflict and each
    /// round genuinely overlaps `ceil(threads / shards)` windows per
    /// shard: staging charges land on private clocks and only the
    /// sequencer's single fence-and-`Head`-store round serialises on the
    /// shard clock. Publish order rotates per round to exercise
    /// out-of-ring-order publication. Unlike [`run`](Self::run) this is
    /// bit-for-bit deterministic (no OS-thread interleaving), which is
    /// what the `mw_scaling` figure needs to compare modes.
    pub fn run_multi_writer(&self, pool: &TincaPool) -> MtReport {
        let base = Baseline::take(pool);
        let spec = &self.spec;
        let shards = pool.shard_count();
        let writers = spec.threads;
        // Writer w owns the blocks `s + shards * (lane + wps * k)` for
        // k in 0..per: all route to shard s = w % shards, and distinct
        // writers own disjoint sets, so concurrent windows never touch
        // the same disk block.
        let wps = writers.div_ceil(shards) as u64;
        let per = (spec.blocks / writers as u64).max(spec.txn_blocks as u64);
        let block_of = |w: usize, k: u64| -> u64 {
            let s = (w % shards) as u64;
            let lane = (w / shards) as u64;
            s + shards as u64 * (lane + wps * (k % per))
        };

        let mut rngs: Vec<StdRng> = (0..writers)
            .map(|w| {
                let stream = spec
                    .seed
                    .wrapping_add((w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                StdRng::seed_from_u64(stream)
            })
            .collect();

        let mut read_ops = 0u64;
        let mut write_txns = 0u64;
        let mut wbuf = [0u8; BLOCK_SIZE];
        let mut rbuf = [0u8; BLOCK_SIZE];
        for round in 0..spec.ops_per_thread {
            // One reserved-and-staged window per writing writer this
            // round, each tagged with its owner's trace id: the owner
            // publishes its own window, exactly as real concurrent
            // writers would.
            let mut pending: Vec<(u32, MwTicket)> = Vec::new();
            for (w, rng) in rngs.iter_mut().enumerate() {
                // Distinct trace ids per logical writer (above the OS-thread
                // range `run` uses) keep per-shard event provenance honest.
                nvmsim::set_trace_thread(2000 + w as u32);
                if rng.gen_range(0..100) < spec.read_pct {
                    let b = block_of(w, rng.gen_range(0..per));
                    pool.read(b, &mut rbuf)
                        .expect("workload disk is fault-free");
                    read_ops += 1;
                    continue;
                }
                let mut txn = pool.init_txn();
                for _ in 0..spec.txn_blocks {
                    let b = block_of(w, rng.gen_range(0..per));
                    wbuf.fill(rng.gen());
                    txn.write(b, &wbuf);
                }
                // Lanes are disjoint, so Busy only ever means ring or
                // descriptor capacity — retiring the round's windows
                // frees it.
                let mut spins = 0;
                loop {
                    match pool.mw_try_begin(txn).expect("mw admission") {
                        MwAdmission::Admitted(mut ticket) => {
                            pool.mw_stage(&mut ticket);
                            pending.push((2000 + w as u32, ticket));
                            write_txns += 1;
                            break;
                        }
                        MwAdmission::Busy(t) => {
                            txn = t;
                            Self::mw_flush_round(pool, &mut pending, round as usize);
                            spins += 1;
                            assert!(spins < 64, "mw admission stuck on capacity");
                        }
                    }
                }
            }
            Self::mw_flush_round(pool, &mut pending, round as usize);
        }
        self.finish(pool, base, read_ops, write_txns)
    }

    /// Replays the **exact** multi-writer lane workload through the
    /// blocking commit path: same writer RNG streams, same blocks, same
    /// fill values, same round-robin writer order — only the commit
    /// mechanism differs. The `mw_scaling` figure prices the lock-free
    /// pipeline against mutex+leader/follower on identical work with
    /// this. One OS thread drives the round-robin, so the mutex path
    /// sees no follower batching — it pays the full serialised
    /// per-transaction cost, the same c = 1 service model the open-loop
    /// tier uses for `MutexGroup`.
    pub fn run_lanes_blocking(&self, pool: &TincaPool) -> MtReport {
        let base = Baseline::take(pool);
        let spec = &self.spec;
        let shards = pool.shard_count();
        let writers = spec.threads;
        let wps = writers.div_ceil(shards) as u64;
        let per = (spec.blocks / writers as u64).max(spec.txn_blocks as u64);
        let block_of = |w: usize, k: u64| -> u64 {
            let s = (w % shards) as u64;
            let lane = (w / shards) as u64;
            s + shards as u64 * (lane + wps * (k % per))
        };
        let mut rngs: Vec<StdRng> = (0..writers)
            .map(|w| {
                let stream = spec
                    .seed
                    .wrapping_add((w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                StdRng::seed_from_u64(stream)
            })
            .collect();
        let mut read_ops = 0u64;
        let mut write_txns = 0u64;
        let mut wbuf = [0u8; BLOCK_SIZE];
        let mut rbuf = [0u8; BLOCK_SIZE];
        for _round in 0..spec.ops_per_thread {
            for (w, rng) in rngs.iter_mut().enumerate() {
                nvmsim::set_trace_thread(2000 + w as u32);
                if rng.gen_range(0..100) < spec.read_pct {
                    let b = block_of(w, rng.gen_range(0..per));
                    pool.read(b, &mut rbuf)
                        .expect("workload disk is fault-free");
                    read_ops += 1;
                    continue;
                }
                let mut txn = pool.init_txn();
                for _ in 0..spec.txn_blocks {
                    let b = block_of(w, rng.gen_range(0..per));
                    wbuf.fill(rng.gen());
                    txn.write(b, &wbuf);
                }
                pool.commit(txn).expect("lane workload commit");
                write_txns += 1;
            }
        }
        self.finish(pool, base, read_ops, write_txns)
    }

    /// Publishes the round's staged windows — in an order rotated by
    /// `round`, so later ring windows regularly publish first — and runs
    /// the sequencer on every touched shard until it retires nothing.
    ///
    /// Every publish runs under the *owning* writer's trace id (a
    /// publish is the owner's release-store, not the round-driver's),
    /// so the merged-trace HB audit sees each window's reservation and
    /// publication on one thread and the cross-thread edges only where
    /// the protocol really has them: publish release → sequencer
    /// acquire. The sequencer rounds keep the last publisher's id — any
    /// writer may win the combiner role.
    fn mw_flush_round(pool: &TincaPool, pending: &mut Vec<(u32, MwTicket)>, round: usize) {
        if pending.is_empty() {
            return;
        }
        let rot = round % pending.len();
        pending.rotate_left(rot);
        let mut touched: Vec<usize> = Vec::new();
        for (owner, ticket) in pending.drain(..) {
            if !touched.contains(&ticket.shard()) {
                touched.push(ticket.shard());
            }
            nvmsim::set_trace_thread(owner);
            pool.mw_publish(ticket);
        }
        for s in touched {
            while pool.mw_sequence(s) > 0 {}
        }
    }

    /// Shared epilogue: per-shard clock/counter deltas merged into the
    /// report. See the module docs for the wall/busy/contended model.
    fn finish(&self, pool: &TincaPool, base: Baseline, read_ops: u64, write_txns: u64) -> MtReport {
        let spec = &self.spec;
        let shards = pool.shard_count();
        let mut wall_ns = 0u64;
        let mut busy_ns = 0u64;
        let mut nvm = NvmStats::default();
        for s in 0..shards {
            let d = pool.with_shard(s, |c| c.nvm().clock().now_ns()) - base.clk0[s];
            wall_ns = wall_ns.max(d);
            busy_ns += d;
            nvm = nvm.merge(&pool.with_shard(s, |c| c.nvm().stats()).delta(&base.nvm0[s]));
        }
        // Graham/list-scheduling bound with p = min(threads, shards)
        // service contexts: any schedule finishes within busy/p + the
        // longest single chain (≤ wall). Never worse than fully serial.
        let p = spec.threads.min(shards).max(1) as u64;
        let contended_wall_ns = busy_ns.min(busy_ns / p + wall_ns);
        MtReport {
            threads: spec.threads,
            shards,
            read_ops,
            write_txns,
            wall_ns,
            busy_ns,
            contended_wall_ns,
            nvm,
            cache: pool.stats().delta(&base.cache0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{DiskKind, SimDisk};
    use nvmsim::{shard_devices, NvmConfig, NvmTech, SimClock};
    use tinca::{PoolConfig, TincaConfig};

    fn make_pool(shards: usize) -> TincaPool {
        let devices = shard_devices(&NvmConfig::new(8 << 20, NvmTech::Pcm), shards);
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
        TincaPool::format(
            devices,
            disk,
            PoolConfig {
                shards,
                cache: TincaConfig {
                    ring_bytes: 4096,
                    ..TincaConfig::default()
                },
                ..PoolConfig::default()
            },
        )
    }

    #[test]
    fn single_thread_run_reports_exact_op_counts() {
        let pool = make_pool(1);
        let fio = MtFio::new(MtFioSpec::smoke(1));
        fio.setup(&pool, 64);
        let r = fio.run(&pool);
        assert_eq!(r.ops(), 200);
        assert_eq!(r.read_ops + r.write_txns, 200);
        assert!(r.write_txns > 0 && r.read_ops > 0);
        assert!(r.wall_ns > 0);
        assert_eq!(r.wall_ns, r.busy_ns, "one shard: wall == busy");
        assert_eq!(
            r.contended_wall_ns, r.busy_ns,
            "one thread is fully serial: contended == busy"
        );
        assert!(r.nvm.clflush > 0);
        assert!(r.flushes_per_txn() > 0.0);
        pool.check_consistency().unwrap();
    }

    #[test]
    fn multi_thread_run_on_sharded_pool() {
        let pool = make_pool(4);
        let fio = MtFio::new(MtFioSpec::smoke(4));
        fio.setup(&pool, 64);
        let r = fio.run(&pool);
        assert_eq!(r.ops(), 4 * 200);
        assert_eq!(r.shards, 4);
        assert!(r.wall_ns > 0);
        assert!(r.busy_ns >= r.wall_ns, "busy time sums over shards");
        assert!(r.ops_per_sec() > 0.0);
        // The contended estimate sits between the idealised parallel wall
        // and the fully serial busy time, so the honest throughput bound
        // is never above the model's.
        assert!(r.contended_wall_ns >= r.wall_ns);
        assert!(r.contended_wall_ns <= r.busy_ns);
        assert!(r.contended_ops_per_sec() <= r.ops_per_sec());
        assert!(r.contended_ops_per_sec() > 0.0);
        pool.check_consistency().unwrap();
        // Commit accounting stays sane under concurrency: every committed
        // txn fragment rode exactly one ring commit, and a spanning txn
        // contributes one fragment per shard it touches.
        let c = r.cache;
        let fragments = (c.commits - c.group_commits) + c.batched_txns;
        assert!(fragments >= r.write_txns, "{fragments} < {}", r.write_txns);
        assert_eq!(c.failed_commits, 0);
    }

    #[test]
    fn one_thread_over_many_shards_has_serial_contended_wall() {
        // The idealised model credits 4-shard parallelism (wall = max)
        // even though one thread serialises everything — the exact
        // conflation the contended bound corrects.
        let pool = make_pool(4);
        let fio = MtFio::new(MtFioSpec::smoke(1));
        fio.setup(&pool, 64);
        let r = fio.run(&pool);
        assert_eq!(r.threads, 1);
        assert_eq!(r.shards, 4);
        assert!(r.wall_ns < r.busy_ns, "model claims shard parallelism");
        assert_eq!(
            r.contended_wall_ns, r.busy_ns,
            "p = min(threads, shards) = 1 must degrade to serial time"
        );
    }

    fn make_mw_pool(shards: usize) -> TincaPool {
        let devices = shard_devices(&NvmConfig::new(8 << 20, NvmTech::Pcm), shards);
        let disk = SimDisk::new(DiskKind::Ssd, 16 << 20, SimClock::new());
        TincaPool::format(
            devices,
            disk,
            PoolConfig {
                shards,
                commit_mode: tinca::CommitMode::LockFreeRing,
                cache: TincaConfig {
                    ring_bytes: 4096,
                    ..TincaConfig::default()
                },
                ..PoolConfig::default()
            },
        )
    }

    #[test]
    fn multi_writer_single_writer_reports_exact_counts() {
        let pool = make_mw_pool(1);
        let fio = MtFio::new(MtFioSpec {
            read_pct: 30,
            ..MtFioSpec::smoke(1)
        });
        let r = fio.run_multi_writer(&pool);
        assert_eq!(r.ops(), 200);
        assert!(r.read_ops > 0 && r.write_txns > 0);
        assert_eq!(r.cache.commits, r.write_txns);
        assert_eq!(r.cache.failed_commits, 0);
        assert!(r.wall_ns > 0);
        pool.check_consistency().unwrap();
        pool.flush_all().unwrap();
    }

    #[test]
    fn multi_writer_contends_on_one_shard_and_groups_commits() {
        let pool = make_mw_pool(1);
        let fio = MtFio::new(MtFioSpec {
            threads: 8,
            read_pct: 0,
            blocks: 512,
            ops_per_thread: 40,
            txn_blocks: 2,
            seed: 0x3711,
        });
        let r = fio.run_multi_writer(&pool);
        assert_eq!(r.write_txns, 8 * 40);
        assert_eq!(r.cache.commits, r.write_txns);
        assert_eq!(r.cache.failed_commits, 0);
        // Eight windows per round share each sequencer round's fence and
        // Head store, so nearly every txn rides a multi-window commit.
        assert!(r.cache.group_commits > 0, "windows must batch per round");
        assert!(r.batched_fraction() > 0.5, "{}", r.batched_fraction());
        pool.check_consistency().unwrap();
        pool.flush_all().unwrap();
    }

    #[test]
    fn multi_writer_is_deterministic() {
        let spec = MtFioSpec {
            threads: 6,
            read_pct: 20,
            blocks: 384,
            ops_per_thread: 25,
            txn_blocks: 2,
            seed: 0x3712,
        };
        let run = || {
            let pool = make_mw_pool(2);
            let r = MtFio::new(spec.clone()).run_multi_writer(&pool);
            (r.wall_ns, r.busy_ns, r.nvm.clflush, r.cache.commits)
        };
        assert_eq!(run(), run(), "scripted interleaving must be replayable");
    }

    #[test]
    fn multi_writer_overlap_beats_mutex_serialisation() {
        // Same write-only contention shape — 8 writers on one shard —
        // under both commit modes. The lock-free ring stages the eight
        // windows of each round on private clocks, so its simulated wall
        // time must beat the mutex path, where every staging charge
        // serialises on the shard clock.
        let spec = MtFioSpec {
            threads: 8,
            read_pct: 0,
            blocks: 512,
            ops_per_thread: 40,
            txn_blocks: 4,
            seed: 0x3713,
        };
        let mw_pool = make_mw_pool(1);
        let mw = MtFio::new(spec.clone()).run_multi_writer(&mw_pool);

        let mutex_pool = make_pool(1);
        let mutex = MtFio::new(spec).run(&mutex_pool);

        assert_eq!(mw.write_txns, mutex.write_txns);
        assert!(
            mw.wall_ns < mutex.wall_ns,
            "lock-free {} ns must beat mutex {} ns",
            mw.wall_ns,
            mutex.wall_ns
        );
    }

    #[test]
    fn read_mix_is_roughly_honoured() {
        let pool = make_pool(2);
        let fio = MtFio::new(MtFioSpec {
            threads: 2,
            read_pct: 50,
            ..MtFioSpec::smoke(2)
        });
        fio.setup(&pool, 128);
        let r = fio.run(&pool);
        let frac = r.read_ops as f64 / r.ops() as f64;
        assert!((0.35..0.65).contains(&frac), "read fraction {frac}");
    }
}
