//! Table 2 of the paper: the benchmark roster, both at paper scale and at
//! this reproduction's default scale (÷128 on dataset sizes, op-count
//! bounded instead of wall-clock bounded).

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct BenchmarkRow {
    pub tier: &'static str,
    pub benchmark: &'static str,
    pub rw_ratio: &'static str,
    pub request_size: &'static str,
    pub paper_dataset: &'static str,
    /// Dataset at the default full-size harness scale (32 MB local NVM
    /// cache / 8 MB per cluster node; paper ratios preserved).
    pub scaled_dataset: &'static str,
    pub description: &'static str,
}

/// The full Table 2 roster.
pub fn table2() -> Vec<BenchmarkRow> {
    vec![
        BenchmarkRow {
            tier: "Local",
            benchmark: "Fio",
            rw_ratio: "3/7, 5/5, 7/3",
            request_size: "4KB",
            paper_dataset: "20GB",
            scaled_dataset: "80MB (2.5x cache)",
            description: "Varied ratios of mixed random write and read",
        },
        BenchmarkRow {
            tier: "Local",
            benchmark: "TPC-C",
            rw_ratio: "Typical TPC-C",
            request_size: "Typical TPC-C",
            paper_dataset: "32GB",
            scaled_dataset: "128MB (4x cache)",
            description: "OLTP workload issued by HammerDB to MySQL",
        },
        BenchmarkRow {
            tier: "Cluster",
            benchmark: "TeraGen",
            rw_ratio: "All Writes",
            request_size: "100B per row",
            paper_dataset: "100GB",
            scaled_dataset: "32MB (4x node cache)",
            description: "A generator that creates input data for TeraSort",
        },
        BenchmarkRow {
            tier: "Cluster",
            benchmark: "Filebench Fileserver",
            rw_ratio: "1/2",
            request_size: "16KB",
            paper_dataset: "51.2GB",
            scaled_dataset: "32MB pool (4x node cache)",
            description: "File server operating on a large number of files",
        },
        BenchmarkRow {
            tier: "Cluster",
            benchmark: "Filebench Webproxy",
            rw_ratio: "5/1",
            request_size: "16KB",
            paper_dataset: "32GB",
            scaled_dataset: "32MB pool (4x node cache)",
            description: "Web proxy server in the Internet",
        },
        BenchmarkRow {
            tier: "Cluster",
            benchmark: "Filebench Varmail",
            rw_ratio: "1/1",
            request_size: "16KB",
            paper_dataset: "32GB",
            scaled_dataset: "32MB pool (4x node cache)",
            description: "Email server operating on a large number of emails",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_benchmarks_as_in_the_paper() {
        let rows = table2();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows.iter().filter(|r| r.tier == "Local").count(), 2);
        assert_eq!(rows.iter().filter(|r| r.tier == "Cluster").count(), 4);
    }
}
