// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! Property-based tests: the cache must behave exactly like a flat
//! key→value store over (disk block → payload), under arbitrary
//! interleavings of commits, reads, evictions, recoveries and crashes.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{CrashPolicy, CrashTripped, NvmConfig, NvmDevice, NvmTech, SimClock};
use proptest::prelude::*;
use tinca::{TincaCache, TincaConfig};

const NVM_BYTES: usize = 512 << 10; // small: forces eviction pressure
const RING_BYTES: usize = 4096;
const BLOCK_SPACE: u64 = 256; // disk blocks the generator draws from

fn cfg() -> TincaConfig {
    TincaConfig {
        ring_bytes: RING_BYTES,
        ..TincaConfig::default()
    }
}

fn fresh() -> (nvmsim::Nvm, blockdev::Disk, TincaCache) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(NVM_BYTES, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let cache = TincaCache::format(nvm.clone(), disk.clone(), cfg());
    (nvm, disk, cache)
}

fn blk(byte: u8) -> [u8; BLOCK_SIZE] {
    [byte; BLOCK_SIZE]
}

#[derive(Clone, Debug)]
enum Op {
    /// Commit a transaction of (block, fill byte) writes.
    Commit(Vec<(u64, u8)>),
    /// Read a block and check it against the model.
    Read(u64),
    /// Drop the cache, (optionally) crash the device, recover.
    Restart { crash_seed: Option<u64> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => proptest::collection::vec((0..BLOCK_SPACE, any::<u8>()), 1..12).prop_map(Op::Commit),
        3 => (0..BLOCK_SPACE).prop_map(Op::Read),
        1 => proptest::option::of(any::<u64>()).prop_map(|crash_seed| Op::Restart { crash_seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// After any op sequence (including crashes *between* commits and
    /// recoveries), every committed value is readable and the cache
    /// invariants hold.
    #[test]
    fn cache_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let (nvm, disk, mut cache) = fresh();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Commit(writes) => {
                    let mut txn = cache.init_txn();
                    for (b, v) in &writes {
                        txn.write(*b, &blk(*v));
                    }
                    cache.commit(&txn).unwrap();
                    for (b, v) in writes {
                        model.insert(b, v);
                    }
                }
                Op::Read(b) => {
                    let mut buf = [0u8; BLOCK_SIZE];
                    cache.read(b, &mut buf).unwrap();
                    let want = model.get(&b).copied().unwrap_or(0);
                    prop_assert_eq!(buf, blk(want), "read mismatch on block {}", b);
                }
                Op::Restart { crash_seed } => {
                    drop(cache);
                    match crash_seed {
                        Some(s) => nvm.crash(CrashPolicy::Random(s)),
                        None => nvm.crash(CrashPolicy::LoseVolatile),
                    }
                    cache = TincaCache::recover(nvm.clone(), disk.clone(), cfg()).unwrap();
                    cache.check_consistency().map_err(|e| {
                        TestCaseError::fail(format!("inconsistent after restart: {e}"))
                    })?;
                }
            }
        }
        cache.check_consistency().map_err(TestCaseError::fail)?;
        // Final sweep: the full model must be readable.
        let mut buf = [0u8; BLOCK_SIZE];
        for (&b, &v) in &model {
            cache.read(b, &mut buf).unwrap();
            prop_assert_eq!(buf, blk(v), "final sweep mismatch on block {}", b);
        }
    }

    /// Crash at a random event inside a random commit: the transaction is
    /// atomic and all previously committed data survives.
    #[test]
    fn random_crash_point_atomicity(
        pre in proptest::collection::vec((0..64u64, 1..=250u8), 1..10),
        txn_writes in proptest::collection::vec(0..64u64, 1..10),
        trip in 1..400u64,
        seed in any::<u64>(),
    ) {
        quiet_crash_panics();
        let (nvm, disk, mut cache) = fresh();
        let mut model: HashMap<u64, u8> = HashMap::new();
        // Pre-populate with committed data.
        let mut seed_txn = cache.init_txn();
        for (b, v) in &pre {
            seed_txn.write(*b, &blk(*v));
            model.insert(*b, *v);
        }
        cache.commit(&seed_txn).unwrap();

        // The crashing transaction writes 255 everywhere it touches.
        let mut txn = cache.init_txn();
        let mut touched: Vec<u64> = vec![];
        for b in txn_writes {
            txn.write(b, &blk(255));
            if !touched.contains(&b) {
                touched.push(b);
            }
        }
        nvm.set_trip(Some(trip));
        let outcome = catch_unwind(AssertUnwindSafe(|| cache.commit(&txn)));
        nvm.set_trip(None);
        let committed = matches!(outcome, Ok(Ok(())));
        drop(cache);
        nvm.crash(CrashPolicy::Random(seed));

        let rec = TincaCache::recover(nvm, disk, cfg()).unwrap();
        rec.check_consistency().map_err(TestCaseError::fail)?;

        let mut buf = [0u8; BLOCK_SIZE];
        let versions: Vec<(u64, u8)> = touched
            .iter()
            .map(|&b| {
                rec.read_nocache(b, &mut buf).unwrap();
                prop_assert!(buf.iter().all(|&x| x == buf[0]), "torn payload");
                Ok((b, buf[0]))
            })
            .collect::<Result<_, TestCaseError>>()?;
        let all_new = versions.iter().all(|&(_, v)| v == 255);
        let all_old = versions
            .iter()
            .all(|&(b, v)| v == model.get(&b).copied().unwrap_or(0));
        prop_assert!(all_old || all_new, "torn txn at trip {}: {:?}", trip, versions);
        if committed {
            prop_assert!(all_new, "committed txn lost at trip {}", trip);
        }
        // Blocks untouched by the crashing txn keep their committed values.
        for (&b, &v) in model.iter().filter(|(b, _)| !touched.contains(b)) {
            rec.read_nocache(b, &mut buf).unwrap();
            prop_assert_eq!(buf, blk(v), "unrelated block {} damaged", b);
        }
    }
}

fn quiet_crash_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashTripped>().is_none() {
                default(info);
            }
        }));
    });
}
