// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! The batched-ring optimisation (one fence pair per transaction instead
//! of per block) must keep the exact crash-atomicity guarantees of the
//! paper's per-block protocol, while measurably reducing fences.

use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{CrashPolicy, CrashTripped, NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca::{TincaCache, TincaConfig};

fn cfg(batched: bool) -> TincaConfig {
    TincaConfig {
        ring_bytes: 4096,
        batched_ring: batched,
        ..TincaConfig::default()
    }
}

fn fresh(batched: bool) -> (TincaCache, nvmsim::Nvm, blockdev::Disk) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let cache = TincaCache::format(nvm.clone(), disk.clone(), cfg(batched));
    (cache, nvm, disk)
}

fn blk(b: u8) -> [u8; BLOCK_SIZE] {
    [b; BLOCK_SIZE]
}

fn quiet() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashTripped>().is_none() {
                default(info);
            }
        }));
    });
}

#[test]
fn batching_saves_fences() {
    let run = |batched: bool| {
        let (mut cache, nvm, _) = fresh(batched);
        let before = nvm.stats();
        let mut txn = cache.init_txn();
        for i in 0..32u64 {
            txn.write(i, &blk(1));
        }
        cache.commit(&txn).unwrap();
        nvm.stats().delta(&before).sfence
    };
    let per_block = run(false);
    let batched = run(true);
    // Per-block: 2 extra fences per block (slot + head). Batched: 2 total.
    assert!(
        batched + 32 <= per_block,
        "batching should save ~2 fences per block: {batched} vs {per_block}"
    );
}

#[test]
fn batched_commit_reads_back_and_recovers() {
    let (mut cache, nvm, disk) = fresh(true);
    for round in 0..10u8 {
        let mut txn = cache.init_txn();
        for i in 0..16u64 {
            txn.write(i, &blk(round + 1));
        }
        cache.commit(&txn).unwrap();
    }
    cache.check_consistency().unwrap();
    drop(cache);
    nvm.crash(CrashPolicy::Random(5));
    let rec = TincaCache::recover(nvm, disk, cfg(true)).unwrap();
    rec.check_consistency().unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    for i in 0..16u64 {
        rec.read_nocache(i, &mut buf).unwrap();
        assert_eq!(buf, blk(10), "block {i}");
    }
}

#[test]
fn batched_crash_sweep_is_atomic() {
    quiet();
    let blocks = [1u64, 2, 3];
    // Event window of the second commit under batching.
    let window = {
        let (mut c, nvm, _) = fresh(true);
        let mut s = c.init_txn();
        for &b in &blocks {
            s.write(b, &blk(1));
        }
        c.commit(&s).unwrap();
        let e0 = nvm.events();
        let mut t = c.init_txn();
        for &b in &blocks {
            t.write(b, &blk(2));
        }
        c.commit(&t).unwrap();
        nvm.events() - e0
    };
    let mut crashed = 0;
    let mut completed = 0;
    for trip in 1..=window + 2 {
        let (mut cache, nvm, disk) = fresh(true);
        let mut seed = cache.init_txn();
        for &b in &blocks {
            seed.write(b, &blk(1));
        }
        cache.commit(&seed).unwrap();
        let mut txn = cache.init_txn();
        for &b in &blocks {
            txn.write(b, &blk(2));
        }
        nvm.set_trip(Some(trip));
        let interrupted = catch_unwind(AssertUnwindSafe(|| cache.commit(&txn))).is_err();
        nvm.set_trip(None);
        drop(cache);
        nvm.crash(CrashPolicy::Random(trip * 131));
        let rec = TincaCache::recover(nvm, disk, cfg(true)).unwrap();
        rec.check_consistency()
            .unwrap_or_else(|e| panic!("trip {trip}: {e}"));
        let mut buf = [0u8; BLOCK_SIZE];
        let versions: Vec<u8> = blocks
            .iter()
            .map(|&b| {
                rec.read_nocache(b, &mut buf).unwrap();
                assert!(
                    buf.iter().all(|&x| x == buf[0]),
                    "torn payload at trip {trip}"
                );
                buf[0]
            })
            .collect();
        let all_old = versions.iter().all(|&v| v == 1);
        let all_new = versions.iter().all(|&v| v == 2);
        assert!(all_old || all_new, "torn txn at trip {trip}: {versions:?}");
        if interrupted {
            crashed += 1;
        } else {
            assert!(all_new, "completed commit lost at trip {trip}");
            completed += 1;
        }
    }
    assert!(crashed > 0 && completed > 0);
}
