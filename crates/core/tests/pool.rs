// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! Integration tests for `TincaPool`: single-shard equivalence, shard
//! routing, group commit, and deterministic multi-threaded stress.

use std::sync::{Arc, Barrier};

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{shard_devices, NvmConfig, NvmDevice, NvmTech, SimClock};
use proptest::prelude::*;
use tinca::{PoolConfig, TincaCache, TincaConfig, TincaPool, Txn};

fn blk(byte: u8) -> [u8; BLOCK_SIZE] {
    [byte; BLOCK_SIZE]
}

fn cache_cfg() -> TincaConfig {
    TincaConfig {
        ring_bytes: 4096,
        ..TincaConfig::default()
    }
}

fn pool(shards: usize, nvm_bytes: usize) -> TincaPool {
    let devices = shard_devices(&NvmConfig::new(nvm_bytes, NvmTech::Pcm), shards);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
    TincaPool::format(
        devices,
        disk,
        PoolConfig {
            shards,
            cache: cache_cfg(),
            ..PoolConfig::default()
        },
    )
}

/// With one shard and one thread the pool must be indistinguishable from a
/// bare `TincaCache`: same persistent image, same NVM counters, same
/// simulated time, same cache statistics.
#[test]
fn single_shard_pool_matches_bare_cache_bit_for_bit() {
    let cap = 1 << 20;
    let mk = || {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(cap, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, clock.clone());
        (nvm, disk)
    };

    // Reference: bare cache.
    let (nvm_a, disk_a) = mk();
    let mut cache = TincaCache::format(nvm_a.clone(), disk_a, cache_cfg());
    // Pool under test: one shard on an identical device.
    let (nvm_b, disk_b) = mk();
    let p = TincaPool::format(
        vec![nvm_b.clone()],
        disk_b,
        PoolConfig {
            shards: 1,
            cache: cache_cfg(),
            ..PoolConfig::default()
        },
    );

    // Identical workload on both, including coalescing rewrites and reads.
    let mut buf = [0u8; BLOCK_SIZE];
    for round in 0..20u64 {
        let mut ta = cache.init_txn();
        let mut tb = p.init_txn();
        for t in [&mut ta, &mut tb] {
            t.write(round % 7, &blk((round % 251) as u8));
            t.write(100 + round, &blk(1));
            t.write(round % 7, &blk((round % 249) as u8)); // coalesce
        }
        cache.commit(&ta).unwrap();
        p.commit(tb).unwrap();
        cache.read(round % 7, &mut buf).unwrap();
        let mut buf2 = [0u8; BLOCK_SIZE];
        p.read(round % 7, &mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    assert_eq!(cache.stats(), p.stats(), "cache statistics must match");
    assert_eq!(
        nvm_a.stats(),
        nvm_b.stats(),
        "NVM event counters must match"
    );
    assert_eq!(
        nvm_a.clock().now_ns(),
        nvm_b.clock().now_ns(),
        "simulated time must match"
    );
    let mut img_a = vec![0u8; cap];
    let mut img_b = vec![0u8; cap];
    nvm_a.read_persistent(0, &mut img_a);
    nvm_b.read_persistent(0, &mut img_b);
    assert!(img_a == img_b, "persistent NVM images must be identical");
    cache.check_consistency().unwrap();
    p.check_consistency().unwrap();
}

#[test]
fn blocks_route_to_home_shards_and_read_back() {
    let p = pool(4, 4 << 20);
    for b in 0..64u64 {
        let mut t = p.init_txn();
        t.write(b, &blk((b % 251) as u8));
        p.commit(t).unwrap();
    }
    let mut buf = [0u8; BLOCK_SIZE];
    for b in 0..64u64 {
        assert_eq!(p.shard_of(b), (b % 4) as usize);
        assert!(p.contains(b));
        p.read(b, &mut buf).unwrap();
        assert_eq!(buf, blk((b % 251) as u8));
    }
    // 64 blocks spread evenly: every shard committed 16.
    for s in 0..4 {
        assert_eq!(p.shard_stats(s).commits, 16, "shard {s}");
        assert_eq!(p.shard_stats(s).committed_blocks, 16, "shard {s}");
    }
    assert_eq!(p.stats().commits, 64);
    assert_eq!(p.cached_blocks(), 64);
    p.check_consistency().unwrap();
}

#[test]
fn spanning_txn_lands_on_every_shard() {
    let p = pool(2, 2 << 20);
    let mut t = p.init_txn();
    t.write(0, &blk(1)); // shard 0
    t.write(1, &blk(2)); // shard 1
    t.write(2, &blk(3)); // shard 0
    p.commit(t).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    for (b, v) in [(0u64, 1u8), (1, 2), (2, 3)] {
        p.read(b, &mut buf).unwrap();
        assert_eq!(buf, blk(v));
    }
    assert_eq!(p.shard_stats(0).committed_blocks, 2);
    assert_eq!(p.shard_stats(1).committed_blocks, 1);
    p.check_consistency().unwrap();
}

/// `commit_many` folds same-shard transactions into ONE ring commit: one
/// Tail store + fence for the whole batch.
#[test]
fn commit_many_batches_into_one_ring_commit() {
    let p = pool(1, 1 << 20);
    let baseline = pool(1, 1 << 20);

    // Batched: 8 one-block txns in one submission.
    let txns: Vec<Txn> = (0..8u64)
        .map(|i| {
            let mut t = p.init_txn();
            t.write(i, &blk(i as u8 + 1));
            t
        })
        .collect();
    let results = p.commit_many(txns);
    assert!(results.iter().all(Result::is_ok));

    // Unbatched reference: same 8 txns committed one by one.
    for i in 0..8u64 {
        let mut t = baseline.init_txn();
        t.write(i, &blk(i as u8 + 1));
        baseline.commit(t).unwrap();
    }

    let s = p.stats();
    assert_eq!(s.commits, 1, "one ring commit for the whole batch");
    assert_eq!(s.group_commits, 1);
    assert_eq!(s.batched_txns, 8);
    assert_eq!(s.committed_blocks, 8);
    assert_eq!(baseline.stats().commits, 8);

    // The batch amortises the commit point: strictly fewer fences.
    let fences_batched = p.with_shard(0, |c| c.nvm().stats().sfence);
    let fences_single = baseline.with_shard(0, |c| c.nvm().stats().sfence);
    assert!(
        fences_batched < fences_single,
        "group commit must fence less: {fences_batched} vs {fences_single}"
    );

    // Same visible contents either way.
    let mut a = [0u8; BLOCK_SIZE];
    let mut b = [0u8; BLOCK_SIZE];
    for i in 0..8u64 {
        p.read(i, &mut a).unwrap();
        baseline.read(i, &mut b).unwrap();
        assert_eq!(a, b);
    }
    p.check_consistency().unwrap();
}

#[test]
fn commit_many_coalesces_overlapping_txns_last_writer_wins() {
    let p = pool(1, 1 << 20);
    let mut t1 = p.init_txn();
    t1.write(5, &blk(1));
    let mut t2 = p.init_txn();
    t2.write(5, &blk(2)); // same block, newer value
    let results = p.commit_many(vec![t1, t2]);
    assert!(results.iter().all(Result::is_ok));
    let mut buf = [0u8; BLOCK_SIZE];
    p.read(5, &mut buf).unwrap();
    assert_eq!(buf, blk(2), "later transaction in the batch must win");
    let s = p.stats();
    assert_eq!(s.commits, 1);
    assert_eq!(s.coalesced_writes, 1, "the fold coalesced one rewrite");
    p.check_consistency().unwrap();
}

/// Deterministic multi-thread stress: 8 threads over 4 shards in barrier-
/// synchronised rounds. Every thread owns a disjoint block set (all blocks
/// of a thread share one home shard), so expected final contents are exact
/// regardless of interleaving.
#[test]
fn multithreaded_stress_rounds_preserve_consistency() {
    const THREADS: usize = 8;
    const ROUNDS: u64 = 12;
    const BLOCKS_PER_THREAD: u64 = 4;

    let p = Arc::new(pool(4, 8 << 20));
    let barrier = Arc::new(Barrier::new(THREADS));

    // Thread t owns blocks {t, t+8, t+16, t+24}: all ≡ t (mod 8), hence all
    // on shard t % 4 — two threads share each shard, forcing contention and
    // group-commit opportunities without cross-thread data races.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let p = Arc::clone(&p);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let mut buf = [0u8; BLOCK_SIZE];
                for round in 0..ROUNDS {
                    barrier.wait();
                    let mut txn = p.init_txn();
                    for k in 0..BLOCKS_PER_THREAD {
                        let b = t as u64 + 8 * k;
                        txn.write(b, &blk((round + 1) as u8));
                    }
                    p.commit(txn).unwrap();
                    // Read-your-writes immediately after commit.
                    for k in 0..BLOCKS_PER_THREAD {
                        let b = t as u64 + 8 * k;
                        p.read(b, &mut buf).unwrap();
                        assert_eq!(
                            buf,
                            blk((round + 1) as u8),
                            "thread {t} round {round} block {b}"
                        );
                    }
                }
            });
        }
    });

    // Global post-conditions: final contents, per-shard consistency, and
    // exact commit accounting.
    let mut buf = [0u8; BLOCK_SIZE];
    for t in 0..THREADS as u64 {
        for k in 0..BLOCKS_PER_THREAD {
            let b = t + 8 * k;
            p.read(b, &mut buf).unwrap();
            assert_eq!(buf, blk(ROUNDS as u8), "block {b} must hold final round");
        }
    }
    p.check_consistency().unwrap();
    let s = p.stats();
    // Every user transaction rode exactly one ring commit: lone commits
    // carry one txn each, group commits carry `batched_txns` in total.
    let user_txns = (s.commits - s.group_commits) + s.batched_txns;
    assert_eq!(user_txns, THREADS as u64 * ROUNDS);
    assert_eq!(
        s.committed_blocks,
        THREADS as u64 * ROUNDS * BLOCKS_PER_THREAD
    );
    assert_eq!(s.failed_commits, 0);
}

/// Spanning commits keep exact accounting: one `spanning_commits` per
/// transaction (counted on the intent-host shard), one
/// `spanning_fragments` per participant shard, and every fragment's
/// blocks land on — and only on — their home shard.
#[test]
fn spanning_commit_accounting_is_exact() {
    let p = pool(4, 4 << 20);
    // 6 transactions, each spanning all 4 shards (blocks b, b+1, b+2, b+3).
    for round in 0..6u64 {
        let mut t = p.init_txn();
        for s in 0..4u64 {
            t.write(4 * round + s, &blk((round + 1) as u8));
        }
        p.commit(t).unwrap();
    }
    let s = p.stats();
    assert_eq!(s.spanning_commits, 6, "one per spanning transaction");
    assert_eq!(s.spanning_fragments, 24, "one per participant shard");
    assert_eq!(s.spanning_aborts, 0);
    assert_eq!(s.commits, 24, "each fragment is one ring commit");
    assert_eq!(s.committed_blocks, 24);
    assert_eq!(s.failed_commits, 0);
    // The intent host carries the per-txn counters; fragments spread out.
    assert_eq!(p.shard_stats(0).spanning_commits, 6);
    for sh in 0..4 {
        assert_eq!(p.shard_stats(sh).spanning_fragments, 6, "shard {sh}");
    }
    let mut buf = [0u8; BLOCK_SIZE];
    for round in 0..6u64 {
        for s in 0..4u64 {
            p.read(4 * round + s, &mut buf).unwrap();
            assert_eq!(buf, blk((round + 1) as u8));
        }
    }
    p.check_consistency().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routing property: after committing an arbitrary mix of
    /// single-shard and spanning transactions, every block is cached on
    /// exactly `shard_of(blk)` — the split never strands a fragment on a
    /// foreign shard — and every block reads back its last value.
    #[test]
    fn split_fragments_land_on_their_home_shard(
        specs in proptest::collection::vec(
            proptest::collection::vec((0..96u64, 1..=255u8), 1..6),
            1..12,
        ),
        shards in 2..=4usize,
    ) {
        let p = pool(shards, shards * (1 << 20));
        let mut expect = std::collections::HashMap::new();
        for spec in &specs {
            let mut t = p.init_txn();
            for &(b, v) in spec {
                t.write(b, &blk(v)); // duplicate blocks coalesce, last wins
                expect.insert(b, v);
            }
            p.commit(t).unwrap();
        }
        let mut buf = [0u8; BLOCK_SIZE];
        for (&b, &v) in &expect {
            let home = p.shard_of(b);
            prop_assert_eq!(home, (b % shards as u64) as usize);
            for s in 0..shards {
                prop_assert_eq!(
                    p.with_shard(s, |c| c.contains(b)),
                    s == home,
                    "block {} cached on shard {} but homes on {}", b, s, home
                );
            }
            p.read(b, &mut buf).unwrap();
            prop_assert_eq!(buf, blk(v), "block {} read back wrong", b);
        }
        p.check_consistency().unwrap();
    }
}

#[test]
fn pool_recovers_all_shards_after_clean_shutdown() {
    let devices = shard_devices(&NvmConfig::new(4 << 20, NvmTech::Pcm), 4);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
    let cfg = PoolConfig {
        shards: 4,
        cache: cache_cfg(),
        ..PoolConfig::default()
    };
    let p = TincaPool::format(devices.clone(), disk.clone(), cfg.clone());
    for b in 0..32u64 {
        let mut t = p.init_txn();
        t.write(b, &blk((b + 1) as u8));
        p.commit(t).unwrap();
    }
    drop(p);
    // Power-cycle every shard: only persisted state survives.
    for d in &devices {
        d.crash(nvmsim::CrashPolicy::LoseVolatile);
    }
    let p = TincaPool::recover(devices, disk, cfg).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    for b in 0..32u64 {
        p.read(b, &mut buf).unwrap();
        assert_eq!(buf, blk((b + 1) as u8), "block {b} lost across remount");
    }
    p.check_consistency().unwrap();
    assert_eq!(p.stats().recoveries, 4, "each shard runs its own recovery");
}

/// One shard's disk turns permanently bad: its writebacks quarantine and
/// the pool reports `Degraded`, while every other shard flushes clean and
/// all shards — including the bad one — keep committing (write-back holds
/// the data in NVM). After a reboot, recovery must not need the disk and
/// every durable block must still read back.
#[test]
fn one_bad_shard_degrades_pool_but_commits_continue() {
    use blockdev::{FaultPlan, FaultyDisk};
    use nvmsim::CrashPolicy;
    use tinca::Health;

    let shards = 4usize;
    let devices = shard_devices(&NvmConfig::new(1 << 20, NvmTech::Pcm), shards);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
    // Pool routing sends disk block `b` to shard `b % shards`: a bad-modulo
    // fault plan with residue 2 kills exactly shard 2's backing store.
    let faulty = FaultyDisk::new(disk, FaultPlan::quiet(11).with_bad_modulo(shards as u64, 2));
    let mk_cfg = || PoolConfig {
        shards,
        cache: cache_cfg(),
        ..PoolConfig::default()
    };
    let pool = TincaPool::format(devices.clone(), faulty.clone(), mk_cfg());

    // Group-commit a batch touching every shard.
    let txns: Vec<Txn> = (0..64u64)
        .collect::<Vec<_>>()
        .chunks(4)
        .map(|ch| {
            let mut t = pool.init_txn();
            for &b in ch {
                t.write(b, &blk(b as u8 + 1));
            }
            t
        })
        .collect();
    for r in pool.commit_many(txns) {
        r.unwrap();
    }
    assert_eq!(pool.health(), Health::Healthy);

    // Orderly flush: shard 2's writebacks fail permanently and quarantine;
    // the other shards flush clean.
    assert!(
        pool.flush_all().is_err(),
        "flush over a bad shard must surface the error"
    );
    let q = pool.with_shard(2, |c| c.quarantined_count());
    assert!(q > 0, "shard 2 must quarantine its dirty blocks");
    assert!(pool.shard_stats(2).permanent_io_errors > 0);
    for s in [0usize, 1, 3] {
        assert_eq!(pool.with_shard(s, |c| c.quarantined_count()), 0);
        assert_eq!(pool.shard_stats(s).permanent_io_errors, 0);
    }
    match pool.health() {
        Health::Degraded { quarantined } => assert_eq!(quarantined, q),
        h => panic!("expected Degraded, got {h:?}"),
    }

    // The pool keeps serving: commits on every shard still succeed.
    for b in 0..8u64 {
        let mut t = pool.init_txn();
        t.write(b, &blk(0xA0 + b as u8));
        pool.commit(t).unwrap();
    }
    let expect = |b: u64| {
        if b < 8 {
            0xA0 + b as u8
        } else {
            b as u8 + 1
        }
    };
    let mut buf = [0u8; BLOCK_SIZE];
    for b in 0..64u64 {
        pool.read_nocache(b, &mut buf).unwrap();
        assert_eq!(buf[0], expect(b), "block {b} before reboot");
    }

    // Reboot with the disk still bad: recovery reads NVM only, internal
    // invariants hold, and every durable block reads back — shard 2's from
    // its pinned-dirty NVM copies.
    drop(pool);
    for d in &devices {
        d.crash(CrashPolicy::LoseVolatile);
    }
    let pool = TincaPool::recover(devices, faulty, mk_cfg()).unwrap();
    pool.check_consistency().unwrap();
    for b in 0..64u64 {
        pool.read_nocache(b, &mut buf).unwrap();
        assert_eq!(buf[0], expect(b), "block {b} after recovery");
    }
}
