// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! Integration tests for the Tinca cache: commit protocol, COW writes,
//! replacement, pinning, and the cost model the paper's figures rely on.

use std::sync::Arc;

use blockdev::{BlockDevice, DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca::{TincaCache, TincaConfig, TincaError, WritePolicy};

fn setup(
    nvm_bytes: usize,
    ring_bytes: usize,
) -> (TincaCache, nvmsim::Nvm, blockdev::Disk, SimClock) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(nvm_bytes, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, clock.clone());
    let cfg = TincaConfig {
        ring_bytes,
        ..TincaConfig::default()
    };
    let cache = TincaCache::format(nvm.clone(), disk.clone(), cfg);
    (cache, nvm, disk, clock)
}

fn blk(byte: u8) -> [u8; BLOCK_SIZE] {
    [byte; BLOCK_SIZE]
}

#[test]
fn commit_then_read_back() {
    let (mut cache, _, _, _) = setup(1 << 20, 4096);
    let mut txn = cache.init_txn();
    txn.write(100, &blk(1));
    txn.write(200, &blk(2));
    txn.write(300, &blk(3));
    cache.commit(&txn).unwrap();

    let mut buf = [0u8; BLOCK_SIZE];
    for (b, v) in [(100u64, 1u8), (200, 2), (300, 3)] {
        cache.read(b, &mut buf).unwrap();
        assert_eq!(buf, blk(v));
    }
    let s = cache.stats();
    assert_eq!(s.commits, 1);
    assert_eq!(s.committed_blocks, 3);
    assert_eq!(s.read_hits, 3);
    assert_eq!(s.write_misses, 3);
    cache.check_consistency().unwrap();
}

#[test]
fn empty_commit_is_noop() {
    let (mut cache, nvm, _, _) = setup(1 << 20, 4096);
    let before = nvm.stats();
    let txn = cache.init_txn();
    cache.commit(&txn).unwrap();
    assert_eq!(cache.stats().commits, 0);
    assert_eq!(nvm.stats(), before);
}

#[test]
fn write_hit_uses_cow_and_counts_hit() {
    let (mut cache, _, _, _) = setup(1 << 20, 4096);
    let mut t1 = cache.init_txn();
    t1.write(7, &blk(1));
    cache.commit(&t1).unwrap();
    let mut t2 = cache.init_txn();
    t2.write(7, &blk(2));
    cache.commit(&t2).unwrap();

    let mut buf = [0u8; BLOCK_SIZE];
    cache.read(7, &mut buf).unwrap();
    assert_eq!(buf, blk(2));
    let s = cache.stats();
    assert_eq!(s.write_misses, 1);
    assert_eq!(s.write_hits, 1);
    // The previous version's NVM block must have been reclaimed.
    assert_eq!(cache.cached_blocks(), 1);
    cache.check_consistency().unwrap();
}

#[test]
fn read_miss_fills_cache() {
    let (mut cache, _, disk, _) = setup(1 << 20, 4096);
    disk.write_block(42, &blk(9)).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    cache.read(42, &mut buf).unwrap();
    assert_eq!(buf, blk(9));
    assert_eq!(cache.stats().read_misses, 1);
    // Second read hits NVM.
    let reads_before = disk.stats().reads;
    cache.read(42, &mut buf).unwrap();
    assert_eq!(cache.stats().read_hits, 1);
    assert_eq!(disk.stats().reads, reads_before);
    cache.check_consistency().unwrap();
}

#[test]
fn read_caching_can_be_disabled() {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock.clone());
    let cfg = TincaConfig {
        ring_bytes: 4096,
        cache_reads: false,
        ..TincaConfig::default()
    };
    let mut cache = TincaCache::format(nvm, disk.clone(), cfg);
    let mut buf = [0u8; BLOCK_SIZE];
    cache.read(5, &mut buf).unwrap();
    cache.read(5, &mut buf).unwrap();
    assert_eq!(cache.stats().read_misses, 2);
    assert_eq!(cache.cached_blocks(), 0);
}

#[test]
fn eviction_writes_back_dirty_lru_block() {
    // Cache with very few data blocks to force eviction quickly.
    let (mut cache, _, disk, _) = setup(256 << 10, 4096);
    let n = cache.data_block_count() as u64;
    assert!(n >= 8, "test expects at least 8 data blocks, got {n}");
    // Fill the cache beyond capacity with dirty blocks.
    for i in 0..n + 4 {
        let mut t = cache.init_txn();
        t.write(i, &blk((i % 251) as u8));
        cache.commit(&t).unwrap();
    }
    let s = cache.stats();
    assert!(s.evictions >= 4, "expected evictions, got {}", s.evictions);
    assert!(disk.stats().writes >= 4, "dirty victims must reach disk");
    // The earliest (LRU) blocks were evicted; their data must be on disk.
    let mut buf = [0u8; BLOCK_SIZE];
    disk.read_block(0, &mut buf).unwrap();
    assert_eq!(buf, blk(0));
    cache.check_consistency().unwrap();
}

#[test]
fn clean_eviction_does_not_touch_disk() {
    let (mut cache, _, disk, _) = setup(256 << 10, 4096);
    let n = cache.data_block_count() as u64;
    // Fill with clean read-misses only.
    let mut buf = [0u8; BLOCK_SIZE];
    for i in 0..n + 4 {
        cache.read(i, &mut buf).unwrap();
    }
    assert!(cache.stats().evictions >= 4);
    assert_eq!(
        disk.stats().writes,
        0,
        "clean blocks must not be written back"
    );
}

#[test]
fn txn_larger_than_ring_is_rejected() {
    let (mut cache, _, _, _) = setup(1 << 20, 4096); // ring: 512 slots
    let mut txn = cache.init_txn();
    for i in 0..513u64 {
        txn.write(i, &blk(0));
    }
    let err = cache.commit(&txn).unwrap_err();
    assert!(matches!(err, TincaError::TxnTooLarge { .. }));
    // Nothing leaked.
    assert_eq!(cache.cached_blocks(), 0);
    cache.check_consistency().unwrap();
}

#[test]
fn txn_too_big_for_cache_is_rejected_cleanly() {
    let (mut cache, _, _, _) = setup(256 << 10, 64 << 10);
    let n = cache.data_block_count() as usize;
    // Fill the cache completely with committed blocks.
    for i in 0..n {
        let mut t = cache.init_txn();
        t.write(i as u64, &blk(1));
        cache.commit(&t).unwrap();
    }
    assert_eq!(cache.free_block_count(), 0);
    // A transaction needing more blocks than free + evictable must be
    // turned away at admission — cleanly, not by revoking a half-staged
    // commit after NoVictim fires.
    let mut txn = cache.init_txn();
    for i in 0..=n {
        txn.write(1_000 + i as u64, &blk(2));
    }
    let err = cache.commit(&txn).unwrap_err();
    assert!(matches!(
        err,
        TincaError::CacheExhausted { needed, available }
            if needed == n + 1 && available == n
    ));
    let s = cache.stats();
    assert_eq!(s.failed_commits, 0, "admission must reject before staging");
    assert_eq!(s.revoked_blocks, 0, "no revocation on clean rejection");
    // Previously committed contents are untouched.
    let mut buf = [0u8; BLOCK_SIZE];
    cache.read(0, &mut buf).unwrap();
    assert_eq!(buf, blk(1));
    cache.check_consistency().unwrap();
}

#[test]
fn full_capacity_fresh_txn_is_admitted() {
    // Regression: admission used to compare worst-case demand against the
    // *total* data-block count instead of the free pool plus evictable
    // blocks, rejecting a perfectly feasible transaction that exactly
    // fills an empty cache.
    let (mut cache, _, _, _) = setup(256 << 10, 64 << 10);
    let n = cache.data_block_count() as usize;
    let mut txn = cache.init_txn();
    for i in 0..n {
        txn.write(i as u64, &blk(3));
    }
    cache.commit(&txn).unwrap();
    assert_eq!(cache.free_block_count(), 0);
    assert_eq!(cache.cached_blocks(), n);
    let mut buf = [0u8; BLOCK_SIZE];
    for i in 0..n as u64 {
        cache.read(i, &mut buf).unwrap();
        assert_eq!(buf, blk(3));
    }
    cache.check_consistency().unwrap();
}

#[test]
fn failed_commit_rolls_back_previous_values() {
    // A commit that fails mid-way (NoVictim) must restore the pre-txn state.
    let (mut cache, _, _, _) = setup(256 << 10, 64 << 10);
    let n = cache.data_block_count() as u64;
    // Seed every block with version 1 in several small txns.
    for i in 0..n / 2 {
        let mut t = cache.init_txn();
        t.write(i, &blk(1));
        cache.commit(&t).unwrap();
    }
    // One transaction touching n/2 blocks: needs n/2 new + n/2 pinned prevs
    // = all blocks, leaving nothing evictable part-way if other blocks are
    // present. Construct a txn that passes the static check but runs out of
    // victims dynamically.
    let mut big = cache.init_txn();
    for i in 0..(n / 2) {
        big.write(i, &blk(2));
    }
    match cache.commit(&big) {
        Ok(()) => {
            // Fine on this geometry — all version 2.
            let mut buf = [0u8; BLOCK_SIZE];
            cache.read(0, &mut buf).unwrap();
            assert_eq!(buf, blk(2));
        }
        Err(_) => {
            // Rolled back: all version 1 readable.
            let mut buf = [0u8; BLOCK_SIZE];
            for i in 0..n / 2 {
                cache.read(i, &mut buf).unwrap();
                assert_eq!(buf, blk(1), "block {i} must hold the old version");
            }
        }
    }
    cache.check_consistency().unwrap();
}

#[test]
fn no_double_write_single_data_flush_per_block() {
    // The heart of the paper: committing a block flushes its 64 payload
    // lines exactly once (plus O(1) metadata lines), with no second
    // "checkpoint" copy.
    let (mut cache, nvm, _, _) = setup(4 << 20, 4096);
    let before = nvm.stats();
    let mut txn = cache.init_txn();
    for i in 0..8u64 {
        txn.write(i, &blk(i as u8));
    }
    cache.commit(&txn).unwrap();
    let d = nvm.stats().delta(&before);
    let lines_per_block = d.lines_written as f64 / 8.0;
    // 64 payload lines + 1 entry line + 1 ring line + 1 head line + switch
    // + tail amortised => must stay well under 2 × 64.
    assert!(
        lines_per_block < 70.0,
        "role switch must avoid double writes: {lines_per_block} lines/block"
    );
    assert!(lines_per_block >= 64.0);
}

#[test]
fn ablation_double_write_costs_two_payload_writes() {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(4 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock.clone());
    let cfg = TincaConfig {
        ring_bytes: 4096,
        role_switch: false,
        ..TincaConfig::default()
    };
    let mut cache = TincaCache::format(nvm.clone(), disk, cfg);
    let before = nvm.stats();
    let mut txn = cache.init_txn();
    for i in 0..8u64 {
        txn.write(i, &blk(i as u8));
    }
    cache.commit(&txn).unwrap();
    let d = nvm.stats().delta(&before);
    let lines_per_block = d.lines_written as f64 / 8.0;
    assert!(
        lines_per_block >= 128.0,
        "double-write ablation should write payloads twice: {lines_per_block}"
    );
    // Data still correct.
    let mut buf = [0u8; BLOCK_SIZE];
    cache.read(3, &mut buf).unwrap();
    assert_eq!(buf, blk(3));
    cache.check_consistency().unwrap();
}

#[test]
fn write_through_policy_reaches_disk_immediately() {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock.clone());
    let cfg = TincaConfig {
        ring_bytes: 4096,
        write_policy: WritePolicy::WriteThrough,
        ..TincaConfig::default()
    };
    let mut cache = TincaCache::format(nvm, disk.clone(), cfg);
    let mut txn = cache.init_txn();
    txn.write(9, &blk(5));
    cache.commit(&txn).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    disk.read_block(9, &mut buf).unwrap();
    assert_eq!(buf, blk(5));
    cache.check_consistency().unwrap();
}

#[test]
fn flush_all_persists_everything_to_disk() {
    let (mut cache, _, disk, _) = setup(1 << 20, 4096);
    for i in 0..10u64 {
        let mut t = cache.init_txn();
        t.write(i, &blk(i as u8 + 1));
        cache.commit(&t).unwrap();
    }
    cache.flush_all().unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    for i in 0..10u64 {
        disk.read_block(i, &mut buf).unwrap();
        assert_eq!(buf, blk(i as u8 + 1));
    }
    // Flushing twice writes nothing new.
    let w = disk.stats().writes;
    cache.flush_all().unwrap();
    assert_eq!(disk.stats().writes, w);
    cache.check_consistency().unwrap();
}

#[test]
fn lru_order_respected_on_eviction() {
    let (mut cache, _, disk, _) = setup(256 << 10, 4096);
    let n = cache.data_block_count() as u64;
    for i in 0..n {
        let mut t = cache.init_txn();
        t.write(i, &blk(1));
        cache.commit(&t).unwrap();
    }
    // Touch block 0 so it becomes MRU; block 1 is now LRU.
    let mut buf = [0u8; BLOCK_SIZE];
    cache.read(0, &mut buf).unwrap();
    // Trigger one eviction.
    let mut t = cache.init_txn();
    t.write(n + 1, &blk(2));
    cache.commit(&t).unwrap();
    assert!(cache.contains(0), "recently-touched block must survive");
    assert!(!cache.contains(1), "LRU block must be the victim");
    let mut dbuf = [0u8; BLOCK_SIZE];
    disk.read_block(1, &mut dbuf).unwrap();
    assert_eq!(dbuf, blk(1));
}

#[test]
fn ring_wraps_across_many_commits() {
    let (mut cache, _, _, _) = setup(1 << 20, 4096); // 512 slots
    for round in 0..300u64 {
        let mut t = cache.init_txn();
        t.write(round % 50, &blk((round % 251) as u8));
        t.write(50 + round % 50, &blk((round % 241) as u8));
        cache.commit(&t).unwrap();
    }
    assert_eq!(cache.stats().commits, 300);
    cache.check_consistency().unwrap();
}

#[test]
fn abort_running_txn_leaves_cache_untouched() {
    let (mut cache, nvm, _, _) = setup(1 << 20, 4096);
    let before = nvm.stats();
    let mut t = cache.init_txn();
    t.write(1, &blk(1));
    cache.abort(t);
    assert_eq!(nvm.stats(), before, "running txns are DRAM-only");
    assert_eq!(cache.stats().user_aborts, 1);
    assert_eq!(cache.stats().aborts(), 1);
    assert_eq!(cache.cached_blocks(), 0);
}

#[test]
fn peek_does_not_disturb_lru_or_stats() {
    let (mut cache, _, _, _) = setup(1 << 20, 4096);
    let mut t = cache.init_txn();
    t.write(3, &blk(7));
    cache.commit(&t).unwrap();
    let s = cache.stats();
    let got = cache.peek(3).unwrap();
    assert_eq!(got, blk(7));
    assert!(cache.peek(4).is_none());
    assert_eq!(cache.stats(), s);
}

#[test]
fn simulated_time_advances_with_work() {
    let (mut cache, _, _, clock) = setup(1 << 20, 4096);
    let t0 = clock.now_ns();
    let mut t = cache.init_txn();
    t.write(0, &blk(1));
    cache.commit(&t).unwrap();
    let commit_cost = clock.now_ns() - t0;
    // 64 payload flushes at PCM speed (280 ns each) dominate.
    assert!(commit_cost > 64 * 240, "commit too cheap: {commit_cost} ns");
    assert!(
        commit_cost < 100_000,
        "commit unreasonably expensive: {commit_cost} ns"
    );
}

#[test]
fn many_blocks_one_txn_all_visible() {
    let (mut cache, _, _, _) = setup(4 << 20, 64 << 10);
    let mut txn = cache.init_txn();
    for i in 0..200u64 {
        txn.write(i * 3, &blk((i % 251) as u8));
    }
    cache.commit(&txn).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    for i in 0..200u64 {
        cache.read(i * 3, &mut buf).unwrap();
        assert_eq!(buf, blk((i % 251) as u8));
    }
    cache.check_consistency().unwrap();
}

#[test]
fn disk_sees_old_version_until_eviction() {
    let (mut cache, _, disk, _) = setup(1 << 20, 4096);
    let mut t = cache.init_txn();
    t.write(5, &blk(1));
    cache.commit(&t).unwrap();
    // Write-back: the disk still has zeroes.
    let mut buf = [0u8; BLOCK_SIZE];
    disk.read_block(5, &mut buf).unwrap();
    assert_eq!(buf, blk(0));
    let d = Arc::clone(cache.disk());
    assert_eq!(d.stats().writes, 0);
}
