// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! Integration tests for the multi-writer lock-free commit path
//! (`CommitMode::LockFreeRing`, DESIGN §16): blocking commits, the
//! steppable reserve/stage/publish/sequence API, conflict admission,
//! failed-window sealing, spanning transactions, and recovery of
//! unsequenced windows.

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{shard_devices, NvmConfig, NvmTech, SimClock};
use tinca::{CommitMode, MwAdmission, PoolConfig, TincaConfig, TincaError, TincaPool, Txn};

fn blk(byte: u8) -> [u8; BLOCK_SIZE] {
    [byte; BLOCK_SIZE]
}

fn mw_pool_cfg(shards: usize) -> PoolConfig {
    PoolConfig {
        shards,
        commit_mode: CommitMode::LockFreeRing,
        cache: TincaConfig {
            ring_bytes: 4096,
            ..TincaConfig::default()
        },
        ..PoolConfig::default()
    }
}

fn mw_pool(shards: usize, nvm_bytes: usize) -> TincaPool {
    let devices = shard_devices(&NvmConfig::new(nvm_bytes, NvmTech::Pcm), shards);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
    TincaPool::format(devices, disk, mw_pool_cfg(shards))
}

/// Blocking commits through the lock-free path produce the same visible
/// contents as any other path: overwrites coalesce, reads hit, and the
/// per-commit counters advance.
#[test]
fn mw_blocking_commits_read_back() {
    let p = mw_pool(1, 1 << 20);
    let mut buf = [0u8; BLOCK_SIZE];
    for round in 0..10u64 {
        let mut t = p.init_txn();
        t.write(round % 3, &blk((round + 1) as u8));
        t.write(50 + round, &blk(0xAA));
        p.commit(t).unwrap();
        p.read(round % 3, &mut buf).unwrap();
        assert_eq!(buf[0], (round + 1) as u8);
    }
    let st = p.stats();
    assert_eq!(st.commits, 10);
    assert_eq!(st.failed_commits, 0);
    assert_eq!(st.committed_blocks, 20);
    p.flush_all().unwrap();
    p.check_consistency().unwrap();
}

/// The steppable API: two windows reserved in order, published out of
/// order. Publishing the later window first retires nothing (the prefix
/// is blocked); publishing the earlier one lets a single sequencer round
/// retire both — one fence, one `Head` store, counted as a group.
#[test]
fn mw_out_of_order_publish_retires_in_ring_order() {
    let p = mw_pool(1, 1 << 20);

    let mut ta = p.init_txn();
    ta.write(1, &blk(0x11));
    let mut tb = p.init_txn();
    tb.write(2, &blk(0x22));

    let MwAdmission::Admitted(mut a) = p.mw_try_begin(ta).unwrap() else {
        panic!("empty shard must admit");
    };
    let MwAdmission::Admitted(mut b) = p.mw_try_begin(tb).unwrap() else {
        panic!("disjoint blocks must admit");
    };
    p.mw_stage(&mut a);
    p.mw_stage(&mut b);

    // B first: its window sits behind A's unpublished one.
    p.mw_publish(b);
    assert_eq!(p.mw_sequence(0), 0, "prefix blocked by unpublished window");
    let mut buf = [0u8; BLOCK_SIZE];

    p.mw_publish(a);
    assert_eq!(p.mw_sequence(0), 2, "one round retires both windows");

    p.read(1, &mut buf).unwrap();
    assert_eq!(buf[0], 0x11);
    p.read(2, &mut buf).unwrap();
    assert_eq!(buf[0], 0x22);
    let st = p.stats();
    assert_eq!(st.commits, 2);
    assert_eq!(st.group_commits, 1, "both windows shared one Head advance");
    assert_eq!(st.batched_txns, 2);
    p.check_consistency().unwrap();
}

/// Conflict admission: a transaction touching a block owned by an
/// in-flight window is handed back `Busy` *before* reserving ring slots,
/// and admits cleanly once the conflicting window retires.
#[test]
fn mw_conflicting_writer_is_busy_until_retire() {
    let p = mw_pool(1, 1 << 20);

    let mut ta = p.init_txn();
    ta.write(7, &blk(1));
    let MwAdmission::Admitted(mut a) = p.mw_try_begin(ta).unwrap() else {
        panic!("empty shard must admit");
    };

    let mut tb = p.init_txn();
    tb.write(7, &blk(2));
    let MwAdmission::Busy(tb) = p.mw_try_begin(tb).unwrap() else {
        panic!("conflicting block must be busy");
    };

    p.mw_stage(&mut a);
    p.mw_publish(a);
    assert_eq!(p.mw_sequence(0), 1);

    let MwAdmission::Admitted(mut b) = p.mw_try_begin(tb).unwrap() else {
        panic!("conflict retired; must admit");
    };
    p.mw_stage(&mut b);
    p.mw_publish(b);
    assert_eq!(p.mw_sequence(0), 1);

    let mut buf = [0u8; BLOCK_SIZE];
    p.read(7, &mut buf).unwrap();
    assert_eq!(buf[0], 2, "later writer wins");
    p.check_consistency().unwrap();
}

/// An admission failure (cache exhausted) seals its window as a no-op:
/// the error surfaces, nothing of the transaction survives, and the ring
/// stays usable — the dead-tagged window is sequenced past and later
/// commits proceed.
#[test]
fn mw_failed_admission_seals_window_and_commits_continue() {
    let p = mw_pool(1, 1 << 20);
    let blocks = p.with_shard(0, |c| c.data_block_count()) as u64;

    let mut big = p.init_txn();
    for b in 0..blocks + 8 {
        big.write(b, &blk(3));
    }
    let err = p.commit(big).unwrap_err();
    assert!(matches!(err, TincaError::CacheExhausted { .. }), "{err}");

    let mut t = p.init_txn();
    t.write(5, &blk(9));
    p.commit(t).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    p.read(5, &mut buf).unwrap();
    assert_eq!(buf[0], 9);

    let st = p.stats();
    assert_eq!(st.failed_commits, 1);
    assert_eq!(st.commits, 1);
    p.check_consistency().unwrap();

    // The failed window left no durable residue: recovery sees a closed
    // ring and clean descriptors.
    p.flush_all().unwrap();
}

/// Spanning transactions in lock-free mode quiesce their participants and
/// run the two-phase intent protocol; both fragments land atomically.
#[test]
fn mw_spanning_commits_atomically_across_shards() {
    let p = mw_pool(2, 1 << 20);
    let mut t = p.init_txn();
    t.write(0, &blk(0x5A)); // shard 0
    t.write(1, &blk(0x5B)); // shard 1
    p.commit(t).unwrap();

    let mut buf = [0u8; BLOCK_SIZE];
    p.read(0, &mut buf).unwrap();
    assert_eq!(buf[0], 0x5A);
    p.read(1, &mut buf).unwrap();
    assert_eq!(buf[0], 0x5B);
    assert_eq!(p.stats().spanning_commits, 1);

    // And single-shard traffic keeps flowing afterwards (the quiesce
    // reopened admissions).
    let mut t = p.init_txn();
    t.write(2, &blk(0x5C));
    p.commit(t).unwrap();
    p.check_consistency().unwrap();
}

/// A spanning transaction whose fragment fails on one participant aborts
/// everywhere: no fragment survives, and the shards keep committing.
#[test]
fn mw_spanning_abort_leaves_nothing_durable() {
    let p = mw_pool(2, 1 << 20);
    let blocks = p.with_shard(1, |c| c.data_block_count()) as u64;

    let mut t = p.init_txn();
    t.write(0, &blk(0x77)); // shard 0: fine
    for i in 0..blocks + 8 {
        t.write(1 + 2 * i, &blk(0x78)); // shard 1: exhausts the cache
    }
    let err = p.commit(t).unwrap_err();
    assert!(matches!(err, TincaError::CacheExhausted { .. }), "{err}");
    assert_eq!(p.stats().spanning_aborts, 1);

    // Shard 0's fragment was revoked: the block reads as disk zeroes.
    let mut buf = [0u8; BLOCK_SIZE];
    p.read(0, &mut buf).unwrap();
    assert_eq!(buf[0], 0, "aborted fragment must not be visible");

    let mut t = p.init_txn();
    t.write(0, &blk(0x79));
    t.write(1, &blk(0x7A));
    p.commit(t).unwrap();
    p.read(0, &mut buf).unwrap();
    assert_eq!(buf[0], 0x79);
    p.check_consistency().unwrap();
}

/// A window published but never sequenced (`Head` never moved) rolls back
/// at recovery: its descriptor is counted, its entries revoked, and the
/// previously committed contents survive untouched.
#[test]
fn mw_unsequenced_window_rolls_back_on_recovery() {
    let devices = shard_devices(&NvmConfig::new(1 << 20, NvmTech::Pcm), 1);
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
    let p = TincaPool::format(devices.clone(), disk.clone(), mw_pool_cfg(1));

    let mut t1 = p.init_txn();
    t1.write(10, &blk(0xA1));
    p.commit(t1).unwrap();

    // Reserve, stage, publish — but never sequence: no fence, no `Head`
    // store, so the window is *not* committed.
    let mut t2 = p.init_txn();
    t2.write(20, &blk(0xB2));
    let MwAdmission::Admitted(mut w) = p.mw_try_begin(t2).unwrap() else {
        panic!("must admit");
    };
    p.mw_stage(&mut w);
    p.mw_publish(w);
    drop(p); // crash

    let r = TincaPool::recover(devices, disk, mw_pool_cfg(1)).unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    r.read(10, &mut buf).unwrap();
    assert_eq!(buf[0], 0xA1, "sequenced commit survives");
    r.read(20, &mut buf).unwrap();
    assert_eq!(buf[0], 0, "unsequenced window must roll back");
    let st = r.shard_stats(0);
    assert_eq!(st.mw_windows_rolled_back, 1);
    assert_eq!(st.mw_windows_resumed, 0);
    r.check_consistency().unwrap();

    // The rolled-back window released its resources: the same block
    // commits cleanly post-recovery.
    let mut t = r.init_txn();
    t.write(20, &blk(0xB3));
    r.commit(t).unwrap();
    r.read(20, &mut buf).unwrap();
    assert_eq!(buf[0], 0xB3);
}

/// Threaded smoke: 8 writers hammer disjoint block ranges of one shard
/// through the blocking path; all commits succeed and all contents land.
#[test]
fn mw_threaded_writers_commit_disjoint_ranges() {
    let p = std::sync::Arc::new(mw_pool(1, 4 << 20));
    let threads = 8;
    let per = 12u64;
    let mut handles = Vec::new();
    for w in 0..threads {
        let p = std::sync::Arc::clone(&p);
        handles.push(std::thread::spawn(move || {
            for i in 0..per {
                let mut t = Txn::new();
                t.write(1000 * w + i, &blk((w as u8) + 1));
                p.commit(t).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut buf = [0u8; BLOCK_SIZE];
    for w in 0..threads {
        for i in 0..per {
            p.read(1000 * w + i, &mut buf).unwrap();
            assert_eq!(buf[0], (w as u8) + 1);
        }
    }
    assert_eq!(p.stats().commits, threads * per);
    p.check_consistency().unwrap();
    p.flush_all().unwrap();
}
