// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! Crash-recovery tests (§4.5): crash the cache at *every* persistence
//! event during commits, recover, and verify transaction atomicity and
//! metadata consistency. This is a strengthened version of the paper's
//! power-pull recoverability experiment (§5.1).

use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{BlockDevice, DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{CrashPolicy, CrashTripped, NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca::{TincaCache, TincaConfig, TincaError, Txn};

const NVM_BYTES: usize = 1 << 20;
const RING_BYTES: usize = 4096;

/// Suppresses panic-hook output for the *expected* [`CrashTripped`] panics
/// that crash injection produces (they would otherwise flood test logs).
fn quiet_crash_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashTripped>().is_none() {
                default(info);
            }
        }));
    });
}

fn fresh_stack() -> (nvmsim::Nvm, blockdev::Disk) {
    quiet_crash_panics();
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(NVM_BYTES, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    (nvm, disk)
}

fn blk(byte: u8) -> [u8; BLOCK_SIZE] {
    [byte; BLOCK_SIZE]
}

/// Reads block `b` the way a rebooted system would (cache first, then disk)
/// and returns its first byte (our block payloads are constant-filled).
fn observed(cache: &TincaCache, b: u64) -> u8 {
    let mut buf = [0u8; BLOCK_SIZE];
    cache.read_nocache(b, &mut buf).unwrap();
    let first = buf[0];
    assert!(
        buf.iter().all(|&x| x == first),
        "torn block payload for {b}"
    );
    first
}

/// The core crash-atomicity check: seed blocks with version 1, commit
/// version 2 with a trip armed at event `trip`, crash with `policy`,
/// recover, and verify all-or-nothing visibility.
fn run_one_crash(trip: u64, policy: CrashPolicy, blocks: &[u64]) -> bool {
    let (nvm, disk) = fresh_stack();
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), tinca_cfg());

    // Seed: every block at version 1, committed and durable.
    let mut seed = cache.init_txn();
    for &b in blocks {
        seed.write(b, &blk(1));
    }
    cache.commit(&seed).unwrap();

    // Attempt: version 2, crashing at persistence event `trip`.
    let mut txn = cache.init_txn();
    for &b in blocks {
        txn.write(b, &blk(2));
    }
    nvm.set_trip(Some(trip)); // relative: trip events from now
    let outcome = catch_unwind(AssertUnwindSafe(|| cache.commit(&txn)));
    nvm.set_trip(None);
    let crashed = match outcome {
        Ok(Ok(())) => false,
        Ok(Err(e)) => panic!("commit failed without crash: {e}"),
        Err(p) => {
            assert!(
                p.downcast_ref::<CrashTripped>().is_some(),
                "unexpected panic kind"
            );
            true
        }
    };
    drop(cache); // DRAM state dies with the "power failure"
    nvm.crash(policy);

    let recovered = TincaCache::recover(nvm, disk, tinca_cfg()).expect("recovery must succeed");
    recovered
        .check_consistency()
        .unwrap_or_else(|e| panic!("inconsistent after recovery: {e}"));

    let versions: Vec<u8> = blocks.iter().map(|&b| observed(&recovered, b)).collect();
    let all_old = versions.iter().all(|&v| v == 1);
    let all_new = versions.iter().all(|&v| v == 2);
    assert!(
        all_old || all_new,
        "transaction torn at trip {trip}: versions {versions:?}"
    );
    if !crashed {
        assert!(all_new, "a completed commit must be durable (trip {trip})");
    }
    crashed
}

fn tinca_cfg() -> TincaConfig {
    TincaConfig {
        ring_bytes: RING_BYTES,
        ..TincaConfig::default()
    }
}

#[test]
fn crash_sweep_every_event_of_a_commit() {
    let blocks = [10u64, 20, 30];
    // Determine the event window of the second commit.
    let (nvm, disk) = fresh_stack();
    let mut cache = TincaCache::format(nvm.clone(), disk, tinca_cfg());
    let mut seed = cache.init_txn();
    for &b in &blocks {
        seed.write(b, &blk(1));
    }
    cache.commit(&seed).unwrap();
    let start = nvm.events();
    let mut txn = cache.init_txn();
    for &b in &blocks {
        txn.write(b, &blk(2));
    }
    cache.commit(&txn).unwrap();
    let window = nvm.events() - start;
    drop(cache);

    let mut crashes = 0;
    let mut completions = 0;
    // `window + 2` never fires during the commit, covering the
    // "completed, then crashed" case.
    for trip in 1..=window + 2 {
        for policy in [CrashPolicy::LoseVolatile, CrashPolicy::Random(trip * 7919)] {
            if run_one_crash(trip, policy, &blocks) {
                crashes += 1;
            } else {
                completions += 1;
            }
        }
    }
    assert!(crashes > 0, "sweep never crashed mid-commit");
    assert!(
        completions > 0,
        "sweep never reached completion (tail event)"
    );
}

#[test]
fn crash_long_after_commit_keeps_everything() {
    for policy in [
        CrashPolicy::LoseVolatile,
        CrashPolicy::PersistAll,
        CrashPolicy::Random(3),
    ] {
        let (nvm, disk) = fresh_stack();
        let mut cache = TincaCache::format(nvm.clone(), disk.clone(), tinca_cfg());
        for round in 0..5u64 {
            let mut t = cache.init_txn();
            for b in 0..8u64 {
                t.write(b, &blk(round as u8 + 1));
            }
            cache.commit(&t).unwrap();
        }
        drop(cache);
        nvm.crash(policy);
        let rec = TincaCache::recover(nvm, disk, tinca_cfg()).unwrap();
        rec.check_consistency().unwrap();
        for b in 0..8u64 {
            assert_eq!(observed(&rec, b), 5, "block {b} lost committed data");
        }
    }
}

#[test]
fn crash_before_any_commit_recovers_empty() {
    let (nvm, disk) = fresh_stack();
    let cache = TincaCache::format(nvm.clone(), disk.clone(), tinca_cfg());
    drop(cache);
    nvm.crash(CrashPolicy::LoseVolatile);
    let rec = TincaCache::recover(nvm, disk, tinca_cfg()).unwrap();
    rec.check_consistency().unwrap();
    assert_eq!(rec.cached_blocks(), 0);
    assert_eq!(rec.stats().recoveries, 1);
}

#[test]
fn recovery_of_unformatted_region_fails() {
    let (nvm, disk) = fresh_stack();
    match TincaCache::recover(nvm, disk, tinca_cfg()) {
        Err(TincaError::BadMagic { .. }) => {}
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("recovery of an unformatted region must fail"),
    }
}

#[test]
fn write_miss_crash_removes_fresh_block() {
    // A transaction writing a *fresh* block (never cached) that crashes
    // mid-commit must leave no trace of the block in the cache.
    let (nvm, disk) = fresh_stack();
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), tinca_cfg());
    let mut txn: Txn = cache.init_txn();
    txn.write(77, &blk(9));
    // Trip inside the payload flush (event window starts right away).
    nvm.set_trip(Some(10));
    let r = catch_unwind(AssertUnwindSafe(|| cache.commit(&txn)));
    assert!(r.is_err());
    drop(cache);
    nvm.crash(CrashPolicy::Random(42));
    let rec = TincaCache::recover(nvm, disk, tinca_cfg()).unwrap();
    rec.check_consistency().unwrap();
    assert!(!rec.contains(77), "fresh block of torn txn must be revoked");
    assert_eq!(observed(&rec, 77), 0);
}

#[test]
fn double_crash_during_recovery_is_idempotent() {
    // Crash mid-commit, then crash *during recovery*, then recover again.
    let blocks = [1u64, 2, 3, 4];
    let (nvm, disk) = fresh_stack();
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), tinca_cfg());
    let mut seed = cache.init_txn();
    for &b in &blocks {
        seed.write(b, &blk(1));
    }
    cache.commit(&seed).unwrap();
    let start = nvm.events();

    let mut txn = cache.init_txn();
    for &b in &blocks {
        txn.write(b, &blk(2));
    }
    // Crash near the end of the commit (role-switch region) so recovery
    // has real revocation work to do.
    let (nvm2, disk2) = fresh_stack();
    let mut probe = TincaCache::format(nvm2.clone(), disk2, tinca_cfg());
    let mut p1 = probe.init_txn();
    for &b in &blocks {
        p1.write(b, &blk(1));
    }
    probe.commit(&p1).unwrap();
    let p_start = nvm2.events();
    let mut p2 = probe.init_txn();
    for &b in &blocks {
        p2.write(b, &blk(2));
    }
    probe.commit(&p2).unwrap();
    let commit_events = nvm2.events() - p_start;

    let _ = start;
    nvm.set_trip(Some(commit_events - 3));
    let r = catch_unwind(AssertUnwindSafe(|| cache.commit(&txn)));
    assert!(r.is_err(), "commit should crash near its end");
    drop(cache);
    nvm.crash(CrashPolicy::Random(7));

    // First recovery: crash it at every possible event.
    let probe_rec = TincaCache::recover(nvm.clone(), disk.clone(), tinca_cfg()).unwrap();
    drop(probe_rec);
    // nvm now reflects a *completed* first recovery; capture how many
    // events a full recovery takes by re-crashing and measuring.
    // Simpler: sweep a bounded number of trip points on fresh replays.
    for trip in 1..40u64 {
        let (nvm_i, disk_i) = fresh_stack();
        let mut c = TincaCache::format(nvm_i.clone(), disk_i.clone(), tinca_cfg());
        let mut s = c.init_txn();
        for &b in &blocks {
            s.write(b, &blk(1));
        }
        c.commit(&s).unwrap();
        let mut t = c.init_txn();
        for &b in &blocks {
            t.write(b, &blk(2));
        }
        nvm_i.set_trip(Some(commit_events - 3));
        let r = catch_unwind(AssertUnwindSafe(|| c.commit(&t)));
        assert!(r.is_err());
        drop(c);
        nvm_i.crash(CrashPolicy::Random(trip));

        // First recovery, tripped at `trip` events in.
        nvm_i.set_trip(Some(trip));
        let r1 = catch_unwind(AssertUnwindSafe(|| {
            TincaCache::recover(nvm_i.clone(), disk_i.clone(), tinca_cfg())
        }));
        match r1 {
            Ok(Ok(rec1)) => {
                // Recovery finished before the trip.
                nvm_i.set_trip(None);
                rec1.check_consistency().unwrap();
                let v: Vec<u8> = blocks.iter().map(|&b| observed(&rec1, b)).collect();
                assert!(
                    v.iter().all(|&x| x == 1) || v.iter().all(|&x| x == 2),
                    "{v:?}"
                );
            }
            Ok(Err(e)) => panic!("recovery error: {e}"),
            Err(_) => {
                // Crashed during recovery; crash the device and re-recover.
                nvm_i.crash(CrashPolicy::Random(trip ^ 0xABCD));
                let rec2 =
                    TincaCache::recover(nvm_i, disk_i, tinca_cfg()).expect("second recovery");
                rec2.check_consistency()
                    .unwrap_or_else(|e| panic!("inconsistent after double crash: {e}"));
                let v: Vec<u8> = blocks.iter().map(|&b| observed(&rec2, b)).collect();
                assert!(
                    v.iter().all(|&x| x == 1) || v.iter().all(|&x| x == 2),
                    "torn after double crash at trip {trip}: {v:?}"
                );
            }
        }
    }
}

#[test]
fn crash_with_dirty_cache_preserves_committed_data_not_yet_on_disk() {
    // Committed data lives only in NVM (write-back). After a crash it must
    // still be readable even though the disk never saw it.
    let (nvm, disk) = fresh_stack();
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), tinca_cfg());
    let mut t = cache.init_txn();
    t.write(500, &blk(0x77));
    cache.commit(&t).unwrap();
    assert_eq!(disk.stats().writes, 0);
    drop(cache);
    nvm.crash(CrashPolicy::LoseVolatile);
    let rec = TincaCache::recover(nvm, disk, tinca_cfg()).unwrap();
    assert_eq!(observed(&rec, 500), 0x77);
}

#[test]
fn mixed_hit_miss_transaction_crash_atomicity() {
    // A txn mixing write hits (COW path) and write misses (FRESH path):
    // sweep several crash points and check atomicity of the whole set.
    let hits = [1u64, 2];
    let misses = [100u64, 101];
    // Measure event window.
    let (nvm0, disk0) = fresh_stack();
    let mut c0 = TincaCache::format(nvm0.clone(), disk0, tinca_cfg());
    let mut s0 = c0.init_txn();
    for &b in &hits {
        s0.write(b, &blk(1));
    }
    c0.commit(&s0).unwrap();
    let e0 = nvm0.events();
    let mut t0 = c0.init_txn();
    for &b in &hits {
        t0.write(b, &blk(2));
    }
    for &b in &misses {
        t0.write(b, &blk(2));
    }
    c0.commit(&t0).unwrap();
    let window = nvm0.events() - e0;

    for frac in 1..=10u64 {
        let trip_off = window * frac / 10;
        let (nvm, disk) = fresh_stack();
        let mut cache = TincaCache::format(nvm.clone(), disk.clone(), tinca_cfg());
        let mut seed = cache.init_txn();
        for &b in &hits {
            seed.write(b, &blk(1));
        }
        cache.commit(&seed).unwrap();
        let mut txn = cache.init_txn();
        for &b in &hits {
            txn.write(b, &blk(2));
        }
        for &b in &misses {
            txn.write(b, &blk(2));
        }
        nvm.set_trip(Some(trip_off.max(1)));
        let crashed = catch_unwind(AssertUnwindSafe(|| cache.commit(&txn))).is_err();
        nvm.set_trip(None);
        drop(cache);
        nvm.crash(CrashPolicy::Random(frac));
        let rec = TincaCache::recover(nvm, disk, tinca_cfg()).unwrap();
        rec.check_consistency().unwrap();
        let hv: Vec<u8> = hits.iter().map(|&b| observed(&rec, b)).collect();
        let mv: Vec<u8> = misses.iter().map(|&b| observed(&rec, b)).collect();
        let all_old = hv.iter().all(|&v| v == 1) && mv.iter().all(|&v| v == 0);
        let all_new = hv.iter().all(|&v| v == 2) && mv.iter().all(|&v| v == 2);
        assert!(
            all_old || all_new,
            "torn mixed txn at {trip_off}/{window} (crashed={crashed}): hits {hv:?} misses {mv:?}"
        );
    }
}

#[test]
fn recovery_counts_revoked_blocks() {
    let (nvm, disk) = fresh_stack();
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), tinca_cfg());
    let mut txn = cache.init_txn();
    for b in 0..4u64 {
        txn.write(b, &blk(1));
    }
    // Crash late in the commit so several blocks are in flight.
    nvm.set_trip(Some(200));
    let crashed = catch_unwind(AssertUnwindSafe(|| cache.commit(&txn))).is_err();
    drop(cache);
    nvm.crash(CrashPolicy::LoseVolatile);
    let rec = TincaCache::recover(nvm, disk, tinca_cfg()).unwrap();
    if crashed {
        assert!(
            rec.stats().revoked_blocks > 0,
            "crash mid-commit should revoke blocks"
        );
    }
    rec.check_consistency().unwrap();
}

#[test]
fn recovery_across_ring_wraparound() {
    // Drive the ring close to its capacity boundary, then crash a commit
    // whose window wraps around the end of the ring; recovery must walk
    // the wrapped window correctly.
    quiet_crash_panics();
    let (nvm, disk) = fresh_stack();
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), tinca_cfg());
    let ring_cap = RING_BYTES as u64 / 8;
    // Advance Head/Tail to just short of a multiple of the capacity.
    let mut advanced = 0u64;
    let mut b = 1000u64;
    while advanced < ring_cap - 2 {
        let batch = 8.min(ring_cap - 2 - advanced).max(1);
        let mut t = cache.init_txn();
        for k in 0..batch {
            t.write(b + k, &blk(1));
        }
        cache.commit(&t).unwrap();
        advanced += batch;
        b += batch;
    }
    // Seed the victim blocks with version 1.
    let victims = [1u64, 2, 3, 4, 5];
    let mut seed = cache.init_txn();
    for &v in &victims {
        seed.write(v, &blk(1));
    }
    cache.commit(&seed).unwrap(); // this txn itself wraps the ring
                                  // Now crash a wrapping update mid-commit.
    let mut txn = cache.init_txn();
    for &v in &victims {
        txn.write(v, &blk(2));
    }
    nvm.set_trip(Some(300)); // inside the per-block phase
    let crashed = catch_unwind(AssertUnwindSafe(|| cache.commit(&txn))).is_err();
    drop(cache);
    nvm.crash(CrashPolicy::Random(77));
    let rec = TincaCache::recover(nvm, disk, tinca_cfg()).unwrap();
    rec.check_consistency().unwrap();
    let versions: Vec<u8> = victims.iter().map(|&v| observed(&rec, v)).collect();
    let all_old = versions.iter().all(|&v| v == 1);
    let all_new = versions.iter().all(|&v| v == 2);
    assert!(all_old || all_new, "wrapped-window txn torn: {versions:?}");
    if !crashed {
        assert!(all_new);
    }
}

/// Recovering with a config whose geometry disagrees with the NVM header
/// must fail with a structured error naming the first mismatching field —
/// not panic — and must leave the region recoverable with the right
/// config. (Regression: this used to be an `assert_eq!`.)
#[test]
fn recover_with_wrong_geometry_returns_structured_error() {
    let (nvm, disk) = fresh_stack();
    let cfg = TincaConfig {
        ring_bytes: RING_BYTES,
        ..TincaConfig::default()
    };
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), cfg.clone());
    let mut t = cache.init_txn();
    t.write(3, &blk(0x42));
    cache.commit(&t).unwrap();
    drop(cache);

    let wrong = TincaConfig {
        ring_bytes: RING_BYTES * 2,
        ..TincaConfig::default()
    };
    match TincaCache::recover(nvm.clone(), disk.clone(), wrong) {
        Err(TincaError::GeometryMismatch {
            field,
            found,
            expected,
        }) => {
            assert_eq!(field, "ring_cap");
            assert_eq!(found, (RING_BYTES / 8) as u64);
            assert_eq!(expected, (RING_BYTES * 2 / 8) as u64);
        }
        Err(other) => panic!("expected GeometryMismatch, got {other:?}"),
        Ok(_) => panic!("recovery with wrong geometry must fail"),
    }

    // The failed attempt read the header only; the right config recovers
    // the region and the committed block intact.
    let cache = TincaCache::recover(nvm, disk, cfg).unwrap();
    cache.check_consistency().unwrap();
    assert_eq!(observed(&cache, 3), 0x42);
}
