// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! Property-based tests for the multi-writer lock-free commit path
//! (DESIGN §16), driven through the steppable reserve/stage/publish/
//! sequence API — deterministic single-thread interleavings, no OS
//! threads.
//!
//! Two properties anchor the protocol:
//!
//! * **Contiguous durable prefix** — whatever subset of windows is
//!   published, in whatever order, and wherever a crash lands (before
//!   sequencing, mid-sequence, or after), the set of windows whose
//!   contents survive recovery is a contiguous prefix of the ring
//!   (reservation) order, each window all-or-nothing.
//! * **Exactly-once resume/roll-back** — recovery judges every
//!   in-flight window exactly once: a second crash-and-recover finds no
//!   window left to judge and changes nothing.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{shard_devices, CrashPolicy, CrashTripped, NvmConfig, NvmTech, SimClock};
use proptest::prelude::*;
use tinca::{CommitMode, MwAdmission, MwTicket, PoolConfig, TincaConfig, TincaPool};

fn blk(byte: u8) -> [u8; BLOCK_SIZE] {
    [byte; BLOCK_SIZE]
}

fn mw_cfg() -> PoolConfig {
    PoolConfig {
        shards: 1,
        commit_mode: CommitMode::LockFreeRing,
        cache: TincaConfig {
            ring_bytes: 4096,
            ..TincaConfig::default()
        },
        ..PoolConfig::default()
    }
}

/// One window of the generated round: disjoint block ranges, a distinct
/// fill value per window so reads identify the version.
#[derive(Clone, Debug)]
struct WindowSpec {
    blocks: Vec<u64>,
    fill: u8,
}

fn window_specs(lens: &[usize]) -> Vec<WindowSpec> {
    let mut next = 0u64;
    lens.iter()
        .enumerate()
        .map(|(i, &len)| {
            let blocks: Vec<u64> = (next..next + len as u64).collect();
            next += len as u64;
            WindowSpec {
                blocks,
                fill: 100 + i as u8,
            }
        })
        .collect()
}

/// Applies a permutation given as ranking keys (stable by index).
fn permute<T>(items: Vec<T>, keys: &[u64]) -> Vec<T> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (keys.get(i).copied().unwrap_or(0), i));
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    order
        .into_iter()
        .map(|i| slots[i].take().expect("permutation visits once"))
        .collect()
}

fn quiet_crash_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashTripped>().is_none() {
                default(info);
            }
        }));
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Crash-free interleavings: rounds of possibly-conflicting
    /// transactions admitted through the steppable API, published in a
    /// permuted order and drained. The pool must read back exactly like
    /// a flat map applied in admission (ring) order — publication order
    /// must not leak into visible state.
    #[test]
    fn mw_interleavings_match_model(
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec(
                    proptest::collection::vec((0..48u64, 1..=250u8), 1..4),
                    1..5,
                ),
                proptest::collection::vec(any::<u64>(), 5),
            ),
            1..8,
        ),
    ) {
        let p = TincaPool::format(
            shard_devices(&NvmConfig::new(1 << 20, NvmTech::Pcm), 1),
            SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new()),
            mw_cfg(),
        );
        let mut model: HashMap<u64, u8> = HashMap::new();

        for (txns, pub_keys) in rounds {
            let mut pending: Vec<MwTicket> = Vec::new();
            for writes in txns {
                let mut txn = p.init_txn();
                for (b, v) in &writes {
                    txn.write(*b, &blk(*v));
                }
                loop {
                    match p.mw_try_begin(txn).unwrap() {
                        MwAdmission::Admitted(mut t) => {
                            p.mw_stage(&mut t);
                            pending.push(t);
                            // Ring order == admission order, so the model
                            // applies the writes now.
                            for (b, v) in writes {
                                model.insert(b, v);
                            }
                            break;
                        }
                        MwAdmission::Busy(t) => {
                            // Conflict with an in-flight window: publish
                            // and drain everything pending, then retry.
                            txn = t;
                            for w in std::mem::take(&mut pending) {
                                p.mw_publish(w);
                            }
                            while p.mw_sequence(0) > 0 {}
                        }
                    }
                }
            }
            // Publish the round in an arbitrary order; the sequencer may
            // only ever retire ring-order prefixes.
            for w in permute(pending, &pub_keys) {
                p.mw_publish(w);
            }
            while p.mw_sequence(0) > 0 {}
        }

        p.check_consistency().unwrap();
        let mut buf = [0u8; BLOCK_SIZE];
        for (&b, &v) in &model {
            p.read(b, &mut buf).unwrap();
            prop_assert_eq!(buf, blk(v), "block {} diverged from model", b);
        }
        p.flush_all().unwrap();
    }

    /// Crashing interleavings: stage every window, publish an arbitrary
    /// subset in an arbitrary order, optionally sequence (with a trip
    /// armed at a random persistence event), then cut power and resolve
    /// the un-fenced write-back state adversarially. After recovery the
    /// durable windows must form a contiguous ring-order prefix of the
    /// published ones, each all-or-nothing; a second crash-and-recover
    /// must judge nothing (exactly-once) and change nothing.
    #[test]
    fn mw_crash_recovers_contiguous_prefix_exactly_once(
        lens in proptest::collection::vec(1..=3usize, 1..=6),
        stage_keys in proptest::collection::vec(any::<u64>(), 6),
        publish_mask in proptest::collection::vec(any::<bool>(), 6),
        pub_keys in proptest::collection::vec(any::<u64>(), 6),
        sequence in proptest::option::of(proptest::option::of(1..600u64)),
        crash_seed in proptest::option::of(any::<u64>()),
    ) {
        quiet_crash_panics();
        let devices = shard_devices(&NvmConfig::new(1 << 20, NvmTech::Pcm), 1);
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 20, SimClock::new());
        let p = TincaPool::format(devices.clone(), disk.clone(), mw_cfg());
        let windows = window_specs(&lens);
        let k = windows.len();

        // Base state: every window block plus two bystanders hold 9.
        let mut base = p.init_txn();
        for w in &windows {
            for &b in &w.blocks {
                base.write(b, &blk(9));
            }
        }
        let bystanders = [60u64, 61u64];
        for &b in &bystanders {
            base.write(b, &blk(9));
        }
        p.commit(base).unwrap();

        // Reserve all windows in order; stage in a permuted order.
        let mut tickets: Vec<(usize, MwTicket)> = Vec::new();
        for w in &windows {
            let mut txn = p.init_txn();
            for &b in &w.blocks {
                txn.write(b, &blk(w.fill));
            }
            let MwAdmission::Admitted(t) = p.mw_try_begin(txn).unwrap() else {
                panic!("disjoint windows must admit");
            };
            tickets.push((tickets.len(), t));
        }
        for (_, t) in permute(tickets.iter_mut().collect(), &stage_keys) {
            p.mw_stage(t);
        }

        // Publish the masked subset in a permuted order.
        let published: Vec<bool> = (0..k).map(|i| publish_mask[i]).collect();
        let to_publish: Vec<(usize, MwTicket)> = tickets
            .into_iter()
            .filter(|(i, _)| published[*i])
            .collect();
        for (_, t) in permute(to_publish, &pub_keys) {
            p.mw_publish(t);
        }

        // The longest published ring-order prefix — the most that can
        // ever become durable.
        let max_prefix = published.iter().take_while(|&&p| p).count();

        // Optionally sequence, possibly tripping a crash mid-way.
        let mut tripped = false;
        if let Some(trip) = sequence {
            if let Some(at) = trip {
                devices[0].set_trip(Some(at));
            }
            loop {
                match catch_unwind(AssertUnwindSafe(|| p.mw_sequence(0))) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(_) => {
                        tripped = true;
                        break;
                    }
                }
            }
            devices[0].set_trip(None);
        }

        // Power cut: resolve un-fenced write-backs adversarially.
        drop(p);
        match crash_seed {
            Some(s) => devices[0].crash(CrashPolicy::Random(s)),
            None => devices[0].crash(CrashPolicy::LoseVolatile),
        }

        let r = TincaPool::recover(devices.clone(), disk.clone(), mw_cfg()).unwrap();
        r.check_consistency().unwrap();

        // Classify each window: all-new, all-old, or torn (forbidden).
        let classify = |pool: &TincaPool| -> Vec<bool> {
            let mut buf = [0u8; BLOCK_SIZE];
            windows
                .iter()
                .map(|w| {
                    let mut news = 0;
                    for &b in &w.blocks {
                        pool.read_nocache(b, &mut buf).unwrap();
                        assert!(
                            buf.iter().all(|&x| x == buf[0]),
                            "torn payload in block {b}"
                        );
                        match buf[0] {
                            v if v == w.fill => news += 1,
                            9 => {}
                            v => panic!("block {b} holds foreign value {v}"),
                        }
                    }
                    assert!(
                        news == 0 || news == w.blocks.len(),
                        "window torn: {news}/{} blocks new",
                        w.blocks.len()
                    );
                    news > 0
                })
                .collect()
        };
        let durable = classify(&r);
        let p_len = durable.iter().take_while(|&&d| d).count();
        prop_assert!(
            durable.iter().skip(p_len).all(|&d| !d),
            "durable windows not a contiguous ring prefix: {:?}",
            durable
        );
        prop_assert!(
            p_len <= max_prefix,
            "unpublished window became durable: {} > {}",
            p_len,
            max_prefix
        );
        if sequence.is_some() && !tripped {
            // Sequencing completed before the cut: Head and Tail were
            // fenced durable, so the crash cannot shrink the prefix.
            prop_assert_eq!(
                p_len, max_prefix,
                "fully sequenced prefix lost to the crash"
            );
        }
        let mut buf = [0u8; BLOCK_SIZE];
        for &b in &bystanders {
            r.read_nocache(b, &mut buf).unwrap();
            prop_assert_eq!(buf, blk(9), "bystander block {} damaged", b);
        }
        let st = r.shard_stats(0);
        prop_assert!(
            st.mw_windows_resumed as usize <= p_len,
            "resumed {} windows but only {} are durable",
            st.mw_windows_resumed,
            p_len
        );

        // Exactly-once: recovery already resumed or rolled back every
        // in-flight window, so a second crash-and-recover judges nothing
        // and the visible state is unchanged.
        drop(r);
        devices[0].crash(CrashPolicy::LoseVolatile);
        let r2 = TincaPool::recover(devices, disk, mw_cfg()).unwrap();
        r2.check_consistency().unwrap();
        let st2 = r2.shard_stats(0);
        prop_assert_eq!(st2.mw_windows_resumed, 0, "window resumed twice");
        prop_assert_eq!(st2.mw_windows_rolled_back, 0, "window rolled back twice");
        let durable2 = classify(&r2);
        prop_assert_eq!(durable, durable2, "second recovery changed state");
    }
}
