// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! Write-behind destage pipeline and commit-path flush coalescing:
//! watermark behavior, foreground-latency benefit, durability, and the
//! eviction-error accounting regression.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{BlockDevice, DiskKind, FaultPlan, FaultyDisk, SimDisk, BLOCK_SIZE};
use nvmsim::{CrashPolicy, CrashTripped, NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca::{StatsSnapshot, TincaCache, TincaConfig};

const NVM_BYTES: usize = 256 << 10; // 61 data blocks
const RING_BYTES: usize = 4096;

fn cfg(destage: bool, coalesce: bool) -> TincaConfig {
    TincaConfig {
        ring_bytes: RING_BYTES,
        destage,
        coalesce_flushes: coalesce,
        ..TincaConfig::default()
    }
}

fn stack(kind: DiskKind) -> (nvmsim::Nvm, blockdev::Disk, SimClock) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(NVM_BYTES, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(kind, 1 << 16, clock.clone());
    (nvm, disk, clock)
}

fn blk(byte: u8) -> [u8; BLOCK_SIZE] {
    [byte; BLOCK_SIZE]
}

/// One-block transactions over `span` distinct disk blocks, `n` commits.
fn write_cycle(cache: &mut TincaCache, n: u64, span: u64) {
    for i in 0..n {
        let mut t = cache.init_txn();
        t.write(i % span, &blk((i % 251) as u8));
        cache.commit(&t).unwrap();
    }
}

#[test]
fn destage_fires_below_low_watermark_and_keeps_victims_clean() {
    let (nvm, disk, _) = stack(DiskKind::Ssd);
    let mut cache = TincaCache::format(nvm, disk, cfg(true, false));
    let capacity = cache.data_block_count() as u64;
    // Dirty more blocks than the high watermark allows to stay dirty.
    write_cycle(&mut cache, capacity - 2, capacity - 2);
    let s = cache.stats();
    assert!(s.destage_batches > 0, "daemon never fired: {s:?}");
    assert!(s.destage_blocks > 0);
    assert_eq!(s.destage_stalls, 0, "no eviction happened yet");
    // The supply (free + clean) must be back at or above the low mark.
    let supply = cache.free_block_count() + cache.cached_blocks() - cache.dirty_block_count();
    let low = capacity as usize * cache.config().destage_low_water_pct as usize / 100;
    assert!(supply >= low, "supply {supply} still below low mark {low}");
    cache.check_consistency().unwrap();
}

#[test]
fn destage_disabled_never_touches_the_disk_early() {
    let (nvm, disk, _) = stack(DiskKind::Ssd);
    let mut cache = TincaCache::format(nvm, disk.clone(), cfg(false, false));
    let capacity = cache.data_block_count() as u64;
    write_cycle(&mut cache, capacity - 2, capacity - 2);
    assert_eq!(cache.stats().destage_batches, 0);
    assert_eq!(cache.stats().writebacks, 0);
    assert_eq!(disk.stats().writes, 0, "write-back cache wrote early");
}

#[test]
fn destage_cuts_foreground_time_on_eviction_heavy_writes() {
    // Same workload, destage off vs on; evictions dominate. With the
    // daemon keeping the LRU tail clean, the foreground path stops
    // paying synchronous writebacks, so simulated wall time drops.
    let run = |destage: bool| {
        let (nvm, disk, clock) = stack(DiskKind::Ssd);
        let mut cache = TincaCache::format(nvm, disk, cfg(destage, false));
        let span = cache.data_block_count() as u64 * 2;
        write_cycle(&mut cache, span * 2, span);
        let s = cache.stats();
        (clock.now_ns(), s)
    };
    let (off_ns, off) = run(false);
    let (on_ns, on) = run(true);
    assert!(off.evictions > 0 && on.evictions > 0);
    assert!(on.destage_blocks > 0);
    assert!(
        on_ns < off_ns,
        "destage should cut foreground time: on={on_ns} off={off_ns}"
    );
    // The work still happened — on the background lane.
    assert!(on.writebacks >= off.writebacks / 2);
}

#[test]
fn flush_all_after_destage_leaves_disk_image_complete() {
    let (nvm, disk, _) = stack(DiskKind::Hdd);
    let mut cache = TincaCache::format(nvm, disk.clone(), cfg(true, false));
    let capacity = cache.data_block_count() as u64;
    let span = capacity + 10;
    write_cycle(&mut cache, span * 2, span);
    cache.flush_all().unwrap();
    assert_eq!(cache.dirty_block_count(), 0);
    // Every block readable with its last-committed payload.
    let mut buf = [0u8; BLOCK_SIZE];
    for b in 0..span {
        let last = (0..span * 2).rev().find(|i| i % span == b).unwrap();
        cache.read(b, &mut buf).unwrap();
        assert_eq!(buf, blk((last % 251) as u8), "block {b}");
    }
    cache.check_consistency().unwrap();
}

#[test]
fn destage_survives_recovery_and_rebuilds_dirty_count() {
    let (nvm, disk, _) = stack(DiskKind::Ssd);
    let c = cfg(true, true);
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), c.clone());
    let capacity = cache.data_block_count() as u64;
    write_cycle(&mut cache, capacity - 2, capacity - 2);
    let dirty_before = cache.dirty_block_count();
    drop(cache);
    let rec = TincaCache::recover(nvm, disk, c).unwrap();
    rec.check_consistency().unwrap();
    assert_eq!(rec.dirty_block_count(), dirty_before);
}

#[test]
fn coalescing_reduces_clflush_without_changing_contents() {
    let run = |coalesce: bool| {
        let (nvm, disk, _) = stack(DiskKind::Ssd);
        let mut cache = TincaCache::format(nvm.clone(), disk, cfg(false, coalesce));
        // Multi-block transactions: entries allocated together share
        // 64 B lines, which is where coalescing wins.
        for i in 0..8u64 {
            let mut t = cache.init_txn();
            for j in 0..6u64 {
                t.write(i * 6 + j, &blk((i * 6 + j) as u8));
            }
            cache.commit(&t).unwrap();
        }
        cache.check_consistency().unwrap();
        let mut buf = [0u8; BLOCK_SIZE];
        let mut contents = Vec::new();
        for b in 0..48u64 {
            cache.read(b, &mut buf).unwrap();
            contents.push(buf);
        }
        (StatsSnapshot::collect(&cache), contents)
    };
    let (base, base_contents) = run(false);
    let (co, co_contents) = run(true);
    assert_eq!(base_contents, co_contents);
    assert!(co.cache.coalesced_flushes > 0);
    assert!(
        co.nvm.clflush < base.nvm.clflush,
        "coalescing must reduce clflush: {} vs {}",
        co.nvm.clflush,
        base.nvm.clflush
    );
    assert_eq!(
        co.nvm.clflush + co.cache.coalesced_flushes,
        base.nvm.clflush,
        "every elided flush must be accounted"
    );
}

/// Regression: a failed eviction used to be silently swallowed
/// (`let _ = self.evict(idx)`); it must surface in `eviction_errors`
/// and quarantine the victim.
#[test]
fn failed_eviction_is_counted_and_quarantined() {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(NVM_BYTES, NvmTech::Pcm), clock.clone());
    let inner = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    // Disk block 0 is permanently bad: its dirty writeback can't succeed.
    let disk = FaultyDisk::new(inner, FaultPlan::quiet(7).with_bad_range(0..1));
    let mut cache = TincaCache::format(nvm, disk, cfg(false, false));
    let capacity = cache.data_block_count() as u64;
    // Block 0 first → it becomes the LRU victim once the pool drains.
    write_cycle(&mut cache, capacity * 2, capacity * 2);
    let s = cache.stats();
    assert!(s.eviction_errors >= 1, "failed eviction not counted: {s:?}");
    assert_eq!(s.eviction_errors, s.permanent_io_errors);
    assert!(cache.quarantined_count() >= 1);
    cache.check_consistency().unwrap();
}

#[test]
fn destage_quarantines_bad_blocks_and_retries_transients() {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(NVM_BYTES, NvmTech::Pcm), clock.clone());
    let inner = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let disk = FaultyDisk::new(
        inner,
        FaultPlan::quiet(13)
            .with_bad_range(3..4)
            .with_transient_writes(120),
    );
    let mut cache = TincaCache::format(nvm, disk, cfg(true, false));
    let capacity = cache.data_block_count() as u64;
    write_cycle(&mut cache, capacity - 2, capacity - 2);
    let s = cache.stats();
    assert!(s.destage_batches > 0);
    // The bad block never destages: it is quarantined, not lost.
    assert!(cache.quarantined_count() >= 1);
    assert!(cache.contains(3), "bad block must stay pinned in NVM");
    assert!(
        s.io_retries > 0 && s.transient_errors_absorbed > 0,
        "transient faults should be retried on the lane: {s:?}"
    );
    cache.check_consistency().unwrap();
}

/// Suppresses panic-hook output for the *expected* [`CrashTripped`]
/// panics crash injection produces.
fn quiet_crash_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashTripped>().is_none() {
                default(info);
            }
        }));
    });
}

/// One crash run under destage pressure: commit one-block transactions
/// over `capacity + 16` blocks (the daemon fires repeatedly), trip a
/// crash at persistence event `trip`, resolve un-fenced state per
/// `policy`, recover, and verify no acknowledged commit is lost.
/// Returns (crashed, destage batches completed before the crash).
fn run_crash_destage(trip: u64, policy: CrashPolicy) -> (bool, u64) {
    let (nvm, disk, _) = stack(DiskKind::Ssd);
    let c = cfg(true, true);
    let mut cache = TincaCache::format(nvm.clone(), disk.clone(), c.clone());
    let span = cache.data_block_count() as u64 + 16;
    // Oracle of acknowledged commits; `in_flight` is the one transaction
    // the crash may legitimately have torn down to all-or-nothing.
    let mut durable: HashMap<u64, u8> = HashMap::new();
    let mut in_flight: Option<(u64, u8)> = None;
    nvm.set_trip(Some(trip));
    let crashed = {
        let (cache, durable, in_flight) = (&mut cache, &mut durable, &mut in_flight);
        catch_unwind(AssertUnwindSafe(move || {
            for i in 0..span * 2 {
                let (b, v) = (i % span, (i % 251) as u8 + 1);
                *in_flight = Some((b, v));
                let mut t = cache.init_txn();
                t.write(b, &blk(v));
                cache.commit(&t).unwrap();
                durable.insert(b, v);
                *in_flight = None;
            }
        }))
        .is_err()
    };
    nvm.set_trip(None);
    let batches = cache.stats().destage_batches;
    drop(cache); // DRAM dies with the power failure
    nvm.crash(policy);

    let rec = TincaCache::recover(nvm, disk, c).expect("recovery must succeed");
    rec.check_consistency()
        .unwrap_or_else(|e| panic!("inconsistent after trip {trip}: {e}"));
    let staged = in_flight.filter(|_| crashed);
    let mut buf = [0u8; BLOCK_SIZE];
    for (&b, &v) in &durable {
        rec.read_nocache(b, &mut buf)
            .unwrap_or_else(|e| panic!("acknowledged block {b} unreadable: {e}"));
        let got = buf[0];
        assert!(
            buf.iter().all(|&x| x == got),
            "block {b} torn at trip {trip}"
        );
        match staged {
            // The interrupted transaction may have committed or not —
            // but nothing in between, and never a third value.
            Some((sb, sv)) if sb == b => assert!(
                got == v || got == sv,
                "block {b} read {got} at trip {trip}: neither old {v} nor in-flight {sv}"
            ),
            _ => assert_eq!(got, v, "block {b} lost acknowledged commit at trip {trip}"),
        }
    }
    (crashed, batches)
}

/// The pipeline's headline crash property: a power cut at any persistence
/// event — including in the middle of a background destage batch — never
/// loses a commit that was acknowledged to the caller.
#[test]
fn crash_mid_destage_never_loses_an_acknowledged_commit() {
    quiet_crash_panics();
    // Measure the run's full persistence-event window once, untripped,
    // and confirm the workload exercises the daemon at all.
    let window = {
        let (nvm, disk, _) = stack(DiskKind::Ssd);
        let mut cache = TincaCache::format(nvm.clone(), disk, cfg(true, true));
        let span = cache.data_block_count() as u64 + 16;
        write_cycle(&mut cache, span * 2, span);
        assert!(cache.stats().destage_batches > 0, "workload never destages");
        nvm.events()
    };
    // Stride trips across the whole window; two resolution policies each.
    let sweeps = 32u64;
    let mut crashed_after_destage = 0u64;
    let mut completions = 0u64;
    // `window + 2` never fires: the "ran to completion" control case.
    for k in 0..=sweeps {
        let trip = if k == sweeps {
            window + 2
        } else {
            1 + k * window / sweeps
        };
        for policy in [
            CrashPolicy::Random(trip ^ 0xD157),
            CrashPolicy::LoseVolatile,
        ] {
            let (crashed, batches) = run_crash_destage(trip, policy);
            if crashed && batches > 0 {
                crashed_after_destage += 1;
            }
            if !crashed {
                completions += 1;
            }
        }
    }
    assert!(
        crashed_after_destage > 0,
        "sweep never crashed after the daemon started — widen the trip range"
    );
    assert!(completions > 0, "sweep never reached completion");
}
