//! Error type for cache operations.

use std::fmt;

/// Errors reported by [`crate::TincaCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TincaError {
    /// The transaction stages more blocks than the ring buffer can record.
    TxnTooLarge { blocks: usize, ring_cap: u64 },
    /// The transaction cannot fit in the cache even after evicting every
    /// unpinned block (a committing transaction may pin up to two NVM
    /// blocks per staged block, §5.4.3). `available` counts the free pool
    /// plus every block evictable during this commit.
    CacheExhausted { needed: usize, available: usize },
    /// No evictable victim was found while allocating a block mid-commit.
    NoVictim,
    /// The NVM region does not carry a valid Tinca header.
    BadMagic { found: u64 },
}

impl fmt::Display for TincaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TincaError::TxnTooLarge { blocks, ring_cap } => {
                write!(
                    f,
                    "transaction of {blocks} blocks exceeds ring capacity {ring_cap}"
                )
            }
            TincaError::CacheExhausted { needed, available } => {
                write!(
                    f,
                    "transaction needs up to {needed} NVM blocks but only {available} \
                     are free or evictable"
                )
            }
            TincaError::NoVictim => write!(f, "no evictable cache block (all pinned)"),
            TincaError::BadMagic { found } => {
                write!(f, "NVM region is not a Tinca cache (magic {found:#x})")
            }
        }
    }
}

impl std::error::Error for TincaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TincaError::TxnTooLarge {
            blocks: 100,
            ring_cap: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
        let e = TincaError::BadMagic { found: 0xabc };
        assert!(e.to_string().contains("0xabc"));
    }
}
