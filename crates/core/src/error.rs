//! Error type for cache operations.

use std::fmt;

use blockdev::IoError;

/// Errors reported by [`crate::TincaCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TincaError {
    /// The transaction stages more blocks than the ring buffer can record.
    TxnTooLarge { blocks: usize, ring_cap: u64 },
    /// The transaction cannot fit in the cache even after evicting every
    /// unpinned block (a committing transaction may pin up to two NVM
    /// blocks per staged block, §5.4.3). `available` counts the free pool
    /// plus every block evictable during this commit.
    CacheExhausted { needed: usize, available: usize },
    /// No evictable victim was found while allocating a block mid-commit.
    NoVictim,
    /// The NVM region does not carry a valid Tinca header.
    BadMagic { found: u64 },
    /// The NVM header disagrees with the geometry derived from the current
    /// configuration (e.g. the region was formatted with a different
    /// `ring_bytes` or capacity). Recovering with mismatched geometry
    /// would misaddress every entry and data block, so recovery refuses.
    GeometryMismatch {
        /// Which header field disagrees (`"ring_cap"`, `"entry_count"`,
        /// `"data_blocks"`).
        field: &'static str,
        /// The value stored in the NVM header.
        found: u64,
        /// The value the current configuration expects.
        expected: u64,
    },
    /// `flush_all` was called while a transaction was mid-commit
    /// (`Head != Tail`): flushing would write back blocks the crash
    /// protocol may still revoke.
    CommitInProgress { head: u64, tail: u64 },
    /// A disk I/O failed after exhausting the configured retries (or
    /// immediately, for permanent faults).
    Io(IoError),
}

impl From<IoError> for TincaError {
    fn from(e: IoError) -> Self {
        TincaError::Io(e)
    }
}

impl fmt::Display for TincaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TincaError::TxnTooLarge { blocks, ring_cap } => {
                write!(
                    f,
                    "transaction of {blocks} blocks exceeds ring capacity {ring_cap}"
                )
            }
            TincaError::CacheExhausted { needed, available } => {
                write!(
                    f,
                    "transaction needs up to {needed} NVM blocks but only {available} \
                     are free or evictable"
                )
            }
            TincaError::NoVictim => write!(f, "no evictable cache block (all pinned)"),
            TincaError::BadMagic { found } => {
                write!(f, "NVM region is not a Tinca cache (magic {found:#x})")
            }
            TincaError::GeometryMismatch {
                field,
                found,
                expected,
            } => {
                write!(
                    f,
                    "NVM header geometry mismatch: {field} is {found} but the \
                     configuration expects {expected} (changed ring_bytes or capacity?)"
                )
            }
            TincaError::CommitInProgress { head, tail } => {
                write!(
                    f,
                    "operation refused while a transaction is committing \
                     (head={head}, tail={tail})"
                )
            }
            TincaError::Io(e) => write!(f, "disk I/O failed: {e}"),
        }
    }
}

impl std::error::Error for TincaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TincaError::TxnTooLarge {
            blocks: 100,
            ring_cap: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
        let e = TincaError::BadMagic { found: 0xabc };
        assert!(e.to_string().contains("0xabc"));
        let e = TincaError::GeometryMismatch {
            field: "ring_cap",
            found: 128,
            expected: 8192,
        };
        assert!(e.to_string().contains("ring_cap"));
        assert!(e.to_string().contains("128"));
        assert!(e.to_string().contains("8192"));
        let e = TincaError::CommitInProgress { head: 9, tail: 5 };
        assert!(e.to_string().contains("head=9"));
        let e = TincaError::from(IoError::BadBlock { blk: 77 });
        assert_eq!(e, TincaError::Io(IoError::BadBlock { blk: 77 }));
        assert!(e.to_string().contains("77"));
    }
}
