//! `TincaPool` — a sharded, thread-safe front-end over [`TincaCache`].
//!
//! The paper evaluates Tinca under multi-threaded Fio/Filebench/MySQL
//! load; a single `TincaCache` serialises everything behind `&mut self`.
//! The pool partitions the NVM into `N` independent shards — each shard is
//! a complete `TincaCache` on its own NVM device region (disjoint
//! [`Layout`](crate::Layout)s, own `Head`/`Tail` ring, own entry table) —
//! and routes disk block `b` to shard `b % N`. Because every commit point
//! is still a single 8-byte `Tail` store *within one shard's region*, the
//! paper's single-commit-point crash argument holds per shard unchanged.
//!
//! ## Group commit
//!
//! Transactions queued on the same shard while a commit is in flight are
//! batched: the first arrival becomes the *leader*, drains the queue (up
//! to the shard's ring capacity), folds the batch into one committing
//! transaction ([`Txn::absorb`] — buffers moved, later writers win) and
//! drives **one** ring commit — one `Tail` store + fence for the whole
//! batch, exactly how JBD2 amortises fsyncs into a compound transaction.
//! Followers block on the shard's condition variable and receive the
//! group's result.
//!
//! With `N = 1` and a single thread, every batch has exactly one member
//! and the pool is bit-for-bit identical to a bare `TincaCache`: same NVM
//! stores, flushes, fences, simulated time, and statistics.
//!
//! ## Atomicity scope
//!
//! **Every** transaction commits all-or-nothing across any crash or I/O
//! fault — including transactions whose blocks span shards. A
//! single-shard transaction (always the case for `N = 1`, and for
//! block-aligned workloads like Fio 4 KB requests) takes the unchanged
//! fast path: one shard's ring commit, group-committed with its
//! neighbours, not a single extra store, flush, or fence.
//!
//! A **spanning** transaction runs a persistent two-phase commit:
//!
//! 1. **Publish.** A one-cache-line *spanning-intent record* (sequence id
//!    plus participant shard bitmap, at the layout module's `INTENT_OFF` on
//!    shard 0's device) is written and fenced *before* any fragment. While
//!    the record reads `PREPARED`, recovery rolls every tagged fragment
//!    back.
//! 2. **Prepare.** Each participant shard stages its fragment with the
//!    full commit protocol — COW payload writes, entry updates, ring
//!    slots tagged with the intent id in their top byte, `Head` move,
//!    role switch — but **its `Tail` does not move**: the shard's ring
//!    window stays open, so the fragment is durable yet still revocable.
//!    A fragment failure aborts: prepared fragments are revoked, later
//!    fragments are never attempted, the intent is retired, and nothing
//!    of the transaction survives recovery.
//! 3. **Resolve.** One 8 B atomic store flips the record to `RESOLVED`
//!    and is fenced: this single store is the transaction's commit point.
//!    Every fragment was fenced-durable before it, so recovery now rolls
//!    all of them *forward*. Each shard's `Tail` then moves (retiring its
//!    revocation window), and the record is retired.
//!
//! Recovery ([`TincaPool::recover`]) reads the record first and hands
//! every shard the same [`SpanningIntent`] directive, so all shards roll
//! the same direction exactly once; the record is cleared only after
//! every shard recovered, which makes a crash *during* recovery repeat
//! the same decision. Spanning commits serialise on one pool-level mutex
//! (the record has a single slot) and lock shard 0 plus the participants
//! in ascending index order, so they cannot deadlock with each other or
//! with single-shard commits.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

use blockdev::BLOCK_SIZE;
use nvmsim::Nvm;
use parking_lot::Mutex;

use crate::cache::{DynDisk, PreparedFragment};
use crate::layout::{intent_tag, INTENT_OFF, INTENT_SHARDS_OFF, INTENT_STATE_OFF};
use crate::{CacheStats, Health, SpanningIntent, TincaCache, TincaConfig, TincaError, Txn};

/// Configuration for a [`TincaPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of shards (NVM sub-regions / independent commit rings).
    pub shards: usize,
    /// Maximum transactions folded into one group commit.
    pub max_batch_txns: usize,
    /// Per-shard cache configuration.
    pub cache: TincaConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            shards: 1,
            max_batch_txns: 64,
            cache: TincaConfig::default(),
        }
    }
}

impl PoolConfig {
    /// `n`-shard pool with default cache knobs.
    pub fn with_shards(n: usize) -> Self {
        PoolConfig {
            shards: n,
            ..Default::default()
        }
    }
}

/// Group-commit queue state of one shard.
struct GcState {
    next_ticket: u64,
    queue: VecDeque<(u64, Txn)>,
    results: HashMap<u64, Result<(), TincaError>>,
    leader: bool,
}

/// Sync-object ids this pool annotates on each shard's NVM trace, namespaced
/// `shard_index * SYNC_STRIDE + kind` so a merged multi-shard trace
/// ([`nvmsim::merge_shard_traces`]) never conflates two shards' locks.
const SYNC_STRIDE: u64 = 16;
/// The shard's cache mutex — serialises commits, reads, flushes, and the
/// inline destage daemon (which runs under this same lock).
const SYNC_CACHE_MUTEX: u64 = 0;
/// The group-commit result handoff: the leader release-publishes the
/// batch's results, each follower acquire-consumes its own.
const SYNC_GC_PUBLISH: u64 = 1;

struct Shard {
    cache: Mutex<TincaCache>,
    gc: StdMutex<GcState>,
    cv: Condvar,
    /// Ring slots of this shard's layout (bounds one merged batch).
    ring_slots: usize,
    /// This shard's NVM device, for sync-event trace annotations.
    nvm: Nvm,
    /// First sync-object id of this shard's namespace.
    sync_base: u64,
}

/// Cache-mutex guard that annotates acquisition and release as sync events
/// on the shard's NVM trace (no-ops when tracing is off), so the
/// happens-before engine sees the mutual exclusion the mutex provides.
struct CacheGuard<'a> {
    guard: parking_lot::MutexGuard<'a, TincaCache>,
    nvm: &'a Nvm,
    obj: u64,
}

impl std::ops::Deref for CacheGuard<'_> {
    type Target = TincaCache;
    fn deref(&self) -> &TincaCache {
        &self.guard
    }
}

impl std::ops::DerefMut for CacheGuard<'_> {
    fn deref_mut(&mut self) -> &mut TincaCache {
        &mut self.guard
    }
}

impl Drop for CacheGuard<'_> {
    fn drop(&mut self) {
        // Runs before the mutex guard field drops, so the release
        // annotation lands while the lock is still held.
        self.nvm.note_lock_release(self.obj);
    }
}

impl Shard {
    /// Locks the cache mutex; the acquire annotation is recorded *after*
    /// the lock is held (and the release before it drops), so annotations
    /// appear in the trace in true lock order.
    fn lock_cache(&self) -> CacheGuard<'_> {
        let guard = self.cache.lock();
        let obj = self.sync_base + SYNC_CACHE_MUTEX;
        self.nvm.note_lock_acquire(obj);
        CacheGuard {
            guard,
            nvm: &self.nvm,
            obj,
        }
    }
}

fn lock_gc<'a>(sh: &'a Shard) -> StdGuard<'a, GcState> {
    sh.gc.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sharded multi-threaded front-end; see the module docs.
pub struct TincaPool {
    shards: Vec<Shard>,
    max_batch_txns: usize,
    /// Serialises spanning commits (the persistent intent record has one
    /// slot) and hands out intent sequence ids. Poison-tolerant like the
    /// gc mutexes: a simulated crash panic mid-commit must not strand
    /// surviving threads.
    spanning: StdMutex<u64>,
}

impl TincaPool {
    /// Formats one [`TincaCache`] per device and assembles the pool.
    /// `devices[i]` becomes shard `i`; all shards share the backing disk
    /// (their disk-block sets are disjoint by routing).
    pub fn format(devices: Vec<Nvm>, disk: DynDisk, cfg: PoolConfig) -> Self {
        assert_eq!(
            devices.len(),
            cfg.shards,
            "one NVM device per shard required"
        );
        assert!(cfg.shards >= 1, "pool needs at least one shard");
        let shards = devices
            .into_iter()
            .enumerate()
            .map(|(i, nvm)| {
                Self::shard(i, TincaCache::format(nvm, disk.clone(), cfg.cache.clone()))
            })
            .collect();
        TincaPool {
            shards,
            max_batch_txns: cfg.max_batch_txns.max(1),
            spanning: StdMutex::new(0),
        }
    }

    /// Recovers every shard from its NVM region after a crash or clean
    /// shutdown. The pool decodes the spanning-intent record (shard 0's
    /// device) first and hands each shard's §4.5 recovery the same
    /// [`SpanningIntent`] directive, so an interrupted spanning
    /// transaction rolls the same direction on every shard; the record is
    /// retired only once every shard has recovered.
    pub fn recover(devices: Vec<Nvm>, disk: DynDisk, cfg: PoolConfig) -> Result<Self, TincaError> {
        assert_eq!(
            devices.len(),
            cfg.shards,
            "one NVM device per shard required"
        );
        assert!(cfg.shards >= 1, "pool needs at least one shard");
        // Single-shard pools never write the record; skipping the read
        // keeps `N = 1` recovery bit-for-bit identical to a bare cache.
        let intent = if cfg.shards > 1 {
            SpanningIntent::decode(devices[0].read_u64(INTENT_STATE_OFF))
        } else {
            SpanningIntent::None
        };
        let mut shards = Vec::with_capacity(cfg.shards);
        for (i, nvm) in devices.iter().enumerate() {
            shards.push(Self::shard(
                i,
                TincaCache::recover_with_intent(
                    nvm.clone(),
                    disk.clone(),
                    cfg.cache.clone(),
                    intent,
                )?,
            ));
        }
        if intent != SpanningIntent::None {
            // All shards rolled the directive's way and closed their
            // rings; a crash before this store re-reads the record and
            // repeats the identical (idempotent) decision.
            let host = &devices[0];
            host.atomic_write_u64(INTENT_STATE_OFF, SpanningIntent::None.encode());
            host.atomic_write_u64(INTENT_SHARDS_OFF, 0);
            host.persist(INTENT_OFF, 16);
            host.note_commit(INTENT_OFF, 64);
        }
        Ok(TincaPool {
            shards,
            max_batch_txns: cfg.max_batch_txns.max(1),
            spanning: StdMutex::new(0),
        })
    }

    fn shard(index: usize, cache: TincaCache) -> Shard {
        let ring_slots = cache.layout().ring_cap as usize;
        let nvm = cache.nvm().clone();
        Shard {
            cache: Mutex::new(cache),
            gc: StdMutex::new(GcState {
                next_ticket: 0,
                queue: VecDeque::new(),
                results: HashMap::new(),
                leader: false,
            }),
            cv: Condvar::new(),
            ring_slots,
            nvm,
            sync_base: index as u64 * SYNC_STRIDE,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard disk block `disk_blk` routes to.
    pub fn shard_of(&self, disk_blk: u64) -> usize {
        (disk_blk % self.shards.len() as u64) as usize
    }

    /// Starts a running transaction (DRAM-only, same as
    /// [`TincaCache::init_txn`]).
    pub fn init_txn(&self) -> Txn {
        Txn::new()
    }

    /// The single shard all of `txn`'s blocks route to, or `None` when
    /// the transaction spans shards (or stages nothing).
    fn home_shard(&self, txn: &Txn) -> Option<usize> {
        let mut home = None;
        for b in txn.disk_blocks() {
            let s = self.shard_of(b);
            if *home.get_or_insert(s) != s {
                return None;
            }
        }
        home
    }

    /// Splits a spanning transaction into per-shard fragments via
    /// [`shard_of`](Self::shard_of), preserving first-write order and
    /// moving payload buffers.
    fn split_spanning(&self, txn: Txn) -> Vec<Option<Txn>> {
        let mut parts: Vec<Option<Txn>> = (0..self.shards.len()).map(|_| None).collect();
        for (blk, buf) in txn.into_blocks() {
            let s = self.shard_of(blk);
            parts[s].get_or_insert_with(Txn::new).stage_owned(blk, buf);
        }
        parts
    }

    /// Commits `txn` atomically. Single-shard transactions (all blocks
    /// route to one shard — always true for `N = 1`) may be group-
    /// committed with concurrent transactions on the same shard. Spanning
    /// transactions run the two-phase intent protocol (module docs):
    /// all-or-nothing across every shard, and on error — a fragment
    /// rejected mid-sequence — nothing of the transaction stays durable.
    pub fn commit(&self, txn: Txn) -> Result<(), TincaError> {
        if txn.is_empty() {
            return Ok(());
        }
        if self.shards.len() == 1 {
            return self.commit_on_shard(0, txn);
        }
        match self.home_shard(&txn) {
            Some(s) => self.commit_on_shard(s, txn),
            None => self.commit_spanning(txn),
        }
    }

    /// Two-phase spanning commit (module docs): publish the intent
    /// record, prepare one tagged fragment per participant shard, resolve
    /// with a single 8 B store, then retire every shard's revocation
    /// window. Holds the pool-level spanning mutex throughout, plus the
    /// cache locks of shard 0 (the intent host — guarantees the record's
    /// commit annotations are ordered against that device's other
    /// commits) and every participant, acquired in ascending order.
    fn commit_spanning(&self, txn: Txn) -> Result<(), TincaError> {
        let _t = telemetry::span(telemetry::phase::COMMIT_SPANNING);
        let coalesced = txn.coalesced_writes();
        let mut parts = self.split_spanning(txn);
        let mut next_id = self.spanning.lock().unwrap_or_else(PoisonError::into_inner);
        let intent_id = *next_id;
        *next_id += 1;
        let tag = intent_tag(intent_id);
        // Tag this thread's trace ops with the intent id (provenance for
        // merged-trace analysis; a no-op when tracing is off).
        let _prov = nvmsim::txn_scope(intent_id);
        let mut guards: Vec<(usize, CacheGuard<'_>)> = Vec::new();
        for (s, sh) in self.shards.iter().enumerate() {
            if s == 0 || parts[s].is_some() {
                guards.push((s, sh.lock_cache()));
            }
        }
        let host = &self.shards[0].nvm;
        // Participant bitmap (advisory; shards ≥ 64 saturate onto bit 63).
        let mut bitmap: u64 = 0;
        for (s, p) in parts.iter().enumerate() {
            if p.is_some() {
                bitmap |= 1 << s.min(63);
            }
        }
        // Publish: one cache line, one fence. Until the resolve store
        // below, recovery rolls every fragment tagged `tag` back.
        host.atomic_write_u64(INTENT_SHARDS_OFF, bitmap);
        host.atomic_write_u64(
            INTENT_STATE_OFF,
            SpanningIntent::Prepared { id: intent_id }.encode(),
        );
        host.persist(INTENT_OFF, 16);
        host.note_commit(INTENT_OFF, 64);

        // Phase 1: prepare fragments in ascending shard order, stopping
        // at the first failure — later fragments are never attempted.
        let mut prepared: Vec<(usize, PreparedFragment)> = Vec::new();
        let mut failure = None;
        let mut first_part = true;
        for (gi, (s, guard)) in guards.iter_mut().enumerate() {
            let Some(mut part) = parts[*s].take() else {
                continue;
            };
            if first_part {
                // Keep the original transaction's coalescing count on its
                // first fragment so pool-wide stats still add up.
                part.add_coalesced(coalesced);
                first_part = false;
            }
            match guard.prepare_fragment(&part, tag) {
                Ok(frag) => prepared.push((gi, frag)),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            // Abort: revoke every prepared fragment, then retire the
            // intent — nothing of the transaction stays durable, and a
            // crash anywhere in here still rolls every fragment back.
            for (gi, frag) in prepared {
                guards[gi].1.abort_fragment(frag);
            }
            host.atomic_write_u64(INTENT_STATE_OFF, SpanningIntent::None.encode());
            host.persist(INTENT_STATE_OFF, 8);
            host.note_commit(INTENT_OFF, 64);
            guards[0].1.stats_mut().spanning_aborts += 1;
            return Err(e);
        }

        // Resolve: the transaction's commit point. Every fragment was
        // fenced-durable before this store, so from here recovery rolls
        // all of them forward.
        host.atomic_write_u64(
            INTENT_STATE_OFF,
            SpanningIntent::Resolved { id: intent_id }.encode(),
        );
        host.persist(INTENT_STATE_OFF, 8);
        host.note_commit(INTENT_OFF, 64);

        // Phase 2: move every participant's Tail (closing its revocation
        // window) and reclaim, then retire the record — all windows are
        // closed, so future recoveries need no directive.
        for (gi, frag) in prepared {
            guards[gi].1.complete_fragment(frag);
        }
        host.atomic_write_u64(INTENT_STATE_OFF, SpanningIntent::None.encode());
        host.persist(INTENT_STATE_OFF, 8);
        host.note_commit(INTENT_OFF, 64);
        guards[0].1.stats_mut().spanning_commits += 1;
        Ok(())
    }

    /// Submits a whole batch of transactions at once: single-shard
    /// transactions are routed and queued before any shard commits, so
    /// those sharing a shard are guaranteed to ride one group commit
    /// (deterministically — no reliance on thread timing); spanning
    /// transactions each run the two-phase intent protocol. Returns one
    /// result per transaction, in submission order — each result reflects
    /// that transaction's commit/abort outcome (a group is atomic as a
    /// unit, and a spanning abort leaves nothing durable), never "`Err`
    /// but half-durable".
    pub fn commit_many(&self, txns: Vec<Txn>) -> Vec<Result<(), TincaError>> {
        let n = txns.len();
        let mut results: Vec<Result<(), TincaError>> = vec![Ok(()); n];
        // Whole transactions per home shard, tagged with the submitting
        // txn's index; spanning transactions are set aside.
        let mut per_shard: Vec<Vec<(usize, Txn)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut spanning: Vec<(usize, Txn)> = Vec::new();
        for (i, txn) in txns.into_iter().enumerate() {
            if txn.is_empty() {
                continue;
            }
            match self.home_shard(&txn) {
                Some(s) => per_shard[s].push((i, txn)),
                None => spanning.push((i, txn)),
            }
        }
        for (s, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (idxs, parts): (Vec<usize>, Vec<Txn>) = batch.into_iter().unzip();
            if let Err(e) = self.shards[s].lock_cache().commit_group(parts) {
                for i in idxs {
                    results[i] = Err(e);
                }
            }
        }
        for (i, txn) in spanning {
            results[i] = self.commit_spanning(txn);
        }
        results
    }

    /// Queues `txn` on shard `s` and returns its group's commit result.
    /// The first queued thread becomes the leader: it drains a batch
    /// (bounded by the ring capacity and `max_batch_txns`), merges it, and
    /// runs one ring commit while followers wait on the condvar.
    fn commit_on_shard(&self, s: usize, txn: Txn) -> Result<(), TincaError> {
        let sh = &self.shards[s];
        let ticket = {
            let mut gc = lock_gc(sh);
            let t = gc.next_ticket;
            gc.next_ticket += 1;
            gc.queue.push_back((t, txn));
            t
        };
        let mut gc = lock_gc(sh);
        loop {
            if let Some(res) = gc.results.remove(&ticket) {
                // Adopt the publishing leader's history: everything it
                // stored and fenced for this group happens-before whatever
                // this thread does next.
                sh.nvm
                    .note_atomic_load_acquire(sh.sync_base + SYNC_GC_PUBLISH);
                return res;
            }
            if gc.leader {
                // Simulated time a follower spends parked behind the
                // in-flight group commit (the leader advances the clock).
                let _w = telemetry::span(telemetry::phase::COMMIT_GROUP_WAIT);
                gc = sh.cv.wait(gc).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            gc.leader = true;
            let lead = telemetry::span(telemetry::phase::COMMIT_GROUP_LEAD);
            let mut tickets = Vec::new();
            let mut batch = Vec::new();
            let mut staged = 0usize;
            while let Some((t, queued)) = gc.queue.pop_front() {
                // Always take one; stop before the merged transaction could
                // overflow the ring (coalescing only shrinks it further).
                if !batch.is_empty()
                    && (batch.len() >= self.max_batch_txns || staged + queued.len() > sh.ring_slots)
                {
                    gc.queue.push_front((t, queued));
                    break;
                }
                staged += queued.len();
                tickets.push(t);
                batch.push(queued);
            }
            drop(gc);
            // A crash trip (simulated power failure) may panic out of the
            // commit; restore leadership and wake waiters before unwinding
            // so surviving threads are not stranded.
            let res = catch_unwind(AssertUnwindSafe(|| sh.lock_cache().commit_group(batch)));
            drop(lead);
            gc = lock_gc(sh);
            gc.leader = false;
            match res {
                Ok(res) => {
                    for t in tickets {
                        gc.results.insert(t, res);
                    }
                    // Publish the group's commit to its followers (still
                    // under the gc mutex, so the release annotation is
                    // trace-ordered before any follower's acquire).
                    sh.nvm
                        .note_atomic_store_release(sh.sync_base + SYNC_GC_PUBLISH);
                    sh.cv.notify_all();
                }
                Err(payload) => {
                    drop(gc);
                    sh.cv.notify_all();
                    resume_unwind(payload);
                }
            }
        }
    }

    /// Reads on-disk block `disk_blk` through its home shard.
    pub fn read(&self, disk_blk: u64, buf: &mut [u8]) -> Result<(), TincaError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().read(disk_blk, buf)
    }

    /// Reads without populating any cache (verification).
    pub fn read_nocache(&self, disk_blk: u64, buf: &mut [u8]) -> Result<(), TincaError> {
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().read_nocache(disk_blk, buf)
    }

    /// True if `disk_blk` is cached in its home shard.
    pub fn contains(&self, disk_blk: u64) -> bool {
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().contains(disk_blk)
    }

    /// Cached payload of `disk_blk`, if present (inspection only).
    pub fn peek(&self, disk_blk: u64) -> Option<[u8; BLOCK_SIZE]> {
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().peek(disk_blk)
    }

    /// Writes back every dirty block of every shard (orderly shutdown).
    /// Every shard gets its flush attempt even if an earlier one fails;
    /// the first error is returned (see [`TincaCache::flush_all`]).
    pub fn flush_all(&self) -> Result<(), TincaError> {
        let mut first_err = Ok(());
        for sh in &self.shards {
            let res = sh.lock_cache().flush_all();
            if first_err.is_ok() {
                first_err = res;
            }
        }
        first_err
    }

    /// Pool-wide fault condition: `Healthy` when every shard is healthy,
    /// `ReadOnly` when every shard is read-only, otherwise `Degraded` with
    /// the total quarantined count — one shard on a dead disk degrades the
    /// pool but the other shards keep committing.
    pub fn health(&self) -> Health {
        let mut quarantined = 0usize;
        let mut any_fault = false;
        let mut all_read_only = true;
        for sh in &self.shards {
            let cache = sh.lock_cache();
            match cache.health() {
                Health::Healthy => all_read_only = false,
                Health::Degraded { .. } => {
                    any_fault = true;
                    all_read_only = false;
                }
                Health::ReadOnly => any_fault = true,
            }
            quarantined += cache.quarantined_count();
        }
        if !any_fault {
            Health::Healthy
        } else if all_read_only {
            Health::ReadOnly
        } else {
            Health::Degraded { quarantined }
        }
    }

    /// Runs [`TincaCache::check_consistency`] on every shard.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, sh) in self.shards.iter().enumerate() {
            sh.cache
                .lock()
                .check_consistency()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }

    /// Pool-wide counters (sum over shards).
    pub fn stats(&self) -> CacheStats {
        self.shards.iter().fold(CacheStats::default(), |acc, sh| {
            acc.merge(&sh.lock_cache().stats())
        })
    }

    /// One shard's counters.
    pub fn shard_stats(&self, s: usize) -> CacheStats {
        self.shards[s].lock_cache().stats()
    }

    /// Runs `f` with shard `s`'s cache locked (tests, fuzzers, benches).
    pub fn with_shard<R>(&self, s: usize, f: impl FnOnce(&mut TincaCache) -> R) -> R {
        f(&mut self.shards[s].lock_cache())
    }

    /// A handle on shard `s`'s simulated clock (clones share time).
    ///
    /// This is the queue-wait hook of the open-loop tier: an arrival-
    /// driven driver calls [`nvmsim::SimClock::advance_to`] with each
    /// op's arrival instant so idle time between arrivals actually
    /// passes on the shard — background-lane deadlines (destage) expire
    /// during load gaps, and `service start = max(arrival, shard now)`
    /// makes queue wait measurable instead of modelled away. Closed-loop
    /// drivers never advance this clock directly; only the shard's
    /// devices do. Advancing it is only meaningful while the shard is
    /// otherwise quiescent (single-threaded driving).
    pub fn shard_clock(&self, s: usize) -> nvmsim::SimClock {
        self.shards[s].lock_cache().nvm().clock().clone()
    }

    /// NVM metadata byte ranges of shard `s` (header + ring + entry table,
    /// in that shard's device address space) for persist-order analysis.
    pub fn shard_metadata_ranges(&self, s: usize) -> Vec<std::ops::Range<usize>> {
        let metadata = 0..self.shards[s].lock_cache().layout().data_off;
        vec![metadata]
    }

    /// Free NVM data blocks across all shards.
    pub fn free_block_count(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.lock_cache().free_block_count())
            .sum()
    }

    /// Valid cached blocks across all shards.
    pub fn cached_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.lock_cache().cached_blocks())
            .sum()
    }
}

impl std::fmt::Debug for TincaPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TincaPool")
            .field("shards", &self.shards.len())
            .field("max_batch_txns", &self.max_batch_txns)
            .finish()
    }
}
