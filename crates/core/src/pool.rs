//! `TincaPool` — a sharded, thread-safe front-end over [`TincaCache`].
//!
//! The paper evaluates Tinca under multi-threaded Fio/Filebench/MySQL
//! load; a single `TincaCache` serialises everything behind `&mut self`.
//! The pool partitions the NVM into `N` independent shards — each shard is
//! a complete `TincaCache` on its own NVM device region (disjoint
//! [`Layout`](crate::Layout)s, own `Head`/`Tail` ring, own entry table) —
//! and routes disk block `b` to shard `b % N`. Because every commit point
//! is still a single 8-byte `Tail` store *within one shard's region*, the
//! paper's single-commit-point crash argument holds per shard unchanged.
//!
//! ## Group commit
//!
//! Transactions queued on the same shard while a commit is in flight are
//! batched: the first arrival becomes the *leader*, drains the queue (up
//! to the shard's ring capacity), folds the batch into one committing
//! transaction ([`Txn::absorb`] — buffers moved, later writers win) and
//! drives **one** ring commit — one `Tail` store + fence for the whole
//! batch, exactly how JBD2 amortises fsyncs into a compound transaction.
//! Followers block on the shard's condition variable and receive the
//! group's result.
//!
//! With `N = 1` and a single thread, every batch has exactly one member
//! and the pool is bit-for-bit identical to a bare `TincaCache`: same NVM
//! stores, flushes, fences, simulated time, and statistics.
//!
//! ## Atomicity scope
//!
//! **Every** transaction commits all-or-nothing across any crash or I/O
//! fault — including transactions whose blocks span shards. A
//! single-shard transaction (always the case for `N = 1`, and for
//! block-aligned workloads like Fio 4 KB requests) takes the unchanged
//! fast path: one shard's ring commit, group-committed with its
//! neighbours, not a single extra store, flush, or fence.
//!
//! A **spanning** transaction runs a persistent two-phase commit:
//!
//! 1. **Publish.** A one-cache-line *spanning-intent record* (sequence id
//!    plus participant shard bitmap, at the layout module's `INTENT_OFF` on
//!    shard 0's device) is written and fenced *before* any fragment. While
//!    the record reads `PREPARED`, recovery rolls every tagged fragment
//!    back.
//! 2. **Prepare.** Each participant shard stages its fragment with the
//!    full commit protocol — COW payload writes, entry updates, ring
//!    slots tagged with the intent id in their top byte, `Head` move,
//!    role switch — but **its `Tail` does not move**: the shard's ring
//!    window stays open, so the fragment is durable yet still revocable.
//!    A fragment failure aborts: prepared fragments are revoked, later
//!    fragments are never attempted, the intent is retired, and nothing
//!    of the transaction survives recovery.
//! 3. **Resolve.** One 8 B atomic store flips the record to `RESOLVED`
//!    and is fenced: this single store is the transaction's commit point.
//!    Every fragment was fenced-durable before it, so recovery now rolls
//!    all of them *forward*. Each shard's `Tail` then moves (retiring its
//!    revocation window), and the record is retired.
//!
//! Recovery ([`TincaPool::recover`]) reads the record first and hands
//! every shard the same [`SpanningIntent`] directive, so all shards roll
//! the same direction exactly once; the record is cleared only after
//! every shard recovered, which makes a crash *during* recovery repeat
//! the same decision. Spanning commits serialise on one pool-level mutex
//! (the record has a single slot) and lock shard 0 plus the participants
//! in ascending index order, so they cannot deadlock with each other or
//! with single-shard commits.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

use blockdev::BLOCK_SIZE;
use nvmsim::Nvm;
use parking_lot::Mutex;

use crate::cache::{DynDisk, MwStagedMeta, PreparedFragment};
use crate::layout::{
    intent_tag, mw_desc_addr, mw_state_word, INTENT_OFF, INTENT_SHARDS_OFF, INTENT_STATE_OFF,
    MW_STAGED, MW_WINDOWS,
};
use crate::mwring::{CommitMode, MwAdmission, MwShard, MwState, MwTicket, MwWindow};
use crate::{
    CacheStats, Health, SpanningIntent, TincaCache, TincaConfig, TincaError, Txn, WritePolicy,
};

/// Configuration for a [`TincaPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of shards (NVM sub-regions / independent commit rings).
    pub shards: usize,
    /// Maximum transactions folded into one group commit.
    pub max_batch_txns: usize,
    /// How intra-shard commits are serialised; see [`CommitMode`]. The
    /// default (`MutexGroup`) is bit-for-bit the classic path;
    /// `LockFreeRing` enables the multi-writer pipeline (DESIGN §16) and
    /// requires write-back policy with the role switch.
    pub commit_mode: CommitMode,
    /// Per-shard cache configuration.
    pub cache: TincaConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            shards: 1,
            max_batch_txns: 64,
            commit_mode: CommitMode::MutexGroup,
            cache: TincaConfig::default(),
        }
    }
}

impl PoolConfig {
    /// `n`-shard pool with default cache knobs.
    pub fn with_shards(n: usize) -> Self {
        PoolConfig {
            shards: n,
            ..Default::default()
        }
    }
}

/// Group-commit queue state of one shard.
struct GcState {
    next_ticket: u64,
    queue: VecDeque<(u64, Txn)>,
    results: HashMap<u64, Result<(), TincaError>>,
    leader: bool,
}

/// Sync-object ids this pool annotates on each shard's NVM trace, namespaced
/// `shard_index * SYNC_STRIDE + kind` so a merged multi-shard trace
/// ([`nvmsim::merge_shard_traces`]) never conflates two shards' locks.
const SYNC_STRIDE: u64 = 16;
/// The shard's cache mutex — serialises commits, reads, flushes, and the
/// inline destage daemon (which runs under this same lock).
const SYNC_CACHE_MUTEX: u64 = 0;
/// The group-commit result handoff: the leader release-publishes the
/// batch's results, each follower acquire-consumes its own.
const SYNC_GC_PUBLISH: u64 = 1;
/// The multi-writer window publication: each writer release-publishes its
/// `STAGED` descriptor store, the sequencer acquire-consumes the round's
/// windows before its drain fence.
const SYNC_MW_PUBLISH: u64 = 2;

struct Shard {
    cache: Mutex<TincaCache>,
    gc: StdMutex<GcState>,
    cv: Condvar,
    /// Ring slots of this shard's layout (bounds one merged batch).
    ring_slots: usize,
    /// This shard's NVM device, for sync-event trace annotations.
    nvm: Nvm,
    /// First sync-object id of this shard's namespace.
    sync_base: u64,
    /// Multi-writer pipeline state (used only in `LockFreeRing` mode).
    mw: MwShard,
}

/// Cache-mutex guard that annotates acquisition and release as sync events
/// on the shard's NVM trace (no-ops when tracing is off), so the
/// happens-before engine sees the mutual exclusion the mutex provides.
struct CacheGuard<'a> {
    guard: parking_lot::MutexGuard<'a, TincaCache>,
    nvm: &'a Nvm,
    obj: u64,
}

impl std::ops::Deref for CacheGuard<'_> {
    type Target = TincaCache;
    fn deref(&self) -> &TincaCache {
        &self.guard
    }
}

impl std::ops::DerefMut for CacheGuard<'_> {
    fn deref_mut(&mut self) -> &mut TincaCache {
        &mut self.guard
    }
}

impl Drop for CacheGuard<'_> {
    fn drop(&mut self) {
        // Runs before the mutex guard field drops, so the release
        // annotation lands while the lock is still held.
        self.nvm.note_lock_release(self.obj);
    }
}

impl Shard {
    /// Locks the cache mutex; the acquire annotation is recorded *after*
    /// the lock is held (and the release before it drops), so annotations
    /// appear in the trace in true lock order.
    fn lock_cache(&self) -> CacheGuard<'_> {
        let guard = self.cache.lock();
        let obj = self.sync_base + SYNC_CACHE_MUTEX;
        self.nvm.note_lock_acquire(obj);
        CacheGuard {
            guard,
            nvm: &self.nvm,
            obj,
        }
    }
}

fn lock_gc<'a>(sh: &'a Shard) -> StdGuard<'a, GcState> {
    sh.gc.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_mw<'a>(sh: &'a Shard) -> StdGuard<'a, MwState> {
    sh.mw.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sharded multi-threaded front-end; see the module docs.
pub struct TincaPool {
    shards: Vec<Shard>,
    max_batch_txns: usize,
    commit_mode: CommitMode,
    /// Serialises spanning commits (the persistent intent record has one
    /// slot) and hands out intent sequence ids. Poison-tolerant like the
    /// gc mutexes: a simulated crash panic mid-commit must not strand
    /// surviving threads.
    spanning: StdMutex<u64>,
}

impl TincaPool {
    /// Formats one [`TincaCache`] per device and assembles the pool.
    /// `devices[i]` becomes shard `i`; all shards share the backing disk
    /// (their disk-block sets are disjoint by routing).
    pub fn format(devices: Vec<Nvm>, disk: DynDisk, cfg: PoolConfig) -> Self {
        assert_eq!(
            devices.len(),
            cfg.shards,
            "one NVM device per shard required"
        );
        assert!(cfg.shards >= 1, "pool needs at least one shard");
        Self::check_mode(&cfg);
        let shards = devices
            .into_iter()
            .enumerate()
            .map(|(i, nvm)| {
                Self::shard(i, TincaCache::format(nvm, disk.clone(), cfg.cache.clone()))
            })
            .collect();
        TincaPool {
            shards,
            max_batch_txns: cfg.max_batch_txns.max(1),
            commit_mode: cfg.commit_mode,
            spanning: StdMutex::new(0),
        }
    }

    /// The lock-free path stages payloads outside the cache lock and
    /// completes commits in sequencer rounds; write-through completion
    /// and the double-write ablation are mutex-path-only features.
    fn check_mode(cfg: &PoolConfig) {
        if cfg.commit_mode == CommitMode::LockFreeRing {
            assert_eq!(
                cfg.cache.write_policy,
                WritePolicy::WriteBack,
                "CommitMode::LockFreeRing requires WritePolicy::WriteBack"
            );
            assert!(
                cfg.cache.role_switch,
                "CommitMode::LockFreeRing requires the role switch"
            );
        }
    }

    /// Recovers every shard from its NVM region after a crash or clean
    /// shutdown. The pool decodes the spanning-intent record (shard 0's
    /// device) first and hands each shard's §4.5 recovery the same
    /// [`SpanningIntent`] directive, so an interrupted spanning
    /// transaction rolls the same direction on every shard; the record is
    /// retired only once every shard has recovered.
    pub fn recover(devices: Vec<Nvm>, disk: DynDisk, cfg: PoolConfig) -> Result<Self, TincaError> {
        assert_eq!(
            devices.len(),
            cfg.shards,
            "one NVM device per shard required"
        );
        assert!(cfg.shards >= 1, "pool needs at least one shard");
        Self::check_mode(&cfg);
        // Single-shard pools never write the record; skipping the read
        // keeps `N = 1` recovery bit-for-bit identical to a bare cache.
        let intent = if cfg.shards > 1 {
            SpanningIntent::decode(devices[0].read_u64(INTENT_STATE_OFF))
        } else {
            SpanningIntent::None
        };
        let mut shards = Vec::with_capacity(cfg.shards);
        for (i, nvm) in devices.iter().enumerate() {
            shards.push(Self::shard(
                i,
                TincaCache::recover_with_intent(
                    nvm.clone(),
                    disk.clone(),
                    cfg.cache.clone(),
                    intent,
                )?,
            ));
        }
        if intent != SpanningIntent::None {
            // All shards rolled the directive's way and closed their
            // rings; a crash before this store re-reads the record and
            // repeats the identical (idempotent) decision.
            let host = &devices[0];
            host.atomic_write_u64(INTENT_STATE_OFF, SpanningIntent::None.encode());
            host.atomic_write_u64(INTENT_SHARDS_OFF, 0);
            host.persist(INTENT_OFF, 16);
            host.note_commit(INTENT_OFF, 64);
        }
        Ok(TincaPool {
            shards,
            max_batch_txns: cfg.max_batch_txns.max(1),
            commit_mode: cfg.commit_mode,
            spanning: StdMutex::new(0),
        })
    }

    fn shard(index: usize, cache: TincaCache) -> Shard {
        let ring_slots = cache.layout().ring_cap as usize;
        let nvm = cache.nvm().clone();
        let (head, _tail) = cache.head_tail();
        Shard {
            cache: Mutex::new(cache),
            gc: StdMutex::new(GcState {
                next_ticket: 0,
                queue: VecDeque::new(),
                results: HashMap::new(),
                leader: false,
            }),
            cv: Condvar::new(),
            ring_slots,
            nvm,
            sync_base: index as u64 * SYNC_STRIDE,
            mw: MwShard::new(head, ring_slots as u64),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard disk block `disk_blk` routes to.
    pub fn shard_of(&self, disk_blk: u64) -> usize {
        (disk_blk % self.shards.len() as u64) as usize
    }

    /// Starts a running transaction (DRAM-only, same as
    /// [`TincaCache::init_txn`]).
    pub fn init_txn(&self) -> Txn {
        Txn::new()
    }

    /// The single shard all of `txn`'s blocks route to, or `None` when
    /// the transaction spans shards (or stages nothing).
    fn home_shard(&self, txn: &Txn) -> Option<usize> {
        let mut home = None;
        for b in txn.disk_blocks() {
            let s = self.shard_of(b);
            if *home.get_or_insert(s) != s {
                return None;
            }
        }
        home
    }

    /// Splits a spanning transaction into per-shard fragments via
    /// [`shard_of`](Self::shard_of), preserving first-write order and
    /// moving payload buffers.
    fn split_spanning(&self, txn: Txn) -> Vec<Option<Txn>> {
        let mut parts: Vec<Option<Txn>> = (0..self.shards.len()).map(|_| None).collect();
        for (blk, buf) in txn.into_blocks() {
            let s = self.shard_of(blk);
            parts[s].get_or_insert_with(Txn::new).stage_owned(blk, buf);
        }
        parts
    }

    /// Commits `txn` atomically. Single-shard transactions (all blocks
    /// route to one shard — always true for `N = 1`) may be group-
    /// committed with concurrent transactions on the same shard. Spanning
    /// transactions run the two-phase intent protocol (module docs):
    /// all-or-nothing across every shard, and on error — a fragment
    /// rejected mid-sequence — nothing of the transaction stays durable.
    pub fn commit(&self, txn: Txn) -> Result<(), TincaError> {
        if txn.is_empty() {
            return Ok(());
        }
        if self.commit_mode == CommitMode::LockFreeRing {
            return match self.home_shard(&txn) {
                Some(s) => self.commit_on_shard_mw(s, txn),
                None => self.commit_spanning_mw(txn),
            };
        }
        if self.shards.len() == 1 {
            return self.commit_on_shard(0, txn);
        }
        match self.home_shard(&txn) {
            Some(s) => self.commit_on_shard(s, txn),
            None => self.commit_spanning(txn),
        }
    }

    /// Two-phase spanning commit (module docs): publish the intent
    /// record, prepare one tagged fragment per participant shard, resolve
    /// with a single 8 B store, then retire every shard's revocation
    /// window. Holds the pool-level spanning mutex throughout, plus the
    /// cache locks of shard 0 (the intent host — guarantees the record's
    /// commit annotations are ordered against that device's other
    /// commits) and every participant, acquired in ascending order.
    fn commit_spanning(&self, txn: Txn) -> Result<(), TincaError> {
        let _t = telemetry::span(telemetry::phase::COMMIT_SPANNING);
        let coalesced = txn.coalesced_writes();
        let mut parts = self.split_spanning(txn);
        let mut next_id = self.spanning.lock().unwrap_or_else(PoisonError::into_inner);
        let intent_id = *next_id;
        *next_id += 1;
        let tag = intent_tag(intent_id);
        // Tag this thread's trace ops with the intent id (provenance for
        // merged-trace analysis; a no-op when tracing is off).
        let _prov = nvmsim::txn_scope(intent_id);
        let mut guards: Vec<(usize, CacheGuard<'_>)> = Vec::new();
        for (s, sh) in self.shards.iter().enumerate() {
            if s == 0 || parts[s].is_some() {
                guards.push((s, sh.lock_cache()));
            }
        }
        let host = &self.shards[0].nvm;
        // Participant bitmap (advisory; shards ≥ 64 saturate onto bit 63).
        let mut bitmap: u64 = 0;
        for (s, p) in parts.iter().enumerate() {
            if p.is_some() {
                bitmap |= 1 << s.min(63);
            }
        }
        // Publish: one cache line, one fence. Until the resolve store
        // below, recovery rolls every fragment tagged `tag` back.
        host.atomic_write_u64(INTENT_SHARDS_OFF, bitmap);
        host.atomic_write_u64(
            INTENT_STATE_OFF,
            SpanningIntent::Prepared { id: intent_id }.encode(),
        );
        host.persist(INTENT_OFF, 16);
        host.note_commit(INTENT_OFF, 64);

        // Phase 1: prepare fragments in ascending shard order, stopping
        // at the first failure — later fragments are never attempted.
        let mut prepared: Vec<(usize, PreparedFragment)> = Vec::new();
        let mut failure = None;
        let mut first_part = true;
        for (gi, (s, guard)) in guards.iter_mut().enumerate() {
            let Some(mut part) = parts[*s].take() else {
                continue;
            };
            if first_part {
                // Keep the original transaction's coalescing count on its
                // first fragment so pool-wide stats still add up.
                part.add_coalesced(coalesced);
                first_part = false;
            }
            match guard.prepare_fragment(&part, tag) {
                Ok(frag) => prepared.push((gi, frag)),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            // Abort: revoke every prepared fragment, then retire the
            // intent — nothing of the transaction stays durable, and a
            // crash anywhere in here still rolls every fragment back.
            for (gi, frag) in prepared {
                guards[gi].1.abort_fragment(frag);
            }
            host.atomic_write_u64(INTENT_STATE_OFF, SpanningIntent::None.encode());
            host.persist(INTENT_STATE_OFF, 8);
            host.note_commit(INTENT_OFF, 64);
            guards[0].1.stats_mut().spanning_aborts += 1;
            return Err(e);
        }

        // Resolve: the transaction's commit point. Every fragment was
        // fenced-durable before this store, so from here recovery rolls
        // all of them forward.
        host.atomic_write_u64(
            INTENT_STATE_OFF,
            SpanningIntent::Resolved { id: intent_id }.encode(),
        );
        host.persist(INTENT_STATE_OFF, 8);
        host.note_commit(INTENT_OFF, 64);

        // Phase 2: move every participant's Tail (closing its revocation
        // window) and reclaim, then retire the record — all windows are
        // closed, so future recoveries need no directive.
        for (gi, frag) in prepared {
            guards[gi].1.complete_fragment(frag);
        }
        host.atomic_write_u64(INTENT_STATE_OFF, SpanningIntent::None.encode());
        host.persist(INTENT_STATE_OFF, 8);
        host.note_commit(INTENT_OFF, 64);
        guards[0].1.stats_mut().spanning_commits += 1;
        Ok(())
    }

    /// Submits a whole batch of transactions at once: single-shard
    /// transactions are routed and queued before any shard commits, so
    /// those sharing a shard are guaranteed to ride one group commit
    /// (deterministically — no reliance on thread timing); spanning
    /// transactions each run the two-phase intent protocol. Returns one
    /// result per transaction, in submission order — each result reflects
    /// that transaction's commit/abort outcome (a group is atomic as a
    /// unit, and a spanning abort leaves nothing durable), never "`Err`
    /// but half-durable".
    pub fn commit_many(&self, txns: Vec<Txn>) -> Vec<Result<(), TincaError>> {
        if self.commit_mode == CommitMode::LockFreeRing {
            // The lock-free path has no leader-merged batches; each
            // transaction runs the full reserve/stage/publish/sequence
            // pipeline (single-threaded callers retire synchronously, so
            // submission order is deterministic).
            return txns.into_iter().map(|t| self.commit(t)).collect();
        }
        let n = txns.len();
        let mut results: Vec<Result<(), TincaError>> = vec![Ok(()); n];
        // Whole transactions per home shard, tagged with the submitting
        // txn's index; spanning transactions are set aside.
        let mut per_shard: Vec<Vec<(usize, Txn)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut spanning: Vec<(usize, Txn)> = Vec::new();
        for (i, txn) in txns.into_iter().enumerate() {
            if txn.is_empty() {
                continue;
            }
            match self.home_shard(&txn) {
                Some(s) => per_shard[s].push((i, txn)),
                None => spanning.push((i, txn)),
            }
        }
        for (s, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (idxs, parts): (Vec<usize>, Vec<Txn>) = batch.into_iter().unzip();
            if let Err(e) = self.shards[s].lock_cache().commit_group(parts) {
                for i in idxs {
                    results[i] = Err(e);
                }
            }
        }
        for (i, txn) in spanning {
            results[i] = self.commit_spanning(txn);
        }
        results
    }

    /// Queues `txn` on shard `s` and returns its group's commit result.
    /// The first queued thread becomes the leader: it drains a batch
    /// (bounded by the ring capacity and `max_batch_txns`), merges it, and
    /// runs one ring commit while followers wait on the condvar.
    fn commit_on_shard(&self, s: usize, txn: Txn) -> Result<(), TincaError> {
        let sh = &self.shards[s];
        let ticket = {
            let mut gc = lock_gc(sh);
            let t = gc.next_ticket;
            gc.next_ticket += 1;
            gc.queue.push_back((t, txn));
            t
        };
        let mut gc = lock_gc(sh);
        loop {
            if let Some(res) = gc.results.remove(&ticket) {
                // Adopt the publishing leader's history: everything it
                // stored and fenced for this group happens-before whatever
                // this thread does next.
                sh.nvm
                    .note_atomic_load_acquire(sh.sync_base + SYNC_GC_PUBLISH);
                return res;
            }
            if gc.leader {
                // Simulated time a follower spends parked behind the
                // in-flight group commit (the leader advances the clock).
                let _w = telemetry::span(telemetry::phase::COMMIT_GROUP_WAIT);
                gc = sh.cv.wait(gc).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            gc.leader = true;
            let lead = telemetry::span(telemetry::phase::COMMIT_GROUP_LEAD);
            let mut tickets = Vec::new();
            let mut batch = Vec::new();
            let mut staged = 0usize;
            while let Some((t, queued)) = gc.queue.pop_front() {
                // Always take one; stop before the merged transaction could
                // overflow the ring (coalescing only shrinks it further).
                if !batch.is_empty()
                    && (batch.len() >= self.max_batch_txns || staged + queued.len() > sh.ring_slots)
                {
                    gc.queue.push_front((t, queued));
                    break;
                }
                staged += queued.len();
                tickets.push(t);
                batch.push(queued);
            }
            drop(gc);
            // A crash trip (simulated power failure) may panic out of the
            // commit; restore leadership and wake waiters before unwinding
            // so surviving threads are not stranded.
            let res = catch_unwind(AssertUnwindSafe(|| sh.lock_cache().commit_group(batch)));
            drop(lead);
            gc = lock_gc(sh);
            gc.leader = false;
            match res {
                Ok(res) => {
                    for t in tickets {
                        gc.results.insert(t, res);
                    }
                    // Publish the group's commit to its followers (still
                    // under the gc mutex, so the release annotation is
                    // trace-ordered before any follower's acquire).
                    sh.nvm
                        .note_atomic_store_release(sh.sync_base + SYNC_GC_PUBLISH);
                    sh.cv.notify_all();
                }
                Err(payload) => {
                    drop(gc);
                    sh.cv.notify_all();
                    resume_unwind(payload);
                }
            }
        }
    }

    // ──────────────────── multi-writer lock-free path ────────────────────

    /// Non-blocking multi-writer admission of a single-shard transaction
    /// (`LockFreeRing` mode only; see [`CommitMode`]). On
    /// [`MwAdmission::Admitted`] the caller owns a reserved window and
    /// must drive it through [`mw_stage`](Self::mw_stage),
    /// [`mw_publish`](Self::mw_publish), and (eventually)
    /// [`mw_sequence`](Self::mw_sequence); on [`MwAdmission::Busy`] the
    /// transaction is handed back untouched for a later retry. This is
    /// the steppable face of the pipeline — deterministic drivers
    /// (benches, fuzzers, proptests) interleave the steps explicitly.
    pub fn mw_try_begin(&self, txn: Txn) -> Result<MwAdmission, TincaError> {
        assert_eq!(
            self.commit_mode,
            CommitMode::LockFreeRing,
            "mw_try_begin requires CommitMode::LockFreeRing"
        );
        assert!(!txn.is_empty(), "empty transactions commit trivially");
        let home = self.home_shard(&txn);
        assert!(
            home.is_some(),
            "mw_try_begin requires a single-shard transaction"
        );
        self.mw_try_begin_on(home.unwrap_or(0), txn)
    }

    /// [`mw_try_begin`](Self::mw_try_begin) on a known home shard.
    fn mw_try_begin_on(&self, s: usize, txn: Txn) -> Result<MwAdmission, TincaError> {
        let sh = &self.shards[s];
        let n = txn.len() as u64;
        if txn.len() > sh.ring_slots {
            return Err(TincaError::TxnTooLarge {
                blocks: txn.len(),
                ring_cap: sh.ring_slots as u64,
            });
        }
        // Conflict admission *before* reservation: claim the disk blocks
        // while holding no ring capacity, so a conflicting writer waits
        // without starving the shard of slots (no hold-and-wait).
        {
            let mut mw = lock_mw(sh);
            if mw.spanning_open || txn.disk_blocks().any(|b| mw.in_flight.contains(&b)) {
                return Ok(MwAdmission::Busy(txn));
            }
            for b in txn.disk_blocks() {
                mw.in_flight.insert(b);
            }
        }
        let mut retries = 0u64;
        // Descriptor credit: one persistent table slot per window.
        loop {
            let avail = sh.mw.slots_avail.load(Ordering::Acquire);
            if avail == 0 {
                return Ok(self.mw_back_out(sh, txn, retries, false));
            }
            match sh.mw.slots_avail.compare_exchange(
                avail,
                avail - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(_) => retries += 1,
            }
        }
        // Ring window: CAS-advance the reservation cursor, bounded by the
        // sequencer-republished `ring_limit` (`Tail + ring_cap`), so a
        // successful reservation can never lap a live slot.
        let start = loop {
            let cur = sh.mw.cursor.load(Ordering::Acquire);
            if cur + n > sh.mw.ring_limit.load(Ordering::Acquire) {
                return Ok(self.mw_back_out(sh, txn, retries, true));
            }
            match sh
                .mw
                .cursor
                .compare_exchange(cur, cur + n, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break cur,
                Err(_) => retries += 1,
            }
        };
        let (ordinal, desc_slot) = {
            let mut mw = lock_mw(sh);
            mw.pending_cas_retries += retries;
            let ordinal = mw.next_ordinal;
            mw.next_ordinal += 1;
            // Audited panic: a descriptor credit was CAS-acquired above,
            // so the free list cannot be empty.
            #[allow(clippy::disallowed_methods)]
            let desc_slot = mw.free_desc.pop().expect("descriptor credit held");
            let at = mw.windows.partition_point(|w| w.start < start);
            mw.windows.insert(
                at,
                MwWindow {
                    ordinal,
                    start,
                    len: n,
                    desc_slot,
                    staged: false,
                    ready_ns: 0,
                    disk_blocks: txn.disk_blocks().collect(),
                    meta: None,
                },
            );
            (ordinal, desc_slot)
        };
        // Latched meta phase (short, under the cache lock): block
        // allocation, log-role entries, tagged ring slots, `RESERVED`
        // descriptor — flushed, fence deferred to the sequencer.
        // Bind before matching: a `match` scrutinee's temporaries (here
        // the cache guard) would otherwise live to the end of the match,
        // and the failure arm re-locks the cache via `mw_sequence`.
        let staged = sh
            .lock_cache()
            .mw_stage_meta(txn, start, desc_slot, 0, ordinal);
        match staged {
            Ok(mut meta) => {
                let stage_jobs = std::mem::take(&mut meta.stage_jobs);
                let ready_ns = sh.nvm.clock().now_ns();
                {
                    let mut mw = lock_mw(sh);
                    Self::mw_window_mut(&mut mw, ordinal).meta = Some(meta);
                }
                Ok(MwAdmission::Admitted(MwTicket {
                    shard: s,
                    ordinal,
                    desc_slot,
                    stage_jobs,
                    ready_ns,
                }))
            }
            Err((e, meta)) => {
                // The window is sealed as a failed no-op (entries revoked,
                // unwritten slots dead-tagged); publish it `STAGED` so the
                // sequencer can pass it, then report the admission error.
                {
                    let mut mw = lock_mw(sh);
                    let w = Self::mw_window_mut(&mut mw, ordinal);
                    w.meta = Some(meta);
                    w.staged = true;
                    w.ready_ns = sh.nvm.clock().now_ns();
                }
                Self::mw_publish_desc(sh, desc_slot, ordinal);
                sh.mw.cv.notify_all();
                self.mw_sequence(s);
                Err(e)
            }
        }
    }

    /// Undoes a reservation attempt that failed at the credit or cursor
    /// CAS: un-claims the conflict-admission blocks (the caller still owns
    /// `txn`) and refunds the descriptor credit if one was taken.
    fn mw_back_out(&self, sh: &Shard, txn: Txn, retries: u64, refund_credit: bool) -> MwAdmission {
        if refund_credit {
            sh.mw.slots_avail.fetch_add(1, Ordering::AcqRel);
        }
        let mut mw = lock_mw(sh);
        mw.pending_cas_retries += retries;
        for b in txn.disk_blocks() {
            mw.in_flight.remove(&b);
        }
        MwAdmission::Busy(txn)
    }

    /// The window registered by [`mw_try_begin_on`](Self::mw_try_begin_on)
    /// for `ordinal` (only the sequencer removes windows, and it never
    /// removes one whose writer still holds the ticket).
    fn mw_window_mut(mw: &mut MwState, ordinal: u64) -> &mut MwWindow {
        // Audited panic: see the doc comment — the window is present for
        // the whole writer-visible lifetime of its ticket.
        #[allow(clippy::disallowed_methods)]
        mw.windows
            .iter_mut()
            .find(|w| w.ordinal == ordinal)
            .expect("ticketed window registered")
    }

    /// Stages the window's payload blocks — COW write + flush per block —
    /// on a **private clock** seeded at the meta-phase end, so concurrent
    /// writers' staging overlaps in simulated time instead of serialising
    /// (the cost the mutex path could never avoid). Runs under no lock.
    pub fn mw_stage(&self, ticket: &mut MwTicket) {
        let sh = &self.shards[ticket.shard];
        let private = nvmsim::SimClock::new();
        private.advance_to(ticket.ready_ns);
        {
            let _scope = nvmsim::divert_charges(private.clone());
            let _t = telemetry::span(telemetry::phase::COMMIT_STAGE);
            for (addr, data) in ticket.stage_jobs.drain(..) {
                sh.nvm.write(addr, &data[..]);
                sh.nvm.clflush(addr, BLOCK_SIZE);
            }
        }
        ticket.ready_ns = private.now_ns();
    }

    /// Publishes the window: one 8 B release-store flips its descriptor
    /// state word to `STAGED` (flushed; the fence is the sequencer's).
    /// The store is charged to the writer's private clock, and the
    /// window's `ready_ns` carries its durability frontier into the round.
    pub fn mw_publish(&self, ticket: MwTicket) {
        let sh = &self.shards[ticket.shard];
        let private = nvmsim::SimClock::new();
        private.advance_to(ticket.ready_ns);
        {
            let _scope = nvmsim::divert_charges(private.clone());
            Self::mw_publish_desc(sh, ticket.desc_slot, ticket.ordinal);
        }
        {
            let mut mw = lock_mw(sh);
            let w = Self::mw_window_mut(&mut mw, ticket.ordinal);
            w.staged = true;
            w.ready_ns = private.now_ns();
        }
        sh.mw.cv.notify_all();
    }

    /// The `STAGED` descriptor store + flush + release annotation shared
    /// by the fast path, the failed-window seal, and the spanning lane.
    fn mw_publish_desc(sh: &Shard, desc_slot: usize, ordinal: u64) {
        let addr = mw_desc_addr(desc_slot);
        sh.nvm
            .atomic_write_u64(addr, mw_state_word(ordinal, MW_STAGED));
        sh.nvm.clflush(addr, 8);
        sh.nvm
            .note_atomic_store_release(sh.sync_base + SYNC_MW_PUBLISH);
    }

    /// Runs sequencer rounds on shard `s` until no retirable prefix
    /// remains: the caller that wins the combiner flag drains the maximal
    /// contiguous `STAGED` prefix with **one** fence and **one** `Head`
    /// store (the round's commit point); losers count a handoff and
    /// return. Returns the number of windows retired by this caller.
    pub fn mw_sequence(&self, s: usize) -> usize {
        let sh = &self.shards[s];
        let mut retired_total = 0usize;
        loop {
            let (mut round, retries, handoffs) = {
                let mut mw = lock_mw(sh);
                if mw.sequencing {
                    mw.pending_handoffs += 1;
                    break;
                }
                // Maximal contiguous staged prefix, in ring order.
                let mut k = 0;
                while k < mw.windows.len() && mw.windows[k].staged && mw.windows[k].meta.is_some() {
                    k += 1;
                }
                if k == 0 {
                    break;
                }
                mw.sequencing = true;
                let round: Vec<MwWindow> = mw.windows.drain(..k).collect();
                (
                    round,
                    std::mem::take(&mut mw.pending_cas_retries),
                    std::mem::take(&mut mw.pending_handoffs),
                )
            };
            let max_ready = round.iter().map(|w| w.ready_ns).max().unwrap_or(0);
            let end = round[round.len() - 1].start + round[round.len() - 1].len;
            let metas: Vec<MwStagedMeta> = round
                .iter_mut()
                .map(|w| {
                    // Audited panic: the drain predicate above required
                    // `meta.is_some()` for every window of the round.
                    #[allow(clippy::disallowed_methods)]
                    w.meta.take().expect("staged window carries meta")
                })
                .collect();
            // A crash trip may panic out of the round; clear the combiner
            // flag and wake waiters before unwinding so surviving threads
            // are not stranded.
            let res = catch_unwind(AssertUnwindSafe(|| {
                let mut cache = sh.lock_cache();
                // Adopt every publisher's history before the drain fence.
                sh.nvm
                    .note_atomic_load_acquire(sh.sync_base + SYNC_MW_PUBLISH);
                let st = cache.stats_mut();
                st.reservation_cas_retries += retries;
                st.sequencer_handoffs += handoffs;
                cache.mw_sequence(metas, max_ready);
            }));
            match res {
                Ok(()) => {
                    {
                        let mut mw = lock_mw(sh);
                        for w in &round {
                            for b in &w.disk_blocks {
                                mw.in_flight.remove(b);
                            }
                            mw.free_desc.push(w.desc_slot);
                            if mw.waiting.remove(&w.ordinal) {
                                mw.retired.insert(w.ordinal);
                            }
                        }
                        mw.sequencing = false;
                    }
                    sh.mw
                        .slots_avail
                        .fetch_add(round.len() as u64, Ordering::AcqRel);
                    sh.mw
                        .ring_limit
                        .store(end + sh.ring_slots as u64, Ordering::Release);
                    sh.mw.cv.notify_all();
                    retired_total += round.len();
                }
                Err(payload) => {
                    lock_mw(sh).sequencing = false;
                    sh.mw.cv.notify_all();
                    resume_unwind(payload);
                }
            }
        }
        retired_total
    }

    /// Blocking multi-writer commit on shard `s`: reserve (retrying while
    /// the shard is busy), stage, publish, then sequence-or-wait until the
    /// window retires.
    fn commit_on_shard_mw(&self, s: usize, mut txn: Txn) -> Result<(), TincaError> {
        let sh = &self.shards[s];
        let mut ticket = loop {
            match self.mw_try_begin_on(s, txn)? {
                MwAdmission::Admitted(t) => break t,
                MwAdmission::Busy(t) => {
                    txn = t;
                    self.mw_wait_busy(s);
                }
            }
        };
        self.mw_stage(&mut ticket);
        let ordinal = ticket.ordinal;
        lock_mw(sh).waiting.insert(ordinal);
        self.mw_publish(ticket);
        loop {
            self.mw_sequence(s);
            let mut mw = lock_mw(sh);
            if mw.retired.remove(&ordinal) {
                return Ok(());
            }
            // Another thread is sequencing, or our prefix is blocked
            // behind an earlier unpublished window; park until the shard
            // advances. Checking `retired` under the lock the sequencer
            // updates it under rules out a lost wakeup.
            let _w = telemetry::span(telemetry::phase::COMMIT_GROUP_WAIT);
            drop(sh.mw.cv.wait(mw).unwrap_or_else(PoisonError::into_inner));
        }
    }

    /// Helps or waits while shard `s` refuses admissions: runs a sequencer
    /// round if one is retirable, else parks until a window publishes,
    /// retires, or the spanning quiesce lifts.
    fn mw_wait_busy(&self, s: usize) {
        if self.mw_sequence(s) > 0 {
            return;
        }
        let sh = &self.shards[s];
        let mw = lock_mw(sh);
        if mw.windows.is_empty() && !mw.sequencing && !mw.spanning_open {
            // The shard already drained between our admission attempt and
            // now; retry immediately.
            return;
        }
        let _w = telemetry::span(telemetry::phase::COMMIT_GROUP_WAIT);
        drop(sh.mw.cv.wait(mw).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks new multi-writer admissions on shard `s` (`spanning_open`)
    /// and drains every outstanding window — helping sequence staged
    /// prefixes, waiting out unpublished stragglers — so the spanning
    /// lane finds `Head == Tail == cursor` and all descriptors free.
    fn mw_quiesce(&self, s: usize) {
        let sh = &self.shards[s];
        lock_mw(sh).spanning_open = true;
        loop {
            self.mw_sequence(s);
            let mw = lock_mw(sh);
            if mw.windows.is_empty() && !mw.sequencing {
                return;
            }
            let _w = telemetry::span(telemetry::phase::COMMIT_GROUP_WAIT);
            drop(sh.mw.cv.wait(mw).unwrap_or_else(PoisonError::into_inner));
        }
    }

    /// Reopens multi-writer admissions after a spanning commit
    /// ([`mw_quiesce`](Self::mw_quiesce) counterpart).
    fn mw_reopen(&self, participants: &[usize]) {
        for &s in participants {
            let sh = &self.shards[s];
            lock_mw(sh).spanning_open = false;
            sh.mw.cv.notify_all();
        }
    }

    /// Pool-side bookkeeping after a spanning-lane window closed on a
    /// quiesced shard (the cache side already retired its descriptor):
    /// refund the descriptor credit and republish the reservation limit
    /// off the shard's already-advanced cursor.
    fn mw_retire_slow(sh: &Shard, desc_slot: usize) {
        let end = sh.mw.cursor.load(Ordering::Acquire);
        lock_mw(sh).free_desc.push(desc_slot);
        sh.mw.slots_avail.fetch_add(1, Ordering::AcqRel);
        sh.mw
            .ring_limit
            .store(end + sh.ring_slots as u64, Ordering::Release);
    }

    /// Two-phase spanning commit in `LockFreeRing` mode. Each participant
    /// shard is quiesced, then its fragment takes the pipeline's slow
    /// lane: reserve directly off the shard atomics, run the meta phase
    /// with intent-tagged ring slots and a `MW_FLAG_SPANNING` descriptor,
    /// stage inline on the shared clock, and sequence alone with `Tail`
    /// held open — so PR 8's prepare/resolve recovery rules carry over
    /// unchanged (DESIGN §16).
    fn commit_spanning_mw(&self, txn: Txn) -> Result<(), TincaError> {
        let _t = telemetry::span(telemetry::phase::COMMIT_SPANNING);
        let coalesced = txn.coalesced_writes();
        let mut parts = self.split_spanning(txn);
        // Size-check every fragment before any shard quiesces, so an
        // oversized fragment aborts with no cross-shard work at all.
        for (s, p) in parts.iter().enumerate() {
            if let Some(p) = p {
                if p.len() > self.shards[s].ring_slots {
                    return Err(TincaError::TxnTooLarge {
                        blocks: p.len(),
                        ring_cap: self.shards[s].ring_slots as u64,
                    });
                }
            }
        }
        let mut next_id = self.spanning.lock().unwrap_or_else(PoisonError::into_inner);
        let intent_id = *next_id;
        *next_id += 1;
        let tag = intent_tag(intent_id);
        let _prov = nvmsim::txn_scope(intent_id);
        let participants: Vec<usize> = (0..self.shards.len())
            .filter(|&s| parts[s].is_some())
            .collect();
        for &s in &participants {
            self.mw_quiesce(s);
        }
        let mut guards: Vec<(usize, CacheGuard<'_>)> = Vec::new();
        for (s, sh) in self.shards.iter().enumerate() {
            if s == 0 || parts[s].is_some() {
                guards.push((s, sh.lock_cache()));
            }
        }
        let host = &self.shards[0].nvm;
        let mut bitmap: u64 = 0;
        for (s, p) in parts.iter().enumerate() {
            if p.is_some() {
                bitmap |= 1 << s.min(63);
            }
        }
        // A preceding pipelined round leaves its descriptor-retire
        // flushes unfenced on shard 0 (the next sequencer drain normally
        // orders them); the intent record below is a commit record on
        // that same device, so fence first.
        host.sfence();
        // Publish — identical to the mutex path; see `commit_spanning`.
        host.atomic_write_u64(INTENT_SHARDS_OFF, bitmap);
        host.atomic_write_u64(
            INTENT_STATE_OFF,
            SpanningIntent::Prepared { id: intent_id }.encode(),
        );
        host.persist(INTENT_OFF, 16);
        host.note_commit(INTENT_OFF, 64);

        // Phase 1: prepare one tagged window per participant, ascending.
        let mut prepared: Vec<(usize, MwStagedMeta)> = Vec::new();
        let mut failure = None;
        let mut first_part = true;
        for (gi, (s, guard)) in guards.iter_mut().enumerate() {
            let Some(mut part) = parts[*s].take() else {
                continue;
            };
            if first_part {
                part.add_coalesced(coalesced);
                first_part = false;
            }
            let sh = &self.shards[*s];
            let n = part.len() as u64;
            // The shard is quiesced and `spanning_open` blocks rivals, so
            // plain stores reserve the window.
            let start = sh.mw.cursor.load(Ordering::Acquire);
            sh.mw.cursor.store(start + n, Ordering::Release);
            sh.mw.slots_avail.fetch_sub(1, Ordering::AcqRel);
            let (ordinal, desc_slot) = {
                let mut mw = lock_mw(sh);
                let ordinal = mw.next_ordinal;
                mw.next_ordinal += 1;
                // Audited panic: a quiesced shard has every descriptor
                // slot free.
                #[allow(clippy::disallowed_methods)]
                let slot = mw
                    .free_desc
                    .pop()
                    .expect("quiesced shard has free descriptors");
                (ordinal, slot)
            };
            let staged = guard.mw_stage_meta(part, start, desc_slot, tag, ordinal);
            match staged {
                Ok(mut meta) => {
                    // Inline staging on the shared clock: the spanning lane
                    // is serialised anyway, so there is no overlap to model.
                    for (addr, data) in std::mem::take(&mut meta.stage_jobs) {
                        guard.nvm().write(addr, &data[..]);
                        guard.nvm().clflush(addr, BLOCK_SIZE);
                    }
                    Self::mw_publish_desc(sh, desc_slot, ordinal);
                    let now = guard.nvm().clock().now_ns();
                    guard.mw_sequence_spanning(&meta, now);
                    prepared.push((gi, meta));
                }
                Err((e, meta)) => {
                    // Seal the failed window: publish and sequence it as a
                    // no-op so the shard's ring closes cleanly.
                    Self::mw_publish_desc(sh, desc_slot, ordinal);
                    let now = guard.nvm().clock().now_ns();
                    guard.mw_sequence(vec![meta], now);
                    // The sequencer leaves its descriptor-retire flush
                    // unfenced (the next round's drain fence orders it);
                    // here the next persist is the intent abort on shard
                    // 0, so fence before falling through to it.
                    guard.nvm().sfence();
                    Self::mw_retire_slow(sh, desc_slot);
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            // Abort — same shape as the mutex path: revoke every prepared
            // fragment, then retire the intent.
            for (gi, meta) in prepared {
                let s = guards[gi].0;
                let desc_slot = meta.desc_slot;
                guards[gi].1.mw_abort_spanning(meta);
                Self::mw_retire_slow(&self.shards[s], desc_slot);
            }
            host.atomic_write_u64(INTENT_STATE_OFF, SpanningIntent::None.encode());
            host.persist(INTENT_STATE_OFF, 8);
            host.note_commit(INTENT_OFF, 64);
            guards[0].1.stats_mut().spanning_aborts += 1;
            drop(guards);
            self.mw_reopen(&participants);
            return Err(e);
        }

        // Resolve: the transaction's commit point (see `commit_spanning`).
        host.atomic_write_u64(
            INTENT_STATE_OFF,
            SpanningIntent::Resolved { id: intent_id }.encode(),
        );
        host.persist(INTENT_STATE_OFF, 8);
        host.note_commit(INTENT_OFF, 64);
        for (gi, meta) in prepared {
            let s = guards[gi].0;
            let desc_slot = meta.desc_slot;
            guards[gi].1.mw_complete_spanning(meta);
            Self::mw_retire_slow(&self.shards[s], desc_slot);
        }
        host.atomic_write_u64(INTENT_STATE_OFF, SpanningIntent::None.encode());
        host.persist(INTENT_STATE_OFF, 8);
        host.note_commit(INTENT_OFF, 64);
        guards[0].1.stats_mut().spanning_commits += 1;
        drop(guards);
        self.mw_reopen(&participants);
        Ok(())
    }

    /// Reads on-disk block `disk_blk` through its home shard.
    pub fn read(&self, disk_blk: u64, buf: &mut [u8]) -> Result<(), TincaError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().read(disk_blk, buf)
    }

    /// Reads without populating any cache (verification).
    pub fn read_nocache(&self, disk_blk: u64, buf: &mut [u8]) -> Result<(), TincaError> {
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().read_nocache(disk_blk, buf)
    }

    /// True if `disk_blk` is cached in its home shard.
    pub fn contains(&self, disk_blk: u64) -> bool {
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().contains(disk_blk)
    }

    /// Cached payload of `disk_blk`, if present (inspection only).
    pub fn peek(&self, disk_blk: u64) -> Option<[u8; BLOCK_SIZE]> {
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().peek(disk_blk)
    }

    /// Writes back every dirty block of every shard (orderly shutdown).
    /// Every shard gets its flush attempt even if an earlier one fails;
    /// the first error is returned (see [`TincaCache::flush_all`]).
    pub fn flush_all(&self) -> Result<(), TincaError> {
        let mut first_err = Ok(());
        for (s, sh) in self.shards.iter().enumerate() {
            if self.commit_mode == CommitMode::LockFreeRing {
                // Retire whatever is retirable first; an unpublished (or
                // mid-sequence) window still in flight makes the flush
                // racy, so report it like an open ring window.
                self.mw_sequence(s);
                let mw = lock_mw(sh);
                if !mw.windows.is_empty() || mw.sequencing {
                    if first_err.is_ok() {
                        first_err = Err(TincaError::CommitInProgress {
                            head: sh.mw.cursor.load(Ordering::Acquire),
                            tail: mw.windows.front().map(|w| w.start).unwrap_or(0),
                        });
                    }
                    continue;
                }
            }
            let res = sh.lock_cache().flush_all();
            if first_err.is_ok() {
                first_err = res;
            }
        }
        first_err
    }

    /// Pool-wide fault condition: `Healthy` when every shard is healthy,
    /// `ReadOnly` when every shard is read-only, otherwise `Degraded` with
    /// the total quarantined count — one shard on a dead disk degrades the
    /// pool but the other shards keep committing.
    pub fn health(&self) -> Health {
        let mut quarantined = 0usize;
        let mut any_fault = false;
        let mut all_read_only = true;
        for sh in &self.shards {
            let cache = sh.lock_cache();
            match cache.health() {
                Health::Healthy => all_read_only = false,
                Health::Degraded { .. } => {
                    any_fault = true;
                    all_read_only = false;
                }
                Health::ReadOnly => any_fault = true,
            }
            quarantined += cache.quarantined_count();
        }
        if !any_fault {
            Health::Healthy
        } else if all_read_only {
            Health::ReadOnly
        } else {
            Health::Degraded { quarantined }
        }
    }

    /// Runs [`TincaCache::check_consistency`] on every shard.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, sh) in self.shards.iter().enumerate() {
            sh.cache
                .lock()
                .check_consistency()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }

    /// Pool-wide counters (sum over shards).
    pub fn stats(&self) -> CacheStats {
        self.shards.iter().fold(CacheStats::default(), |acc, sh| {
            acc.merge(&Self::fold_mw_pending(sh))
        })
    }

    /// One shard's counters.
    pub fn shard_stats(&self, s: usize) -> CacheStats {
        Self::fold_mw_pending(&self.shards[s])
    }

    /// A shard's cache counters plus the multi-writer pipeline's pending
    /// (not-yet-sequenced) retry/handoff counts, so snapshots taken
    /// between sequencer rounds still add up.
    fn fold_mw_pending(sh: &Shard) -> CacheStats {
        let mut st = sh.lock_cache().stats();
        let mw = lock_mw(sh);
        st.reservation_cas_retries += mw.pending_cas_retries;
        st.sequencer_handoffs += mw.pending_handoffs;
        st
    }

    /// Runs `f` with shard `s`'s cache locked (tests, fuzzers, benches).
    pub fn with_shard<R>(&self, s: usize, f: impl FnOnce(&mut TincaCache) -> R) -> R {
        f(&mut self.shards[s].lock_cache())
    }

    /// The commit-path mode this pool was built with.
    pub fn commit_mode(&self) -> CommitMode {
        self.commit_mode
    }

    /// How many commits one shard can hold in flight at once: 1 for the
    /// mutex path, the descriptor-table capacity for the lock-free ring.
    /// Service-model tiers (open-loop) use this as the per-shard server
    /// multiplicity.
    pub fn commit_concurrency(&self) -> usize {
        match self.commit_mode {
            CommitMode::MutexGroup => 1,
            CommitMode::LockFreeRing => MW_WINDOWS,
        }
    }

    /// A handle on shard `s`'s simulated clock (clones share time).
    ///
    /// This is the queue-wait hook of the open-loop tier: an arrival-
    /// driven driver calls [`nvmsim::SimClock::advance_to`] with each
    /// op's arrival instant so idle time between arrivals actually
    /// passes on the shard — background-lane deadlines (destage) expire
    /// during load gaps, and `service start = max(arrival, shard now)`
    /// makes queue wait measurable instead of modelled away. Closed-loop
    /// drivers never advance this clock directly; only the shard's
    /// devices do. Advancing it is only meaningful while the shard is
    /// otherwise quiescent (single-threaded driving).
    pub fn shard_clock(&self, s: usize) -> nvmsim::SimClock {
        self.shards[s].lock_cache().nvm().clock().clone()
    }

    /// NVM metadata byte ranges of shard `s` (header + ring + entry table,
    /// in that shard's device address space) for persist-order analysis.
    pub fn shard_metadata_ranges(&self, s: usize) -> Vec<std::ops::Range<usize>> {
        let metadata = 0..self.shards[s].lock_cache().layout().data_off;
        vec![metadata]
    }

    /// Free NVM data blocks across all shards.
    pub fn free_block_count(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.lock_cache().free_block_count())
            .sum()
    }

    /// Valid cached blocks across all shards.
    pub fn cached_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.lock_cache().cached_blocks())
            .sum()
    }
}

impl std::fmt::Debug for TincaPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TincaPool")
            .field("shards", &self.shards.len())
            .field("max_batch_txns", &self.max_batch_txns)
            .finish()
    }
}
