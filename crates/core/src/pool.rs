//! `TincaPool` — a sharded, thread-safe front-end over [`TincaCache`].
//!
//! The paper evaluates Tinca under multi-threaded Fio/Filebench/MySQL
//! load; a single `TincaCache` serialises everything behind `&mut self`.
//! The pool partitions the NVM into `N` independent shards — each shard is
//! a complete `TincaCache` on its own NVM device region (disjoint
//! [`Layout`](crate::Layout)s, own `Head`/`Tail` ring, own entry table) —
//! and routes disk block `b` to shard `b % N`. Because every commit point
//! is still a single 8-byte `Tail` store *within one shard's region*, the
//! paper's single-commit-point crash argument holds per shard unchanged.
//!
//! ## Group commit
//!
//! Transactions queued on the same shard while a commit is in flight are
//! batched: the first arrival becomes the *leader*, drains the queue (up
//! to the shard's ring capacity), folds the batch into one committing
//! transaction ([`Txn::absorb`] — buffers moved, later writers win) and
//! drives **one** ring commit — one `Tail` store + fence for the whole
//! batch, exactly how JBD2 amortises fsyncs into a compound transaction.
//! Followers block on the shard's condition variable and receive the
//! group's result.
//!
//! With `N = 1` and a single thread, every batch has exactly one member
//! and the pool is bit-for-bit identical to a bare `TincaCache`: same NVM
//! stores, flushes, fences, simulated time, and statistics.
//!
//! ## Atomicity scope
//!
//! A transaction whose blocks all route to one shard commits atomically
//! (all-or-nothing across any crash). A transaction spanning shards is
//! split and committed per shard in shard order; each fragment is atomic,
//! but a crash between fragments can persist some shards' fragments and
//! not others (the same guarantee per-allocation-group journals give).
//! Block-aligned workloads — Fio 4 KB requests, per-shard files — never
//! split.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

use blockdev::BLOCK_SIZE;
use nvmsim::Nvm;
use parking_lot::Mutex;

use crate::cache::DynDisk;
use crate::{CacheStats, Health, TincaCache, TincaConfig, TincaError, Txn};

/// Configuration for a [`TincaPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of shards (NVM sub-regions / independent commit rings).
    pub shards: usize,
    /// Maximum transactions folded into one group commit.
    pub max_batch_txns: usize,
    /// Per-shard cache configuration.
    pub cache: TincaConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            shards: 1,
            max_batch_txns: 64,
            cache: TincaConfig::default(),
        }
    }
}

impl PoolConfig {
    /// `n`-shard pool with default cache knobs.
    pub fn with_shards(n: usize) -> Self {
        PoolConfig {
            shards: n,
            ..Default::default()
        }
    }
}

/// Group-commit queue state of one shard.
struct GcState {
    next_ticket: u64,
    queue: VecDeque<(u64, Txn)>,
    results: HashMap<u64, Result<(), TincaError>>,
    leader: bool,
}

/// Sync-object ids this pool annotates on each shard's NVM trace, namespaced
/// `shard_index * SYNC_STRIDE + kind` so a merged multi-shard trace
/// ([`nvmsim::merge_shard_traces`]) never conflates two shards' locks.
const SYNC_STRIDE: u64 = 16;
/// The shard's cache mutex — serialises commits, reads, flushes, and the
/// inline destage daemon (which runs under this same lock).
const SYNC_CACHE_MUTEX: u64 = 0;
/// The group-commit result handoff: the leader release-publishes the
/// batch's results, each follower acquire-consumes its own.
const SYNC_GC_PUBLISH: u64 = 1;

struct Shard {
    cache: Mutex<TincaCache>,
    gc: StdMutex<GcState>,
    cv: Condvar,
    /// Ring slots of this shard's layout (bounds one merged batch).
    ring_slots: usize,
    /// This shard's NVM device, for sync-event trace annotations.
    nvm: Nvm,
    /// First sync-object id of this shard's namespace.
    sync_base: u64,
}

/// Cache-mutex guard that annotates acquisition and release as sync events
/// on the shard's NVM trace (no-ops when tracing is off), so the
/// happens-before engine sees the mutual exclusion the mutex provides.
struct CacheGuard<'a> {
    guard: parking_lot::MutexGuard<'a, TincaCache>,
    nvm: &'a Nvm,
    obj: u64,
}

impl std::ops::Deref for CacheGuard<'_> {
    type Target = TincaCache;
    fn deref(&self) -> &TincaCache {
        &self.guard
    }
}

impl std::ops::DerefMut for CacheGuard<'_> {
    fn deref_mut(&mut self) -> &mut TincaCache {
        &mut self.guard
    }
}

impl Drop for CacheGuard<'_> {
    fn drop(&mut self) {
        // Runs before the mutex guard field drops, so the release
        // annotation lands while the lock is still held.
        self.nvm.note_lock_release(self.obj);
    }
}

impl Shard {
    /// Locks the cache mutex; the acquire annotation is recorded *after*
    /// the lock is held (and the release before it drops), so annotations
    /// appear in the trace in true lock order.
    fn lock_cache(&self) -> CacheGuard<'_> {
        let guard = self.cache.lock();
        let obj = self.sync_base + SYNC_CACHE_MUTEX;
        self.nvm.note_lock_acquire(obj);
        CacheGuard {
            guard,
            nvm: &self.nvm,
            obj,
        }
    }
}

fn lock_gc<'a>(sh: &'a Shard) -> StdGuard<'a, GcState> {
    sh.gc.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sharded multi-threaded front-end; see the module docs.
pub struct TincaPool {
    shards: Vec<Shard>,
    max_batch_txns: usize,
}

impl TincaPool {
    /// Formats one [`TincaCache`] per device and assembles the pool.
    /// `devices[i]` becomes shard `i`; all shards share the backing disk
    /// (their disk-block sets are disjoint by routing).
    pub fn format(devices: Vec<Nvm>, disk: DynDisk, cfg: PoolConfig) -> Self {
        assert_eq!(
            devices.len(),
            cfg.shards,
            "one NVM device per shard required"
        );
        assert!(cfg.shards >= 1, "pool needs at least one shard");
        let shards = devices
            .into_iter()
            .enumerate()
            .map(|(i, nvm)| {
                Self::shard(i, TincaCache::format(nvm, disk.clone(), cfg.cache.clone()))
            })
            .collect();
        TincaPool {
            shards,
            max_batch_txns: cfg.max_batch_txns.max(1),
        }
    }

    /// Recovers every shard from its NVM region after a crash or clean
    /// shutdown. Each shard runs the full §4.5 recovery independently.
    pub fn recover(devices: Vec<Nvm>, disk: DynDisk, cfg: PoolConfig) -> Result<Self, TincaError> {
        assert_eq!(
            devices.len(),
            cfg.shards,
            "one NVM device per shard required"
        );
        assert!(cfg.shards >= 1, "pool needs at least one shard");
        let mut shards = Vec::with_capacity(cfg.shards);
        for (i, nvm) in devices.into_iter().enumerate() {
            shards.push(Self::shard(
                i,
                TincaCache::recover(nvm, disk.clone(), cfg.cache.clone())?,
            ));
        }
        Ok(TincaPool {
            shards,
            max_batch_txns: cfg.max_batch_txns.max(1),
        })
    }

    fn shard(index: usize, cache: TincaCache) -> Shard {
        let ring_slots = cache.layout().ring_cap as usize;
        let nvm = cache.nvm().clone();
        Shard {
            cache: Mutex::new(cache),
            gc: StdMutex::new(GcState {
                next_ticket: 0,
                queue: VecDeque::new(),
                results: HashMap::new(),
                leader: false,
            }),
            cv: Condvar::new(),
            ring_slots,
            nvm,
            sync_base: index as u64 * SYNC_STRIDE,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard disk block `disk_blk` routes to.
    pub fn shard_of(&self, disk_blk: u64) -> usize {
        (disk_blk % self.shards.len() as u64) as usize
    }

    /// Starts a running transaction (DRAM-only, same as
    /// [`TincaCache::init_txn`]).
    pub fn init_txn(&self) -> Txn {
        Txn::new()
    }

    /// Commits `txn`. Single-shard transactions (all blocks route to one
    /// shard — always true for `N = 1`) are atomic and may be group-
    /// committed with concurrent transactions on the same shard. Spanning
    /// transactions are split and committed per shard in shard order; the
    /// first error is returned after every fragment was attempted.
    pub fn commit(&self, txn: Txn) -> Result<(), TincaError> {
        if txn.is_empty() {
            return Ok(());
        }
        if self.shards.len() == 1 {
            return self.commit_on_shard(0, txn);
        }
        let mut home = None;
        for b in txn.disk_blocks() {
            let s = self.shard_of(b);
            if *home.get_or_insert(s) != s {
                home = None;
                break;
            }
        }
        if let Some(s) = home {
            return self.commit_on_shard(s, txn);
        }
        // Spanning transaction: split, preserving first-write order and
        // moving payload buffers.
        let coalesced = txn.coalesced_writes();
        let mut parts: Vec<Option<Txn>> = (0..self.shards.len()).map(|_| None).collect();
        for (blk, buf) in txn.into_blocks() {
            let s = (blk % self.shards.len() as u64) as usize;
            parts[s].get_or_insert_with(Txn::new).stage_owned(blk, buf);
        }
        let mut first_err = Ok(());
        let mut first_part = true;
        for (s, part) in parts.into_iter().enumerate() {
            let Some(mut part) = part else { continue };
            if first_part {
                // Keep the original transaction's coalescing count on its
                // first fragment so pool-wide stats still add up.
                part.add_coalesced(coalesced);
                first_part = false;
            }
            let res = self.commit_on_shard(s, part);
            if first_err.is_ok() {
                first_err = res;
            }
        }
        first_err
    }

    /// Submits a whole batch of transactions at once: all are routed and
    /// queued before any shard commits, so transactions sharing a shard
    /// are guaranteed to ride one group commit (deterministically — no
    /// reliance on thread timing). Returns one result per transaction, in
    /// submission order.
    pub fn commit_many(&self, txns: Vec<Txn>) -> Vec<Result<(), TincaError>> {
        let n = txns.len();
        // Fragments per shard, tagged with the submitting txn's index.
        let mut per_shard: Vec<Vec<(usize, Txn)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, txn) in txns.into_iter().enumerate() {
            if txn.is_empty() {
                continue;
            }
            let coalesced = txn.coalesced_writes();
            let mut parts: Vec<Option<Txn>> = (0..self.shards.len()).map(|_| None).collect();
            for (blk, buf) in txn.into_blocks() {
                let s = (blk % self.shards.len() as u64) as usize;
                parts[s].get_or_insert_with(Txn::new).stage_owned(blk, buf);
            }
            let mut first_part = true;
            for (s, part) in parts.into_iter().enumerate() {
                let Some(mut part) = part else { continue };
                if first_part {
                    part.add_coalesced(coalesced);
                    first_part = false;
                }
                per_shard[s].push((i, part));
            }
        }
        let mut results: Vec<Result<(), TincaError>> = vec![Ok(()); n];
        for (s, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (idxs, parts): (Vec<usize>, Vec<Txn>) = batch.into_iter().unzip();
            let res = self.shards[s].lock_cache().commit_group(parts);
            if let Err(e) = res {
                for i in idxs {
                    if results[i].is_ok() {
                        results[i] = Err(e);
                    }
                }
            }
        }
        results
    }

    /// Queues `txn` on shard `s` and returns its group's commit result.
    /// The first queued thread becomes the leader: it drains a batch
    /// (bounded by the ring capacity and `max_batch_txns`), merges it, and
    /// runs one ring commit while followers wait on the condvar.
    fn commit_on_shard(&self, s: usize, txn: Txn) -> Result<(), TincaError> {
        let sh = &self.shards[s];
        let ticket = {
            let mut gc = lock_gc(sh);
            let t = gc.next_ticket;
            gc.next_ticket += 1;
            gc.queue.push_back((t, txn));
            t
        };
        let mut gc = lock_gc(sh);
        loop {
            if let Some(res) = gc.results.remove(&ticket) {
                // Adopt the publishing leader's history: everything it
                // stored and fenced for this group happens-before whatever
                // this thread does next.
                sh.nvm
                    .note_atomic_load_acquire(sh.sync_base + SYNC_GC_PUBLISH);
                return res;
            }
            if gc.leader {
                // Simulated time a follower spends parked behind the
                // in-flight group commit (the leader advances the clock).
                let _w = telemetry::span(telemetry::phase::COMMIT_GROUP_WAIT);
                gc = sh.cv.wait(gc).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            gc.leader = true;
            let lead = telemetry::span(telemetry::phase::COMMIT_GROUP_LEAD);
            let mut tickets = Vec::new();
            let mut batch = Vec::new();
            let mut staged = 0usize;
            while let Some((t, queued)) = gc.queue.pop_front() {
                // Always take one; stop before the merged transaction could
                // overflow the ring (coalescing only shrinks it further).
                if !batch.is_empty()
                    && (batch.len() >= self.max_batch_txns || staged + queued.len() > sh.ring_slots)
                {
                    gc.queue.push_front((t, queued));
                    break;
                }
                staged += queued.len();
                tickets.push(t);
                batch.push(queued);
            }
            drop(gc);
            // A crash trip (simulated power failure) may panic out of the
            // commit; restore leadership and wake waiters before unwinding
            // so surviving threads are not stranded.
            let res = catch_unwind(AssertUnwindSafe(|| sh.lock_cache().commit_group(batch)));
            drop(lead);
            gc = lock_gc(sh);
            gc.leader = false;
            match res {
                Ok(res) => {
                    for t in tickets {
                        gc.results.insert(t, res);
                    }
                    // Publish the group's commit to its followers (still
                    // under the gc mutex, so the release annotation is
                    // trace-ordered before any follower's acquire).
                    sh.nvm
                        .note_atomic_store_release(sh.sync_base + SYNC_GC_PUBLISH);
                    sh.cv.notify_all();
                }
                Err(payload) => {
                    drop(gc);
                    sh.cv.notify_all();
                    resume_unwind(payload);
                }
            }
        }
    }

    /// Reads on-disk block `disk_blk` through its home shard.
    pub fn read(&self, disk_blk: u64, buf: &mut [u8]) -> Result<(), TincaError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().read(disk_blk, buf)
    }

    /// Reads without populating any cache (verification).
    pub fn read_nocache(&self, disk_blk: u64, buf: &mut [u8]) -> Result<(), TincaError> {
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().read_nocache(disk_blk, buf)
    }

    /// True if `disk_blk` is cached in its home shard.
    pub fn contains(&self, disk_blk: u64) -> bool {
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().contains(disk_blk)
    }

    /// Cached payload of `disk_blk`, if present (inspection only).
    pub fn peek(&self, disk_blk: u64) -> Option<[u8; BLOCK_SIZE]> {
        let s = self.shard_of(disk_blk);
        self.shards[s].lock_cache().peek(disk_blk)
    }

    /// Writes back every dirty block of every shard (orderly shutdown).
    /// Every shard gets its flush attempt even if an earlier one fails;
    /// the first error is returned (see [`TincaCache::flush_all`]).
    pub fn flush_all(&self) -> Result<(), TincaError> {
        let mut first_err = Ok(());
        for sh in &self.shards {
            let res = sh.lock_cache().flush_all();
            if first_err.is_ok() {
                first_err = res;
            }
        }
        first_err
    }

    /// Pool-wide fault condition: `Healthy` when every shard is healthy,
    /// `ReadOnly` when every shard is read-only, otherwise `Degraded` with
    /// the total quarantined count — one shard on a dead disk degrades the
    /// pool but the other shards keep committing.
    pub fn health(&self) -> Health {
        let mut quarantined = 0usize;
        let mut any_fault = false;
        let mut all_read_only = true;
        for sh in &self.shards {
            let cache = sh.lock_cache();
            match cache.health() {
                Health::Healthy => all_read_only = false,
                Health::Degraded { .. } => {
                    any_fault = true;
                    all_read_only = false;
                }
                Health::ReadOnly => any_fault = true,
            }
            quarantined += cache.quarantined_count();
        }
        if !any_fault {
            Health::Healthy
        } else if all_read_only {
            Health::ReadOnly
        } else {
            Health::Degraded { quarantined }
        }
    }

    /// Runs [`TincaCache::check_consistency`] on every shard.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, sh) in self.shards.iter().enumerate() {
            sh.cache
                .lock()
                .check_consistency()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }

    /// Pool-wide counters (sum over shards).
    pub fn stats(&self) -> CacheStats {
        self.shards.iter().fold(CacheStats::default(), |acc, sh| {
            acc.merge(&sh.lock_cache().stats())
        })
    }

    /// One shard's counters.
    pub fn shard_stats(&self, s: usize) -> CacheStats {
        self.shards[s].lock_cache().stats()
    }

    /// Runs `f` with shard `s`'s cache locked (tests, fuzzers, benches).
    pub fn with_shard<R>(&self, s: usize, f: impl FnOnce(&mut TincaCache) -> R) -> R {
        f(&mut self.shards[s].lock_cache())
    }

    /// A handle on shard `s`'s simulated clock (clones share time).
    ///
    /// This is the queue-wait hook of the open-loop tier: an arrival-
    /// driven driver calls [`nvmsim::SimClock::advance_to`] with each
    /// op's arrival instant so idle time between arrivals actually
    /// passes on the shard — background-lane deadlines (destage) expire
    /// during load gaps, and `service start = max(arrival, shard now)`
    /// makes queue wait measurable instead of modelled away. Closed-loop
    /// drivers never advance this clock directly; only the shard's
    /// devices do. Advancing it is only meaningful while the shard is
    /// otherwise quiescent (single-threaded driving).
    pub fn shard_clock(&self, s: usize) -> nvmsim::SimClock {
        self.shards[s].lock_cache().nvm().clock().clone()
    }

    /// NVM metadata byte ranges of shard `s` (header + ring + entry table,
    /// in that shard's device address space) for persist-order analysis.
    pub fn shard_metadata_ranges(&self, s: usize) -> Vec<std::ops::Range<usize>> {
        let metadata = 0..self.shards[s].lock_cache().layout().data_off;
        vec![metadata]
    }

    /// Free NVM data blocks across all shards.
    pub fn free_block_count(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.lock_cache().free_block_count())
            .sum()
    }

    /// Valid cached blocks across all shards.
    pub fn cached_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.lock_cache().cached_blocks())
            .sum()
    }
}

impl std::fmt::Debug for TincaPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TincaPool")
            .field("shards", &self.shards.len())
            .field("max_batch_txns", &self.max_batch_txns)
            .finish()
    }
}
