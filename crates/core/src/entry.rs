//! The 16-byte cache entry (§4.2, Fig. 5).
//!
//! ```text
//!  bits   0..8   flags  (VALID | R role | M modified)
//!  bits   8..64  on-disk block number (7 bytes)
//!  bits  64..96  previous NVM block number (FRESH if none)
//!  bits  96..128 current NVM block number
//! ```
//!
//! An entry is always read and written as one `u128`; persistent updates go
//! through a single 16-byte atomic store (`LOCK cmpxchg16b` in the paper)
//! followed by `clflush` + `sfence`, so an entry can never be observed
//! half-updated after a crash.

/// `prev` value for a block that had no cached previous version (§4.3:
/// "Tinca just creates a new cache entry where the previous NVM block
/// number is set to be a special FRESH tag").
pub const FRESH: u32 = u32::MAX;

/// The role of a cached block (§4.3). Stored in the entry's R bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Block belongs to the ongoing committing transaction; may not be
    /// replaced and must be revoked if the transaction does not complete.
    Log,
    /// Stationary block; eligible for cache replacement.
    Buffer,
}

const FLAG_VALID: u64 = 1 << 0;
const FLAG_LOG: u64 = 1 << 1;
const FLAG_MOD: u64 = 1 << 2;
const DISK_BLK_MAX: u64 = (1 << 56) - 1;

/// Decoded view of a cache entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    pub valid: bool,
    pub role: Role,
    /// True if the cached (current) version differs from the disk copy.
    pub modified: bool,
    /// On-disk block number this entry maps.
    pub disk_blk: u64,
    /// NVM block holding the previous version ([`FRESH`] if none).
    pub prev: u32,
    /// NVM block holding the current version.
    pub cur: u32,
}

impl CacheEntry {
    /// An invalid (empty) entry; encodes to all-zero.
    pub const INVALID: CacheEntry = CacheEntry {
        valid: false,
        role: Role::Buffer,
        modified: false,
        disk_blk: 0,
        prev: 0,
        cur: 0,
    };

    /// Creates a valid entry.
    pub fn new(role: Role, modified: bool, disk_blk: u64, prev: u32, cur: u32) -> Self {
        assert!(
            disk_blk <= DISK_BLK_MAX,
            "disk block number exceeds 7 bytes"
        );
        CacheEntry {
            valid: true,
            role,
            modified,
            disk_blk,
            prev,
            cur,
        }
    }

    /// Packs the entry into its 16-byte NVM representation.
    pub fn encode(&self) -> u128 {
        if !self.valid {
            return 0;
        }
        let mut flags = FLAG_VALID;
        if self.role == Role::Log {
            flags |= FLAG_LOG;
        }
        if self.modified {
            flags |= FLAG_MOD;
        }
        let lo = flags | (self.disk_blk << 8);
        let hi = (self.prev as u64) | ((self.cur as u64) << 32);
        (lo as u128) | ((hi as u128) << 64)
    }

    /// Unpacks a 16-byte NVM representation.
    pub fn decode(raw: u128) -> CacheEntry {
        let lo = raw as u64;
        let hi = (raw >> 64) as u64;
        if lo & FLAG_VALID == 0 {
            return CacheEntry::INVALID;
        }
        CacheEntry {
            valid: true,
            role: if lo & FLAG_LOG != 0 {
                Role::Log
            } else {
                Role::Buffer
            },
            modified: lo & FLAG_MOD != 0,
            disk_blk: lo >> 8,
            prev: hi as u32,
            cur: (hi >> 32) as u32,
        }
    }

    /// The entry after the commit-completion *role switch* (§4.3): the block
    /// leaves the log role and becomes a replaceable buffer block. `prev` is
    /// retained — it is only reclaimed (in DRAM) once `Tail` has moved, so a
    /// crash between role switch and `Tail` can still revoke.
    pub fn switched_to_buffer(&self) -> CacheEntry {
        CacheEntry {
            role: Role::Buffer,
            ..*self
        }
    }

    /// The entry after revoking an uncommitted update: the previous version
    /// becomes current again. Returns `None` if there was no previous
    /// version (`prev == FRESH`) — the entry must be deleted instead.
    ///
    /// The revoked entry deliberately keeps `prev == cur` (both naming the
    /// restored block). No runtime state ever produces `prev == cur` (a
    /// write hit always allocates a fresh `cur` distinct from `prev`), so
    /// the marker lets a *second* recovery pass — after a crash during the
    /// first — recognise already-revoked entries and skip them, making
    /// recovery idempotent.
    pub fn revoked(&self) -> Option<CacheEntry> {
        if self.prev == FRESH {
            return None;
        }
        Some(CacheEntry {
            role: Role::Buffer,
            // The previous version had been committed but possibly never
            // written back; treat it as modified so it reaches the disk.
            modified: true,
            prev: self.prev,
            cur: self.prev,
            ..*self
        })
    }

    /// True if this entry is the result of a revocation (see
    /// [`Self::revoked`]): recovery must not process it a second time.
    pub fn is_revoked_marker(&self) -> bool {
        self.valid && self.prev == self.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let e = CacheEntry::new(Role::Log, true, 0x00DE_ADBE_EF12_3456, 7, 42);
        assert_eq!(CacheEntry::decode(e.encode()), e);
    }

    #[test]
    fn invalid_is_zero() {
        assert_eq!(CacheEntry::INVALID.encode(), 0);
        assert_eq!(CacheEntry::decode(0), CacheEntry::INVALID);
    }

    #[test]
    fn max_disk_blk_fits() {
        let e = CacheEntry::new(Role::Buffer, false, DISK_BLK_MAX, FRESH, 0);
        let d = CacheEntry::decode(e.encode());
        assert_eq!(d.disk_blk, DISK_BLK_MAX);
    }

    #[test]
    #[should_panic(expected = "7 bytes")]
    fn oversized_disk_blk_rejected() {
        let _ = CacheEntry::new(Role::Buffer, false, 1 << 56, FRESH, 0);
    }

    #[test]
    fn role_switch_preserves_mapping() {
        let e = CacheEntry::new(Role::Log, true, 99, 3, 4);
        let s = e.switched_to_buffer();
        assert_eq!(s.role, Role::Buffer);
        assert_eq!(s.prev, 3, "prev must survive the role switch");
        assert_eq!(s.cur, 4);
        assert!(s.modified);
    }

    #[test]
    fn revoke_restores_previous_version() {
        let e = CacheEntry::new(Role::Log, true, 99, 3, 4);
        let r = e.revoked().unwrap();
        assert_eq!(r.cur, 3);
        assert_eq!(r.prev, 3, "revoked entries carry the prev == cur marker");
        assert!(r.is_revoked_marker());
        assert_eq!(r.role, Role::Buffer);
        assert!(r.modified);
        // Re-revoking must be recognisable, not destructive.
        assert!(!e.is_revoked_marker());
    }

    #[test]
    fn revoke_of_fresh_entry_deletes() {
        let e = CacheEntry::new(Role::Log, true, 99, FRESH, 4);
        assert!(e.revoked().is_none());
    }

    #[test]
    fn flags_are_independent() {
        for role in [Role::Log, Role::Buffer] {
            for modified in [false, true] {
                let e = CacheEntry::new(role, modified, 1, 2, 3);
                let d = CacheEntry::decode(e.encode());
                assert_eq!(d.role, role);
                assert_eq!(d.modified, modified);
            }
        }
    }
}
