//! Intrusive LRU list over cache-entry indices (§4.6).
//!
//! The paper keeps the LRU list in DRAM ("these structures are not needed
//! to be persistently stored in NVM as they can be reconstructed on the
//! startup of system"). We use index-based intrusive links — no per-node
//! allocation on the hot path.

const NIL: u32 = u32::MAX;

/// A doubly-linked LRU list over `0..capacity` entry indices.
///
/// `head` is the MRU end, `tail` the LRU end. All operations are O(1);
/// iteration from the LRU end is used for victim selection.
#[derive(Clone, Debug)]
pub struct LruList {
    prev: Vec<u32>, // towards MRU
    next: Vec<u32>, // towards LRU
    linked: Vec<bool>,
    head: u32,
    tail: u32,
    len: usize,
}

impl LruList {
    /// Creates an empty list able to hold indices `0..capacity`.
    pub fn new(capacity: u32) -> Self {
        Self {
            prev: vec![NIL; capacity as usize],
            next: vec![NIL; capacity as usize],
            linked: vec![false; capacity as usize],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    #[allow(dead_code)] // part of the list's API surface, exercised in tests
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, idx: u32) -> bool {
        self.linked[idx as usize]
    }

    /// Inserts `idx` at the MRU end. Panics if already present.
    pub fn push_mru(&mut self, idx: u32) {
        assert!(
            !self.linked[idx as usize],
            "index {idx} already in LRU list"
        );
        let i = idx as usize;
        self.prev[i] = NIL;
        self.next[i] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.linked[i] = true;
        self.len += 1;
    }

    /// Removes `idx` from the list. Panics if absent.
    pub fn remove(&mut self, idx: u32) {
        assert!(self.linked[idx as usize], "index {idx} not in LRU list");
        let i = idx as usize;
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.prev[i] = NIL;
        self.next[i] = NIL;
        self.linked[i] = false;
        self.len -= 1;
    }

    /// Moves `idx` to the MRU end (a cache hit).
    pub fn touch(&mut self, idx: u32) {
        if self.head == idx {
            return;
        }
        self.remove(idx);
        self.push_mru(idx);
    }

    /// The current LRU-end index, if any.
    #[allow(dead_code)] // part of the list's API surface, exercised in tests
    pub fn lru(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Iterates indices from LRU to MRU (victim-selection order).
    pub fn iter_lru(&self) -> LruIter<'_> {
        LruIter {
            list: self,
            cur: self.tail,
        }
    }
}

/// Iterator over an [`LruList`] from the LRU end towards MRU.
pub struct LruIter<'a> {
    list: &'a LruList,
    cur: u32,
}

impl Iterator for LruIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NIL {
            return None;
        }
        let idx = self.cur;
        self.cur = self.list.prev[idx as usize];
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_order() {
        let mut l = LruList::new(8);
        l.push_mru(1);
        l.push_mru(2);
        l.push_mru(3);
        assert_eq!(l.iter_lru().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(l.lru(), Some(1));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn touch_moves_to_mru() {
        let mut l = LruList::new(8);
        for i in 0..4 {
            l.push_mru(i);
        }
        l.touch(0);
        assert_eq!(l.iter_lru().collect::<Vec<_>>(), vec![1, 2, 3, 0]);
        assert_eq!(l.lru(), Some(1));
    }

    #[test]
    fn touch_head_is_noop() {
        let mut l = LruList::new(4);
        l.push_mru(1);
        l.push_mru(2);
        l.touch(2);
        assert_eq!(l.iter_lru().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn remove_middle_head_tail() {
        let mut l = LruList::new(8);
        for i in 0..5 {
            l.push_mru(i);
        }
        l.remove(2); // middle
        l.remove(4); // head (MRU)
        l.remove(0); // tail (LRU)
        assert_eq!(l.iter_lru().collect::<Vec<_>>(), vec![1, 3]);
        assert!(!l.contains(2));
        assert!(l.contains(3));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn remove_last_element_empties() {
        let mut l = LruList::new(2);
        l.push_mru(0);
        l.remove(0);
        assert!(l.is_empty());
        assert_eq!(l.lru(), None);
        // reuse after emptying works
        l.push_mru(1);
        assert_eq!(l.lru(), Some(1));
    }

    #[test]
    #[should_panic(expected = "already in LRU")]
    fn double_push_panics() {
        let mut l = LruList::new(2);
        l.push_mru(0);
        l.push_mru(0);
    }

    #[test]
    #[should_panic(expected = "not in LRU")]
    fn remove_absent_panics() {
        let mut l = LruList::new(2);
        l.remove(1);
    }

    #[test]
    fn stress_against_reference_model() {
        use std::collections::VecDeque;
        let mut l = LruList::new(64);
        let mut model: VecDeque<u32> = VecDeque::new(); // front = MRU
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for step in 0..10_000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let idx = (x >> 33) as u32 % 64;
            match step % 3 {
                0 => {
                    if !l.contains(idx) {
                        l.push_mru(idx);
                        model.push_front(idx);
                    }
                }
                1 => {
                    if l.contains(idx) {
                        l.touch(idx);
                        model.retain(|&v| v != idx);
                        model.push_front(idx);
                    }
                }
                _ => {
                    if l.contains(idx) {
                        l.remove(idx);
                        model.retain(|&v| v != idx);
                    }
                }
            }
            assert_eq!(l.len(), model.len());
        }
        let got: Vec<u32> = l.iter_lru().collect();
        let want: Vec<u32> = model.iter().rev().copied().collect();
        assert_eq!(got, want);
    }
}
