//! Running transactions (§4.1, §4.4).
//!
//! A running transaction lives entirely in DRAM: the file system links the
//! data blocks it wants committed, then hands the transaction to
//! [`crate::TincaCache::commit`], which turns it into the *committing*
//! transaction and drives the commit protocol.

use std::collections::HashMap;

use blockdev::BLOCK_SIZE;

/// One 4 KB block payload.
pub type BlockBuf = Box<[u8; BLOCK_SIZE]>;

/// Copies a slice into a fresh [`BlockBuf`].
pub fn block_buf(data: &[u8]) -> BlockBuf {
    assert_eq!(data.len(), BLOCK_SIZE);
    let mut b: BlockBuf = Box::new([0u8; BLOCK_SIZE]);
    b.copy_from_slice(data);
    b
}

/// A running transaction: an ordered set of (disk block → new contents)
/// updates. Writing the same block twice coalesces to the newest contents,
/// as JBD2's running transaction would; rewrites with identical payloads
/// skip the 4 KB copy entirely (the memcmp is cheaper than the memcpy and
/// leaves the staged buffer untouched).
#[derive(Debug, Default)]
pub struct Txn {
    blocks: Vec<(u64, BlockBuf)>,
    index: HashMap<u64, usize>,
    coalesced: u64,
}

impl Txn {
    /// Starts an empty running transaction (`tinca_init_txn`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages `data` as the new contents of on-disk block `disk_blk`.
    pub fn write(&mut self, disk_blk: u64, data: &[u8]) {
        assert_eq!(
            data.len(),
            BLOCK_SIZE,
            "transactions stage whole 4 KB blocks"
        );
        match self.index.get(&disk_blk) {
            Some(&i) => {
                self.coalesced += 1;
                let staged = &mut self.blocks[i].1;
                if staged[..] != *data {
                    staged.copy_from_slice(data);
                }
            }
            None => {
                self.index.insert(disk_blk, self.blocks.len());
                self.blocks.push((disk_blk, block_buf(data)));
            }
        }
    }

    /// Stages an already-boxed payload without copying. Coalesces like
    /// [`write`](Self::write) but swaps the buffer in on a rewrite.
    pub fn stage_owned(&mut self, disk_blk: u64, data: BlockBuf) {
        match self.index.get(&disk_blk) {
            Some(&i) => {
                self.coalesced += 1;
                self.blocks[i].1 = data;
            }
            None => {
                self.index.insert(disk_blk, self.blocks.len());
                self.blocks.push((disk_blk, data));
            }
        }
    }

    /// Merges `other` into `self`, moving its staged buffers (no payload
    /// copies). `other`'s updates are newer: where both stage the same
    /// block, `other`'s contents win. This is how group commit folds a
    /// batch of queued transactions into one committing transaction.
    pub fn absorb(&mut self, other: Txn) {
        self.coalesced += other.coalesced;
        for (disk_blk, buf) in other.blocks {
            self.stage_owned(disk_blk, buf);
        }
    }

    /// Reads back staged contents, if this transaction updates `disk_blk`.
    pub fn get(&self, disk_blk: u64) -> Option<&[u8; BLOCK_SIZE]> {
        self.index.get(&disk_blk).map(|&i| &*self.blocks[i].1)
    }

    /// Number of distinct blocks staged.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Rewrites coalesced into an already-staged block so far.
    pub fn coalesced_writes(&self) -> u64 {
        self.coalesced
    }

    /// Credits `n` coalesced rewrites to this transaction (used when a
    /// pool splits a transaction so the fragments' counters still sum to
    /// the original's).
    pub(crate) fn add_coalesced(&mut self, n: u64) {
        self.coalesced += n;
    }

    /// The staged updates, in first-write order.
    pub fn blocks(&self) -> &[(u64, BlockBuf)] {
        &self.blocks
    }

    /// Consumes the transaction, yielding the staged updates in first-write
    /// order (used to split a transaction across pool shards without
    /// copying payloads).
    pub fn into_blocks(self) -> Vec<(u64, BlockBuf)> {
        self.blocks
    }

    /// Disk block numbers staged, in first-write order.
    pub fn disk_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.blocks.iter().map(|(b, _)| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(byte: u8) -> Vec<u8> {
        vec![byte; BLOCK_SIZE]
    }

    #[test]
    fn stages_blocks_in_order() {
        let mut t = Txn::new();
        t.write(5, &buf(1));
        t.write(3, &buf(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.disk_blocks().collect::<Vec<_>>(), vec![5, 3]);
        assert_eq!(t.coalesced_writes(), 0);
    }

    #[test]
    fn rewrite_coalesces() {
        let mut t = Txn::new();
        t.write(5, &buf(1));
        t.write(5, &buf(9));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5).unwrap()[0], 9);
        assert_eq!(t.coalesced_writes(), 1);
    }

    #[test]
    fn equal_payload_rewrite_coalesces_without_corruption() {
        let mut t = Txn::new();
        t.write(5, &buf(7));
        t.write(5, &buf(7)); // identical: copy skipped, still counted
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5).unwrap()[0], 7);
        assert_eq!(t.coalesced_writes(), 1);
        t.write(5, &buf(8)); // different: contents must update
        assert_eq!(t.get(5).unwrap()[0], 8);
        assert_eq!(t.coalesced_writes(), 2);
    }

    #[test]
    fn absorb_moves_and_coalesces() {
        let mut a = Txn::new();
        a.write(1, &buf(1));
        a.write(2, &buf(2));
        let mut b = Txn::new();
        b.write(2, &buf(9)); // overlaps a: newer contents win
        b.write(3, &buf(3));
        a.absorb(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(1).unwrap()[0], 1);
        assert_eq!(a.get(2).unwrap()[0], 9);
        assert_eq!(a.get(3).unwrap()[0], 3);
        assert_eq!(a.coalesced_writes(), 1);
        assert_eq!(a.disk_blocks().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn stage_owned_swaps_buffers() {
        let mut t = Txn::new();
        t.stage_owned(4, block_buf(&buf(1)));
        t.stage_owned(4, block_buf(&buf(2)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(4).unwrap()[0], 2);
        assert_eq!(t.coalesced_writes(), 1);
    }

    #[test]
    fn into_blocks_preserves_order() {
        let mut t = Txn::new();
        t.write(9, &buf(1));
        t.write(4, &buf(2));
        let blocks = t.into_blocks();
        let nums: Vec<u64> = blocks.iter().map(|(b, _)| *b).collect();
        assert_eq!(nums, vec![9, 4]);
    }

    #[test]
    fn get_missing_is_none() {
        let t = Txn::new();
        assert!(t.get(1).is_none());
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "4 KB")]
    fn partial_block_rejected() {
        let mut t = Txn::new();
        t.write(0, &[0u8; 100]);
    }
}
