//! Running transactions (§4.1, §4.4).
//!
//! A running transaction lives entirely in DRAM: the file system links the
//! data blocks it wants committed, then hands the transaction to
//! [`crate::TincaCache::commit`], which turns it into the *committing*
//! transaction and drives the commit protocol.

use std::collections::HashMap;

use blockdev::BLOCK_SIZE;

/// One 4 KB block payload.
pub type BlockBuf = Box<[u8; BLOCK_SIZE]>;

/// Copies a slice into a fresh [`BlockBuf`].
pub fn block_buf(data: &[u8]) -> BlockBuf {
    assert_eq!(data.len(), BLOCK_SIZE);
    let mut b: BlockBuf = Box::new([0u8; BLOCK_SIZE]);
    b.copy_from_slice(data);
    b
}

/// A running transaction: an ordered set of (disk block → new contents)
/// updates. Writing the same block twice coalesces to the newest contents,
/// as JBD2's running transaction would.
#[derive(Debug, Default)]
pub struct Txn {
    blocks: Vec<(u64, BlockBuf)>,
    index: HashMap<u64, usize>,
}

impl Txn {
    /// Starts an empty running transaction (`tinca_init_txn`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages `data` as the new contents of on-disk block `disk_blk`.
    pub fn write(&mut self, disk_blk: u64, data: &[u8]) {
        assert_eq!(
            data.len(),
            BLOCK_SIZE,
            "transactions stage whole 4 KB blocks"
        );
        match self.index.get(&disk_blk) {
            Some(&i) => self.blocks[i].1.copy_from_slice(data),
            None => {
                self.index.insert(disk_blk, self.blocks.len());
                self.blocks.push((disk_blk, block_buf(data)));
            }
        }
    }

    /// Reads back staged contents, if this transaction updates `disk_blk`.
    pub fn get(&self, disk_blk: u64) -> Option<&[u8; BLOCK_SIZE]> {
        self.index.get(&disk_blk).map(|&i| &*self.blocks[i].1)
    }

    /// Number of distinct blocks staged.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The staged updates, in first-write order.
    pub fn blocks(&self) -> &[(u64, BlockBuf)] {
        &self.blocks
    }

    /// Disk block numbers staged, in first-write order.
    pub fn disk_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.blocks.iter().map(|(b, _)| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(byte: u8) -> Vec<u8> {
        vec![byte; BLOCK_SIZE]
    }

    #[test]
    fn stages_blocks_in_order() {
        let mut t = Txn::new();
        t.write(5, &buf(1));
        t.write(3, &buf(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.disk_blocks().collect::<Vec<_>>(), vec![5, 3]);
    }

    #[test]
    fn rewrite_coalesces() {
        let mut t = Txn::new();
        t.write(5, &buf(1));
        t.write(5, &buf(9));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5).unwrap()[0], 9);
    }

    #[test]
    fn get_missing_is_none() {
        let t = Txn::new();
        assert!(t.get(1).is_none());
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "4 KB")]
    fn partial_block_rejected() {
        let mut t = Txn::new();
        t.write(0, &[0u8; 100]);
    }
}
