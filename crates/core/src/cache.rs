//! The transactional NVM disk cache (§4).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use blockdev::{BlockDevice, IoError, BLOCK_SIZE};
use nvmsim::Nvm;

use crate::entry::{CacheEntry, Role, FRESH};
use crate::freemon::FreeMonitor;
use crate::layout::{
    Layout, DATA_BLOCKS_OFF, ENTRY_COUNT_OFF, HEAD_OFF, MAGIC, MAGIC_OFF, RING_CAP_OFF, TAIL_OFF,
};
use crate::lru::LruList;
use crate::{CacheStats, TincaConfig, TincaError, Txn, WritePolicy};

/// Shared handle to the backing disk below the cache.
pub type DynDisk = Arc<dyn BlockDevice>;

/// Operational condition of a cache (or pool) with respect to its backing
/// disk. Transient disk faults absorbed by the retry loop never change the
/// health; only *permanent* writeback failures do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// No unresolved disk faults.
    Healthy,
    /// Some dirty blocks could not be written back and are quarantined in
    /// NVM (pinned, never evicted, still readable). The cache keeps
    /// serving reads and commits with its remaining capacity.
    Degraded {
        /// Currently quarantined dirty blocks.
        quarantined: usize,
    },
    /// Every NVM block is quarantined and the free pool is empty: no new
    /// block can be admitted, so writes of uncached blocks will fail.
    /// Cached data remains readable.
    ReadOnly,
}

/// The transactional NVM disk cache.
///
/// `TincaCache` is both a write-back block cache and a transaction manager:
/// the file system stages updates in a [`Txn`] (DRAM) and calls
/// [`commit`](Self::commit), which makes all staged blocks durable in NVM
/// atomically — without ever writing a block's payload twice (the paper's
/// *role switch*, §4.3–4.4).
///
/// Persistent state lives entirely in the NVM region ([`Layout`]): the
/// `Head`/`Tail` ring pointers, the ring buffer of in-flight block numbers,
/// the 16-byte cache entries, and the 4 KB data blocks. Everything else
/// (hash index, LRU list, free monitors) is DRAM-only and is rebuilt by
/// [`recover`](Self::recover) (§4.6).
pub struct TincaCache {
    nvm: Nvm,
    disk: DynDisk,
    layout: Layout,
    cfg: TincaConfig,
    /// DRAM copies of the persistent Head/Tail sequence numbers.
    head: u64,
    tail: u64,
    /// disk block number → entry index.
    index: HashMap<u64, u32>,
    lru: LruList,
    free_blocks: FreeMonitor,
    free_entries: FreeMonitor,
    /// NVM blocks pinned by the committing transaction (§4.6 rule 2).
    pin_blocks: Vec<bool>,
    pin_block_list: Vec<u32>,
    /// Entries pinned by the committing transaction.
    pin_entries: Vec<bool>,
    pin_entry_list: Vec<u32>,
    /// Entries whose dirty payload could not be written back (permanent
    /// disk fault). Quarantined entries stay pinned-dirty in NVM: never
    /// chosen as eviction victims, still served to reads, re-attempted by
    /// [`flush_all`](Self::flush_all).
    quarantined: HashSet<u32>,
    stats: CacheStats,
}

impl TincaCache {
    /// Formats the NVM region and creates an empty cache.
    pub fn format(nvm: Nvm, disk: DynDisk, cfg: TincaConfig) -> Self {
        let layout = Layout::compute(nvm.capacity(), cfg.ring_bytes);
        // Zero the entry array so every entry decodes as invalid.
        let zeros = vec![0u8; 64 << 10];
        let entry_bytes = layout.entry_count as usize * crate::layout::ENTRY_BYTES;
        let mut off = 0;
        while off < entry_bytes {
            let n = zeros.len().min(entry_bytes - off);
            nvm.write(layout.entries_off + off, &zeros[..n]);
            nvm.clflush(layout.entries_off + off, n);
            off += n;
        }
        nvm.sfence();
        // Header fields; magic last so a half-formatted region is invalid.
        nvm.atomic_write_u64(RING_CAP_OFF, layout.ring_cap);
        nvm.atomic_write_u64(ENTRY_COUNT_OFF, layout.entry_count as u64);
        nvm.atomic_write_u64(DATA_BLOCKS_OFF, layout.data_blocks as u64);
        nvm.atomic_write_u64(HEAD_OFF, 0);
        nvm.atomic_write_u64(TAIL_OFF, 0);
        nvm.persist(0, 192);
        nvm.atomic_write_u64(MAGIC_OFF, MAGIC);
        nvm.persist(MAGIC_OFF, 8);
        Self::from_parts(nvm, disk, cfg, layout, 0, 0)
    }

    fn from_parts(
        nvm: Nvm,
        disk: DynDisk,
        cfg: TincaConfig,
        layout: Layout,
        head: u64,
        tail: u64,
    ) -> Self {
        TincaCache {
            nvm,
            disk,
            cfg,
            head,
            tail,
            index: HashMap::new(),
            lru: LruList::new(layout.entry_count),
            free_blocks: FreeMonitor::new_all_free(layout.data_blocks),
            free_entries: FreeMonitor::new_all_free(layout.entry_count),
            pin_blocks: vec![false; layout.data_blocks as usize],
            pin_block_list: Vec::new(),
            pin_entries: vec![false; layout.entry_count as usize],
            pin_entry_list: Vec::new(),
            quarantined: HashSet::new(),
            stats: CacheStats::default(),
            layout,
        }
    }

    /// Starts a running transaction (`tinca_init_txn`, §4.1). Running
    /// transactions are DRAM-only; any number may be open concurrently.
    pub fn init_txn(&self) -> Txn {
        Txn::new()
    }

    /// Commits all blocks staged in `txn` atomically (`tinca_commit`, §4.4).
    ///
    /// On success every staged block is durable in NVM and mapped by the
    /// cache; the payload of each block was written exactly **once** (no
    /// journal double write). On error the cache is rolled back to its
    /// pre-transaction state (`tinca_abort` semantics).
    pub fn commit(&mut self, txn: &Txn) -> Result<(), TincaError> {
        if txn.is_empty() {
            return Ok(());
        }
        let _t = telemetry::span(telemetry::phase::COMMIT);
        let n = txn.len();
        {
            let _a = telemetry::span(telemetry::phase::COMMIT_ADMISSION);
            if n as u64 > self.layout.ring_cap {
                return Err(TincaError::TxnTooLarge {
                    blocks: n,
                    ring_cap: self.layout.ring_cap,
                });
            }
            // Admission: the commit protocol allocates one new NVM block per
            // staged block (two in the double-write ablation), while the
            // current versions of staged-and-cached blocks stay pinned as
            // revocation `prev`s. Supply is the free pool plus every cached
            // block that stays evictable mid-protocol — NOT the total block
            // count: a commit admitted against `data_blocks` alone could run
            // out of victims mid-protocol and take the revoke path.
            let needed = if self.cfg.role_switch { n } else { 2 * n };
            let overlap = txn
                .blocks()
                .iter()
                .filter(|(b, _)| self.index.contains_key(b))
                .count();
            let available = self.free_blocks.free_count() + (self.index.len() - overlap);
            if needed > available {
                return Err(TincaError::CacheExhausted { needed, available });
            }
        }

        debug_assert_eq!(
            self.head, self.tail,
            "previous transaction left the ring open"
        );
        let mut touched: Vec<u32> = Vec::with_capacity(n);
        let mut replaced_prevs: Vec<u32> = Vec::with_capacity(n);
        let result = self.commit_blocks(txn, &mut touched, &mut replaced_prevs);
        let result = result.and_then(|()| {
            if self.cfg.role_switch {
                self.complete_role_switch(&touched);
                Ok(())
            } else {
                // Ablation: journal-style completion — copy every committed
                // block to a second NVM block (the "checkpoint" write).
                self.complete_double_write(&mut touched)
            }
        });
        match result {
            Ok(()) => {
                {
                    // Commit point: Tail := Head (one 8 B atomic store).
                    let _p = telemetry::span(telemetry::phase::COMMIT_POINT);
                    self.tail = self.head;
                    self.nvm.atomic_write_u64(TAIL_OFF, self.tail);
                    self.nvm.persist(TAIL_OFF, 8);
                    self.nvm.note_commit(TAIL_OFF, 8);
                }
                // DRAM-only reclamation, strictly after the commit point:
                // previous versions become free, committed blocks turn MRU
                // (§4.6 rule 2b).
                for p in replaced_prevs {
                    self.free_blocks.release(p);
                }
                for &idx in &touched {
                    self.lru.touch(idx);
                }
                self.stats.commits += 1;
                self.stats.committed_blocks += n as u64;
                self.stats.coalesced_writes += txn.coalesced_writes();
                if self.cfg.write_policy == WritePolicy::WriteThrough {
                    let _w = telemetry::span(telemetry::phase::COMMIT_WRITE_THROUGH);
                    self.write_through(&touched);
                }
                self.clear_pins();
                Ok(())
            }
            Err(e) => {
                self.revoke_in_flight(&touched);
                self.clear_pins();
                self.stats.failed_commits += 1;
                Err(e)
            }
        }
    }

    /// Commits a batch of transactions as **one** ring commit (group
    /// commit): the batch is folded into a single committing transaction
    /// (later writers win, payload buffers are moved, not copied), so the
    /// whole group pays one Tail store + fence — the same amortisation
    /// JBD2 gets from batching fsyncs into one compound transaction.
    ///
    /// The batch is atomic as a unit: either every transaction's blocks are
    /// durable or none are (a mid-protocol failure revokes the merged
    /// transaction and every waiter sees the error).
    pub fn commit_group(&mut self, txns: Vec<Txn>) -> Result<(), TincaError> {
        let k = txns.len() as u64;
        let mut it = txns.into_iter();
        let Some(mut merged) = it.next() else {
            return Ok(());
        };
        for t in it {
            merged.absorb(t);
        }
        let res = self.commit(&merged);
        if res.is_ok() && k > 1 {
            self.stats.group_commits += 1;
            self.stats.batched_txns += k;
        }
        res
    }

    /// Aborts a running transaction (`tinca_abort`, §4.1). Running
    /// transactions are DRAM-only, so nothing needs revoking; the staged
    /// blocks are simply dropped. (A *committing* transaction that fails
    /// mid-way is revoked internally by [`commit`](Self::commit).)
    pub fn abort(&mut self, txn: Txn) {
        drop(txn);
        self.stats.user_aborts += 1;
    }

    /// Steps 1–3 + per-block ring recording of the commit protocol.
    fn commit_blocks(
        &mut self,
        txn: &Txn,
        touched: &mut Vec<u32>,
        replaced_prevs: &mut Vec<u32>,
    ) -> Result<(), TincaError> {
        for (disk_blk, data) in txn.blocks() {
            // (1) COW block write: new NVM block, payload, flush, fence.
            let new_blk = {
                let _s = telemetry::span(telemetry::phase::COMMIT_STAGE);
                let new_blk = self.alloc_block()?;
                self.pin_block(new_blk);
                let addr = self.layout.data_addr(new_blk);
                self.nvm.write(addr, &data[..]);
                self.nvm.persist(addr, BLOCK_SIZE);
                new_blk
            };
            // (2) Create/update the cache entry with one 16 B atomic store.
            let _e = telemetry::span(telemetry::phase::COMMIT_ENTRY);
            let idx = match self.index.get(disk_blk) {
                Some(&idx) => {
                    let old = self.read_entry(idx);
                    debug_assert!(old.valid && old.disk_blk == *disk_blk);
                    debug_assert_eq!(old.role, Role::Buffer);
                    let prev = old.cur;
                    self.pin_block(prev);
                    replaced_prevs.push(prev);
                    let e = CacheEntry::new(Role::Log, true, *disk_blk, prev, new_blk);
                    self.write_entry(idx, e);
                    self.stats.write_hits += 1;
                    idx
                }
                None => {
                    let idx = self
                        .free_entries
                        .allocate()
                        .expect("entry pool exhausts strictly after block pool");
                    let e = CacheEntry::new(Role::Log, true, *disk_blk, FRESH, new_blk);
                    self.write_entry(idx, e);
                    self.index.insert(*disk_blk, idx);
                    self.lru.push_mru(idx);
                    self.stats.write_misses += 1;
                    idx
                }
            };
            drop(_e);
            self.pin_entry(idx);
            touched.push(idx);
            // (3) Record the block number in the ring via an 8 B atomic
            // store, then (4) move Head. In batched mode the slot is only
            // flushed (fence deferred) and Head moves once at the end.
            let _r = telemetry::span(telemetry::phase::COMMIT_RING);
            let slot = self.layout.ring_slot_addr(self.head);
            self.nvm.atomic_write_u64(slot, *disk_blk);
            if self.cfg.batched_ring {
                self.nvm.clflush(slot, 8);
                self.head += 1;
            } else {
                self.nvm.persist(slot, 8);
                self.head += 1;
                self.nvm.atomic_write_u64(HEAD_OFF, self.head);
                self.nvm.persist(HEAD_OFF, 8);
            }
        }
        if self.cfg.batched_ring {
            // All slots durable before the single Head move.
            let _r = telemetry::span(telemetry::phase::COMMIT_RING);
            self.nvm.sfence();
            self.nvm.atomic_write_u64(HEAD_OFF, self.head);
            self.nvm.persist(HEAD_OFF, 8);
        }
        Ok(())
    }

    /// Step (4) of §4.4: flip every committed block from *log* to *buffer*.
    /// One atomic store + flush per entry, a single fence for the batch.
    /// `prev` fields are retained; they are reclaimed only after `Tail`
    /// moves, so a crash here can still revoke the whole transaction.
    fn complete_role_switch(&mut self, touched: &[u32]) {
        let _t = telemetry::span(telemetry::phase::COMMIT_ROLE_SWITCH);
        for &idx in touched {
            let e = self.read_entry(idx);
            debug_assert_eq!(e.role, Role::Log);
            let addr = self.layout.entry_addr(idx);
            self.nvm
                .atomic_write_u128(addr, e.switched_to_buffer().encode());
            self.nvm.clflush(addr, 16);
        }
        self.nvm.sfence();
    }

    /// Ablation path (`role_switch = false`): emulate journaling's double
    /// write *inside* the cache — every committed block is copied to a
    /// second NVM block ("checkpoint" copy) before the commit point.
    fn complete_double_write(&mut self, touched: &mut [u32]) -> Result<(), TincaError> {
        let _t = telemetry::span(telemetry::phase::COMMIT_DOUBLE_WRITE);
        let mut buf = [0u8; BLOCK_SIZE];
        for &idx in touched.iter() {
            let e = self.read_entry(idx);
            debug_assert_eq!(e.role, Role::Log);
            let chk = self.alloc_block()?;
            self.pin_block(chk);
            self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
            let addr = self.layout.data_addr(chk);
            self.nvm.write(addr, &buf);
            self.nvm.persist(addr, BLOCK_SIZE);
            let log_blk = e.cur;
            let switched = CacheEntry::new(Role::Buffer, true, e.disk_blk, e.prev, chk);
            self.write_entry(idx, switched);
            // The log copy is garbage once the entry points at the
            // checkpoint copy — but keep it allocated (pinned) until the
            // commit point so revocation stays possible; it is released
            // in DRAM below only because `clear_pins` runs after `Tail`.
            self.free_blocks.release(log_blk);
        }
        Ok(())
    }

    /// Write-through extension: push every committed block to disk and mark
    /// it clean. The commit is already durable in NVM when this runs, so a
    /// permanent disk fault does not fail the commit — the block is
    /// quarantined (stays dirty in NVM) and the cache degrades.
    fn write_through(&mut self, touched: &[u32]) {
        let mut buf = [0u8; BLOCK_SIZE];
        for &idx in touched {
            let e = self.read_entry(idx);
            self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
            match self.disk_write_retry(e.disk_blk, &buf) {
                Ok(()) => {
                    self.stats.writebacks += 1;
                    let clean = CacheEntry {
                        modified: false,
                        ..e
                    };
                    self.write_entry(idx, clean);
                }
                Err(_) => self.quarantine(idx),
            }
        }
    }

    // ------------------------------------------------------------------
    // Fallible disk I/O: retry, backoff, quarantine
    // ------------------------------------------------------------------

    /// Reads `blk` from disk, retrying transient errors up to the
    /// configured budget with simulated-clock backoff between attempts.
    fn disk_read_retry(&mut self, blk: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let mut attempt = 1;
        loop {
            match self.disk.read_block(blk, buf) {
                Ok(()) => {
                    if attempt > 1 {
                        self.stats.transient_errors_absorbed += 1;
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() && attempt < self.cfg.max_io_retries => {
                    attempt += 1;
                    self.stats.io_retries += 1;
                    self.nvm.clock().advance(self.cfg.retry_backoff_ns);
                    telemetry::charge(
                        telemetry::phase::IO_RETRY_BACKOFF,
                        self.cfg.retry_backoff_ns,
                    );
                }
                Err(e) => {
                    self.stats.permanent_io_errors += 1;
                    return Err(e);
                }
            }
        }
    }

    /// Writes `blk` to disk with the same transient-retry policy as
    /// [`Self::disk_read_retry`].
    fn disk_write_retry(&mut self, blk: u64, buf: &[u8]) -> Result<(), IoError> {
        let mut attempt = 1;
        loop {
            match self.disk.write_block(blk, buf) {
                Ok(()) => {
                    if attempt > 1 {
                        self.stats.transient_errors_absorbed += 1;
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() && attempt < self.cfg.max_io_retries => {
                    attempt += 1;
                    self.stats.io_retries += 1;
                    self.nvm.clock().advance(self.cfg.retry_backoff_ns);
                    telemetry::charge(
                        telemetry::phase::IO_RETRY_BACKOFF,
                        self.cfg.retry_backoff_ns,
                    );
                }
                Err(e) => {
                    self.stats.permanent_io_errors += 1;
                    return Err(e);
                }
            }
        }
    }

    /// Marks entry `idx` quarantined: its dirty payload stays pinned in
    /// NVM until a later [`flush_all`](Self::flush_all) succeeds.
    fn quarantine(&mut self, idx: u32) {
        if self.quarantined.insert(idx) {
            self.stats.quarantined_blocks += 1;
        }
    }

    /// The cache's current fault condition; see [`Health`].
    pub fn health(&self) -> Health {
        let q = self.quarantined.len();
        if q == 0 {
            return Health::Healthy;
        }
        let evictable = self.index.len() - q;
        if self.free_blocks.free_count() == 0 && evictable == 0 {
            Health::ReadOnly
        } else {
            Health::Degraded { quarantined: q }
        }
    }

    /// Number of currently quarantined dirty blocks (the live count;
    /// [`CacheStats::quarantined_blocks`](crate::CacheStats) is
    /// cumulative).
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Revokes the already-written blocks of a failed committing
    /// transaction (runtime `tinca_abort` of a committing transaction).
    fn revoke_in_flight(&mut self, touched: &[u32]) {
        let _t = telemetry::span(telemetry::phase::COMMIT_REVOKE);
        for &idx in touched {
            let e = self.read_entry(idx);
            if !e.valid || e.is_revoked_marker() {
                continue;
            }
            self.revoke_entry(idx, e);
        }
        // Close the ring. `Head` is re-persisted first: in batched-ring
        // mode the in-DRAM head may be ahead of the persistent one, and
        // `Tail` must never persist past `Head`.
        self.nvm.atomic_write_u64(HEAD_OFF, self.head);
        self.nvm.persist(HEAD_OFF, 8);
        self.tail = self.head;
        self.nvm.atomic_write_u64(TAIL_OFF, self.tail);
        self.nvm.persist(TAIL_OFF, 8);
        self.nvm.note_commit(TAIL_OFF, 8);
    }

    /// Undoes one in-flight entry: restores the previous version, or
    /// deletes the entry if the block was fresh. Shared by runtime abort
    /// and crash recovery.
    pub(crate) fn revoke_entry(&mut self, idx: u32, e: CacheEntry) {
        debug_assert!(e.valid && !e.is_revoked_marker());
        match e.revoked() {
            Some(restored) => {
                self.write_entry(idx, restored);
                if !self.free_blocks.is_free(e.cur) {
                    self.free_blocks.release(e.cur);
                }
            }
            None => {
                self.write_entry(idx, CacheEntry::INVALID);
                self.index.remove(&e.disk_blk);
                if self.lru.contains(idx) {
                    self.lru.remove(idx);
                }
                self.free_entries.release(idx);
                if !self.free_blocks.is_free(e.cur) {
                    self.free_blocks.release(e.cur);
                }
                // A freed entry slot must not carry a stale quarantine mark
                // into its next life.
                self.quarantined.remove(&idx);
            }
        }
        self.stats.revoked_blocks += 1;
    }

    /// Reads on-disk block `disk_blk` through the cache (§4.6: Tinca caches
    /// reads as well as writes). Misses retry transient disk errors with
    /// backoff; a permanent fault surfaces as [`TincaError::Io`].
    pub fn read(&mut self, disk_blk: u64, buf: &mut [u8]) -> Result<(), TincaError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        let _t = telemetry::span(telemetry::phase::CACHE_READ);
        if let Some(&idx) = self.index.get(&disk_blk) {
            let e = self.read_entry(idx);
            debug_assert!(e.valid && e.disk_blk == disk_blk);
            self.nvm.read(self.layout.data_addr(e.cur), buf);
            self.lru.touch(idx);
            self.stats.read_hits += 1;
            return Ok(());
        }
        self.disk_read_retry(disk_blk, buf)?;
        self.stats.read_misses += 1;
        if self.cfg.cache_reads {
            self.fill_clean(disk_blk, buf);
        }
        Ok(())
    }

    /// Inserts a clean copy of `disk_blk` after a read miss. Best-effort:
    /// if no block can be allocated the read is simply not cached.
    fn fill_clean(&mut self, disk_blk: u64, data: &[u8]) {
        let Ok(blk) = self.alloc_block() else { return };
        let addr = self.layout.data_addr(blk);
        self.nvm.write(addr, data);
        self.nvm.persist(addr, BLOCK_SIZE);
        let idx = self
            .free_entries
            .allocate()
            .expect("entry pool exhausts strictly after block pool");
        let e = CacheEntry::new(Role::Buffer, false, disk_blk, FRESH, blk);
        self.write_entry(idx, e);
        self.index.insert(disk_blk, idx);
        self.lru.push_mru(idx);
    }

    /// Allocates an NVM data block, evicting the LRU unpinned buffer block
    /// if the free pool is empty. A victim whose dirty writeback fails
    /// permanently is quarantined (not freed) and the search moves to the
    /// next candidate; [`TincaError::NoVictim`] means every remaining
    /// block is pinned or quarantined.
    fn alloc_block(&mut self) -> Result<u32, TincaError> {
        loop {
            if let Some(b) = self.free_blocks.allocate() {
                return Ok(b);
            }
            let victim = self.lru.iter_lru().find(|&idx| {
                if self.pin_entries[idx as usize] || self.quarantined.contains(&idx) {
                    return false;
                }
                let e = self.read_entry(idx);
                // Log blocks and blocks pinned as a committing prev/cur stay
                // (§4.6 rule 2); everything else is fair game.
                e.valid && e.role == Role::Buffer && !self.pin_blocks[e.cur as usize]
            });
            let Some(idx) = victim else {
                return Err(TincaError::NoVictim);
            };
            // On writeback failure the victim is quarantined and excluded
            // from the next search pass, so the loop always terminates.
            let _ = self.evict(idx);
        }
    }

    /// Evicts entry `idx`: writes the block back if dirty, then
    /// persistently invalidates the entry *before* its NVM block can be
    /// reused (so a crash never sees an entry naming a reused block). If
    /// the writeback fails permanently, the entry is quarantined instead
    /// — its payload stays safe in NVM.
    fn evict(&mut self, idx: u32) -> Result<(), IoError> {
        let _t = telemetry::span(telemetry::phase::CACHE_EVICT);
        let e = self.read_entry(idx);
        debug_assert!(e.valid && e.role == Role::Buffer);
        if e.modified {
            let _w = telemetry::span(telemetry::phase::CACHE_WRITEBACK);
            let mut buf = [0u8; BLOCK_SIZE];
            self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
            if let Err(err) = self.disk_write_retry(e.disk_blk, &buf) {
                self.quarantine(idx);
                return Err(err);
            }
            self.stats.writebacks += 1;
        }
        self.write_entry(idx, CacheEntry::INVALID);
        self.index.remove(&e.disk_blk);
        self.lru.remove(idx);
        self.free_entries.release(idx);
        self.free_blocks.release(e.cur);
        self.stats.evictions += 1;
        Ok(())
    }

    /// Writes back every dirty cached block and marks it clean. Used at
    /// orderly shutdown and by verification harnesses.
    ///
    /// Quarantined blocks are re-attempted (a replaced disk recovers
    /// them). Errors are collected, not short-circuited: every dirty
    /// block gets its flush attempt, then the first error is returned —
    /// with [`Health`] reporting how much is still pinned in NVM.
    pub fn flush_all(&mut self) -> Result<(), TincaError> {
        if self.head != self.tail {
            return Err(TincaError::CommitInProgress {
                head: self.head,
                tail: self.tail,
            });
        }
        let _t = telemetry::span(telemetry::phase::CACHE_FLUSH_ALL);
        let mut buf = [0u8; BLOCK_SIZE];
        let mut first_err = Ok(());
        let idxs: Vec<u32> = self.index.values().copied().collect();
        for idx in idxs {
            let e = self.read_entry(idx);
            if e.valid && e.modified {
                let _w = telemetry::span(telemetry::phase::CACHE_WRITEBACK);
                self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
                match self.disk_write_retry(e.disk_blk, &buf) {
                    Ok(()) => {
                        self.stats.writebacks += 1;
                        self.write_entry(
                            idx,
                            CacheEntry {
                                modified: false,
                                ..e
                            },
                        );
                        self.quarantined.remove(&idx);
                    }
                    Err(err) => {
                        self.quarantine(idx);
                        if first_err.is_ok() {
                            first_err = Err(TincaError::Io(err));
                        }
                    }
                }
            }
        }
        first_err
    }

    // ------------------------------------------------------------------
    // Accessors & inspection
    // ------------------------------------------------------------------

    /// The cache's NVM space partitioning.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The NVM device below the cache.
    pub fn nvm(&self) -> &Nvm {
        &self.nvm
    }

    /// The disk below the cache.
    pub fn disk(&self) -> &DynDisk {
        &self.disk
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The configuration this cache runs with.
    pub fn config(&self) -> &TincaConfig {
        &self.cfg
    }

    /// Number of currently cached (valid) blocks.
    pub fn cached_blocks(&self) -> usize {
        self.index.len()
    }

    /// Number of free NVM data blocks.
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.free_count()
    }

    /// True if `disk_blk` is cached.
    pub fn contains(&self, disk_blk: u64) -> bool {
        self.index.contains_key(&disk_blk)
    }

    /// Returns the cached payload of `disk_blk`, if present (no LRU touch,
    /// no stats — inspection only).
    pub fn peek(&self, disk_blk: u64) -> Option<[u8; BLOCK_SIZE]> {
        let &idx = self.index.get(&disk_blk)?;
        let e = self.read_entry(idx);
        let mut buf = [0u8; BLOCK_SIZE];
        self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
        Some(buf)
    }

    pub(crate) fn read_entry(&self, idx: u32) -> CacheEntry {
        CacheEntry::decode(self.nvm.read_u128(self.layout.entry_addr(idx)))
    }

    pub(crate) fn write_entry(&self, idx: u32, e: CacheEntry) {
        let addr = self.layout.entry_addr(idx);
        self.nvm.atomic_write_u128(addr, e.encode());
        self.nvm.persist(addr, 16);
    }

    // ------------------------------------------------------------------
    // Pinning (§4.6 rule 2)
    // ------------------------------------------------------------------

    fn pin_block(&mut self, b: u32) {
        if b != FRESH && !self.pin_blocks[b as usize] {
            self.pin_blocks[b as usize] = true;
            self.pin_block_list.push(b);
        }
    }

    fn pin_entry(&mut self, idx: u32) {
        if !self.pin_entries[idx as usize] {
            self.pin_entries[idx as usize] = true;
            self.pin_entry_list.push(idx);
        }
    }

    fn clear_pins(&mut self) {
        for b in self.pin_block_list.drain(..) {
            self.pin_blocks[b as usize] = false;
        }
        for i in self.pin_entry_list.drain(..) {
            self.pin_entries[i as usize] = false;
        }
    }

    // ------------------------------------------------------------------
    // Recovery plumbing (the algorithm lives in recovery.rs)
    // ------------------------------------------------------------------

    pub(crate) fn recovery_parts(
        nvm: Nvm,
        disk: DynDisk,
        cfg: TincaConfig,
        layout: Layout,
        head: u64,
        tail: u64,
    ) -> Self {
        let mut c = Self::from_parts(nvm, disk, cfg, layout, head, tail);
        c.free_blocks = FreeMonitor::new_all_used(layout.data_blocks);
        c.free_entries = FreeMonitor::new_all_used(layout.entry_count);
        c
    }

    pub(crate) fn set_head_tail(&mut self, head: u64, tail: u64) {
        self.head = head;
        self.tail = tail;
    }

    pub(crate) fn head_tail(&self) -> (u64, u64) {
        (self.head, self.tail)
    }

    pub(crate) fn dram_insert(&mut self, disk_blk: u64, idx: u32) {
        self.index.insert(disk_blk, idx);
        self.lru.push_mru(idx);
    }

    pub(crate) fn index_get(&self, disk_blk: u64) -> Option<u32> {
        self.index.get(&disk_blk).copied()
    }

    pub(crate) fn free_blocks_mut(&mut self) -> &mut FreeMonitor {
        &mut self.free_blocks
    }

    pub(crate) fn free_entries_mut(&mut self) -> &mut FreeMonitor {
        &mut self.free_entries
    }

    pub(crate) fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Exhaustive self-check of the DRAM/NVM invariants; used by tests and
    /// the crash-recovery verifier. Returns a description of the first
    /// violation found.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.head != self.tail {
            return Err(format!(
                "ring open outside commit: head={} tail={}",
                self.head, self.tail
            ));
        }
        let mut seen_cur = vec![false; self.layout.data_blocks as usize];
        let mut valid_count = 0usize;
        for idx in 0..self.layout.entry_count {
            let e = self.read_entry(idx);
            if !e.valid {
                if !self.free_entries.is_free(idx) {
                    return Err(format!("invalid entry {idx} not in free-entry pool"));
                }
                continue;
            }
            valid_count += 1;
            if e.role == Role::Log {
                return Err(format!("entry {idx} still has log role at rest"));
            }
            if e.cur as usize >= self.layout.data_blocks as usize {
                return Err(format!("entry {idx} cur block {} out of range", e.cur));
            }
            if seen_cur[e.cur as usize] {
                return Err(format!("NVM block {} referenced by two entries", e.cur));
            }
            seen_cur[e.cur as usize] = true;
            if self.free_blocks.is_free(e.cur) {
                return Err(format!(
                    "entry {idx} cur block {} is in the free pool",
                    e.cur
                ));
            }
            match self.index.get(&e.disk_blk) {
                Some(&i) if i == idx => {}
                other => {
                    return Err(format!(
                        "entry {idx} (disk blk {}) not indexed correctly: {other:?}",
                        e.disk_blk
                    ))
                }
            }
            if !self.lru.contains(idx) {
                return Err(format!("valid entry {idx} missing from LRU list"));
            }
        }
        if valid_count != self.index.len() {
            return Err(format!(
                "index size {} != valid entries {valid_count}",
                self.index.len()
            ));
        }
        if valid_count != self.lru.len() {
            return Err(format!(
                "LRU size {} != valid entries {valid_count}",
                self.lru.len()
            ));
        }
        let used_blocks = self.layout.data_blocks as usize - self.free_blocks.free_count();
        if used_blocks != valid_count {
            return Err(format!(
                "{used_blocks} blocks in use but {valid_count} valid entries"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{DiskKind, SimDisk};
    use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};

    fn small_cache() -> TincaCache {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(256 << 10, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
        TincaCache::format(
            nvm,
            disk,
            TincaConfig {
                ring_bytes: 4096,
                ..TincaConfig::default()
            },
        )
    }

    /// `flush_all` must refuse to run while a transaction is committing
    /// (`Head != Tail`) — in release builds too, not just under
    /// `debug_assert`. A flush interleaved with the commit protocol could
    /// write a log-role (uncommitted) payload to disk.
    #[test]
    fn flush_all_mid_commit_is_rejected_at_runtime() {
        let mut c = small_cache();
        let mut t = c.init_txn();
        t.write(5, &[7u8; BLOCK_SIZE]);
        c.commit(&t).unwrap();
        // Reproduce the mid-protocol window (Head moved, Tail not) that a
        // concurrent flush would observe.
        let (head, tail) = c.head_tail();
        c.set_head_tail(head + 1, tail);
        match c.flush_all() {
            Err(TincaError::CommitInProgress { head: h, tail: t }) => {
                assert_eq!((h, t), (head + 1, tail));
            }
            other => panic!("expected CommitInProgress, got {other:?}"),
        }
        // Restoring the ring makes the same call succeed.
        c.set_head_tail(head, tail);
        c.flush_all().unwrap();
        assert_eq!(c.stats().writebacks, 1);
    }
}
