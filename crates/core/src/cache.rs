//! The transactional NVM disk cache (§4).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use blockdev::{BlockDevice, IoError, IoLane, BLOCK_SIZE};
use nvmsim::Nvm;

use crate::entry::{CacheEntry, Role, FRESH};
use crate::freemon::FreeMonitor;
use crate::layout::{
    mw_desc_addr, mw_state_word, slot_value, Layout, DATA_BLOCKS_OFF, ENTRY_COUNT_OFF, HEAD_OFF,
    MAGIC, MAGIC_OFF, MW_DEAD_TAG, MW_FLAG_SPANNING, MW_FREE, MW_RESERVED, RING_CAP_OFF, TAIL_OFF,
};
use crate::lru::LruList;
use crate::{CacheStats, TincaConfig, TincaError, Txn, WritePolicy};

/// Shared handle to the backing disk below the cache.
pub type DynDisk = Arc<dyn BlockDevice>;

/// One shard's staged fragment of a spanning transaction: the commit
/// protocol has run up to (but not including) the shard's `Tail` move, so
/// the ring window is still open and the staged entries are revocable.
/// Returned by [`TincaCache::prepare_fragment`] and consumed by
/// [`TincaCache::complete_fragment`] / [`TincaCache::abort_fragment`].
pub(crate) struct PreparedFragment {
    touched: Vec<u32>,
    replaced_prevs: Vec<u32>,
    blocks: u64,
    coalesced: u64,
}

/// Per-window bookkeeping for the multi-writer lock-free commit path
/// (DESIGN §16). Produced by [`TincaCache::mw_stage_meta`] while the shard
/// lock is held; the payload staging jobs run *outside* any lock, and the
/// rest is consumed by the sequencer ([`TincaCache::mw_sequence`]).
pub(crate) struct MwStagedMeta {
    /// First ring sequence number of the reserved window.
    pub(crate) start: u64,
    /// Window length in ring slots (= staged blocks).
    pub(crate) len: u64,
    /// Descriptor table slot holding the window's persistent state word.
    pub(crate) desc_slot: usize,
    /// Entry indices staged by this window (empty if the window failed).
    pub(crate) touched: Vec<u32>,
    /// Previous block versions to release after the commit point.
    pub(crate) replaced_prevs: Vec<u32>,
    /// Blocks this window pinned (its own raw unpin list).
    pub(crate) pinned_blocks: Vec<u32>,
    /// Entries this window pinned.
    pub(crate) pinned_entries: Vec<u32>,
    /// `(nvm data address, payload)` pairs the writer stages and flushes
    /// concurrently, outside the shard lock.
    pub(crate) stage_jobs: Vec<(usize, crate::txn::BlockBuf)>,
    /// Staged block count (for `committed_blocks`).
    pub(crate) blocks: u64,
    /// Coalesced-write count carried from the transaction.
    pub(crate) coalesced: u64,
    /// The window was admitted but its meta phase failed: its entries are
    /// revoked, its unwritten slots dead-tagged, and the sequencer treats
    /// it as a published no-op so `Head` can pass it.
    pub(crate) failed: bool,
}

/// Operational condition of a cache (or pool) with respect to its backing
/// disk. Transient disk faults absorbed by the retry loop never change the
/// health; only *permanent* writeback failures do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// No unresolved disk faults.
    Healthy,
    /// Some dirty blocks could not be written back and are quarantined in
    /// NVM (pinned, never evicted, still readable). The cache keeps
    /// serving reads and commits with its remaining capacity.
    Degraded {
        /// Currently quarantined dirty blocks.
        quarantined: usize,
    },
    /// Every NVM block is quarantined and the free pool is empty: no new
    /// block can be admitted, so writes of uncached blocks will fail.
    /// Cached data remains readable.
    ReadOnly,
}

/// The transactional NVM disk cache.
///
/// `TincaCache` is both a write-back block cache and a transaction manager:
/// the file system stages updates in a [`Txn`] (DRAM) and calls
/// [`commit`](Self::commit), which makes all staged blocks durable in NVM
/// atomically — without ever writing a block's payload twice (the paper's
/// *role switch*, §4.3–4.4).
///
/// Persistent state lives entirely in the NVM region ([`Layout`]): the
/// `Head`/`Tail` ring pointers, the ring buffer of in-flight block numbers,
/// the 16-byte cache entries, and the 4 KB data blocks. Everything else
/// (hash index, LRU list, free monitors) is DRAM-only and is rebuilt by
/// [`recover`](Self::recover) (§4.6).
pub struct TincaCache {
    nvm: Nvm,
    disk: DynDisk,
    layout: Layout,
    cfg: TincaConfig,
    /// DRAM copies of the persistent Head/Tail sequence numbers.
    head: u64,
    tail: u64,
    /// disk block number → entry index.
    index: HashMap<u64, u32>,
    lru: LruList,
    free_blocks: FreeMonitor,
    free_entries: FreeMonitor,
    /// NVM blocks pinned by the committing transaction (§4.6 rule 2).
    pin_blocks: Vec<bool>,
    pin_block_list: Vec<u32>,
    /// Entries pinned by the committing transaction.
    pin_entries: Vec<bool>,
    pin_entry_list: Vec<u32>,
    /// Entries whose dirty payload could not be written back (permanent
    /// disk fault). Quarantined entries stay pinned-dirty in NVM: never
    /// chosen as eviction victims, still served to reads, re-attempted by
    /// [`flush_all`](Self::flush_all).
    quarantined: HashSet<u32>,
    /// Entry indices whose cached block is modified — the DRAM mirror of
    /// the durable `modified` bits (recounting from NVM would charge read
    /// latency to the foreground clock). Drives the destage watermark
    /// check and lets the clean-victim scan reject dirty candidates
    /// without touching NVM; audited by
    /// [`check_consistency`](Self::check_consistency).
    dirty_idx: HashSet<u32>,
    /// Absolute simulated time at which the background destage lane is
    /// free again. The lane is busy while one vectored writeback batch
    /// is "in flight": its device time extends this deadline instead of
    /// advancing the foreground clock (wall = max, busy = sum — the same
    /// overlap model `workloads::mtfio` uses for shard parallelism).
    destage_lane_free_ns: u64,
    /// Entries currently pinned by in-flight multi-writer windows. The
    /// legacy admission supply (`free + evictable cached`) assumed one
    /// committer; concurrent windows keep log-role entries alive between
    /// rounds, and those must not count as evictable supply. Zero outside
    /// the lock-free path.
    mw_pinned_entries: usize,
    stats: CacheStats,
}

impl TincaCache {
    /// Formats the NVM region and creates an empty cache.
    pub fn format(nvm: Nvm, disk: DynDisk, cfg: TincaConfig) -> Self {
        let layout = Layout::compute(nvm.capacity(), cfg.ring_bytes);
        // Zero the entry array so every entry decodes as invalid.
        let zeros = vec![0u8; 64 << 10];
        let entry_bytes = layout.entry_count as usize * crate::layout::ENTRY_BYTES;
        let mut off = 0;
        while off < entry_bytes {
            let n = zeros.len().min(entry_bytes - off);
            nvm.write(layout.entries_off + off, &zeros[..n]);
            nvm.clflush(layout.entries_off + off, n);
            off += n;
        }
        nvm.sfence();
        // Header fields; magic last so a half-formatted region is invalid.
        nvm.atomic_write_u64(RING_CAP_OFF, layout.ring_cap);
        nvm.atomic_write_u64(ENTRY_COUNT_OFF, layout.entry_count as u64);
        nvm.atomic_write_u64(DATA_BLOCKS_OFF, layout.data_blocks as u64);
        nvm.atomic_write_u64(HEAD_OFF, 0);
        nvm.atomic_write_u64(TAIL_OFF, 0);
        nvm.persist(0, 192);
        nvm.atomic_write_u64(MAGIC_OFF, MAGIC);
        nvm.persist(MAGIC_OFF, 8);
        Self::from_parts(nvm, disk, cfg, layout, 0, 0)
    }

    fn from_parts(
        nvm: Nvm,
        disk: DynDisk,
        cfg: TincaConfig,
        layout: Layout,
        head: u64,
        tail: u64,
    ) -> Self {
        TincaCache {
            nvm,
            disk,
            cfg,
            head,
            tail,
            index: HashMap::new(),
            lru: LruList::new(layout.entry_count),
            free_blocks: FreeMonitor::new_all_free(layout.data_blocks),
            free_entries: FreeMonitor::new_all_free(layout.entry_count),
            pin_blocks: vec![false; layout.data_blocks as usize],
            pin_block_list: Vec::new(),
            pin_entries: vec![false; layout.entry_count as usize],
            pin_entry_list: Vec::new(),
            quarantined: HashSet::new(),
            dirty_idx: HashSet::new(),
            destage_lane_free_ns: 0,
            mw_pinned_entries: 0,
            stats: CacheStats::default(),
            layout,
        }
    }

    /// Starts a running transaction (`tinca_init_txn`, §4.1). Running
    /// transactions are DRAM-only; any number may be open concurrently.
    pub fn init_txn(&self) -> Txn {
        Txn::new()
    }

    /// Commits all blocks staged in `txn` atomically (`tinca_commit`, §4.4).
    ///
    /// On success every staged block is durable in NVM and mapped by the
    /// cache; the payload of each block was written exactly **once** (no
    /// journal double write). On error the cache is rolled back to its
    /// pre-transaction state (`tinca_abort` semantics).
    pub fn commit(&mut self, txn: &Txn) -> Result<(), TincaError> {
        if txn.is_empty() {
            return Ok(());
        }
        let _t = telemetry::span(telemetry::phase::COMMIT);
        let n = txn.len();
        {
            let _a = telemetry::span(telemetry::phase::COMMIT_ADMISSION);
            if n as u64 > self.layout.ring_cap {
                return Err(TincaError::TxnTooLarge {
                    blocks: n,
                    ring_cap: self.layout.ring_cap,
                });
            }
            // Admission: the commit protocol allocates one new NVM block per
            // staged block (two in the double-write ablation), while the
            // current versions of staged-and-cached blocks stay pinned as
            // revocation `prev`s. Supply is the free pool plus every cached
            // block that stays evictable mid-protocol — NOT the total block
            // count: a commit admitted against `data_blocks` alone could run
            // out of victims mid-protocol and take the revoke path.
            let needed = if self.cfg.role_switch { n } else { 2 * n };
            let overlap = txn
                .blocks()
                .iter()
                .filter(|(b, _)| self.index.contains_key(b))
                .count();
            let available = self.free_blocks.free_count() + (self.index.len() - overlap);
            if needed > available {
                return Err(TincaError::CacheExhausted { needed, available });
            }
        }

        debug_assert_eq!(
            self.head, self.tail,
            "previous transaction left the ring open"
        );
        let mut touched: Vec<u32> = Vec::with_capacity(n);
        let mut replaced_prevs: Vec<u32> = Vec::with_capacity(n);
        let result = self.commit_blocks(txn, &mut touched, &mut replaced_prevs, 0);
        let result = result.and_then(|()| {
            if self.cfg.role_switch {
                self.complete_role_switch(&touched);
                Ok(())
            } else {
                // Ablation: journal-style completion — copy every committed
                // block to a second NVM block (the "checkpoint" write).
                self.complete_double_write(&mut touched)
            }
        });
        let out = match result {
            Ok(()) => {
                {
                    // Commit point: Tail := Head (one 8 B atomic store).
                    let _p = telemetry::span(telemetry::phase::COMMIT_POINT);
                    self.tail = self.head;
                    self.nvm.atomic_write_u64(TAIL_OFF, self.tail);
                    self.nvm.persist(TAIL_OFF, 8);
                    self.nvm.note_commit(TAIL_OFF, 8);
                }
                // DRAM-only reclamation, strictly after the commit point:
                // previous versions become free, committed blocks turn MRU
                // (§4.6 rule 2b).
                for p in replaced_prevs {
                    self.free_blocks.release(p);
                }
                for &idx in &touched {
                    self.lru.touch(idx);
                }
                self.stats.commits += 1;
                self.stats.committed_blocks += n as u64;
                self.stats.coalesced_writes += txn.coalesced_writes();
                if self.cfg.write_policy == WritePolicy::WriteThrough {
                    let _w = telemetry::span(telemetry::phase::COMMIT_WRITE_THROUGH);
                    self.write_through(&touched);
                }
                self.clear_pins();
                Ok(())
            }
            Err(e) => {
                self.revoke_in_flight(&touched);
                self.clear_pins();
                self.stats.failed_commits += 1;
                Err(e)
            }
        };
        // Destage runs after the commit span closes: its writebacks
        // overlap foreground time and must not count as commit latency.
        drop(_t);
        if out.is_ok() {
            self.maybe_destage();
        }
        out
    }

    /// Commits a batch of transactions as **one** ring commit (group
    /// commit): the batch is folded into a single committing transaction
    /// (later writers win, payload buffers are moved, not copied), so the
    /// whole group pays one Tail store + fence — the same amortisation
    /// JBD2 gets from batching fsyncs into one compound transaction.
    ///
    /// The batch is atomic as a unit: either every transaction's blocks are
    /// durable or none are (a mid-protocol failure revokes the merged
    /// transaction and every waiter sees the error).
    pub fn commit_group(&mut self, txns: Vec<Txn>) -> Result<(), TincaError> {
        let k = txns.len() as u64;
        let mut it = txns.into_iter();
        let Some(mut merged) = it.next() else {
            return Ok(());
        };
        for t in it {
            merged.absorb(t);
        }
        let res = self.commit(&merged);
        if res.is_ok() && k > 1 {
            self.stats.group_commits += 1;
            self.stats.batched_txns += k;
        }
        res
    }

    /// Aborts a running transaction (`tinca_abort`, §4.1). Running
    /// transactions are DRAM-only, so nothing needs revoking; the staged
    /// blocks are simply dropped. (A *committing* transaction that fails
    /// mid-way is revoked internally by [`commit`](Self::commit).)
    pub fn abort(&mut self, txn: Txn) {
        drop(txn);
        self.stats.user_aborts += 1;
    }

    // ------------------------------------------------------------------
    // Spanning-transaction fragments (two-phase commit, pool-driven)
    // ------------------------------------------------------------------

    /// Stages one shard's fragment of a spanning transaction: runs the
    /// full commit protocol (COW writes, entry updates, tagged ring
    /// slots, `Head` move, role switch) but **stops before the commit
    /// point** — `Tail` does not move, so the ring window `[Tail, Head)`
    /// stays open and recovery can still revoke everything. Pins stay
    /// held. The caller must follow up with exactly one of
    /// [`complete_fragment`](Self::complete_fragment) or
    /// [`abort_fragment`](Self::abort_fragment) before any other commit
    /// runs on this shard (the pool holds the shard lock throughout).
    pub(crate) fn prepare_fragment(
        &mut self,
        txn: &Txn,
        tag: u8,
    ) -> Result<PreparedFragment, TincaError> {
        debug_assert!(!txn.is_empty());
        debug_assert_ne!(tag, 0, "spanning fragments must carry an intent tag");
        let _t = telemetry::span(telemetry::phase::COMMIT);
        let n = txn.len();
        {
            let _a = telemetry::span(telemetry::phase::COMMIT_ADMISSION);
            if n as u64 > self.layout.ring_cap {
                return Err(TincaError::TxnTooLarge {
                    blocks: n,
                    ring_cap: self.layout.ring_cap,
                });
            }
            let needed = if self.cfg.role_switch { n } else { 2 * n };
            let overlap = txn
                .blocks()
                .iter()
                .filter(|(b, _)| self.index.contains_key(b))
                .count();
            let available = self.free_blocks.free_count() + (self.index.len() - overlap);
            if needed > available {
                return Err(TincaError::CacheExhausted { needed, available });
            }
        }
        debug_assert_eq!(
            self.head, self.tail,
            "previous transaction left the ring open"
        );
        let mut touched: Vec<u32> = Vec::with_capacity(n);
        let mut replaced_prevs: Vec<u32> = Vec::with_capacity(n);
        let result = self
            .commit_blocks(txn, &mut touched, &mut replaced_prevs, tag)
            .and_then(|()| {
                if self.cfg.role_switch {
                    self.complete_role_switch(&touched);
                    Ok(())
                } else {
                    self.complete_double_write(&mut touched)
                }
            });
        match result {
            Ok(()) => Ok(PreparedFragment {
                touched,
                replaced_prevs,
                blocks: n as u64,
                coalesced: txn.coalesced_writes(),
            }),
            Err(e) => {
                self.revoke_in_flight(&touched);
                self.clear_pins();
                self.stats.failed_commits += 1;
                Err(e)
            }
        }
    }

    /// Second phase of a resolved spanning commit: moves `Tail` (this
    /// shard's commit point) and performs the DRAM reclamation the
    /// ordinary commit does after its own commit point. Only called once
    /// the pool's intent record is durably `RESOLVED` — from then on
    /// recovery rolls this fragment forward, so the `Tail` store merely
    /// retires the revocation window early.
    pub(crate) fn complete_fragment(&mut self, frag: PreparedFragment) {
        let _t = telemetry::span(telemetry::phase::COMMIT);
        let window = (self.tail, self.head);
        {
            let _p = telemetry::span(telemetry::phase::COMMIT_POINT);
            self.tail = self.head;
            self.nvm.atomic_write_u64(TAIL_OFF, self.tail);
            self.nvm.persist(TAIL_OFF, 8);
            self.nvm.note_commit(TAIL_OFF, 8);
        }
        // Retire the window's intent tags (wraparound guard, DESIGN §14).
        // Strictly after the commit point: a crash in between leaves the
        // tags behind `Tail`, where window homogeneity keeps them inert
        // until the slots are reused.
        self.scrub_slot_tags(window.0, window.1);
        for p in frag.replaced_prevs {
            self.free_blocks.release(p);
        }
        for &idx in &frag.touched {
            self.lru.touch(idx);
        }
        self.stats.commits += 1;
        self.stats.committed_blocks += frag.blocks;
        self.stats.coalesced_writes += frag.coalesced;
        self.stats.spanning_fragments += 1;
        if self.cfg.write_policy == WritePolicy::WriteThrough {
            let _w = telemetry::span(telemetry::phase::COMMIT_WRITE_THROUGH);
            self.write_through(&frag.touched);
        }
        self.clear_pins();
        drop(_t);
        self.maybe_destage();
    }

    /// Aborts a prepared fragment before the intent resolves: revokes
    /// every staged entry (restoring previous versions) and closes the
    /// ring window, exactly like a failed ordinary commit.
    pub(crate) fn abort_fragment(&mut self, frag: PreparedFragment) {
        let _t = telemetry::span(telemetry::phase::COMMIT);
        let window = (self.tail, self.head);
        self.revoke_in_flight(&frag.touched);
        self.scrub_slot_tags(window.0, window.1);
        self.clear_pins();
        self.stats.failed_commits += 1;
    }

    // ------------------------------------------------------------------
    // Multi-writer ring windows (lock-free commit path, pool-driven;
    // DESIGN §16)
    // ------------------------------------------------------------------

    /// Writes a window descriptor (state word + geometry) and flushes its
    /// line — **no fence**: the descriptor only matters to recovery once
    /// `Head` has passed the window, and the sequencer's drain fence runs
    /// strictly before that `Head` store.
    fn mw_write_desc(&mut self, slot: usize, word0: u64, start: u64, len: u64, flags: u64) {
        let addr = mw_desc_addr(slot);
        self.nvm.atomic_write_u64(addr, word0);
        self.nvm.atomic_write_u64(addr + 8, start);
        self.nvm.atomic_write_u64(addr + 16, len);
        self.nvm.atomic_write_u64(addr + 24, flags);
        self.nvm.clflush(addr, 32);
    }

    /// Retires a window descriptor back to [`MW_FREE`]. Flushed without a
    /// fence: a retire store lost to a crash leaves a stale `STAGED`
    /// descriptor whose window ends at or before `Tail`, which recovery
    /// ignores (retired windows never overlap `[Tail, Head)`).
    pub(crate) fn mw_retire_desc(&mut self, slot: usize) {
        let addr = mw_desc_addr(slot);
        self.nvm.atomic_write_u64(addr, MW_FREE);
        self.nvm.atomic_write_u64(addr + 8, 0);
        self.nvm.atomic_write_u64(addr + 16, 0);
        self.nvm.atomic_write_u64(addr + 24, 0);
        self.nvm.clflush(addr, 32);
    }

    /// Raw pin of a block on behalf of one window. Disjoint windows never
    /// pin the same block (the pool's conflict admission keeps in-flight
    /// disk blocks disjoint, and freshly allocated blocks are exclusive),
    /// so per-window unpin lists cannot double-release.
    fn mw_pin_block(&mut self, blk: u32, list: &mut Vec<u32>) {
        if blk != FRESH && !self.pin_blocks[blk as usize] {
            self.pin_blocks[blk as usize] = true;
            list.push(blk);
        }
    }

    /// Raw pin of an entry on behalf of one window.
    fn mw_pin_entry(&mut self, idx: u32, list: &mut Vec<u32>) {
        if !self.pin_entries[idx as usize] {
            self.pin_entries[idx as usize] = true;
            list.push(idx);
            self.mw_pinned_entries += 1;
        }
    }

    /// Releases one window's raw pins (the per-window analogue of
    /// [`Self::clear_pins`]).
    fn mw_unpin(&mut self, blocks: &[u32], entries: &[u32]) {
        for &b in blocks {
            self.pin_blocks[b as usize] = false;
        }
        for &i in entries {
            self.pin_entries[i as usize] = false;
        }
        self.mw_pinned_entries -= entries.len();
    }

    /// Meta phase of a multi-writer window commit, run **under the shard
    /// lock** with the ring window `[start, start+n)` already reserved by
    /// the pool's fetch-add cursor: admission, block allocation, log-role
    /// entry stores, ring-slot stores and the `RESERVED` descriptor — all
    /// flushed but **never fenced** (the sequencer's single drain fence
    /// covers everything). Payload writes are *not* performed here; they
    /// are returned as staging jobs the writer runs outside the lock.
    ///
    /// On error the window is sealed as a no-op: entries staged so far are
    /// revoked, unwritten slots are dead-tagged, pins drop — but the ring
    /// window stays reserved and the caller must still publish and
    /// sequence it (as `failed`) so `Head` can advance past it.
    // The Err variant deliberately carries the sealed window's meta back:
    // a failed reservation still occupies its ring window and must be
    // published and sequenced as `failed` so `Head` can pass it.
    #[allow(clippy::result_large_err)]
    pub(crate) fn mw_stage_meta(
        &mut self,
        txn: Txn,
        start: u64,
        desc_slot: usize,
        tag: u8,
        ordinal: u64,
    ) -> Result<MwStagedMeta, (TincaError, MwStagedMeta)> {
        let _t = telemetry::span(telemetry::phase::COMMIT);
        let n = txn.len();
        debug_assert!(n > 0 && (n as u64) <= self.layout.ring_cap);
        let spanning = tag != 0;
        let mut meta = MwStagedMeta {
            start,
            len: n as u64,
            desc_slot,
            touched: Vec::with_capacity(n),
            replaced_prevs: Vec::with_capacity(n),
            pinned_blocks: Vec::with_capacity(2 * n),
            pinned_entries: Vec::with_capacity(n),
            stage_jobs: Vec::with_capacity(n),
            blocks: n as u64,
            coalesced: txn.coalesced_writes(),
            failed: false,
        };
        self.mw_write_desc(
            desc_slot,
            mw_state_word(ordinal, MW_RESERVED),
            start,
            n as u64,
            if spanning { MW_FLAG_SPANNING } else { 0 },
        );
        {
            let _a = telemetry::span(telemetry::phase::COMMIT_ADMISSION);
            // Same supply rule as `commit`, minus entries other in-flight
            // windows keep pinned (they are not evictable mid-round).
            let overlap = txn
                .blocks()
                .iter()
                .filter(|(b, _)| self.index.contains_key(b))
                .count();
            let evictable = (self.index.len() - overlap).saturating_sub(self.mw_pinned_entries);
            let available = self.free_blocks.free_count() + evictable;
            if n > available {
                self.mw_fail_window(&mut meta, 0);
                return Err((
                    TincaError::CacheExhausted {
                        needed: n,
                        available,
                    },
                    meta,
                ));
            }
        }
        let mut entry_lines: Vec<usize> = Vec::with_capacity(n);
        for (seq, (disk_blk, data)) in (start..).zip(txn.into_blocks()) {
            // (1) COW target block; the payload write itself is deferred to
            // the caller's concurrent staging phase.
            let new_blk = {
                let _s = telemetry::span(telemetry::phase::COMMIT_STAGE);
                match self.alloc_block() {
                    Ok(b) => b,
                    Err(e) => {
                        self.mw_fail_window(&mut meta, seq - start);
                        return Err((e, meta));
                    }
                }
            };
            let mut pinned_blocks = std::mem::take(&mut meta.pinned_blocks);
            self.mw_pin_block(new_blk, &mut pinned_blocks);
            meta.stage_jobs.push((self.layout.data_addr(new_blk), data));
            // (2) Log-role entry, one 16 B atomic store, line flush deferred.
            let _e = telemetry::span(telemetry::phase::COMMIT_ENTRY);
            let idx = match self.index.get(&disk_blk) {
                Some(&idx) => {
                    let old = self.read_entry(idx);
                    debug_assert!(old.valid && old.disk_blk == disk_blk);
                    debug_assert_eq!(old.role, Role::Buffer);
                    if !old.modified {
                        self.dirty_idx.insert(idx);
                    }
                    let prev = old.cur;
                    self.mw_pin_block(prev, &mut pinned_blocks);
                    meta.replaced_prevs.push(prev);
                    self.write_entry_unflushed(
                        idx,
                        CacheEntry::new(Role::Log, true, disk_blk, prev, new_blk),
                    );
                    self.stats.write_hits += 1;
                    idx
                }
                None => {
                    // Audited panic: one entry slot exists per data block,
                    // so a free block implies a free entry (see `commit`).
                    #[allow(clippy::disallowed_methods)]
                    let idx = self
                        .free_entries
                        .allocate()
                        .expect("entry pool exhausts strictly after block pool");
                    self.write_entry_unflushed(
                        idx,
                        CacheEntry::new(Role::Log, true, disk_blk, FRESH, new_blk),
                    );
                    self.index.insert(disk_blk, idx);
                    self.lru.push_mru(idx);
                    self.dirty_idx.insert(idx);
                    self.stats.write_misses += 1;
                    idx
                }
            };
            meta.pinned_blocks = pinned_blocks;
            drop(_e);
            entry_lines.push(self.layout.entry_addr(idx) / nvmsim::CACHE_LINE);
            let mut pinned_entries = std::mem::take(&mut meta.pinned_entries);
            self.mw_pin_entry(idx, &mut pinned_entries);
            meta.pinned_entries = pinned_entries;
            meta.touched.push(idx);
            // (3) Ring slot: 8 B atomic store + line flush, fence deferred.
            let _r = telemetry::span(telemetry::phase::COMMIT_RING);
            let slot = self.layout.ring_slot_addr(seq);
            self.nvm.atomic_write_u64(slot, slot_value(disk_blk, tag));
            self.nvm.clflush(slot, 8);
        }
        // Deferred entry flush: one clflush per *distinct* line, no fence.
        let _e = telemetry::span(telemetry::phase::COMMIT_ENTRY);
        entry_lines.sort_unstable();
        entry_lines.dedup();
        self.stats.coalesced_flushes += (meta.touched.len() - entry_lines.len()) as u64;
        for &line in &entry_lines {
            self.nvm.clflush(line * nvmsim::CACHE_LINE, 1);
        }
        Ok(meta)
    }

    /// Seals a window whose meta phase failed after `processed` blocks:
    /// revokes the staged entries, dead-tags the unwritten slots (a stale
    /// slot value from the ring's previous lap could name another
    /// in-flight window's block and corrupt roll-forward), and drops the
    /// window's pins. The ring window itself stays reserved; the caller
    /// publishes it `STAGED` so the sequencer can pass it as a no-op.
    fn mw_fail_window(&mut self, meta: &mut MwStagedMeta, processed: u64) {
        {
            let _t = telemetry::span(telemetry::phase::COMMIT_REVOKE);
            for &idx in &std::mem::take(&mut meta.touched) {
                let e = self.read_entry(idx);
                if e.valid && !e.is_revoked_marker() {
                    self.revoke_entry(idx, e);
                }
            }
        }
        let mut lines: Vec<usize> = Vec::new();
        for seq in meta.start + processed..meta.start + meta.len {
            let addr = self.layout.ring_slot_addr(seq);
            self.nvm.atomic_write_u64(addr, slot_value(0, MW_DEAD_TAG));
            lines.push(addr / nvmsim::CACHE_LINE);
        }
        lines.sort_unstable();
        lines.dedup();
        for line in lines {
            self.nvm.clflush(line * nvmsim::CACHE_LINE, 1);
        }
        let blocks = std::mem::take(&mut meta.pinned_blocks);
        let entries = std::mem::take(&mut meta.pinned_entries);
        self.mw_unpin(&blocks, &entries);
        meta.replaced_prevs.clear();
        meta.stage_jobs.clear();
        meta.failed = true;
        self.stats.failed_commits += 1;
    }

    /// Sequencer round (DESIGN §16): retires a maximal contiguous prefix
    /// of published windows with **one** fence and **one** `Head` store.
    /// `windows` must start at the current `Head` and be contiguous;
    /// `max_ready_ns` is the latest private-clock completion time among
    /// the windows' concurrent staging phases (overlap model: the round
    /// cannot begin before the slowest writer finished flushing).
    ///
    /// Protocol: advance the clock past the slowest writer, fence once
    /// (draining every writer's flushed payloads, entries, ring slots and
    /// `STAGED` descriptor words — the fence epoch is device-global), then
    /// persist `Head := end`. That `Head` store is the round's **commit
    /// point**: recovery rolls every covered window forward from then on.
    /// The role switch and `Tail := end` follow, exactly as in the
    /// single-writer protocol.
    pub(crate) fn mw_sequence(&mut self, mut windows: Vec<MwStagedMeta>, max_ready_ns: u64) {
        let _t = telemetry::span(telemetry::phase::COMMIT);
        debug_assert!(!windows.is_empty());
        debug_assert_eq!(self.head, self.tail, "round must start at a closed ring");
        debug_assert_eq!(windows[0].start, self.head, "round must start at Head");
        let old_tail = self.tail;
        let mut end = self.head;
        for w in &windows {
            debug_assert_eq!(w.start, end, "round windows must be contiguous");
            end = w.start + w.len;
        }
        self.nvm.clock().advance_to(max_ready_ns);
        {
            // One fence + one Head move for the whole round.
            let _r = telemetry::span(telemetry::phase::COMMIT_RING);
            self.nvm.sfence();
            self.head = end;
            self.nvm.atomic_write_u64(HEAD_OFF, self.head);
            self.nvm.persist(HEAD_OFF, 8);
            self.nvm.note_commit(HEAD_OFF, 8);
        }
        let switched: Vec<u32> = windows
            .iter()
            .filter(|w| !w.failed)
            .flat_map(|w| w.touched.iter().copied())
            .collect();
        self.complete_role_switch(&switched);
        {
            let _p = telemetry::span(telemetry::phase::COMMIT_POINT);
            self.tail = self.head;
            self.nvm.atomic_write_u64(TAIL_OFF, self.tail);
            self.nvm.persist(TAIL_OFF, 8);
            self.nvm.note_commit(TAIL_OFF, 8);
        }
        // Retired windows' slots may carry dead tags; scrub them so the
        // "no tags at rest" invariant (DESIGN §14) holds on this path too.
        self.scrub_slot_tags(old_tail, end);
        let ok_windows = windows.iter().filter(|w| !w.failed).count() as u64;
        for w in &mut windows {
            self.mw_retire_desc(w.desc_slot);
            for p in std::mem::take(&mut w.replaced_prevs) {
                self.free_blocks.release(p);
            }
            for &idx in &w.touched {
                self.lru.touch(idx);
            }
            let blocks = std::mem::take(&mut w.pinned_blocks);
            let entries = std::mem::take(&mut w.pinned_entries);
            self.mw_unpin(&blocks, &entries);
            if !w.failed {
                self.stats.commits += 1;
                self.stats.committed_blocks += w.blocks;
                self.stats.coalesced_writes += w.coalesced;
            }
        }
        // "Windows published per Head advance": one group per round that
        // retired more than one real window.
        if ok_windows > 1 {
            self.stats.group_commits += 1;
            self.stats.batched_txns += ok_windows;
        }
        drop(_t);
        self.maybe_destage();
    }

    /// Spanning prepare on the lock-free path: the shard is quiesced (the
    /// pool drains all windows and blocks new reservations first), so this
    /// window is the only one outstanding. Fences, advances `Head` past
    /// the window and completes the role switch — but leaves `Tail` (and
    /// the `STAGED` descriptor) in place: recovery judges the window's
    /// tagged slots by the spanning intent, exactly as on the mutex path.
    pub(crate) fn mw_sequence_spanning(&mut self, meta: &MwStagedMeta, max_ready_ns: u64) {
        let _t = telemetry::span(telemetry::phase::COMMIT);
        debug_assert!(!meta.failed);
        debug_assert_eq!(
            self.head, self.tail,
            "spanning prepare needs a quiesced shard"
        );
        debug_assert_eq!(meta.start, self.head);
        self.nvm.clock().advance_to(max_ready_ns);
        let _r = telemetry::span(telemetry::phase::COMMIT_RING);
        self.nvm.sfence();
        self.head = meta.start + meta.len;
        self.nvm.atomic_write_u64(HEAD_OFF, self.head);
        self.nvm.persist(HEAD_OFF, 8);
        drop(_r);
        self.complete_role_switch(&meta.touched);
    }

    /// Second phase of a resolved spanning commit on the lock-free path:
    /// the shard-local commit point (`Tail := Head`), then the same
    /// retirement as [`Self::complete_fragment`].
    pub(crate) fn mw_complete_spanning(&mut self, mut meta: MwStagedMeta) {
        let _t = telemetry::span(telemetry::phase::COMMIT);
        let window = (self.tail, self.head);
        {
            let _p = telemetry::span(telemetry::phase::COMMIT_POINT);
            self.tail = self.head;
            self.nvm.atomic_write_u64(TAIL_OFF, self.tail);
            self.nvm.persist(TAIL_OFF, 8);
            self.nvm.note_commit(TAIL_OFF, 8);
        }
        self.scrub_slot_tags(window.0, window.1);
        self.mw_retire_desc(meta.desc_slot);
        // Unlike the pipelined path — where the next sequencer round's
        // drain fence orders the retire write-back before any later
        // commit record — the very next persist here is the intent
        // record on shard 0. Fence so the intent can never overtake the
        // descriptor retirement.
        self.nvm.sfence();
        for p in std::mem::take(&mut meta.replaced_prevs) {
            self.free_blocks.release(p);
        }
        for &idx in &meta.touched {
            self.lru.touch(idx);
        }
        self.mw_unpin(&meta.pinned_blocks, &meta.pinned_entries);
        self.stats.commits += 1;
        self.stats.committed_blocks += meta.blocks;
        self.stats.coalesced_writes += meta.coalesced;
        self.stats.spanning_fragments += 1;
        drop(_t);
        self.maybe_destage();
    }

    /// Aborts a prepared spanning fragment on the lock-free path before
    /// the intent resolves: revokes the staged entries and closes the ring
    /// window, like [`Self::abort_fragment`].
    pub(crate) fn mw_abort_spanning(&mut self, meta: MwStagedMeta) {
        let _t = telemetry::span(telemetry::phase::COMMIT);
        let window = (self.tail, self.head);
        self.revoke_in_flight(&meta.touched);
        self.scrub_slot_tags(window.0, window.1);
        self.mw_retire_desc(meta.desc_slot);
        // Same ordering requirement as `mw_complete_spanning`: the
        // intent retire on shard 0 persists next.
        self.nvm.sfence();
        self.mw_unpin(&meta.pinned_blocks, &meta.pinned_entries);
        self.stats.failed_commits += 1;
    }

    /// Steps 1–3 + per-block ring recording of the commit protocol.
    ///
    /// With [`TincaConfig::coalesce_flushes`] the per-step persists are
    /// deduplicated at cache-line granularity *within this transaction*:
    /// payloads are flushed without a fence, entry updates (four 16 B
    /// entries per 64 B line) defer their flush to one pass over
    /// distinct lines, and ring slots flush like batched-ring mode. A
    /// single fence then drains everything before `Head` moves — so the
    /// commit point (`Tail`, persisted by the caller strictly after the
    /// role switch's own fence) still orders after every staged line.
    /// Crash-safety is unchanged: until the `Head` move persists, `Head
    /// == Tail` and recovery's full entry scan revokes every log-role
    /// entry; after it, the ring window names every staged block.
    /// `tag` is the spanning-intent tag recorded in each ring slot's top
    /// byte ([`crate::layout::slot_value`]); ordinary commits pass `0`,
    /// which stores the bare block number — bit-for-bit the untagged
    /// protocol.
    fn commit_blocks(
        &mut self,
        txn: &Txn,
        touched: &mut Vec<u32>,
        replaced_prevs: &mut Vec<u32>,
        tag: u8,
    ) -> Result<(), TincaError> {
        let coalesce = self.coalescing();
        let mut entry_lines: Vec<usize> = Vec::new();
        for (disk_blk, data) in txn.blocks() {
            // (1) COW block write: new NVM block, payload, flush, fence.
            let new_blk = {
                let _s = telemetry::span(telemetry::phase::COMMIT_STAGE);
                let new_blk = self.alloc_block()?;
                self.pin_block(new_blk);
                let addr = self.layout.data_addr(new_blk);
                self.nvm.write(addr, &data[..]);
                if coalesce {
                    // Flush now, fence once for the whole transaction.
                    self.nvm.clflush(addr, BLOCK_SIZE);
                } else {
                    self.nvm.persist(addr, BLOCK_SIZE);
                }
                new_blk
            };
            // (2) Create/update the cache entry with one 16 B atomic store.
            let _e = telemetry::span(telemetry::phase::COMMIT_ENTRY);
            let idx = match self.index.get(disk_blk) {
                Some(&idx) => {
                    let old = self.read_entry(idx);
                    debug_assert!(old.valid && old.disk_blk == *disk_blk);
                    debug_assert_eq!(old.role, Role::Buffer);
                    if !old.modified {
                        self.dirty_idx.insert(idx);
                    }
                    let prev = old.cur;
                    self.pin_block(prev);
                    replaced_prevs.push(prev);
                    let e = CacheEntry::new(Role::Log, true, *disk_blk, prev, new_blk);
                    if coalesce {
                        self.write_entry_unflushed(idx, e);
                    } else {
                        self.write_entry(idx, e);
                    }
                    self.stats.write_hits += 1;
                    idx
                }
                None => {
                    // Audited panic: the layout allocates one entry slot
                    // per data block, so a free block implies a free
                    // entry; exhaustion here is a layout bug, not a
                    // recoverable condition.
                    #[allow(clippy::disallowed_methods)]
                    let idx = self
                        .free_entries
                        .allocate()
                        .expect("entry pool exhausts strictly after block pool");
                    let e = CacheEntry::new(Role::Log, true, *disk_blk, FRESH, new_blk);
                    if coalesce {
                        self.write_entry_unflushed(idx, e);
                    } else {
                        self.write_entry(idx, e);
                    }
                    self.index.insert(*disk_blk, idx);
                    self.lru.push_mru(idx);
                    self.dirty_idx.insert(idx);
                    self.stats.write_misses += 1;
                    idx
                }
            };
            drop(_e);
            if coalesce {
                entry_lines.push(self.layout.entry_addr(idx) / nvmsim::CACHE_LINE);
            }
            self.pin_entry(idx);
            touched.push(idx);
            // (3) Record the block number in the ring via an 8 B atomic
            // store, then (4) move Head. In batched/coalesced mode the
            // slot is only flushed (fence deferred) and Head moves once
            // at the end. The slot flush is *not* deferred: a failed
            // commit's revoke path re-persists entries but not ring
            // slots, so slots must already be flushed when it fences.
            let _r = telemetry::span(telemetry::phase::COMMIT_RING);
            let slot = self.layout.ring_slot_addr(self.head);
            self.nvm
                .atomic_write_u64(slot, crate::layout::slot_value(*disk_blk, tag));
            if self.cfg.batched_ring || coalesce {
                self.nvm.clflush(slot, 8);
                self.head += 1;
            } else {
                self.nvm.persist(slot, 8);
                self.head += 1;
                self.nvm.atomic_write_u64(HEAD_OFF, self.head);
                self.nvm.persist(HEAD_OFF, 8);
            }
        }
        if coalesce {
            {
                // Deferred entry flush: one clflush per *distinct* line.
                let _e = telemetry::span(telemetry::phase::COMMIT_ENTRY);
                entry_lines.sort_unstable();
                entry_lines.dedup();
                self.stats.coalesced_flushes += (touched.len() - entry_lines.len()) as u64;
                for &line in &entry_lines {
                    self.nvm.clflush(line * nvmsim::CACHE_LINE, 1);
                }
            }
            // One fence drains payloads, entries and ring slots, then the
            // single Head move makes the ring window visible to recovery.
            let _r = telemetry::span(telemetry::phase::COMMIT_RING);
            if !self.cfg.batched_ring {
                // vs the paper's per-block Head persist: all but one of
                // the Head flushes are elided.
                self.stats.coalesced_flushes += (touched.len() - 1) as u64;
            }
            self.nvm.sfence();
            self.nvm.atomic_write_u64(HEAD_OFF, self.head);
            self.nvm.persist(HEAD_OFF, 8);
        } else if self.cfg.batched_ring {
            // All slots durable before the single Head move.
            let _r = telemetry::span(telemetry::phase::COMMIT_RING);
            self.nvm.sfence();
            self.nvm.atomic_write_u64(HEAD_OFF, self.head);
            self.nvm.persist(HEAD_OFF, 8);
        }
        Ok(())
    }

    /// True when commit-path flush coalescing is in force (requires the
    /// role switch: the double-write ablation keeps per-step persists).
    fn coalescing(&self) -> bool {
        self.cfg.coalesce_flushes && self.cfg.role_switch
    }

    /// Step (4) of §4.4: flip every committed block from *log* to *buffer*.
    /// One atomic store + flush per entry, a single fence for the batch.
    /// `prev` fields are retained; they are reclaimed only after `Tail`
    /// moves, so a crash here can still revoke the whole transaction.
    fn complete_role_switch(&mut self, touched: &[u32]) {
        let _t = telemetry::span(telemetry::phase::COMMIT_ROLE_SWITCH);
        if self.coalescing() {
            // Coalesced: store all role flips first, then flush each
            // *distinct* entry line once. The trailing fence drains these
            // lines (and any remaining staged ones) strictly before the
            // caller persists `Tail`, so the commit point cannot be
            // observed ahead of a role flip.
            let mut lines: Vec<usize> = Vec::with_capacity(touched.len());
            for &idx in touched {
                let e = self.read_entry(idx);
                debug_assert_eq!(e.role, Role::Log);
                let addr = self.layout.entry_addr(idx);
                self.nvm
                    .atomic_write_u128(addr, e.switched_to_buffer().encode());
                lines.push(addr / nvmsim::CACHE_LINE);
            }
            lines.sort_unstable();
            lines.dedup();
            self.stats.coalesced_flushes += (touched.len() - lines.len()) as u64;
            for &line in &lines {
                self.nvm.clflush(line * nvmsim::CACHE_LINE, 1);
            }
        } else {
            for &idx in touched {
                let e = self.read_entry(idx);
                debug_assert_eq!(e.role, Role::Log);
                let addr = self.layout.entry_addr(idx);
                self.nvm
                    .atomic_write_u128(addr, e.switched_to_buffer().encode());
                self.nvm.clflush(addr, 16);
            }
        }
        self.nvm.sfence();
    }

    /// Ablation path (`role_switch = false`): emulate journaling's double
    /// write *inside* the cache — every committed block is copied to a
    /// second NVM block ("checkpoint" copy) before the commit point.
    fn complete_double_write(&mut self, touched: &mut [u32]) -> Result<(), TincaError> {
        let _t = telemetry::span(telemetry::phase::COMMIT_DOUBLE_WRITE);
        let mut buf = [0u8; BLOCK_SIZE];
        for &idx in touched.iter() {
            let e = self.read_entry(idx);
            debug_assert_eq!(e.role, Role::Log);
            let chk = self.alloc_block()?;
            self.pin_block(chk);
            self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
            let addr = self.layout.data_addr(chk);
            self.nvm.write(addr, &buf);
            self.nvm.persist(addr, BLOCK_SIZE);
            let log_blk = e.cur;
            let switched = CacheEntry::new(Role::Buffer, true, e.disk_blk, e.prev, chk);
            self.write_entry(idx, switched);
            // The log copy is garbage once the entry points at the
            // checkpoint copy — but keep it allocated (pinned) until the
            // commit point so revocation stays possible; it is released
            // in DRAM below only because `clear_pins` runs after `Tail`.
            self.free_blocks.release(log_blk);
        }
        Ok(())
    }

    /// Write-through extension: push every committed block to disk and mark
    /// it clean. The commit is already durable in NVM when this runs, so a
    /// permanent disk fault does not fail the commit — the block is
    /// quarantined (stays dirty in NVM) and the cache degrades.
    fn write_through(&mut self, touched: &[u32]) {
        let mut buf = [0u8; BLOCK_SIZE];
        for &idx in touched {
            let e = self.read_entry(idx);
            self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
            match self.disk_write_retry(e.disk_blk, &buf) {
                Ok(()) => {
                    self.stats.writebacks += 1;
                    let clean = CacheEntry {
                        modified: false,
                        ..e
                    };
                    self.write_entry(idx, clean);
                    self.dirty_idx.remove(&idx);
                }
                Err(_) => self.quarantine(idx),
            }
        }
    }

    // ------------------------------------------------------------------
    // Fallible disk I/O: retry, backoff, quarantine
    // ------------------------------------------------------------------

    /// Reads `blk` from disk, retrying transient errors up to the
    /// configured budget with simulated-clock backoff between attempts.
    fn disk_read_retry(&mut self, blk: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let mut attempt = 1;
        loop {
            match self.disk.read_block(blk, buf) {
                Ok(()) => {
                    if attempt > 1 {
                        self.stats.transient_errors_absorbed += 1;
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() && attempt < self.cfg.max_io_retries => {
                    attempt += 1;
                    self.stats.io_retries += 1;
                    self.nvm.clock().advance(self.cfg.retry_backoff_ns);
                    telemetry::charge(
                        telemetry::phase::IO_RETRY_BACKOFF,
                        self.cfg.retry_backoff_ns,
                    );
                }
                Err(e) => {
                    self.stats.permanent_io_errors += 1;
                    return Err(e);
                }
            }
        }
    }

    /// Writes `blk` to disk with the same transient-retry policy as
    /// [`Self::disk_read_retry`].
    fn disk_write_retry(&mut self, blk: u64, buf: &[u8]) -> Result<(), IoError> {
        let mut attempt = 1;
        loop {
            match self.disk.write_block(blk, buf) {
                Ok(()) => {
                    if attempt > 1 {
                        self.stats.transient_errors_absorbed += 1;
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() && attempt < self.cfg.max_io_retries => {
                    attempt += 1;
                    self.stats.io_retries += 1;
                    self.nvm.clock().advance(self.cfg.retry_backoff_ns);
                    telemetry::charge(
                        telemetry::phase::IO_RETRY_BACKOFF,
                        self.cfg.retry_backoff_ns,
                    );
                }
                Err(e) => {
                    self.stats.permanent_io_errors += 1;
                    return Err(e);
                }
            }
        }
    }

    /// Marks entry `idx` quarantined: its dirty payload stays pinned in
    /// NVM until a later [`flush_all`](Self::flush_all) succeeds.
    fn quarantine(&mut self, idx: u32) {
        if self.quarantined.insert(idx) {
            self.stats.quarantined_blocks += 1;
        }
    }

    /// The cache's current fault condition; see [`Health`].
    pub fn health(&self) -> Health {
        let q = self.quarantined.len();
        if q == 0 {
            return Health::Healthy;
        }
        let evictable = self.index.len() - q;
        if self.free_blocks.free_count() == 0 && evictable == 0 {
            Health::ReadOnly
        } else {
            Health::Degraded { quarantined: q }
        }
    }

    /// Number of currently quarantined dirty blocks (the live count;
    /// [`CacheStats::quarantined_blocks`](crate::CacheStats) is
    /// cumulative).
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Clears the intent tags of the retired ring window `[from, to)`:
    /// each tagged slot is rewritten with the bare block number, the
    /// touched lines flushed, and one fence drains them.
    ///
    /// This guards the 7-bit intent tag against wraparound collision
    /// (DESIGN §14): intent ids grow without bound but tags keep only the
    /// low 7 bits, so after 128 spanning commits a *new* intent's tag
    /// equals a *stale* one's. The window-homogeneity argument already
    /// makes stale tags unreachable — recovery only reads `[Tail, Head)`,
    /// and slots are fenced-durable before `Head` moves, so the window
    /// only ever holds the current fragment's slots — but scrubbing on
    /// retirement makes the stronger structural invariant hold: outside
    /// an open spanning window, **no ring slot carries a tag at all**, so
    /// a colliding tag simply does not exist on the device. Untagged
    /// windows (every single-shard commit) scrub nothing and emit no
    /// events.
    pub(crate) fn scrub_slot_tags(&mut self, from: u64, to: u64) {
        let mut lines: Vec<usize> = Vec::new();
        for seq in from..to {
            let addr = self.layout.ring_slot_addr(seq);
            let (blk, tag) = crate::layout::split_slot(self.nvm.read_u64(addr));
            if tag != 0 {
                self.nvm
                    .atomic_write_u64(addr, crate::layout::slot_value(blk, 0));
                lines.push(addr / nvmsim::CACHE_LINE);
            }
        }
        if lines.is_empty() {
            return;
        }
        lines.sort_unstable();
        lines.dedup();
        for line in lines {
            self.nvm.clflush(line * nvmsim::CACHE_LINE, 1);
        }
        self.nvm.sfence();
    }

    /// Revokes the already-written blocks of a failed committing
    /// transaction (runtime `tinca_abort` of a committing transaction).
    fn revoke_in_flight(&mut self, touched: &[u32]) {
        let _t = telemetry::span(telemetry::phase::COMMIT_REVOKE);
        for &idx in touched {
            let e = self.read_entry(idx);
            if !e.valid || e.is_revoked_marker() {
                continue;
            }
            self.revoke_entry(idx, e);
        }
        // Close the ring. `Head` is re-persisted first: in batched-ring
        // mode the in-DRAM head may be ahead of the persistent one, and
        // `Tail` must never persist past `Head`.
        self.nvm.atomic_write_u64(HEAD_OFF, self.head);
        self.nvm.persist(HEAD_OFF, 8);
        self.tail = self.head;
        self.nvm.atomic_write_u64(TAIL_OFF, self.tail);
        self.nvm.persist(TAIL_OFF, 8);
        self.nvm.note_commit(TAIL_OFF, 8);
    }

    /// Undoes one in-flight entry: restores the previous version, or
    /// deletes the entry if the block was fresh. Shared by runtime abort
    /// and crash recovery.
    pub(crate) fn revoke_entry(&mut self, idx: u32, e: CacheEntry) {
        debug_assert!(e.valid && !e.is_revoked_marker());
        match e.revoked() {
            Some(restored) => {
                // In-flight entries are always modified, and so is the
                // restored entry (`revoked()` marks the previous version
                // dirty): net zero for the dirty count.
                debug_assert!(e.modified && restored.modified);
                self.write_entry(idx, restored);
                if !self.free_blocks.is_free(e.cur) {
                    self.free_blocks.release(e.cur);
                }
            }
            None => {
                self.write_entry(idx, CacheEntry::INVALID);
                self.index.remove(&e.disk_blk);
                if self.lru.contains(idx) {
                    self.lru.remove(idx);
                }
                self.free_entries.release(idx);
                if !self.free_blocks.is_free(e.cur) {
                    self.free_blocks.release(e.cur);
                }
                // A freed entry slot must not carry a stale quarantine mark
                // into its next life.
                self.quarantined.remove(&idx);
                // A no-op during crash recovery (the set is rebuilt from
                // the surviving entries afterwards); at runtime the entry
                // was tracked.
                self.dirty_idx.remove(&idx);
            }
        }
        self.stats.revoked_blocks += 1;
    }

    /// Reads on-disk block `disk_blk` through the cache (§4.6: Tinca caches
    /// reads as well as writes). Misses retry transient disk errors with
    /// backoff; a permanent fault surfaces as [`TincaError::Io`].
    pub fn read(&mut self, disk_blk: u64, buf: &mut [u8]) -> Result<(), TincaError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        let _t = telemetry::span(telemetry::phase::CACHE_READ);
        if let Some(&idx) = self.index.get(&disk_blk) {
            let e = self.read_entry(idx);
            debug_assert!(e.valid && e.disk_blk == disk_blk);
            if e.role == Role::Log {
                // Multi-writer path: the block is staged by an in-flight
                // (uncommitted) window, so serve the pre-transaction
                // snapshot — the previous version if one exists, else the
                // disk copy. Unreachable on the mutex path, where the
                // shard lock covers the whole commit.
                if e.prev != FRESH {
                    self.nvm.read(self.layout.data_addr(e.prev), buf);
                    self.lru.touch(idx);
                    self.stats.read_hits += 1;
                    return Ok(());
                }
                self.disk_read_retry(disk_blk, buf)?;
                self.stats.read_misses += 1;
                return Ok(());
            }
            self.nvm.read(self.layout.data_addr(e.cur), buf);
            self.lru.touch(idx);
            self.stats.read_hits += 1;
            return Ok(());
        }
        self.disk_read_retry(disk_blk, buf)?;
        self.stats.read_misses += 1;
        if self.cfg.cache_reads {
            self.fill_clean(disk_blk, buf);
        }
        drop(_t);
        // Miss fills consume free blocks just like commits do; a
        // read-heavy stretch must wake the daemon too or the supply only
        // recovers at commit boundaries.
        self.maybe_destage();
        Ok(())
    }

    /// Inserts a clean copy of `disk_blk` after a read miss. Best-effort:
    /// if no block can be allocated the read is simply not cached.
    fn fill_clean(&mut self, disk_blk: u64, data: &[u8]) {
        let Ok(blk) = self.alloc_block() else { return };
        let addr = self.layout.data_addr(blk);
        self.nvm.write(addr, data);
        self.nvm.persist(addr, BLOCK_SIZE);
        // Audited panic: same layout invariant as commit — one entry slot
        // per data block, so the just-allocated block guarantees a slot.
        #[allow(clippy::disallowed_methods)]
        let idx = self
            .free_entries
            .allocate()
            .expect("entry pool exhausts strictly after block pool");
        let e = CacheEntry::new(Role::Buffer, false, disk_blk, FRESH, blk);
        self.write_entry(idx, e);
        self.index.insert(disk_blk, idx);
        self.lru.push_mru(idx);
    }

    /// Allocates an NVM data block, evicting the LRU unpinned buffer block
    /// if the free pool is empty. A victim whose dirty writeback fails
    /// permanently is quarantined (not freed) and the search moves to the
    /// next candidate; [`TincaError::NoVictim`] means every remaining
    /// block is pinned or quarantined.
    fn alloc_block(&mut self) -> Result<u32, TincaError> {
        loop {
            if let Some(b) = self.free_blocks.allocate() {
                return Ok(b);
            }
            let victim = if self.cfg.destage {
                // Destage keeps the LRU tail clean, so eviction should be
                // free; a dirty fallback means the daemon fell behind and
                // the foreground path pays a synchronous writeback — the
                // stall the watermarks exist to avoid.
                let clean = self.find_victim(true);
                if clean.is_none() {
                    let dirty = self.find_victim(false);
                    if dirty.is_some() {
                        self.stats.destage_stalls += 1;
                    }
                    dirty
                } else {
                    clean
                }
            } else {
                self.find_victim(false)
            };
            let Some(idx) = victim else {
                return Err(TincaError::NoVictim);
            };
            // On writeback failure the victim is quarantined and excluded
            // from the next search pass, so the loop always terminates —
            // the error is counted, not silently swallowed.
            if self.evict(idx).is_err() {
                self.stats.eviction_errors += 1;
            }
        }
    }

    /// LRU-order victim search. Log blocks and blocks pinned as a
    /// committing prev/cur stay (§4.6 rule 2); quarantined entries are
    /// never victims. `clean_only` restricts the search to unmodified
    /// blocks (evictable without disk I/O).
    fn find_victim(&self, clean_only: bool) -> Option<u32> {
        self.lru.iter_lru().find(|&idx| {
            if self.pin_entries[idx as usize] || self.quarantined.contains(&idx) {
                return false;
            }
            // DRAM dirty-set rejection first: a clean-only scan that finds
            // nothing must not charge an NVM entry read per candidate.
            if clean_only && self.dirty_idx.contains(&idx) {
                return false;
            }
            let e = self.read_entry(idx);
            e.valid
                && e.role == Role::Buffer
                && !self.pin_blocks[e.cur as usize]
                && (!clean_only || !e.modified)
        })
    }

    /// Evicts entry `idx`: writes the block back if dirty, then
    /// persistently invalidates the entry *before* its NVM block can be
    /// reused (so a crash never sees an entry naming a reused block). If
    /// the writeback fails permanently, the entry is quarantined instead
    /// — its payload stays safe in NVM.
    fn evict(&mut self, idx: u32) -> Result<(), IoError> {
        let _t = telemetry::span(telemetry::phase::CACHE_EVICT);
        let e = self.read_entry(idx);
        debug_assert!(e.valid && e.role == Role::Buffer);
        if e.modified {
            let _w = telemetry::span(telemetry::phase::CACHE_WRITEBACK);
            let mut buf = [0u8; BLOCK_SIZE];
            self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
            if let Err(err) = self.disk_write_retry(e.disk_blk, &buf) {
                self.quarantine(idx);
                return Err(err);
            }
            self.stats.writebacks += 1;
        }
        self.write_entry(idx, CacheEntry::INVALID);
        self.index.remove(&e.disk_blk);
        self.lru.remove(idx);
        self.free_entries.release(idx);
        self.free_blocks.release(e.cur);
        self.dirty_idx.remove(&idx);
        self.stats.evictions += 1;
        Ok(())
    }

    /// Writes back every dirty cached block and marks it clean. Used at
    /// orderly shutdown and by verification harnesses.
    ///
    /// Quarantined blocks are re-attempted (a replaced disk recovers
    /// them). Errors are collected, not short-circuited: every dirty
    /// block gets its flush attempt, then the first error is returned —
    /// with [`Health`] reporting how much is still pinned in NVM.
    pub fn flush_all(&mut self) -> Result<(), TincaError> {
        if self.head != self.tail {
            return Err(TincaError::CommitInProgress {
                head: self.head,
                tail: self.tail,
            });
        }
        let _t = telemetry::span(telemetry::phase::CACHE_FLUSH_ALL);
        // A full flush is a drain barrier: any destage batch still in
        // flight on the background lane completes (its entries are
        // already clean; the foreground clock catches up to the lane).
        self.drain_destage_lane();
        let mut buf = [0u8; BLOCK_SIZE];
        let mut first_err = Ok(());
        let idxs: Vec<u32> = self.index.values().copied().collect();
        for idx in idxs {
            let e = self.read_entry(idx);
            if e.valid && e.modified {
                let _w = telemetry::span(telemetry::phase::CACHE_WRITEBACK);
                self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
                match self.disk_write_retry(e.disk_blk, &buf) {
                    Ok(()) => {
                        self.stats.writebacks += 1;
                        self.write_entry(
                            idx,
                            CacheEntry {
                                modified: false,
                                ..e
                            },
                        );
                        self.quarantined.remove(&idx);
                        self.dirty_idx.remove(&idx);
                    }
                    Err(err) => {
                        self.quarantine(idx);
                        if first_err.is_ok() {
                            first_err = Err(TincaError::Io(err));
                        }
                    }
                }
            }
        }
        first_err
    }

    // ------------------------------------------------------------------
    // Write-behind destage (background lane)
    // ------------------------------------------------------------------

    /// Low/high-watermark write-behind daemon, run after every successful
    /// commit. When the *supply* — free NVM blocks plus clean cached
    /// blocks, i.e. everything [`Self::alloc_block`] can hand out without
    /// disk I/O — drops below `destage_low_water_pct` of the data blocks,
    /// the daemon harvests dirty LRU victims (up to `destage_batch`, or
    /// fewer if that already restores `destage_high_water_pct`), sorts
    /// them by disk address and issues one vectored
    /// [`BlockDevice::write_blocks`] on the background lane.
    ///
    /// Clock model (mtfio-style wall = max, busy = sum): the batch's
    /// device time is *not* charged to the foreground clock. Instead the
    /// lane's absolute free deadline (`destage_lane_free_ns`) moves
    /// forward, and at most one batch is in flight: the daemon refuses to
    /// fire again until the deadline passes, and
    /// [`Self::drain_destage_lane`] stalls the foreground clock up to the
    /// deadline where ordering demands it (full flush). Disk `busy_ns`
    /// still accumulates, so utilisation reports stay honest.
    ///
    /// Durability is unchanged: destage only writes *committed* blocks
    /// (read from the persistent NVM image — everything outside the
    /// commit window is durable) and marking a block clean is a pure
    /// cache-state transition. A crash mid-destage at worst leaves a
    /// block dirty that was already on disk; recovery re-writes it.
    fn maybe_destage(&mut self) {
        if !self.cfg.destage {
            return;
        }
        let now = self.nvm.clock().now_ns();
        if self.destage_lane_free_ns > now {
            return; // previous batch still occupies the lane
        }
        let data_blocks = self.layout.data_blocks as usize;
        let supply = self.free_blocks.free_count() + (self.index.len() - self.dirty_idx.len());
        // Watermarks round with ceiling division and guarantee
        // `high > low` so a completed harvest always clears the trigger
        // (flooring both used to collapse tiny caches to low == high or
        // a zero-block target; see `TincaConfig::destage_watermarks`).
        let (low_blocks, high_blocks) = self.cfg.destage_watermarks(data_blocks);
        if supply >= low_blocks {
            return;
        }
        let _t = telemetry::span(telemetry::phase::DESTAGE);
        let need = high_blocks
            .saturating_sub(supply)
            .clamp(1, self.cfg.destage_batch.max(1));
        // Harvest in LRU order: the blocks eviction would want next. The
        // scan uses persistent entry reads so the daemon's bookkeeping
        // does not bill NVM latency to the foreground clock.
        let mut victims: Vec<(u32, CacheEntry)> = Vec::with_capacity(need);
        for idx in self.lru.iter_lru() {
            if victims.len() >= need {
                break;
            }
            if self.pin_entries[idx as usize]
                || self.quarantined.contains(&idx)
                || !self.dirty_idx.contains(&idx)
            {
                continue;
            }
            let e = self.read_entry_persistent(idx);
            if e.valid && e.role == Role::Buffer && e.modified && !self.pin_blocks[e.cur as usize] {
                victims.push((idx, e));
            }
        }
        if victims.is_empty() {
            return;
        }
        // Address-sort: contiguous runs stream on the device after one
        // seek (the point of batching).
        victims.sort_unstable_by_key(|&(_, e)| e.disk_blk);
        let payloads: Vec<Vec<u8>> = victims
            .iter()
            .map(|&(_, e)| {
                let mut buf = vec![0u8; BLOCK_SIZE];
                self.nvm
                    .read_persistent(self.layout.data_addr(e.cur), &mut buf);
                buf
            })
            .collect();
        let reqs: Vec<(u64, &[u8])> = victims
            .iter()
            .zip(&payloads)
            .map(|(&(_, e), p)| (e.disk_blk, &p[..]))
            .collect();
        let report = self.disk.write_blocks(&reqs, IoLane::Background);
        drop(reqs);
        let mut lane_ns = report.device_ns;
        self.stats.destage_batches += 1;
        let failed: HashMap<usize, IoError> = report.errors.into_iter().collect();
        for (pos, &(idx, e)) in victims.iter().enumerate() {
            let res = match failed.get(&pos) {
                None => Ok(()),
                Some(&err) => {
                    let (extra, res) = self.destage_retry(e.disk_blk, &payloads[pos], err);
                    lane_ns += extra;
                    res
                }
            };
            match res {
                Ok(()) => {
                    // Same persistence discipline as the eviction path:
                    // the clean mark is a real entry write on the
                    // foreground clock (metadata cost is not hidden).
                    self.write_entry(
                        idx,
                        CacheEntry {
                            modified: false,
                            ..e
                        },
                    );
                    self.quarantined.remove(&idx);
                    self.dirty_idx.remove(&idx);
                    self.stats.writebacks += 1;
                    self.stats.destage_blocks += 1;
                }
                Err(_) => self.quarantine(idx),
            }
        }
        self.destage_lane_free_ns = now + lane_ns;
        // Busy-lane time, deliberately charged without a clock advance:
        // the phase report shows overlapped device time next to the
        // foreground phases (see DESIGN.md §11).
        telemetry::charge(telemetry::phase::DESTAGE_WRITEBACK, lane_ns);
    }

    /// Background-lane retry loop for one failed destage request. Mirrors
    /// [`Self::disk_write_retry`]'s counting exactly, but backoff and
    /// device time extend the lane deadline instead of stalling the
    /// foreground clock. Returns the lane time consumed and the outcome.
    fn destage_retry(
        &mut self,
        blk: u64,
        buf: &[u8],
        first: IoError,
    ) -> (u64, Result<(), IoError>) {
        let mut lane_ns = 0u64;
        let mut err = first;
        let mut attempt = 1u32;
        loop {
            if !err.is_transient() || attempt >= self.cfg.max_io_retries {
                self.stats.permanent_io_errors += 1;
                return (lane_ns, Err(err));
            }
            attempt += 1;
            self.stats.io_retries += 1;
            lane_ns += self.cfg.retry_backoff_ns;
            let r = self.disk.write_blocks(&[(blk, buf)], IoLane::Background);
            lane_ns += r.device_ns;
            match r.errors.into_iter().next() {
                None => {
                    self.stats.transient_errors_absorbed += 1;
                    return (lane_ns, Ok(()));
                }
                Some((_, e)) => err = e,
            }
        }
    }

    /// Stalls the foreground clock until the background destage lane is
    /// idle. Ordering barrier for operations that must observe all prior
    /// writebacks as complete (full flush, orderly shutdown).
    fn drain_destage_lane(&mut self) {
        let now = self.nvm.clock().now_ns();
        if self.destage_lane_free_ns > now {
            let wait = self.destage_lane_free_ns - now;
            self.nvm.clock().advance(wait);
            telemetry::charge(telemetry::phase::DESTAGE_DRAIN, wait);
        }
    }

    // ------------------------------------------------------------------
    // Accessors & inspection
    // ------------------------------------------------------------------

    /// Number of dirty (modified, valid) cached blocks — maintained
    /// incrementally; audited by [`Self::check_consistency`].
    pub fn dirty_block_count(&self) -> usize {
        self.dirty_idx.len()
    }

    /// The cache's NVM space partitioning.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The NVM device below the cache.
    pub fn nvm(&self) -> &Nvm {
        &self.nvm
    }

    /// The disk below the cache.
    pub fn disk(&self) -> &DynDisk {
        &self.disk
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The configuration this cache runs with.
    pub fn config(&self) -> &TincaConfig {
        &self.cfg
    }

    /// Number of currently cached (valid) blocks.
    pub fn cached_blocks(&self) -> usize {
        self.index.len()
    }

    /// Number of free NVM data blocks.
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.free_count()
    }

    /// True if `disk_blk` is cached.
    pub fn contains(&self, disk_blk: u64) -> bool {
        self.index.contains_key(&disk_blk)
    }

    /// Returns the cached payload of `disk_blk`, if present (no LRU touch,
    /// no stats — inspection only).
    pub fn peek(&self, disk_blk: u64) -> Option<[u8; BLOCK_SIZE]> {
        let &idx = self.index.get(&disk_blk)?;
        let e = self.read_entry(idx);
        let mut buf = [0u8; BLOCK_SIZE];
        self.nvm.read(self.layout.data_addr(e.cur), &mut buf);
        Some(buf)
    }

    pub(crate) fn read_entry(&self, idx: u32) -> CacheEntry {
        CacheEntry::decode(self.nvm.read_u128(self.layout.entry_addr(idx)))
    }

    pub(crate) fn write_entry(&self, idx: u32, e: CacheEntry) {
        let addr = self.layout.entry_addr(idx);
        self.nvm.atomic_write_u128(addr, e.encode());
        self.nvm.persist(addr, 16);
    }

    /// Entry store *without* the per-entry persist. Used only by the
    /// coalesced commit path, which flushes the distinct 64 B entry
    /// lines once per transaction and fences before `Head` moves — see
    /// [`TincaConfig::coalesce_flushes`].
    fn write_entry_unflushed(&self, idx: u32, e: CacheEntry) {
        self.nvm
            .atomic_write_u128(self.layout.entry_addr(idx), e.encode());
    }

    /// Reads entry `idx` from the *persistent* NVM image, charging no
    /// simulated latency. Valid whenever the cache is between commits:
    /// every entry is persisted before the commit point (and recovery
    /// re-persists survivors), so the persistent image equals the
    /// volatile one. The destage daemon scans with this so its harvest
    /// does not bill NVM read time to the foreground clock.
    fn read_entry_persistent(&self, idx: u32) -> CacheEntry {
        let mut b = [0u8; 16];
        self.nvm
            .read_persistent(self.layout.entry_addr(idx), &mut b);
        CacheEntry::decode(u128::from_le_bytes(b))
    }

    // ------------------------------------------------------------------
    // Pinning (§4.6 rule 2)
    // ------------------------------------------------------------------

    fn pin_block(&mut self, b: u32) {
        if b != FRESH && !self.pin_blocks[b as usize] {
            self.pin_blocks[b as usize] = true;
            self.pin_block_list.push(b);
        }
    }

    fn pin_entry(&mut self, idx: u32) {
        if !self.pin_entries[idx as usize] {
            self.pin_entries[idx as usize] = true;
            self.pin_entry_list.push(idx);
        }
    }

    fn clear_pins(&mut self) {
        for b in self.pin_block_list.drain(..) {
            self.pin_blocks[b as usize] = false;
        }
        for i in self.pin_entry_list.drain(..) {
            self.pin_entries[i as usize] = false;
        }
    }

    // ------------------------------------------------------------------
    // Recovery plumbing (the algorithm lives in recovery.rs)
    // ------------------------------------------------------------------

    pub(crate) fn recovery_parts(
        nvm: Nvm,
        disk: DynDisk,
        cfg: TincaConfig,
        layout: Layout,
        head: u64,
        tail: u64,
    ) -> Self {
        let mut c = Self::from_parts(nvm, disk, cfg, layout, head, tail);
        c.free_blocks = FreeMonitor::new_all_used(layout.data_blocks);
        c.free_entries = FreeMonitor::new_all_used(layout.entry_count);
        c
    }

    pub(crate) fn dram_mark_dirty(&mut self, idx: u32) {
        self.dirty_idx.insert(idx);
    }

    pub(crate) fn set_head_tail(&mut self, head: u64, tail: u64) {
        self.head = head;
        self.tail = tail;
    }

    pub(crate) fn head_tail(&self) -> (u64, u64) {
        (self.head, self.tail)
    }

    pub(crate) fn dram_insert(&mut self, disk_blk: u64, idx: u32) {
        self.index.insert(disk_blk, idx);
        self.lru.push_mru(idx);
    }

    pub(crate) fn index_get(&self, disk_blk: u64) -> Option<u32> {
        self.index.get(&disk_blk).copied()
    }

    pub(crate) fn free_blocks_mut(&mut self) -> &mut FreeMonitor {
        &mut self.free_blocks
    }

    pub(crate) fn free_entries_mut(&mut self) -> &mut FreeMonitor {
        &mut self.free_entries
    }

    pub(crate) fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Exhaustive self-check of the DRAM/NVM invariants; used by tests and
    /// the crash-recovery verifier. Returns a description of the first
    /// violation found.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.head != self.tail {
            return Err(format!(
                "ring open outside commit: head={} tail={}",
                self.head, self.tail
            ));
        }
        let mut seen_cur = vec![false; self.layout.data_blocks as usize];
        let mut valid_count = 0usize;
        let mut dirty = 0usize;
        for idx in 0..self.layout.entry_count {
            let e = self.read_entry(idx);
            if !e.valid {
                if !self.free_entries.is_free(idx) {
                    return Err(format!("invalid entry {idx} not in free-entry pool"));
                }
                continue;
            }
            valid_count += 1;
            if e.modified {
                dirty += 1;
            }
            if e.modified != self.dirty_idx.contains(&idx) {
                return Err(format!(
                    "entry {idx} modified={} but dirty set says {}",
                    e.modified,
                    self.dirty_idx.contains(&idx)
                ));
            }
            if e.role == Role::Log {
                return Err(format!("entry {idx} still has log role at rest"));
            }
            if e.cur as usize >= self.layout.data_blocks as usize {
                return Err(format!("entry {idx} cur block {} out of range", e.cur));
            }
            if seen_cur[e.cur as usize] {
                return Err(format!("NVM block {} referenced by two entries", e.cur));
            }
            seen_cur[e.cur as usize] = true;
            if self.free_blocks.is_free(e.cur) {
                return Err(format!(
                    "entry {idx} cur block {} is in the free pool",
                    e.cur
                ));
            }
            match self.index.get(&e.disk_blk) {
                Some(&i) if i == idx => {}
                other => {
                    return Err(format!(
                        "entry {idx} (disk blk {}) not indexed correctly: {other:?}",
                        e.disk_blk
                    ))
                }
            }
            if !self.lru.contains(idx) {
                return Err(format!("valid entry {idx} missing from LRU list"));
            }
        }
        if valid_count != self.index.len() {
            return Err(format!(
                "index size {} != valid entries {valid_count}",
                self.index.len()
            ));
        }
        if valid_count != self.lru.len() {
            return Err(format!(
                "LRU size {} != valid entries {valid_count}",
                self.lru.len()
            ));
        }
        let used_blocks = self.layout.data_blocks as usize - self.free_blocks.free_count();
        if used_blocks != valid_count {
            return Err(format!(
                "{used_blocks} blocks in use but {valid_count} valid entries"
            ));
        }
        if dirty != self.dirty_idx.len() {
            return Err(format!(
                "dirty set holds {} but {dirty} modified entries",
                self.dirty_idx.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{DiskKind, SimDisk};
    use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};

    fn small_cache() -> TincaCache {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(256 << 10, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
        TincaCache::format(
            nvm,
            disk,
            TincaConfig {
                ring_bytes: 4096,
                ..TincaConfig::default()
            },
        )
    }

    /// `flush_all` must refuse to run while a transaction is committing
    /// (`Head != Tail`) — in release builds too, not just under
    /// `debug_assert`. A flush interleaved with the commit protocol could
    /// write a log-role (uncommitted) payload to disk.
    #[test]
    fn flush_all_mid_commit_is_rejected_at_runtime() {
        let mut c = small_cache();
        let mut t = c.init_txn();
        t.write(5, &[7u8; BLOCK_SIZE]);
        c.commit(&t).unwrap();
        // Reproduce the mid-protocol window (Head moved, Tail not) that a
        // concurrent flush would observe.
        let (head, tail) = c.head_tail();
        c.set_head_tail(head + 1, tail);
        match c.flush_all() {
            Err(TincaError::CommitInProgress { head: h, tail: t }) => {
                assert_eq!((h, t), (head + 1, tail));
            }
            other => panic!("expected CommitInProgress, got {other:?}"),
        }
        // Restoring the ring makes the same call succeed.
        c.set_head_tail(head, tail);
        c.flush_all().unwrap();
        assert_eq!(c.stats().writebacks, 1);
    }
}
