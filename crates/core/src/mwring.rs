//! Pool-side state of the **multi-writer lock-free commit path**
//! (DESIGN §16).
//!
//! In [`CommitMode::LockFreeRing`] a shard's writers no longer serialise
//! the whole commit behind the cache mutex. Instead each writer:
//!
//! 1. **reserves** a contiguous ring-slot window by CAS-advancing the
//!    shard's reservation cursor (after claiming its disk blocks in the
//!    conflict-admission set, so concurrent windows never touch the same
//!    block),
//! 2. runs a short **latched meta phase** under the cache lock — block
//!    allocation, log-role entry stores, ring-slot stores, the `RESERVED`
//!    descriptor — everything flushed, nothing fenced,
//! 3. **stages** its payloads concurrently, outside any lock, on a private
//!    clock (the overlap the mutex path could never express),
//! 4. **publishes** the window with one 8 B release-store flipping the
//!    descriptor state word to `STAGED`, and
//! 5. the thread completing the lowest outstanding window becomes the
//!    **sequencer** (combiner-style): one fence drains every published
//!    window, then one `Head` store — the round's commit point — retires
//!    the maximal contiguous `STAGED` prefix.
//!
//! The types here are DRAM bookkeeping only; the persistent side (window
//! descriptor table, ring slots, entries) lives in the layout/cache
//! modules, and recovery's resume-or-roll-back rule in `recovery.rs`.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::{Condvar, Mutex as StdMutex};

use crate::cache::MwStagedMeta;
use crate::txn::BlockBuf;
use crate::Txn;

/// How a pool serialises intra-shard commits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommitMode {
    /// The classic path: one mutex per shard, leader/follower group
    /// commit. Bit-for-bit identical to previous releases.
    #[default]
    MutexGroup,
    /// The multi-writer ring pipeline (module docs): lock-free window
    /// reservation, concurrent staging, sequencer-combined `Head`
    /// advance. Requires `WritePolicy::WriteBack` and the role switch.
    LockFreeRing,
}

/// One in-flight window in a shard's reservation order.
pub(crate) struct MwWindow {
    /// Window identity (monotone per shard; tags the descriptor word).
    pub(crate) ordinal: u64,
    /// First reserved ring sequence number.
    pub(crate) start: u64,
    /// Window length in slots.
    pub(crate) len: u64,
    /// Descriptor table slot backing the window.
    pub(crate) desc_slot: usize,
    /// The writer published its `STAGED` state word.
    pub(crate) staged: bool,
    /// Private-clock time at which the writer's staging finished.
    pub(crate) ready_ns: u64,
    /// Disk blocks claimed in the conflict-admission set.
    pub(crate) disk_blocks: Vec<u64>,
    /// Cache-side window bookkeeping, attached after the meta phase.
    pub(crate) meta: Option<MwStagedMeta>,
}

/// DRAM coordination state of one shard's multi-writer pipeline,
/// protected by [`MwShard::state`].
pub(crate) struct MwState {
    /// Outstanding windows in reservation (ring) order.
    pub(crate) windows: VecDeque<MwWindow>,
    /// Disk blocks owned by outstanding windows (conflict admission:
    /// a transaction touching any of these waits *before* reserving, so
    /// blocked writers never hold ring slots).
    pub(crate) in_flight: HashSet<u64>,
    /// Free descriptor-table slots.
    pub(crate) free_desc: Vec<usize>,
    /// Next window ordinal.
    pub(crate) next_ordinal: u64,
    /// A sequencer round is in flight (combiner flag).
    pub(crate) sequencing: bool,
    /// A spanning prepare owns the shard: new reservations wait.
    pub(crate) spanning_open: bool,
    /// Ordinals blocking commits are waiting on.
    pub(crate) waiting: HashSet<u64>,
    /// Retired ordinals from `waiting` (consumed by the waiter).
    pub(crate) retired: HashSet<u64>,
    /// Reservation-CAS retries not yet folded into the cache stats.
    pub(crate) pending_cas_retries: u64,
    /// Sequencer handoffs not yet folded into the cache stats.
    pub(crate) pending_handoffs: u64,
}

/// Per-shard multi-writer pipeline: lock-free reservation atomics plus the
/// mutex-protected DRAM bookkeeping. Constructed for every shard (cheap);
/// only used when the pool runs [`CommitMode::LockFreeRing`].
pub(crate) struct MwShard {
    /// Next unreserved ring sequence number (fetch-add/CAS reservation).
    pub(crate) cursor: AtomicU64,
    /// Reservation bound: `Tail + ring_cap`, republished by the sequencer
    /// after each round. A reservation `[cur, cur+n)` with
    /// `cur + n <= limit` can never collide with a live slot.
    pub(crate) ring_limit: AtomicU64,
    /// Descriptor-table credits (CAS-decremented before picking a slot).
    pub(crate) slots_avail: AtomicU64,
    pub(crate) state: StdMutex<MwState>,
    pub(crate) cv: Condvar,
}

impl MwShard {
    pub(crate) fn new(head: u64, ring_cap: u64) -> MwShard {
        MwShard {
            cursor: AtomicU64::new(head),
            ring_limit: AtomicU64::new(head + ring_cap),
            slots_avail: AtomicU64::new(crate::layout::MW_WINDOWS as u64),
            state: StdMutex::new(MwState {
                windows: VecDeque::new(),
                in_flight: HashSet::new(),
                free_desc: (0..crate::layout::MW_WINDOWS).collect(),
                next_ordinal: 0,
                sequencing: false,
                spanning_open: false,
                waiting: HashSet::new(),
                retired: HashSet::new(),
                pending_cas_retries: 0,
                pending_handoffs: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

/// A reserved multi-writer window, held by its writer between
/// [`TincaPool::mw_try_begin`](crate::TincaPool::mw_try_begin) and
/// [`TincaPool::mw_publish`](crate::TincaPool::mw_publish). The meta phase
/// has already run; the remaining steps — staging the payloads and
/// publishing the state word — run without any lock.
pub struct MwTicket {
    pub(crate) shard: usize,
    pub(crate) ordinal: u64,
    pub(crate) desc_slot: usize,
    /// `(nvm address, payload)` staging jobs, drained by `mw_stage`.
    pub(crate) stage_jobs: Vec<(usize, BlockBuf)>,
    /// Private-clock frontier: starts at the shard clock when the meta
    /// phase ended, advanced by the diverted staging charges.
    pub(crate) ready_ns: u64,
}

impl MwTicket {
    /// The shard this window commits on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The window's ordinal (shard-local identity).
    pub fn ordinal(&self) -> u64 {
        self.ordinal
    }
}

/// Outcome of a non-blocking multi-writer admission attempt.
pub enum MwAdmission {
    /// The window is reserved and its meta phase has run; stage and
    /// publish the returned ticket.
    Admitted(MwTicket),
    /// The transaction conflicts with an in-flight window, the shard is
    /// quiesced for a spanning prepare, or ring/descriptor capacity is
    /// exhausted. The transaction is handed back; retry after the shard
    /// makes progress (e.g. a sequencer round retires windows).
    Busy(Txn),
}
