//! Tinca configuration knobs.

/// Write-allocation policy of the cache. The paper uses write-back by
/// default (§4.6); write-through is provided as an extension for the
/// ablation benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Dirty blocks stay in NVM until evicted (paper default).
    WriteBack,
    /// Every committed block is also written to disk immediately.
    WriteThrough,
}

/// Configuration for a [`crate::TincaCache`].
#[derive(Clone, Debug)]
pub struct TincaConfig {
    /// Ring buffer size in bytes (paper default 1 MB; scaled runs use less).
    /// One committing transaction must fit: `ring_bytes / 8` block slots.
    pub ring_bytes: usize,
    /// Whether read misses populate the cache (§4.6: "Tinca caches for both
    /// write and read requests").
    pub cache_reads: bool,
    /// Write policy (paper default: write-back).
    pub write_policy: WritePolicy,
    /// Ablation knob: when `false`, the role switch is disabled and commit
    /// degrades to journal-style double writes (log copy + home copy), to
    /// quantify the paper's central optimisation. Default `true`.
    pub role_switch: bool,
    /// Optimisation beyond the paper: batch the ring-slot flushes and move
    /// `Head` once per transaction (one fence pair) instead of per block
    /// (the paper's steps 3–4). Crash-safe because `Head == Tail` until
    /// the single `Head` store, so recovery falls back to the full entry
    /// scan, which revokes every log-role entry regardless of the ring.
    /// Default `false` (the paper's exact protocol).
    pub batched_ring: bool,
    /// Maximum attempts for a disk I/O that fails with a *transient* error
    /// (`1` = no retry). Permanent errors (bad block, out of range) are
    /// never retried. Default 4: enough to absorb the default fault-plan
    /// burst length deterministically.
    pub max_io_retries: u32,
    /// Simulated backoff charged to the stack's clock between transient-
    /// error retries.
    pub retry_backoff_ns: u64,
    /// Write-behind destage: a low/high-watermark daemon that writes
    /// dirty LRU blocks back in address-sorted vectored batches on a
    /// background simulated-time lane, so evictions on the allocation
    /// path find clean victims instead of paying a synchronous disk
    /// write. Default `false` (the paper's passive free-block monitor:
    /// writebacks happen one block at a time on the eviction path).
    pub destage: bool,
    /// Destage trigger: the daemon fires when the *supply* (free NVM
    /// blocks + clean cached blocks, i.e. everything allocatable without
    /// disk I/O) drops below this percentage of the data blocks.
    pub destage_low_water_pct: u32,
    /// Destage target: one firing harvests enough dirty LRU victims to
    /// lift the supply back to this percentage (bounded by
    /// [`Self::destage_batch`]).
    pub destage_high_water_pct: u32,
    /// Maximum victims per vectored destage batch (also bounds the
    /// per-batch payload staging buffer: `destage_batch` × 4 KB).
    pub destage_batch: usize,
    /// Commit-path flush coalescing: dedupe `clflush` at cache-line
    /// granularity within one committing transaction — entry flushes are
    /// deferred to one pass over *distinct* lines (four 16 B entries
    /// share a 64 B line) and per-block fences collapse into one fence
    /// before the `Head` move. The commit point is provably not
    /// reordered: `Tail` persists only after a fence that drains every
    /// staged line. Only takes effect with `role_switch`. Default
    /// `false` (the paper's per-step persist ordering).
    pub coalesce_flushes: bool,
}

impl Default for TincaConfig {
    fn default() -> Self {
        Self {
            ring_bytes: 64 << 10,
            cache_reads: true,
            write_policy: WritePolicy::WriteBack,
            role_switch: true,
            batched_ring: false,
            max_io_retries: 4,
            retry_backoff_ns: 100_000,
            destage: false,
            destage_low_water_pct: 25,
            destage_high_water_pct: 50,
            destage_batch: 64,
            coalesce_flushes: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TincaConfig::default();
        assert!(c.cache_reads);
        assert_eq!(c.write_policy, WritePolicy::WriteBack);
        assert!(c.role_switch);
        assert!(!c.batched_ring, "default is the paper's exact protocol");
        assert!(c.max_io_retries >= 1, "at least one attempt");
        assert!(!c.destage, "default is the paper's synchronous writeback");
        assert!(!c.coalesce_flushes, "default is per-step persist ordering");
    }

    #[test]
    fn destage_watermarks_are_ordered() {
        let c = TincaConfig::default();
        assert!(c.destage_low_water_pct < c.destage_high_water_pct);
        assert!(c.destage_high_water_pct <= 100);
        assert!(c.destage_batch >= 1);
    }
}
