//! Tinca configuration knobs.

/// Write-allocation policy of the cache. The paper uses write-back by
/// default (§4.6); write-through is provided as an extension for the
/// ablation benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Dirty blocks stay in NVM until evicted (paper default).
    WriteBack,
    /// Every committed block is also written to disk immediately.
    WriteThrough,
}

/// Configuration for a [`crate::TincaCache`].
#[derive(Clone, Debug)]
pub struct TincaConfig {
    /// Ring buffer size in bytes (paper default 1 MB; scaled runs use less).
    /// One committing transaction must fit: `ring_bytes / 8` block slots.
    pub ring_bytes: usize,
    /// Whether read misses populate the cache (§4.6: "Tinca caches for both
    /// write and read requests").
    pub cache_reads: bool,
    /// Write policy (paper default: write-back).
    pub write_policy: WritePolicy,
    /// Ablation knob: when `false`, the role switch is disabled and commit
    /// degrades to journal-style double writes (log copy + home copy), to
    /// quantify the paper's central optimisation. Default `true`.
    pub role_switch: bool,
    /// Optimisation beyond the paper: batch the ring-slot flushes and move
    /// `Head` once per transaction (one fence pair) instead of per block
    /// (the paper's steps 3–4). Crash-safe because `Head == Tail` until
    /// the single `Head` store, so recovery falls back to the full entry
    /// scan, which revokes every log-role entry regardless of the ring.
    /// Default `false` (the paper's exact protocol).
    pub batched_ring: bool,
    /// Maximum attempts for a disk I/O that fails with a *transient* error
    /// (`1` = no retry). Permanent errors (bad block, out of range) are
    /// never retried. Default 4: enough to absorb the default fault-plan
    /// burst length deterministically.
    pub max_io_retries: u32,
    /// Simulated backoff charged to the stack's clock between transient-
    /// error retries.
    pub retry_backoff_ns: u64,
    /// Write-behind destage: a low/high-watermark daemon that writes
    /// dirty LRU blocks back in address-sorted vectored batches on a
    /// background simulated-time lane, so evictions on the allocation
    /// path find clean victims instead of paying a synchronous disk
    /// write. Default `false` (the paper's passive free-block monitor:
    /// writebacks happen one block at a time on the eviction path).
    pub destage: bool,
    /// Destage trigger: the daemon fires when the *supply* (free NVM
    /// blocks + clean cached blocks, i.e. everything allocatable without
    /// disk I/O) drops below this percentage of the data blocks.
    pub destage_low_water_pct: u32,
    /// Destage target: one firing harvests enough dirty LRU victims to
    /// lift the supply back to this percentage (bounded by
    /// [`Self::destage_batch`]).
    pub destage_high_water_pct: u32,
    /// Maximum victims per vectored destage batch (also bounds the
    /// per-batch payload staging buffer: `destage_batch` × 4 KB).
    pub destage_batch: usize,
    /// Commit-path flush coalescing: dedupe `clflush` at cache-line
    /// granularity within one committing transaction — entry flushes are
    /// deferred to one pass over *distinct* lines (four 16 B entries
    /// share a 64 B line) and per-block fences collapse into one fence
    /// before the `Head` move. The commit point is provably not
    /// reordered: `Tail` persists only after a fence that drains every
    /// staged line. Only takes effect with `role_switch`. Default
    /// `false` (the paper's per-step persist ordering).
    pub coalesce_flushes: bool,
}

impl TincaConfig {
    /// The destage daemon's low/high watermarks in **blocks** for a cache
    /// of `data_blocks` data blocks: the daemon fires when the supply
    /// (free + clean-cached blocks) drops below `low`, and one firing
    /// harvests toward `high`.
    ///
    /// Both thresholds use ceiling division, and `high` is clamped to at
    /// least `low + 1`. Truncating (flooring) both instead — as the
    /// daemon originally did — collapses tiny caches (`data_blocks < 4`)
    /// to `low == high` or `high == 0` targets: a daemon that either
    /// re-fires on every commit without making progress (thrash) or
    /// computes a zero-block harvest. With `high ≥ low + 1`, a completed
    /// harvest always leaves the supply at or above `low`, so the daemon
    /// cannot immediately re-fire. The firing condition `supply < low`
    /// with a ceiled `low` is exactly equivalent to the exact rational
    /// comparison `supply < data_blocks · pct / 100` for integer
    /// supplies, so large-cache trigger points are unchanged.
    pub fn destage_watermarks(&self, data_blocks: usize) -> (usize, usize) {
        let low = (data_blocks * self.destage_low_water_pct as usize).div_ceil(100);
        let high = (data_blocks * self.destage_high_water_pct as usize)
            .div_ceil(100)
            .max(low + 1)
            .min(data_blocks.max(low + 1));
        (low, high)
    }
}

impl Default for TincaConfig {
    fn default() -> Self {
        Self {
            ring_bytes: 64 << 10,
            cache_reads: true,
            write_policy: WritePolicy::WriteBack,
            role_switch: true,
            batched_ring: false,
            max_io_retries: 4,
            retry_backoff_ns: 100_000,
            destage: false,
            destage_low_water_pct: 25,
            destage_high_water_pct: 50,
            destage_batch: 64,
            coalesce_flushes: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TincaConfig::default();
        assert!(c.cache_reads);
        assert_eq!(c.write_policy, WritePolicy::WriteBack);
        assert!(c.role_switch);
        assert!(!c.batched_ring, "default is the paper's exact protocol");
        assert!(c.max_io_retries >= 1, "at least one attempt");
        assert!(!c.destage, "default is the paper's synchronous writeback");
        assert!(!c.coalesce_flushes, "default is per-step persist ordering");
    }

    #[test]
    fn destage_watermarks_are_ordered() {
        let c = TincaConfig::default();
        assert!(c.destage_low_water_pct < c.destage_high_water_pct);
        assert!(c.destage_high_water_pct <= 100);
        assert!(c.destage_batch >= 1);
    }

    #[test]
    fn tiny_cache_watermarks_never_collapse() {
        // Regression for the integer-truncation bug: with the default
        // 25/50 split, flooring gave data_blocks = 3 the targets
        // low = 0 (via the exact comparison) and high = ⌊1.5⌋ = 1, and
        // data_blocks = 1 the target high = ⌊0.5⌋ = 0. Every boundary
        // size must produce strictly ordered, progress-making targets.
        let c = TincaConfig::default();
        for db in 1..=4usize {
            let (low, high) = c.destage_watermarks(db);
            assert!(low < high, "data_blocks={db}: low={low} high={high}");
            // A completed harvest (supply == high) must sit at or above
            // the firing threshold, or the daemon thrashes.
            assert!(high > low, "data_blocks={db} would thrash");
        }
        // data_blocks = 3: ceil(1.5) = 2, not the truncated 1.
        assert_eq!(c.destage_watermarks(3), (1, 2));
        // data_blocks = 1: high is forced a block above low.
        assert_eq!(c.destage_watermarks(1), (1, 2));
    }

    #[test]
    fn ceiled_trigger_matches_exact_rational_comparison() {
        // The firing condition `supply < low_blocks` (ceiled) must be
        // equivalent to the pre-fix exact cross-multiplied comparison
        // `supply * 100 < data_blocks * pct` for every integer supply,
        // so full-scale trigger points are bit-for-bit unchanged.
        let c = TincaConfig::default();
        for db in 1..=257usize {
            let (low, _) = c.destage_watermarks(db);
            for supply in 0..=db {
                let exact = supply * 100 < db * c.destage_low_water_pct as usize;
                assert_eq!(
                    supply < low,
                    exact,
                    "data_blocks={db} supply={supply} low={low}"
                );
            }
        }
    }

    #[test]
    fn large_cache_watermarks_follow_the_percentages() {
        let c = TincaConfig::default();
        let (low, high) = c.destage_watermarks(1000);
        assert_eq!((low, high), (250, 500));
        let (low, high) = c.destage_watermarks(1001);
        // Ceiling, consistently on both thresholds.
        assert_eq!((low, high), (251, 501));
    }
}
