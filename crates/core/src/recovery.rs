//! Crash recovery (§4.5).
//!
//! `Head`/`Tail` and the per-entry role bits drive recovery:
//!
//! * `Head == Tail` — either no transaction was committing, or the crash
//!   hit before the first `Head` move. A scan of all entries finds any
//!   *log-role* block and revokes it.
//! * `Head != Tail` — the crash hit mid-commit. Every block recorded in
//!   the ring window `[Tail, Head)` is revoked — including blocks whose
//!   role was already switched to *buffer* by the crash-interrupted
//!   role-switch pass (the ring is what identifies them; their `prev`
//!   fields are still intact because previous versions are only reclaimed
//!   after `Tail` moves).
//!
//! We additionally always run the full-entry scan: the entry update of the
//! block being committed persists *before* its ring slot, so the last
//! in-flight block can be log-role yet missing from the ring window.
//!
//! Recovery is **idempotent**: revoked entries carry the `prev == cur`
//! marker (see [`crate::CacheEntry::revoked`]), so a crash during recovery
//! followed by a second recovery pass cannot revoke twice.
//!
//! ## Spanning transactions
//!
//! A multi-shard pool passes each shard a [`SpanningIntent`] directive
//! derived from the pool's persistent intent record. Ring slots carry an
//! intent tag in their top byte ([`crate::layout::split_slot`]); when the
//! directive is `Resolved { id }`, window slots tagged with `id` are
//! **rolled forward** (kept — their role switch is already durable,
//! because the resolve store persists strictly after every fragment's
//! fences) instead of revoked. Every other tagged or untagged window slot
//! rolls back exactly as before. Both directions are idempotent: rolling
//! forward only skips revocation and lets the ring close, and a repeated
//! recovery with the same directive reaches the same state.

use std::collections::HashMap;

use blockdev::BLOCK_SIZE;
use nvmsim::Nvm;

use crate::cache::DynDisk;
use crate::entry::Role;
use crate::layout::{
    intent_tag, mw_desc_addr, mw_split_state, split_slot, Layout, DATA_BLOCKS_OFF, ENTRY_COUNT_OFF,
    HEAD_OFF, INTENT_PREPARED, INTENT_RESOLVED, MAGIC, MAGIC_OFF, MW_DEAD_TAG, MW_FLAG_SPANNING,
    MW_STAGED, MW_WINDOWS, RING_CAP_OFF, TAIL_OFF,
};
use crate::{TincaCache, TincaConfig, TincaError};

/// Directive a recovering shard receives about the pool's spanning-intent
/// record (always [`None`](SpanningIntent::None) for a standalone cache or
/// a single-shard pool — roll every in-flight fragment back).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpanningIntent {
    /// No spanning transaction was in flight (or its fragments must roll
    /// back because the intent never resolved).
    #[default]
    None,
    /// Intent `id` was published but not resolved: its fragments roll
    /// back. Equivalent to `None` for the ring scan; retained so the pool
    /// can report and retire the record.
    Prepared {
        /// The unresolved intent's sequence id.
        id: u64,
    },
    /// Intent `id` resolved before the crash: every fragment tagged with
    /// it is durable and rolls forward.
    Resolved {
        /// The resolved intent's sequence id.
        id: u64,
    },
}

impl SpanningIntent {
    /// Decodes a persistent intent-state word (`INTENT_STATE_OFF` in the
    /// layout module). Unknown state bytes decode as `Prepared` — the
    /// conservative direction (roll back).
    pub fn decode(word: u64) -> SpanningIntent {
        let id = word >> 8;
        match word & 0xff {
            0 => SpanningIntent::None,
            INTENT_RESOLVED => SpanningIntent::Resolved { id },
            _ => SpanningIntent::Prepared { id },
        }
    }

    /// Encodes back into the persistent state word.
    pub fn encode(self) -> u64 {
        match self {
            SpanningIntent::None => 0,
            SpanningIntent::Prepared { id } => (id << 8) | INTENT_PREPARED,
            SpanningIntent::Resolved { id } => (id << 8) | INTENT_RESOLVED,
        }
    }
}

impl TincaCache {
    /// Opens an existing Tinca NVM region after a crash or clean shutdown:
    /// validates the header, revokes any incomplete transaction, and
    /// rebuilds the DRAM index/LRU/free monitors (§4.5, §4.6).
    pub fn recover(nvm: Nvm, disk: DynDisk, cfg: TincaConfig) -> Result<Self, TincaError> {
        Self::recover_with_intent(nvm, disk, cfg, SpanningIntent::None)
    }

    /// [`recover`](Self::recover) with a pool-supplied spanning-intent
    /// directive; see the module docs.
    pub fn recover_with_intent(
        nvm: Nvm,
        disk: DynDisk,
        cfg: TincaConfig,
        intent: SpanningIntent,
    ) -> Result<Self, TincaError> {
        let magic = nvm.read_u64(MAGIC_OFF);
        if magic != MAGIC {
            return Err(TincaError::BadMagic { found: magic });
        }
        let layout = Layout::compute(nvm.capacity(), cfg.ring_bytes);
        // Geometry must agree field-by-field before any derived address is
        // trusted: recovering with a different ring_bytes or capacity would
        // misaddress every entry and data block.
        let checks = [
            ("ring_cap", nvm.read_u64(RING_CAP_OFF), layout.ring_cap),
            (
                "entry_count",
                nvm.read_u64(ENTRY_COUNT_OFF),
                layout.entry_count as u64,
            ),
            (
                "data_blocks",
                nvm.read_u64(DATA_BLOCKS_OFF),
                layout.data_blocks as u64,
            ),
        ];
        for (field, found, expected) in checks {
            if found != expected {
                return Err(TincaError::GeometryMismatch {
                    field,
                    found,
                    expected,
                });
            }
        }
        let head = nvm.read_u64(HEAD_OFF);
        let tail = nvm.read_u64(TAIL_OFF);
        let mut cache = Self::recovery_parts(nvm, disk, cfg, layout, head, tail);
        cache.run_recovery(intent);
        Ok(cache)
    }

    fn run_recovery(&mut self, intent: SpanningIntent) {
        let _t = telemetry::span(telemetry::phase::RECOVERY);
        let (head, tail) = self.head_tail();
        let layout = *self.layout();

        // Pass 1: full entry scan — map disk blocks to entries, collect
        // log-role leftovers.
        let mut by_disk: HashMap<u64, u32> = HashMap::new();
        let mut log_entries: Vec<u32> = Vec::new();
        for idx in 0..layout.entry_count {
            let e = self.read_entry(idx);
            if e.valid {
                by_disk.insert(e.disk_blk, idx);
                if e.role == Role::Log {
                    log_entries.push(idx);
                }
            }
        }

        // Multi-writer window descriptors (DESIGN §16): scan the table.
        // Retired windows (end at or before `Tail`) are stale retire
        // stores lost to the crash — inert, zeroed below. Published
        // (`STAGED`) non-spanning windows overlapping `[Tail, Head)` are
        // **durably committed**: `Head` only persists after the
        // sequencer's fence drained every covering window's state word,
        // payloads, entries and ring slots — so their slots roll
        // *forward* (the crash can only have interrupted the role
        // switch). Windows `Head` never passed roll back via the ordinary
        // full-entry scan.
        let mut mw_desc: Vec<(usize, u64, u64, u64, u64)> = Vec::new();
        for slot in 0..MW_WINDOWS {
            let addr = mw_desc_addr(slot);
            let word0 = self.nvm().read_u64(addr);
            if word0 == 0 {
                continue;
            }
            let (_ordinal, state) = mw_split_state(word0);
            let start = self.nvm().read_u64(addr + 8);
            let len = self.nvm().read_u64(addr + 16);
            let flags = self.nvm().read_u64(addr + 24);
            mw_desc.push((slot, state, start, len, flags));
        }
        // Maximal contiguous STAGED coverage from Tail. Windows are
        // disjoint and Head/Tail only ever store window boundaries, so
        // coverage walks whole windows; the durability invariant above
        // guarantees it reaches Head whenever the window set is nonempty.
        let mut mw_cover = tail;
        if head != tail {
            let mut staged: Vec<(u64, u64)> = mw_desc
                .iter()
                .filter(|&&(_, state, start, len, flags)| {
                    state == MW_STAGED
                        && flags & MW_FLAG_SPANNING == 0
                        && start >= tail
                        && start < head
                        && start + len > start
                })
                .map(|&(_, _, start, len, _)| (start, len))
                .collect();
            staged.sort_unstable();
            for (start, len) in staged {
                if start == mw_cover && mw_cover < head {
                    mw_cover = start + len;
                    self.stats_mut().mw_windows_resumed += 1;
                } else {
                    break;
                }
            }
        }
        for &(_, _, start, _, flags) in &mw_desc {
            if start >= head && flags & MW_FLAG_SPANNING == 0 {
                // A reserved/staged window Head never advanced past: its
                // log-role entries fall to the full-entry revoke below.
                self.stats_mut().mw_windows_rolled_back += 1;
            }
        }

        // Pass 2: judge everything the ring window names. Slots covered
        // by the multi-writer STAGED prefix roll forward (resuming the
        // interrupted role switch); slots tagged with a *resolved*
        // spanning intent roll forward (their entries are already durable
        // buffer-role — the resolve store persisted strictly after every
        // fragment's fences); everything else rolls back.
        let forward_tag = match intent {
            SpanningIntent::Resolved { id } => Some(intent_tag(id)),
            _ => None,
        };
        if head != tail {
            for seq in tail..head {
                let raw = self.nvm().read_u64(layout.ring_slot_addr(seq));
                let (disk_blk, tag) = split_slot(raw);
                if tag == MW_DEAD_TAG {
                    // Dead slot of a failed multi-writer window: it never
                    // named a block, and its stale value must not be
                    // judged (the bits left from the ring's previous lap
                    // could collide with a live block).
                    continue;
                }
                if seq < mw_cover && tag == 0 {
                    if let Some(&idx) = by_disk.get(&disk_blk) {
                        let e = self.read_entry(idx);
                        if e.valid && e.role == Role::Log {
                            // Roll forward: complete the role switch the
                            // crash interrupted. Idempotent — a second
                            // recovery finds the entry buffer-role.
                            self.write_entry(idx, e.switched_to_buffer());
                        }
                    }
                    continue;
                }
                if tag != 0 && forward_tag == Some(tag) {
                    self.stats_mut().spanning_rolled_forward += 1;
                    continue;
                }
                let Some(&idx) = by_disk.get(&disk_blk) else {
                    continue;
                };
                let e = self.read_entry(idx);
                if e.valid && !e.is_revoked_marker() {
                    self.revoke_entry(idx, e);
                    if tag != 0 {
                        self.stats_mut().spanning_rolled_back += 1;
                    }
                }
            }
        }

        // Pass 3: revoke in-flight log blocks whose ring slot never
        // persisted.
        for idx in log_entries {
            let e = self.read_entry(idx);
            if e.valid && e.role == Role::Log {
                self.revoke_entry(idx, e);
            }
        }

        // Close the ring: Tail := Head.
        self.set_head_tail(head, head);
        self.nvm().atomic_write_u64(TAIL_OFF, head);
        self.nvm().persist(TAIL_OFF, 8);
        self.nvm().note_commit(TAIL_OFF, 8);

        // Retire the judged window's intent tags (wraparound guard,
        // DESIGN §14): rolled-forward slots keep their data but lose the
        // tag, restoring the invariant that no closed-window slot is
        // tagged. A no-op (no events) when the window held no tags —
        // i.e. on every single-shard recovery.
        self.scrub_slot_tags(tail, head);

        // Retire every multi-writer descriptor — strictly *after* the ring
        // close: a crash in between leaves stale descriptors whose windows
        // end at or before the (now equal) Head/Tail, which a re-run
        // ignores. Zeroing first would instead let a re-run revoke windows
        // this pass already rolled forward.
        if !mw_desc.is_empty() {
            for &(slot, ..) in &mw_desc {
                self.mw_retire_desc(slot);
            }
            self.nvm().sfence();
        }

        // Pass 4: rebuild the DRAM structures from the surviving entries
        // (§4.6: "they can be reconstructed on the startup of system").
        let mut cur_used = vec![false; layout.data_blocks as usize];
        for idx in 0..layout.entry_count {
            let e = self.read_entry(idx);
            if e.valid {
                if e.modified {
                    // The incrementally-maintained dirty set restarts
                    // from the surviving entries (revocation above
                    // already excluded in-flight ones).
                    self.dram_mark_dirty(idx);
                }
                assert!(
                    self.index_get(e.disk_blk).is_none(),
                    "two valid entries map disk block {}",
                    e.disk_blk
                );
                assert!(
                    !cur_used[e.cur as usize],
                    "two valid entries reference NVM block {}",
                    e.cur
                );
                cur_used[e.cur as usize] = true;
                self.dram_insert(e.disk_blk, idx);
            } else if !self.free_entries_mut().is_free(idx) {
                self.free_entries_mut().release(idx);
            }
        }
        for b in 0..layout.data_blocks {
            if !cur_used[b as usize] && !self.free_blocks_mut().is_free(b) {
                self.free_blocks_mut().release(b);
            }
        }
        self.stats_mut().recoveries += 1;
    }

    /// Convenience used by tests and harnesses: the number of 4 KB blocks
    /// the data area holds (capacity knob for workload sizing).
    pub fn data_block_count(&self) -> u32 {
        self.layout().data_blocks
    }

    /// Reads `disk_blk` *without* populating the cache — used by recovery
    /// verifiers to compare post-crash contents against an oracle. No
    /// retry loop: verifiers run with fault injection disabled, so an
    /// error here is a real harness bug and is surfaced as-is.
    pub fn read_nocache(&self, disk_blk: u64, buf: &mut [u8]) -> Result<(), TincaError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        if let Some(data) = self.peek(disk_blk) {
            buf.copy_from_slice(&data);
            Ok(())
        } else {
            self.disk().read_block(disk_blk, buf).map_err(Into::into)
        }
    }
}
