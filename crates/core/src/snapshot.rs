//! Unified, serializable view of every statistics domain in the stack.
//!
//! The cache ([`CacheStats`]), NVM device ([`NvmStats`]), backing disk
//! ([`DiskStats`]) and pool health ([`Health`]) each keep their own
//! counters; figure harnesses and telemetry exporters want them as one
//! coherent object stamped with the simulated time they were taken at.
//! [`StatsSnapshot`] is that object, with a hand-rolled JSON rendering
//! (via [`telemetry::Json`]) so benches can emit machine-readable results
//! without a serialization dependency.

use blockdev::DiskStats;
use nvmsim::NvmStats;
use telemetry::Json;

use crate::cache::Health;
use crate::{CacheStats, TincaCache, TincaPool};

/// One coherent sample of every counter domain, stamped with the simulated
/// clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Simulated nanoseconds at sampling time.
    pub sim_ns: u64,
    /// Cache-level counters (pool-wide sum when taken from a pool).
    pub cache: CacheStats,
    /// NVM device counters (summed over shard devices for a pool).
    pub nvm: NvmStats,
    /// Backing-disk counters.
    pub disk: DiskStats,
    /// Fault condition at sampling time.
    pub health: Health,
}

impl StatsSnapshot {
    /// Samples a single cache.
    pub fn collect(cache: &TincaCache) -> StatsSnapshot {
        StatsSnapshot {
            sim_ns: cache.nvm().clock().now_ns(),
            cache: cache.stats(),
            nvm: cache.nvm().stats(),
            disk: cache.disk().stats(),
            health: cache.health(),
        }
    }

    /// Samples a pool: cache and NVM counters are summed over shards, the
    /// disk is shared (read once), and `sim_ns` is shard 0's clock.
    pub fn collect_pool(pool: &TincaPool) -> StatsSnapshot {
        let mut nvm = NvmStats::default();
        for s in 0..pool.shard_count() {
            nvm = nvm.merge(&pool.with_shard(s, |c| c.nvm().stats()));
        }
        let (sim_ns, disk) = pool.with_shard(0, |c| (c.nvm().clock().now_ns(), c.disk().stats()));
        StatsSnapshot {
            sim_ns,
            cache: pool.stats(),
            nvm,
            disk,
            health: pool.health(),
        }
    }

    /// Per-domain difference `self - earlier` (all counters are monotone).
    /// Health is *not* differenced: the later sample's condition stands.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            sim_ns: self.sim_ns - earlier.sim_ns,
            cache: self.cache.delta(&earlier.cache),
            nvm: self.nvm.delta(&earlier.nvm),
            disk: self.disk.delta(&earlier.disk),
            health: self.health,
        }
    }

    /// JSON value with one object per domain, field names matching the
    /// Rust struct fields.
    pub fn to_json(&self) -> Json {
        let c = &self.cache;
        let n = &self.nvm;
        let d = &self.disk;
        let (status, quarantined) = match self.health {
            Health::Healthy => ("healthy", 0u64),
            Health::Degraded { quarantined } => ("degraded", quarantined as u64),
            Health::ReadOnly => ("read_only", 0),
        };
        Json::obj(vec![
            ("sim_ns", self.sim_ns.into()),
            (
                "cache",
                Json::obj(vec![
                    ("read_hits", c.read_hits.into()),
                    ("read_misses", c.read_misses.into()),
                    ("write_hits", c.write_hits.into()),
                    ("write_misses", c.write_misses.into()),
                    ("commits", c.commits.into()),
                    ("committed_blocks", c.committed_blocks.into()),
                    ("user_aborts", c.user_aborts.into()),
                    ("failed_commits", c.failed_commits.into()),
                    ("group_commits", c.group_commits.into()),
                    ("batched_txns", c.batched_txns.into()),
                    ("coalesced_writes", c.coalesced_writes.into()),
                    ("evictions", c.evictions.into()),
                    ("eviction_errors", c.eviction_errors.into()),
                    ("writebacks", c.writebacks.into()),
                    ("coalesced_flushes", c.coalesced_flushes.into()),
                    ("destage_batches", c.destage_batches.into()),
                    ("destage_blocks", c.destage_blocks.into()),
                    ("destage_stalls", c.destage_stalls.into()),
                    ("revoked_blocks", c.revoked_blocks.into()),
                    ("recoveries", c.recoveries.into()),
                    ("io_retries", c.io_retries.into()),
                    (
                        "transient_errors_absorbed",
                        c.transient_errors_absorbed.into(),
                    ),
                    ("permanent_io_errors", c.permanent_io_errors.into()),
                    ("quarantined_blocks", c.quarantined_blocks.into()),
                    ("spanning_commits", c.spanning_commits.into()),
                    ("spanning_aborts", c.spanning_aborts.into()),
                    ("spanning_fragments", c.spanning_fragments.into()),
                    ("spanning_rolled_back", c.spanning_rolled_back.into()),
                    ("spanning_rolled_forward", c.spanning_rolled_forward.into()),
                    ("reservation_cas_retries", c.reservation_cas_retries.into()),
                    ("sequencer_handoffs", c.sequencer_handoffs.into()),
                    ("mw_windows_resumed", c.mw_windows_resumed.into()),
                    ("mw_windows_rolled_back", c.mw_windows_rolled_back.into()),
                ]),
            ),
            (
                "nvm",
                Json::obj(vec![
                    ("clflush", n.clflush.into()),
                    ("sfence", n.sfence.into()),
                    ("atomic_stores", n.atomic_stores.into()),
                    ("lines_written", n.lines_written.into()),
                    ("lines_read", n.lines_read.into()),
                    ("bytes_stored", n.bytes_stored.into()),
                    ("bytes_read", n.bytes_read.into()),
                ]),
            ),
            (
                "disk",
                Json::obj(vec![
                    ("reads", d.reads.into()),
                    ("writes", d.writes.into()),
                    ("busy_ns", d.busy_ns.into()),
                    ("read_errors", d.read_errors.into()),
                    ("write_errors", d.write_errors.into()),
                ]),
            ),
            (
                "health",
                Json::obj(vec![
                    ("status", status.into()),
                    ("quarantined", quarantined.into()),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TincaConfig;
    use blockdev::{DiskKind, SimDisk};
    use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};

    fn cache() -> TincaCache {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 14, clock);
        TincaCache::format(
            nvm,
            disk,
            TincaConfig {
                ring_bytes: 4096,
                ..TincaConfig::default()
            },
        )
    }

    #[test]
    fn collect_stamps_clock_and_domains() {
        let mut c = cache();
        let mut t = c.init_txn();
        t.write(3, &[7u8; blockdev::BLOCK_SIZE]);
        c.commit(&t).unwrap();
        let s = StatsSnapshot::collect(&c);
        assert_eq!(s.cache.commits, 1);
        assert!(s.nvm.clflush > 0, "commit must flush lines");
        assert_eq!(s.sim_ns, c.nvm().clock().now_ns());
        assert_eq!(s.health, Health::Healthy);
    }

    #[test]
    fn delta_isolates_an_interval() {
        let mut c = cache();
        let mut t = c.init_txn();
        t.write(1, &[1u8; blockdev::BLOCK_SIZE]);
        c.commit(&t).unwrap();
        let mid = StatsSnapshot::collect(&c);
        let mut t = c.init_txn();
        t.write(2, &[2u8; blockdev::BLOCK_SIZE]);
        c.commit(&t).unwrap();
        let end = StatsSnapshot::collect(&c);
        let d = end.delta(&mid);
        assert_eq!(d.cache.commits, 1);
        assert!(d.sim_ns > 0);
    }

    #[test]
    fn json_round_trips_field_names() {
        let c = cache();
        let rendered = StatsSnapshot::collect(&c).to_json().render();
        for key in ["sim_ns", "\"cache\"", "\"nvm\"", "\"disk\"", "\"health\""] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
        assert!(rendered.contains("\"status\":\"healthy\""));
    }
}
