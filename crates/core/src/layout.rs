//! NVM space layout (Fig. 5 of the paper): header, ring buffer,
//! cache-entry array, data blocks.

use blockdev::BLOCK_SIZE;

/// Magic number identifying a formatted Tinca NVM region ("TINCAv01").
pub const MAGIC: u64 = 0x5449_4e43_4176_3031;

/// Header field offsets (bytes). `Head` and `Tail` live on their own cache
/// lines so each can be flushed independently with a single `clflush`.
pub const MAGIC_OFF: usize = 0;
pub const RING_CAP_OFF: usize = 8;
pub const ENTRY_COUNT_OFF: usize = 16;
pub const DATA_BLOCKS_OFF: usize = 24;
pub const HEAD_OFF: usize = 64;
pub const TAIL_OFF: usize = 128;

/// Byte offset of the pool's **spanning-intent record**: one cache line in
/// the header block, used only on shard 0's device of a multi-shard pool.
/// Formatting persists bytes `0..INTENT_OFF` and never touches this line,
/// so an all-zero line means "no spanning transaction in flight" on both
/// fresh and legacy regions.
pub const INTENT_OFF: usize = 192;
/// Intent state word: `0` when no intent exists, otherwise
/// `(intent_id << 8) | state` with `state` one of
/// [`INTENT_PREPARED`]/[`INTENT_RESOLVED`]. Published, resolved, and
/// retired with single 8 B atomic stores.
pub const INTENT_STATE_OFF: usize = INTENT_OFF;
/// Participant shard bitmap (bit `s` set when shard `s` holds a fragment;
/// shards ≥ 64 saturate onto bit 63). Advisory — recovery trusts the
/// per-slot intent tags, not this summary.
pub const INTENT_SHARDS_OFF: usize = INTENT_OFF + 8;
/// Intent state: every fragment is being prepared; none is visible yet.
/// Recovery must roll tagged fragments **back**.
pub const INTENT_PREPARED: u64 = 1;
/// Intent state: every fragment is durable; the transaction is committed.
/// Recovery must roll tagged fragments **forward**.
pub const INTENT_RESOLVED: u64 = 2;

/// Bits of a ring slot holding the disk block number. Disk block numbers
/// are bounded by [`crate::entry::CacheEntry`]'s 56-bit field, so the top
/// byte of the 8 B slot is free to carry a spanning-intent tag.
pub const SLOT_BLK_MASK: u64 = (1 << 56) - 1;
/// Shift of the intent tag within a ring slot.
pub const SLOT_TAG_SHIFT: u32 = 56;

/// Encodes a ring slot: the disk block number plus an intent tag in the
/// top byte. Tag `0` (ordinary single-shard commit) stores exactly
/// `disk_blk` — bit-for-bit what the untagged protocol stored.
pub fn slot_value(disk_blk: u64, tag: u8) -> u64 {
    debug_assert!(disk_blk <= SLOT_BLK_MASK);
    disk_blk | (tag as u64) << SLOT_TAG_SHIFT
}

/// Splits a raw ring-slot value into `(disk_blk, tag)`.
pub fn split_slot(raw: u64) -> (u64, u8) {
    (raw & SLOT_BLK_MASK, (raw >> SLOT_TAG_SHIFT) as u8)
}

/// The slot tag identifying fragments of spanning intent `id`. The high
/// bit is always set so a tag is never `0`; the id's low 7 bits
/// disambiguate the (single) in-flight intent from stale tags of earlier
/// intents that may still sit in committed ring slots.
pub fn intent_tag(intent_id: u64) -> u8 {
    0x80 | (intent_id & 0x7f) as u8
}

/// Byte offset of the **multi-writer window descriptor table**: one cache
/// line per descriptor, used only when the pool runs the lock-free commit
/// path ([`crate::CommitMode::LockFreeRing`]). Formatting never touches
/// this region, so an all-zero table means "no window in flight" on fresh,
/// legacy, and mutex-mode regions alike.
pub const MW_DESC_OFF: usize = 256;
/// Number of window descriptors (bounds in-flight windows per shard).
pub const MW_WINDOWS: usize = 32;
/// Bytes per descriptor — a full cache line, so concurrent writers never
/// share a line when staging or publishing their own descriptor.
pub const MW_DESC_BYTES: usize = 64;

/// Descriptor word 0 (the *state word*, published with one 8 B atomic
/// store): `(window ordinal << 8) | state`. An all-zero word is
/// [`MW_FREE`].
pub const MW_FREE: u64 = 0;
/// State: the window's ring slots are reserved and its entries are being
/// staged; nothing in it is visible to recovery yet.
pub const MW_RESERVED: u64 = 1;
/// State: the writer finished staging and flushing; the window is durable
/// once the sequencer's fence drains it, and `Head` may advance past it.
pub const MW_STAGED: u64 = 2;

/// Descriptor flag (word 3): the window is a spanning-transaction fragment
/// prepare — recovery judges its tagged ring slots by the pool's intent
/// directive instead of the multi-writer roll-forward rule.
pub const MW_FLAG_SPANNING: u64 = 1;

/// Slot tag marking a **dead** ring slot inside a multi-writer window that
/// failed mid-staging: the slot was reserved but never received a real
/// block number, so roll-forward must skip it (a stale value left from the
/// ring's previous lap could otherwise name another in-flight window's
/// block). The high bit is clear, so a dead tag can never collide with an
/// [`intent_tag`]; it is nonzero, so scrubbing rewrites it like any tag.
pub const MW_DEAD_TAG: u8 = 0x7f;

/// Byte address of multi-writer descriptor `slot` (`0..MW_WINDOWS`).
pub fn mw_desc_addr(slot: usize) -> usize {
    debug_assert!(slot < MW_WINDOWS);
    MW_DESC_OFF + slot * MW_DESC_BYTES
}

/// Encodes a descriptor state word from a window ordinal and state.
pub fn mw_state_word(ordinal: u64, state: u64) -> u64 {
    debug_assert!(state <= MW_STAGED);
    (ordinal << 8) | state
}

/// Splits a descriptor state word into `(ordinal, state)`.
pub fn mw_split_state(word: u64) -> (u64, u64) {
    (word >> 8, word & 0xff)
}

/// Size reserved for the header.
pub const HEADER_BYTES: usize = BLOCK_SIZE;

// The intent record must sit inside the persisted header — cache-line
// aligned, after the format prefix (`Tail` is its last word), before the
// ring — so the existing metadata ranges `0..data_off` cover it.
const _: () = assert!(INTENT_OFF.is_multiple_of(64));
const _: () = assert!(INTENT_OFF >= TAIL_OFF + 8);
const _: () = assert!(INTENT_SHARDS_OFF + 8 <= HEADER_BYTES);

// The descriptor table must sit inside the header — cache-line aligned,
// after the intent record's line, one line per descriptor — so the
// existing metadata ranges `0..data_off` cover it and formatting (which
// persists only `0..INTENT_OFF` plus the magic) leaves it all-zero.
const _: () = assert!(MW_DESC_OFF.is_multiple_of(64));
const _: () = assert!(MW_DESC_OFF >= INTENT_SHARDS_OFF + 8);
const _: () = assert!(MW_DESC_BYTES == 64);
const _: () = assert!(MW_DESC_OFF + MW_WINDOWS * MW_DESC_BYTES <= HEADER_BYTES);

/// Size of one cache entry in bytes (§4.2: 16 B, atomically writable with
/// `LOCK cmpxchg16b`).
pub const ENTRY_BYTES: usize = 16;

/// Size of one ring-buffer slot (an on-disk block number, 8 B).
pub const RING_SLOT_BYTES: usize = 8;

/// Computed partitioning of the NVM region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Byte offset of the ring buffer.
    pub ring_off: usize,
    /// Ring capacity in slots (block numbers).
    pub ring_cap: u64,
    /// Byte offset of the cache-entry array.
    pub entries_off: usize,
    /// Number of cache-entry slots (== number of data blocks).
    pub entry_count: u32,
    /// Byte offset of the data-block area (4 KB aligned).
    pub data_off: usize,
    /// Number of 4 KB data blocks.
    pub data_blocks: u32,
}

impl Layout {
    /// Partitions an NVM region of `capacity` bytes with a ring buffer of
    /// (at least) `ring_bytes`. The paper's default ring is 1 MB; the
    /// scaled-down experiments use 64 KB.
    pub fn compute(capacity: usize, ring_bytes: usize) -> Layout {
        let ring_bytes = ring_bytes.next_multiple_of(BLOCK_SIZE);
        let ring_cap = (ring_bytes / RING_SLOT_BYTES) as u64;
        let fixed = HEADER_BYTES + ring_bytes;
        assert!(
            capacity > fixed + BLOCK_SIZE,
            "NVM region too small: {capacity} bytes"
        );
        let usable = capacity - fixed;
        // Each data block costs 4 KB of data plus 16 B of entry; round the
        // entry area up to a block so the data area stays 4 KB aligned.
        let mut data_blocks = usable / (BLOCK_SIZE + ENTRY_BYTES);
        loop {
            let entry_area = (data_blocks * ENTRY_BYTES).next_multiple_of(BLOCK_SIZE);
            if fixed + entry_area + data_blocks * BLOCK_SIZE <= capacity {
                let entries_off = fixed;
                let data_off = fixed + entry_area;
                return Layout {
                    ring_off: HEADER_BYTES,
                    ring_cap,
                    entries_off,
                    entry_count: data_blocks as u32,
                    data_off,
                    data_blocks: data_blocks as u32,
                };
            }
            data_blocks -= 1;
        }
    }

    /// Byte address of ring slot for sequence number `seq`.
    pub fn ring_slot_addr(&self, seq: u64) -> usize {
        self.ring_off + (seq % self.ring_cap) as usize * RING_SLOT_BYTES
    }

    /// Byte address of cache entry `idx`.
    pub fn entry_addr(&self, idx: u32) -> usize {
        debug_assert!(idx < self.entry_count);
        self.entries_off + idx as usize * ENTRY_BYTES
    }

    /// Byte address of NVM data block `blk`.
    pub fn data_addr(&self, blk: u32) -> usize {
        debug_assert!(
            blk < self.data_blocks,
            "NVM block {blk} >= {}",
            self.data_blocks
        );
        self.data_off + blk as usize * BLOCK_SIZE
    }

    /// Total bytes consumed (must be ≤ device capacity).
    pub fn total_bytes(&self) -> usize {
        self.data_off + self.data_blocks as usize * BLOCK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_fits_capacity() {
        for cap in [1 << 20, 16 << 20, 128 << 20] {
            let l = Layout::compute(cap, 64 << 10);
            assert!(l.total_bytes() <= cap, "{l:?} exceeds {cap}");
            assert!(l.data_blocks > 0);
            assert_eq!(l.data_off % BLOCK_SIZE, 0);
            assert_eq!(l.entries_off % BLOCK_SIZE, 0);
        }
    }

    #[test]
    fn entry_overhead_is_small() {
        // §4.2: an 8 GB cache needs 32 MB of entries — 0.4 % of capacity.
        let l = Layout::compute(128 << 20, 64 << 10);
        let entry_bytes = l.entry_count as usize * ENTRY_BYTES;
        let frac = entry_bytes as f64 / (128 << 20) as f64;
        assert!(frac < 0.005, "entry overhead {frac} should be < 0.5 %");
    }

    #[test]
    fn ring_wraps() {
        let l = Layout::compute(1 << 20, 4096);
        let cap = l.ring_cap;
        assert_eq!(l.ring_slot_addr(0), l.ring_slot_addr(cap));
        assert_ne!(l.ring_slot_addr(0), l.ring_slot_addr(1));
    }

    #[test]
    fn addresses_do_not_overlap() {
        let l = Layout::compute(4 << 20, 8192);
        assert!(l.ring_off >= HEADER_BYTES);
        assert!(l.entries_off >= l.ring_off + l.ring_cap as usize * RING_SLOT_BYTES);
        assert!(l.data_off >= l.entries_off + l.entry_count as usize * ENTRY_BYTES);
    }

    #[test]
    fn entry_addresses_are_16_aligned() {
        let l = Layout::compute(4 << 20, 8192);
        for idx in [0u32, 1, 5, l.entry_count - 1] {
            assert_eq!(l.entry_addr(idx) % 16, 0);
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_region_rejected() {
        let _ = Layout::compute(8192, 4096);
    }

    #[test]
    fn untagged_slots_store_the_bare_block_number() {
        for blk in [0u64, 1, 96, SLOT_BLK_MASK] {
            assert_eq!(slot_value(blk, 0), blk);
            assert_eq!(split_slot(blk), (blk, 0));
        }
    }

    #[test]
    fn mw_descriptor_words_round_trip() {
        for ordinal in [0u64, 1, 31, 1 << 40] {
            for state in [MW_FREE, MW_RESERVED, MW_STAGED] {
                assert_eq!(
                    mw_split_state(mw_state_word(ordinal, state)),
                    (ordinal, state)
                );
            }
        }
        // The all-zero header a fresh format leaves behind decodes FREE.
        assert_eq!(mw_split_state(0), (0, MW_FREE));
        // Descriptors are line-disjoint from each other and the intent line.
        for s in 0..MW_WINDOWS {
            assert_eq!(mw_desc_addr(s) % 64, 0);
            assert!(mw_desc_addr(s) >= INTENT_SHARDS_OFF + 8);
            assert!(mw_desc_addr(s) + MW_DESC_BYTES <= HEADER_BYTES);
        }
    }

    #[test]
    fn tagged_slots_round_trip() {
        for id in [0u64, 1, 7, 127, 128, 1 << 40] {
            let tag = intent_tag(id);
            assert_ne!(tag, 0, "intent tags must be distinguishable from none");
            for blk in [0u64, 5, SLOT_BLK_MASK] {
                assert_eq!(split_slot(slot_value(blk, tag)), (blk, tag));
            }
        }
    }
}
