//! Cache-level counters (hit rates, commits, evictions — Figs. 7–13).

/// Cumulative counters for one [`crate::TincaCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read requests served from NVM.
    pub read_hits: u64,
    /// Read requests that went to disk.
    pub read_misses: u64,
    /// Committed block writes whose disk block was already cached (Fig. 12c
    /// reports this as the *write hit rate*).
    pub write_hits: u64,
    /// Committed block writes for fresh (uncached) disk blocks.
    pub write_misses: u64,
    /// Ring commits executed (one per group in batched commits).
    pub commits: u64,
    /// Total blocks across all committed transactions.
    pub committed_blocks: u64,
    /// Running transactions dropped by an explicit `abort()` call.
    pub user_aborts: u64,
    /// Committing transactions that failed mid-protocol and were revoked.
    pub failed_commits: u64,
    /// Ring commits that carried more than one user transaction (group
    /// commit — one Tail store + fence amortised over the batch).
    pub group_commits: u64,
    /// User transactions that rode in a multi-transaction ring commit.
    pub batched_txns: u64,
    /// Staged rewrites coalesced into an already-staged block (JBD2-style
    /// running-transaction merging; equal payloads skip the copy too).
    pub coalesced_writes: u64,
    /// Cache blocks evicted (clean or dirty).
    pub evictions: u64,
    /// Eviction attempts on the allocation path that failed (victim
    /// writeback error → quarantine). Previously swallowed silently.
    pub eviction_errors: u64,
    /// Dirty evictions that wrote a block to disk.
    pub writebacks: u64,
    /// `clflush` operations avoided by commit-path flush coalescing
    /// (entry updates sharing a 64 B line flushed once per line).
    pub coalesced_flushes: u64,
    /// Vectored destage batches issued on the background lane.
    pub destage_batches: u64,
    /// Dirty blocks written back (and marked clean) by the destage
    /// daemon.
    pub destage_blocks: u64,
    /// Allocations that found no free block and no clean victim while
    /// destage was enabled — the foreground path had to pay a
    /// synchronous dirty writeback because the daemon fell behind.
    pub destage_stalls: u64,
    /// Blocks revoked during recovery or abort.
    pub revoked_blocks: u64,
    /// Recovery passes executed.
    pub recoveries: u64,
    /// Disk I/O attempts repeated after a transient error (each retry of
    /// each request counts once).
    pub io_retries: u64,
    /// Disk requests that ultimately succeeded after ≥ 1 transient error
    /// (the retry loop absorbed the fault).
    pub transient_errors_absorbed: u64,
    /// Disk requests that failed permanently: a non-transient error, or
    /// transient errors exhausting the retry budget.
    pub permanent_io_errors: u64,
    /// Dirty blocks quarantined in NVM after a permanent writeback
    /// failure (cumulative; blocks later flushed successfully still
    /// count).
    pub quarantined_blocks: u64,
    /// Spanning transactions resolved and completed via the two-phase
    /// pool commit (counted once per transaction, on the intent-host
    /// shard).
    pub spanning_commits: u64,
    /// Spanning transactions aborted mid-prepare (a fragment failed; every
    /// prepared fragment was revoked and the intent retired). Counted once
    /// per transaction, on the intent-host shard.
    pub spanning_aborts: u64,
    /// Fragments of spanning transactions this shard completed (its share
    /// of `commits` driven by the two-phase path).
    pub spanning_fragments: u64,
    /// Ring-window blocks revoked at recovery because their spanning
    /// intent never resolved (fragment rolled back).
    pub spanning_rolled_back: u64,
    /// Ring-window blocks preserved at recovery because their spanning
    /// intent had resolved (fragment rolled forward).
    pub spanning_rolled_forward: u64,
    /// Failed CAS attempts on the multi-writer ring-reservation cursor
    /// (lock-free commit path; each retry is one lost race for a window).
    pub reservation_cas_retries: u64,
    /// Multi-writer sequencing attempts that deferred to another thread's
    /// in-flight round (combiner handoff) instead of advancing `Head`.
    pub sequencer_handoffs: u64,
    /// Multi-writer windows rolled *forward* at recovery: published
    /// (`STAGED`) windows inside the durable `[Tail, Head)` prefix whose
    /// interrupted role switches were resumed.
    pub mw_windows_resumed: u64,
    /// Multi-writer windows rolled *back* at recovery: reserved or staged
    /// windows `Head` never advanced past (their log-role entries were
    /// revoked by the full entry scan).
    pub mw_windows_rolled_back: u64,
}

impl CacheStats {
    /// Write hit rate in `[0, 1]`; `None` before any write.
    pub fn write_hit_rate(&self) -> Option<f64> {
        let total = self.write_hits + self.write_misses;
        (total > 0).then(|| self.write_hits as f64 / total as f64)
    }

    /// Read hit rate in `[0, 1]`; `None` before any read.
    pub fn read_hit_rate(&self) -> Option<f64> {
        let total = self.read_hits + self.read_misses;
        (total > 0).then(|| self.read_hits as f64 / total as f64)
    }

    /// All aborted transactions: user aborts plus failed commits.
    pub fn aborts(&self) -> u64 {
        self.user_aborts + self.failed_commits
    }

    /// Per-field difference `self - earlier`.
    pub fn delta(&self, e: &CacheStats) -> CacheStats {
        CacheStats {
            read_hits: self.read_hits - e.read_hits,
            read_misses: self.read_misses - e.read_misses,
            write_hits: self.write_hits - e.write_hits,
            write_misses: self.write_misses - e.write_misses,
            commits: self.commits - e.commits,
            committed_blocks: self.committed_blocks - e.committed_blocks,
            user_aborts: self.user_aborts - e.user_aborts,
            failed_commits: self.failed_commits - e.failed_commits,
            group_commits: self.group_commits - e.group_commits,
            batched_txns: self.batched_txns - e.batched_txns,
            coalesced_writes: self.coalesced_writes - e.coalesced_writes,
            evictions: self.evictions - e.evictions,
            eviction_errors: self.eviction_errors - e.eviction_errors,
            writebacks: self.writebacks - e.writebacks,
            coalesced_flushes: self.coalesced_flushes - e.coalesced_flushes,
            destage_batches: self.destage_batches - e.destage_batches,
            destage_blocks: self.destage_blocks - e.destage_blocks,
            destage_stalls: self.destage_stalls - e.destage_stalls,
            revoked_blocks: self.revoked_blocks - e.revoked_blocks,
            recoveries: self.recoveries - e.recoveries,
            io_retries: self.io_retries - e.io_retries,
            transient_errors_absorbed: self.transient_errors_absorbed - e.transient_errors_absorbed,
            permanent_io_errors: self.permanent_io_errors - e.permanent_io_errors,
            quarantined_blocks: self.quarantined_blocks - e.quarantined_blocks,
            spanning_commits: self.spanning_commits - e.spanning_commits,
            spanning_aborts: self.spanning_aborts - e.spanning_aborts,
            spanning_fragments: self.spanning_fragments - e.spanning_fragments,
            spanning_rolled_back: self.spanning_rolled_back - e.spanning_rolled_back,
            spanning_rolled_forward: self.spanning_rolled_forward - e.spanning_rolled_forward,
            reservation_cas_retries: self.reservation_cas_retries - e.reservation_cas_retries,
            sequencer_handoffs: self.sequencer_handoffs - e.sequencer_handoffs,
            mw_windows_resumed: self.mw_windows_resumed - e.mw_windows_resumed,
            mw_windows_rolled_back: self.mw_windows_rolled_back - e.mw_windows_rolled_back,
        }
    }

    /// Per-field sum `self + other` (merging per-shard counters into one
    /// pool-wide view).
    pub fn merge(&self, o: &CacheStats) -> CacheStats {
        CacheStats {
            read_hits: self.read_hits + o.read_hits,
            read_misses: self.read_misses + o.read_misses,
            write_hits: self.write_hits + o.write_hits,
            write_misses: self.write_misses + o.write_misses,
            commits: self.commits + o.commits,
            committed_blocks: self.committed_blocks + o.committed_blocks,
            user_aborts: self.user_aborts + o.user_aborts,
            failed_commits: self.failed_commits + o.failed_commits,
            group_commits: self.group_commits + o.group_commits,
            batched_txns: self.batched_txns + o.batched_txns,
            coalesced_writes: self.coalesced_writes + o.coalesced_writes,
            evictions: self.evictions + o.evictions,
            eviction_errors: self.eviction_errors + o.eviction_errors,
            writebacks: self.writebacks + o.writebacks,
            coalesced_flushes: self.coalesced_flushes + o.coalesced_flushes,
            destage_batches: self.destage_batches + o.destage_batches,
            destage_blocks: self.destage_blocks + o.destage_blocks,
            destage_stalls: self.destage_stalls + o.destage_stalls,
            revoked_blocks: self.revoked_blocks + o.revoked_blocks,
            recoveries: self.recoveries + o.recoveries,
            io_retries: self.io_retries + o.io_retries,
            transient_errors_absorbed: self.transient_errors_absorbed + o.transient_errors_absorbed,
            permanent_io_errors: self.permanent_io_errors + o.permanent_io_errors,
            quarantined_blocks: self.quarantined_blocks + o.quarantined_blocks,
            spanning_commits: self.spanning_commits + o.spanning_commits,
            spanning_aborts: self.spanning_aborts + o.spanning_aborts,
            spanning_fragments: self.spanning_fragments + o.spanning_fragments,
            spanning_rolled_back: self.spanning_rolled_back + o.spanning_rolled_back,
            spanning_rolled_forward: self.spanning_rolled_forward + o.spanning_rolled_forward,
            reservation_cas_retries: self.reservation_cas_retries + o.reservation_cas_retries,
            sequencer_handoffs: self.sequencer_handoffs + o.sequencer_handoffs,
            mw_windows_resumed: self.mw_windows_resumed + o.mw_windows_resumed,
            mw_windows_rolled_back: self.mw_windows_rolled_back + o.mw_windows_rolled_back,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates() {
        let s = CacheStats {
            write_hits: 3,
            write_misses: 1,
            read_hits: 1,
            read_misses: 3,
            ..Default::default()
        };
        assert_eq!(s.write_hit_rate(), Some(0.75));
        assert_eq!(s.read_hit_rate(), Some(0.25));
    }

    #[test]
    fn hit_rate_none_when_empty() {
        assert_eq!(CacheStats::default().write_hit_rate(), None);
        assert_eq!(CacheStats::default().read_hit_rate(), None);
    }

    #[test]
    fn aborts_sums_both_kinds() {
        let s = CacheStats {
            user_aborts: 2,
            failed_commits: 3,
            ..Default::default()
        };
        assert_eq!(s.aborts(), 5);
    }

    #[test]
    fn delta_subtracts() {
        let a = CacheStats {
            commits: 2,
            ..Default::default()
        };
        let b = CacheStats {
            commits: 7,
            evictions: 3,
            failed_commits: 1,
            coalesced_writes: 4,
            io_retries: 6,
            quarantined_blocks: 2,
            eviction_errors: 1,
            coalesced_flushes: 9,
            destage_batches: 2,
            destage_blocks: 8,
            destage_stalls: 1,
            reservation_cas_retries: 5,
            sequencer_handoffs: 2,
            mw_windows_resumed: 3,
            mw_windows_rolled_back: 1,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.commits, 5);
        assert_eq!(d.evictions, 3);
        assert_eq!(d.failed_commits, 1);
        assert_eq!(d.coalesced_writes, 4);
        assert_eq!(d.io_retries, 6);
        assert_eq!(d.quarantined_blocks, 2);
        assert_eq!(d.eviction_errors, 1);
        assert_eq!(d.coalesced_flushes, 9);
        assert_eq!(d.destage_batches, 2);
        assert_eq!(d.destage_blocks, 8);
        assert_eq!(d.destage_stalls, 1);
        assert_eq!(d.reservation_cas_retries, 5);
        assert_eq!(d.sequencer_handoffs, 2);
        assert_eq!(d.mw_windows_resumed, 3);
        assert_eq!(d.mw_windows_rolled_back, 1);
    }

    #[test]
    fn merge_adds_per_shard_views() {
        let a = CacheStats {
            commits: 2,
            group_commits: 1,
            batched_txns: 3,
            ..Default::default()
        };
        let b = CacheStats {
            commits: 5,
            user_aborts: 1,
            destage_batches: 4,
            destage_blocks: 16,
            coalesced_flushes: 2,
            eviction_errors: 3,
            reservation_cas_retries: 7,
            sequencer_handoffs: 4,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.commits, 7);
        assert_eq!(m.group_commits, 1);
        assert_eq!(m.batched_txns, 3);
        assert_eq!(m.user_aborts, 1);
        assert_eq!(m.destage_batches, 4);
        assert_eq!(m.destage_blocks, 16);
        assert_eq!(m.coalesced_flushes, 2);
        assert_eq!(m.eviction_errors, 3);
        assert_eq!(m.reservation_cas_retries, 7);
        assert_eq!(m.sequencer_handoffs, 4);
    }
}
