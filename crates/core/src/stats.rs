//! Cache-level counters (hit rates, commits, evictions — Figs. 7–13).

/// Cumulative counters for one [`crate::TincaCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read requests served from NVM.
    pub read_hits: u64,
    /// Read requests that went to disk.
    pub read_misses: u64,
    /// Committed block writes whose disk block was already cached (Fig. 12c
    /// reports this as the *write hit rate*).
    pub write_hits: u64,
    /// Committed block writes for fresh (uncached) disk blocks.
    pub write_misses: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Total blocks across all committed transactions.
    pub committed_blocks: u64,
    /// Transactions aborted (explicitly or by failed commit).
    pub aborts: u64,
    /// Cache blocks evicted (clean or dirty).
    pub evictions: u64,
    /// Dirty evictions that wrote a block to disk.
    pub writebacks: u64,
    /// Blocks revoked during recovery or abort.
    pub revoked_blocks: u64,
    /// Recovery passes executed.
    pub recoveries: u64,
}

impl CacheStats {
    /// Write hit rate in `[0, 1]`; `None` before any write.
    pub fn write_hit_rate(&self) -> Option<f64> {
        let total = self.write_hits + self.write_misses;
        (total > 0).then(|| self.write_hits as f64 / total as f64)
    }

    /// Read hit rate in `[0, 1]`; `None` before any read.
    pub fn read_hit_rate(&self) -> Option<f64> {
        let total = self.read_hits + self.read_misses;
        (total > 0).then(|| self.read_hits as f64 / total as f64)
    }

    /// Per-field difference `self - earlier`.
    pub fn delta(&self, e: &CacheStats) -> CacheStats {
        CacheStats {
            read_hits: self.read_hits - e.read_hits,
            read_misses: self.read_misses - e.read_misses,
            write_hits: self.write_hits - e.write_hits,
            write_misses: self.write_misses - e.write_misses,
            commits: self.commits - e.commits,
            committed_blocks: self.committed_blocks - e.committed_blocks,
            aborts: self.aborts - e.aborts,
            evictions: self.evictions - e.evictions,
            writebacks: self.writebacks - e.writebacks,
            revoked_blocks: self.revoked_blocks - e.revoked_blocks,
            recoveries: self.recoveries - e.recoveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates() {
        let s = CacheStats {
            write_hits: 3,
            write_misses: 1,
            read_hits: 1,
            read_misses: 3,
            ..Default::default()
        };
        assert_eq!(s.write_hit_rate(), Some(0.75));
        assert_eq!(s.read_hit_rate(), Some(0.25));
    }

    #[test]
    fn hit_rate_none_when_empty() {
        assert_eq!(CacheStats::default().write_hit_rate(), None);
        assert_eq!(CacheStats::default().read_hit_rate(), None);
    }

    #[test]
    fn delta_subtracts() {
        let a = CacheStats {
            commits: 2,
            ..Default::default()
        };
        let b = CacheStats {
            commits: 7,
            evictions: 3,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.commits, 5);
        assert_eq!(d.evictions, 3);
    }
}
