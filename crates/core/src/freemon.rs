//! The free block monitor (§4.6): DRAM-only tracking of unused NVM blocks.

/// Tracks free NVM data blocks (and, reused for entry slots, free cache
/// entries). DRAM-only; reconstructed on startup/recovery by scanning the
/// persistent cache entries.
#[derive(Clone, Debug)]
pub struct FreeMonitor {
    free: Vec<u32>,
    is_free: Vec<bool>,
}

impl FreeMonitor {
    /// All of `0..count` start free.
    pub fn new_all_free(count: u32) -> Self {
        Self {
            free: (0..count).rev().collect(),
            is_free: vec![true; count as usize],
        }
    }

    /// Starts with everything allocated; used by recovery which then
    /// [`Self::release`]s unreferenced blocks.
    pub fn new_all_used(count: u32) -> Self {
        Self {
            free: Vec::new(),
            is_free: vec![false; count as usize],
        }
    }

    /// Takes a free block, if any.
    pub fn allocate(&mut self) -> Option<u32> {
        let b = self.free.pop()?;
        self.is_free[b as usize] = false;
        Some(b)
    }

    /// Returns a block to the free pool. Panics on double free.
    pub fn release(&mut self, b: u32) {
        assert!(!self.is_free[b as usize], "double free of block {b}");
        self.is_free[b as usize] = true;
        self.free.push(b);
    }

    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    pub fn is_free(&self, b: u32) -> bool {
        self.is_free[b as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_exhausted() {
        let mut m = FreeMonitor::new_all_free(3);
        let mut got = vec![];
        while let Some(b) = m.allocate() {
            got.push(b);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(m.free_count(), 0);
    }

    #[test]
    fn release_recycles() {
        let mut m = FreeMonitor::new_all_free(2);
        let a = m.allocate().unwrap();
        let _b = m.allocate().unwrap();
        m.release(a);
        assert_eq!(m.allocate(), Some(a));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = FreeMonitor::new_all_free(2);
        let a = m.allocate().unwrap();
        m.release(a);
        m.release(a);
    }

    #[test]
    fn all_used_start() {
        let mut m = FreeMonitor::new_all_used(4);
        assert_eq!(m.allocate(), None);
        m.release(2);
        assert!(m.is_free(2));
        assert_eq!(m.allocate(), Some(2));
    }
}
