// Test code may unwrap/expect/panic freely; non-test code is held to the
// disallowed-methods ban in this crate's clippy.toml.
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]

//! # tinca — Transactional NVM Disk Cache
//!
//! A user-space reproduction of **Tinca** from *"Transactional NVM Cache
//! with High Performance and Crash Consistency"* (Qingsong Wei et al.,
//! SC '17). Tinca is a self-contained NVM caching layer that also provides
//! transactional primitives to the file system above it, so that:
//!
//! * the file system needs **no journal** — commit atomicity comes from
//!   the cache (`tinca_init_txn` / `tinca_commit` / `tinca_abort`, §4.1);
//! * no data block is ever written twice for consistency: a committed
//!   block is converted in place from *log* to *buffer* role (§4.3's
//!   **role switch**) instead of being checkpointed;
//! * cache metadata is managed in 16-byte, atomically-writable entries
//!   rather than metadata blocks (§4.2), eliminating the per-write
//!   metadata-block flush storm of Flashcache-style designs.
//!
//! ## Quick start
//!
//! ```
//! use blockdev::{BlockDevice, DiskKind, SimDisk, BLOCK_SIZE};
//! use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};
//! use tinca::{TincaCache, TincaConfig};
//!
//! let clock = SimClock::new();
//! let nvm = NvmDevice::new(NvmConfig::new(4 << 20, NvmTech::Pcm), clock.clone());
//! let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock.clone());
//! let mut cache = TincaCache::format(nvm, disk, TincaConfig::default());
//!
//! // Atomically commit two blocks.
//! let mut txn = cache.init_txn();
//! txn.write(10, &[0xAA; BLOCK_SIZE]);
//! txn.write(11, &[0xBB; BLOCK_SIZE]);
//! cache.commit(&txn).unwrap();
//!
//! let mut buf = [0u8; BLOCK_SIZE];
//! cache.read(10, &mut buf).unwrap();
//! assert_eq!(buf[0], 0xAA);
//! ```

mod cache;
mod config;
mod entry;
mod error;
mod freemon;
mod layout;
mod lru;
mod mwring;
mod pool;
mod recovery;
mod snapshot;
mod stats;
mod txn;

pub use cache::{DynDisk, Health, TincaCache};
pub use config::{TincaConfig, WritePolicy};
pub use entry::{CacheEntry, Role, FRESH};
pub use error::TincaError;
pub use layout::{intent_tag, split_slot, Layout};
pub use mwring::{CommitMode, MwAdmission, MwTicket};
pub use pool::{PoolConfig, TincaPool};
pub use recovery::SpanningIntent;
pub use snapshot::StatsSnapshot;
pub use stats::CacheStats;
pub use txn::{block_buf, BlockBuf, Txn};
