//! Full-stack builders: NVM device + disk + cache + file system, wired the
//! way the paper's two competitors are (Fig. 1), plus the ablation knobs.
//!
//! Everything downstream (workloads, cluster nodes, crash harnesses, the
//! figure benches) builds its stacks here, so the two systems always differ
//! in exactly the dimensions the paper varies.

use std::sync::Arc;

use blockdev::{DiskKind, SimDisk};
use classic::{ClassicCache, ClassicConfig, MetadataScheme};
use nvmsim::{Nvm, NvmConfig, NvmDevice, NvmTech, SimClock};
use tinca::{TincaCache, TincaConfig};
use ubj::{UbjCache, UbjConfig};

use crate::backend::{ClassicBackend, TincaBackend, UbjBackend};
use crate::{FsError, FsSim, Geometry, JournalMode};

/// Which of the paper's systems (or ablations) to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// **Tinca** (§5.1): transactional NVM cache, no FS journal.
    Tinca,
    /// **Classic** (§5.1): Ext4+JBD2 over Flashcache over NVM block device.
    Classic,
    /// Classic stack with journaling disabled ("Ext4 w/o journaling",
    /// Figs. 3–4 baseline). No crash consistency.
    ClassicNoJournal,
    /// Classic stack, journaling on, synchronous metadata updates off
    /// (Fig. 4's "no metadata update" bar). Unsafe, measurement only.
    ClassicNoMeta,
    /// Classic stack, journaling *and* metadata updates off (Fig. 4).
    ClassicNoJournalNoMeta,
    /// Ablation: Tinca with the role switch disabled — commits degrade to
    /// journal-style double writes inside the cache.
    TincaNoRoleSwitch,
    /// UBJ-like baseline (§5.4.4): union of NVM buffer cache and journal,
    /// commit-in-place by freezing, transaction-unit checkpointing.
    Ubj,
    /// Classic stack with FlashTier/bcache-style *log* metadata instead of
    /// Flashcache's synchronous metadata blocks (§1's middle design point).
    ClassicLogMeta,
    /// Tinca with the batched-ring optimisation (one fence pair per
    /// transaction; see `TincaConfig::batched_ring`).
    TincaBatched,
}

impl System {
    pub fn name(self) -> &'static str {
        match self {
            System::Tinca => "Tinca",
            System::Classic => "Classic",
            System::ClassicNoJournal => "Classic-nojournal",
            System::ClassicNoMeta => "Classic-nometa",
            System::ClassicNoJournalNoMeta => "Classic-nojournal-nometa",
            System::TincaNoRoleSwitch => "Tinca-noroleswitch",
            System::Ubj => "UBJ",
            System::ClassicLogMeta => "Classic-logmeta",
            System::TincaBatched => "Tinca-batched",
        }
    }
}

/// Everything needed to build one storage stack.
#[derive(Clone, Debug)]
pub struct StackConfig {
    pub system: System,
    /// NVM cache capacity in bytes (the paper: 8 GB; scaled default 64 MB).
    pub nvm_bytes: usize,
    pub nvm_tech: NvmTech,
    /// Disk size in 4 KB blocks (the paper: 128 GB SSD).
    pub disk_blocks: u64,
    pub disk_kind: DiskKind,
    /// FS journal region in blocks (Ext4 default 128 MB; scaled default
    /// 2 MB = 512 blocks). Reserved in all modes for comparability.
    pub journal_blocks: u64,
    pub max_files: u64,
    /// Transaction batch size in blocks.
    pub txn_block_limit: usize,
    /// Tinca ring buffer bytes.
    pub ring_bytes: usize,
    /// Flashcache set associativity.
    pub assoc: u32,
    /// Full NVM device config override (Fig. 3(b) measures "without
    /// clflush" by zeroing the persist costs). `None` uses
    /// `NvmConfig::new(nvm_bytes, nvm_tech)`.
    pub nvm_override: Option<NvmConfig>,
    /// DRAM page-cache blocks; `None` = the system's natural default
    /// (4096, or 0 for UBJ whose buffer cache is the NVM itself).
    pub dram_cache_blocks: Option<usize>,
    /// Enables Tinca's write-behind pipeline: the watermark destage
    /// daemon (batched, address-sorted background writeback) plus
    /// commit-path flush coalescing. Ignored by non-Tinca systems.
    /// Default `false` (the paper's synchronous eviction writeback).
    pub destage: bool,
}

impl StackConfig {
    /// A scaled-down local machine (§5.1): 64 MB NVM cache, 1 GB disk,
    /// PCM timings, SSD. The figure harnesses shrink `nvm_bytes` further
    /// (32 MB, ÷256 of the paper) and derive all dataset sizes from it.
    pub fn scaled_local(system: System) -> StackConfig {
        StackConfig {
            system,
            nvm_bytes: 64 << 20,
            nvm_tech: NvmTech::Pcm,
            disk_blocks: (1 << 30) / 4096,
            disk_kind: DiskKind::Ssd,
            journal_blocks: 512,
            max_files: 16 << 10,
            txn_block_limit: 128,
            ring_bytes: 64 << 10,
            assoc: 256,
            nvm_override: None,
            dram_cache_blocks: None,
            destage: false,
        }
    }

    /// A small stack for tests (1–4 MB NVM).
    pub fn tiny(system: System) -> StackConfig {
        StackConfig {
            system,
            nvm_bytes: 4 << 20,
            nvm_tech: NvmTech::Pcm,
            disk_blocks: 1 << 16,
            disk_kind: DiskKind::Ssd,
            journal_blocks: 128,
            max_files: 512,
            txn_block_limit: 32,
            ring_bytes: 16 << 10,
            assoc: 64,
            nvm_override: None,
            dram_cache_blocks: None,
            destage: false,
        }
    }

    /// The file-system geometry this stack uses.
    pub fn geometry(&self) -> Geometry {
        let dram = self.dram_cache_blocks.unwrap_or(match self.system {
            // UBJ unions buffer cache and journal in NVM: no DRAM cache.
            System::Ubj => 0,
            _ => 4096,
        });
        Geometry::with_txn_limit(
            self.disk_blocks,
            self.journal_blocks,
            self.max_files,
            self.txn_block_limit,
        )
        .with_dram_cache(dram)
    }

    fn journal_mode(&self) -> JournalMode {
        match self.system {
            System::Tinca | System::TincaNoRoleSwitch | System::Ubj | System::TincaBatched => {
                JournalMode::Tinca
            }
            System::Classic | System::ClassicNoMeta | System::ClassicLogMeta => JournalMode::Jbd2,
            System::ClassicNoJournal | System::ClassicNoJournalNoMeta => JournalMode::None,
        }
    }

    fn tinca_config(&self) -> TincaConfig {
        TincaConfig {
            ring_bytes: self.ring_bytes,
            role_switch: self.system != System::TincaNoRoleSwitch,
            batched_ring: self.system == System::TincaBatched,
            destage: self.destage,
            coalesce_flushes: self.destage,
            ..TincaConfig::default()
        }
    }

    fn classic_config(&self) -> ClassicConfig {
        ClassicConfig {
            assoc: self.assoc,
            sync_metadata: !matches!(
                self.system,
                System::ClassicNoMeta | System::ClassicNoJournalNoMeta
            ),
            metadata_scheme: if self.system == System::ClassicLogMeta {
                MetadataScheme::Log
            } else {
                MetadataScheme::SyncBlock
            },
            ..ClassicConfig::default()
        }
    }

    fn is_tinca(&self) -> bool {
        matches!(
            self.system,
            System::Tinca | System::TincaNoRoleSwitch | System::TincaBatched
        )
    }
}

/// A fully built storage stack with handles for measurement.
pub struct Stack {
    pub fs: FsSim,
    pub nvm: Nvm,
    pub disk: blockdev::Disk,
    pub clock: SimClock,
    pub config: StackConfig,
}

/// Builds a fresh (formatted) stack.
pub fn build(cfg: &StackConfig) -> Result<Stack, FsError> {
    let clock = SimClock::new();
    let nvm_cfg = cfg
        .nvm_override
        .clone()
        .unwrap_or_else(|| NvmConfig::new(cfg.nvm_bytes, cfg.nvm_tech));
    let nvm = NvmDevice::new(nvm_cfg, clock.clone());
    let disk = SimDisk::new(cfg.disk_kind, cfg.disk_blocks, clock.clone());
    let geo = cfg.geometry();
    let fs = if cfg.is_tinca() {
        let cache = TincaCache::format(nvm.clone(), disk.clone(), cfg.tinca_config());
        FsSim::mkfs(Box::new(TincaBackend::new(cache)), geo, cfg.journal_mode())?
    } else if cfg.system == System::Ubj {
        let cache = UbjCache::format(nvm.clone(), disk.clone(), UbjConfig::default());
        FsSim::mkfs(Box::new(UbjBackend::new(cache)), geo, cfg.journal_mode())?
    } else {
        let cache = ClassicCache::format(nvm.clone(), disk.clone(), cfg.classic_config());
        FsSim::mkfs(
            Box::new(ClassicBackend::new(cache)),
            geo,
            cfg.journal_mode(),
        )?
    };
    Ok(Stack {
        fs,
        nvm,
        disk,
        clock: clock.clone(),
        config: cfg.clone(),
    })
}

/// Re-mounts a stack on existing devices after a (simulated) reboot:
/// recovers the cache from NVM, then mounts the file system (running
/// journal replay where applicable).
pub fn remount(
    cfg: &StackConfig,
    nvm: Nvm,
    disk: blockdev::Disk,
    clock: SimClock,
) -> Result<Stack, FsError> {
    let geo = cfg.geometry();
    let fs = if cfg.is_tinca() {
        let cache = TincaCache::recover(nvm.clone(), disk.clone() as Arc<_>, cfg.tinca_config())
            .map_err(|e| FsError::Backend(e.to_string()))?;
        FsSim::mount(Box::new(TincaBackend::new(cache)), geo)?
    } else if cfg.system == System::Ubj {
        let cache = UbjCache::recover(nvm.clone(), disk.clone() as Arc<_>, UbjConfig::default())
            .map_err(FsError::Backend)?;
        FsSim::mount(Box::new(UbjBackend::new(cache)), geo)?
    } else {
        let cache =
            ClassicCache::recover(nvm.clone(), disk.clone() as Arc<_>, cfg.classic_config())
                .map_err(FsError::Backend)?;
        FsSim::mount(Box::new(ClassicBackend::new(cache)), geo)?
    };
    Ok(Stack {
        fs,
        nvm,
        disk,
        clock,
        config: cfg.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_system() {
        for sys in [
            System::Tinca,
            System::Classic,
            System::ClassicNoJournal,
            System::ClassicNoMeta,
            System::ClassicNoJournalNoMeta,
            System::TincaNoRoleSwitch,
            System::Ubj,
            System::ClassicLogMeta,
            System::TincaBatched,
        ] {
            let stack = build(&StackConfig::tiny(sys)).unwrap();
            assert_eq!(stack.fs.file_count(), 0, "{}", sys.name());
        }
    }

    #[test]
    fn journal_mode_follows_system() {
        let t = build(&StackConfig::tiny(System::Tinca)).unwrap();
        assert_eq!(t.fs.mode(), JournalMode::Tinca);
        let c = build(&StackConfig::tiny(System::Classic)).unwrap();
        assert_eq!(c.fs.mode(), JournalMode::Jbd2);
        let n = build(&StackConfig::tiny(System::ClassicNoJournal)).unwrap();
        assert_eq!(n.fs.mode(), JournalMode::None);
    }

    #[test]
    fn remount_round_trips() {
        let cfg = StackConfig::tiny(System::Tinca);
        let mut stack = build(&cfg).unwrap();
        let f = stack.fs.create("hello.txt").unwrap();
        stack.fs.write(f, 0, b"world").unwrap();
        stack.fs.fsync().unwrap();
        let (nvm, disk, clock) = (stack.nvm.clone(), stack.disk.clone(), stack.clock.clone());
        drop(stack.fs);
        let mut re = remount(&cfg, nvm, disk, clock).unwrap();
        let f = re.fs.open("hello.txt").unwrap();
        let mut buf = [0u8; 5];
        re.fs.read(f, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
    }
}
