//! JBD2-style redo journaling (§2.3, Fig. 2(b)).
//!
//! The journal is a circular log in a reserved block region. A committed
//! transaction is laid out as: descriptor block(s) (tags = home block
//! numbers), the *log copies* of every data block, and a commit block.
//! Committed transactions are later *checkpointed* — each block written a
//! second time, to its home location — which is exactly the double write
//! the paper eliminates.
//!
//! Ordering relies on the cache layer's per-write durability (Flashcache
//! synchronously persists every block write), so the commit block can only
//! be durable after all its log blocks — the invariant redo recovery needs.

use std::collections::VecDeque;

use blockdev::BLOCK_SIZE;

use crate::backend::CacheBackend;
use crate::bytes;
use crate::geometry::Geometry;

type Buf = Box<[u8; BLOCK_SIZE]>;

/// How the file system achieves (or skips) crash consistency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalMode {
    /// In-place writes, no consistency ("Ext4 without journaling").
    None,
    /// Redo journaling with checkpointing (Ext4/JBD2 data-journal mode —
    /// the paper's **Classic** stack).
    Jbd2,
    /// Transactions offloaded to the Tinca cache (the paper's **Tinca**).
    Tinca,
}

const SB_MAGIC: u64 = 0x4a42_4432_5342_4c4b; // "JBD2SBLK"
const DESC_MAGIC: u64 = 0x4a42_4432_4445_5343; // "JBD2DESC"
const COMMIT_MAGIC: u64 = 0x4a42_4432_434f_4d54; // "JBD2COMT"

/// Home-block tags per descriptor block.
const TAGS_PER_DESC: usize = (BLOCK_SIZE - 32) / 8;

/// A committed-but-not-yet-checkpointed transaction held in DRAM
/// (JBD2 pins these pages until checkpoint).
struct JTxn {
    blocks: Vec<(u64, Buf)>,
    slots: u64,
}

/// Journal statistics (drives the write-amplification analysis of §3.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    pub commits: u64,
    pub log_blocks: u64,
    pub desc_blocks: u64,
    pub commit_blocks: u64,
    pub checkpoint_blocks: u64,
    pub replayed_txns: u64,
    pub replayed_blocks: u64,
}

/// The redo journal manager.
pub struct Jbd2 {
    journal_off: u64,
    area_slots: u64,
    /// Monotone slot counters; position = counter % area_slots.
    head: u64,
    tail: u64,
    /// Sequence number of the next transaction to commit.
    seq: u64,
    /// Sequence expected at `tail` (for recovery).
    seq_at_tail: u64,
    committed: VecDeque<JTxn>,
    pub stats: JournalStats,
}

impl Jbd2 {
    /// Creates a fresh journal and writes its superblock.
    pub fn format(geo: &Geometry, backend: &mut dyn CacheBackend) -> Result<Jbd2, String> {
        assert!(geo.journal_blocks >= 8, "journal too small");
        let mut j = Jbd2 {
            journal_off: geo.journal_off,
            area_slots: geo.journal_blocks - 1,
            head: 0,
            tail: 0,
            seq: 1,
            seq_at_tail: 1,
            committed: VecDeque::new(),
            stats: JournalStats::default(),
        };
        j.write_sb(backend)?;
        Ok(j)
    }

    /// Opens the journal after a crash: replays every fully committed
    /// transaction (writing its blocks to their home locations) and resets
    /// the log.
    pub fn recover(geo: &Geometry, backend: &mut dyn CacheBackend) -> Result<Jbd2, String> {
        let mut sb = [0u8; BLOCK_SIZE];
        backend.read(geo.journal_off, &mut sb)?;
        if bytes::le_u64(&sb, 0) != SB_MAGIC {
            return Err("journal superblock missing".into());
        }
        let tail = bytes::le_u64(&sb, 8);
        let seq_at_tail = bytes::le_u64(&sb, 16);
        let mut j = Jbd2 {
            journal_off: geo.journal_off,
            area_slots: geo.journal_blocks - 1,
            head: tail,
            tail,
            seq: seq_at_tail,
            seq_at_tail,
            committed: VecDeque::new(),
            stats: JournalStats::default(),
        };
        j.replay(backend)?;
        j.write_sb(backend)?;
        Ok(j)
    }

    fn slot_block(&self, slot: u64) -> u64 {
        self.journal_off + 1 + (slot % self.area_slots)
    }

    fn free_slots(&self) -> u64 {
        self.area_slots - (self.head - self.tail)
    }

    fn write_sb(&mut self, backend: &mut dyn CacheBackend) -> Result<(), String> {
        let mut sb = [0u8; BLOCK_SIZE];
        sb[0..8].copy_from_slice(&SB_MAGIC.to_le_bytes());
        sb[8..16].copy_from_slice(&self.tail.to_le_bytes());
        sb[16..24].copy_from_slice(&self.seq_at_tail.to_le_bytes());
        backend.write_block(self.journal_off, &sb)
    }

    /// Slots a transaction of `n` blocks occupies in the log.
    fn slots_needed(n: usize) -> u64 {
        let descs = n.div_ceil(TAGS_PER_DESC);
        (descs + n + 1) as u64
    }

    /// Commits `blocks` to the journal (the **first** write of the double
    /// write), retaining them for later checkpointing (the second).
    ///
    /// Oversized batches are split into multiple journal transactions —
    /// JBD2 likewise caps a transaction at a fraction of the journal
    /// (`j_max_transaction_buffers` = journal/4).
    pub fn commit(
        &mut self,
        backend: &mut dyn CacheBackend,
        blocks: Vec<(u64, Buf)>,
    ) -> Result<(), String> {
        let max_txn = (self.area_slots as usize / 2).saturating_sub(4).max(1);
        if blocks.len() > max_txn {
            let mut rest = blocks;
            while !rest.is_empty() {
                let tail = rest.split_off(rest.len().min(max_txn));
                self.commit_one(backend, rest)?;
                rest = tail;
            }
            return Ok(());
        }
        self.commit_one(backend, blocks)
    }

    fn commit_one(
        &mut self,
        backend: &mut dyn CacheBackend,
        blocks: Vec<(u64, Buf)>,
    ) -> Result<(), String> {
        if blocks.is_empty() {
            return Ok(());
        }
        let _t = telemetry::span(telemetry::phase::JBD2_COMMIT);
        let needed = Self::slots_needed(blocks.len());
        assert!(
            needed <= self.area_slots,
            "transaction of {} blocks exceeds journal capacity",
            blocks.len()
        );
        while self.free_slots() < needed {
            self.checkpoint_oldest(backend)?;
        }
        let seq = self.seq;
        self.seq += 1;
        let mut remaining = &blocks[..];
        while !remaining.is_empty() {
            let chunk = remaining.len().min(TAGS_PER_DESC);
            let last = chunk == remaining.len();
            // Descriptor block.
            let mut desc = [0u8; BLOCK_SIZE];
            desc[0..8].copy_from_slice(&DESC_MAGIC.to_le_bytes());
            desc[8..16].copy_from_slice(&seq.to_le_bytes());
            desc[16..20].copy_from_slice(&(chunk as u32).to_le_bytes());
            desc[20] = last as u8;
            for (i, (home, _)) in remaining[..chunk].iter().enumerate() {
                desc[32 + i * 8..40 + i * 8].copy_from_slice(&home.to_le_bytes());
            }
            backend.write_block(self.slot_block(self.head), &desc)?;
            self.head += 1;
            self.stats.desc_blocks += 1;
            // Log copies.
            for (_, data) in &remaining[..chunk] {
                backend.write_block(self.slot_block(self.head), &data[..])?;
                self.head += 1;
                self.stats.log_blocks += 1;
            }
            remaining = &remaining[chunk..];
        }
        // Commit block ends the transaction.
        let mut cb = [0u8; BLOCK_SIZE];
        cb[0..8].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        cb[8..16].copy_from_slice(&seq.to_le_bytes());
        cb[16..20].copy_from_slice(&(blocks.len() as u32).to_le_bytes());
        backend.write_block(self.slot_block(self.head), &cb)?;
        self.head += 1;
        self.stats.commit_blocks += 1;
        self.stats.commits += 1;
        self.committed.push_back(JTxn {
            blocks,
            slots: needed,
        });
        // The commit record is followed by a device flush barrier
        // (barrier=1 semantics): the legacy stack conservatively drains
        // the write-back cache below it.
        backend.flush_barrier()?;
        Ok(())
    }

    /// Checkpoints the oldest committed transaction: writes every block to
    /// its home location (the **second** write) and frees its log space.
    fn checkpoint_oldest(&mut self, backend: &mut dyn CacheBackend) -> Result<(), String> {
        let _t = telemetry::span(telemetry::phase::JBD2_CHECKPOINT);
        let Some(txn) = self.committed.pop_front() else {
            // Reachable only if the journal is too small for the txn split
            // limit; surfaced instead of panicking so the FS can refuse the
            // write and stay consistent.
            return Err(
                "journal full but nothing to checkpoint — journal too small for txn limit".into(),
            );
        };
        for (home, data) in &txn.blocks {
            backend.write_block(*home, &data[..])?;
            self.stats.checkpoint_blocks += 1;
        }
        self.tail += txn.slots;
        self.seq_at_tail += 1;
        self.write_sb(backend)
    }

    /// Checkpoints everything (orderly shutdown).
    pub fn checkpoint_all(&mut self, backend: &mut dyn CacheBackend) -> Result<(), String> {
        while !self.committed.is_empty() {
            self.checkpoint_oldest(backend)?;
        }
        Ok(())
    }

    /// Redo replay: walk the log from `tail`, applying every fully
    /// committed transaction, stopping at the first incomplete one.
    fn replay(&mut self, backend: &mut dyn CacheBackend) -> Result<(), String> {
        let _t = telemetry::span(telemetry::phase::JBD2_REPLAY);
        let mut pos = self.tail;
        let mut expect = self.seq_at_tail;
        let mut block = [0u8; BLOCK_SIZE];
        'txn: loop {
            // Parse one transaction starting at `pos`.
            let mut homes: Vec<u64> = Vec::new();
            let mut log_slots: Vec<u64> = Vec::new();
            let mut p = pos;
            loop {
                if p - self.tail >= self.area_slots {
                    break 'txn; // wrapped the whole log without a commit
                }
                backend.read(self.slot_block(p), &mut block)?;
                let magic = bytes::le_u64(&block, 0);
                let seq = bytes::le_u64(&block, 8);
                if magic != DESC_MAGIC || seq != expect {
                    break 'txn;
                }
                let count = bytes::le_u32(&block, 16) as usize;
                let last = block[20] != 0;
                if count == 0 || count > TAGS_PER_DESC {
                    break 'txn;
                }
                for i in 0..count {
                    homes.push(bytes::le_u64(&block, 32 + i * 8));
                }
                p += 1;
                for _ in 0..count {
                    if p - self.tail >= self.area_slots {
                        break 'txn;
                    }
                    log_slots.push(p);
                    p += 1;
                }
                if last {
                    break;
                }
            }
            // Commit block?
            if p - self.tail >= self.area_slots {
                break;
            }
            backend.read(self.slot_block(p), &mut block)?;
            let magic = bytes::le_u64(&block, 0);
            let seq = bytes::le_u64(&block, 8);
            let total = bytes::le_u32(&block, 16) as usize;
            if magic != COMMIT_MAGIC || seq != expect || total != homes.len() {
                break;
            }
            p += 1;
            // Fully committed: replay.
            for (home, slot) in homes.iter().zip(&log_slots) {
                backend.read(self.slot_block(*slot), &mut block)?;
                backend.write_block(*home, &block)?;
                self.stats.replayed_blocks += 1;
            }
            self.stats.replayed_txns += 1;
            expect += 1;
            pos = p;
        }
        // Reset: everything replayed is durable at home.
        self.tail = pos;
        self.head = pos;
        self.seq = expect;
        self.seq_at_tail = expect;
        Ok(())
    }

    /// Committed-but-unchckpointed transactions (test introspection).
    pub fn pending_checkpoints(&self) -> usize {
        self.committed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RawDiskBackend;
    use blockdev::{BlockDevice, DiskKind, SimDisk};
    use nvmsim::SimClock;

    fn geo() -> Geometry {
        Geometry::compute(1 << 14, 64, 100)
    }

    fn backend() -> (RawDiskBackend, blockdev::Disk) {
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 14, SimClock::new());
        (RawDiskBackend::new(disk.clone()), disk)
    }

    fn buf(b: u8) -> Buf {
        Box::new([b; BLOCK_SIZE])
    }

    #[test]
    fn commit_writes_desc_log_commit() {
        let g = geo();
        let (mut be, disk) = backend();
        let mut j = Jbd2::format(&g, &mut be).unwrap();
        let w0 = disk.stats().writes;
        j.commit(&mut be, vec![(5000, buf(1)), (5001, buf(2))])
            .unwrap();
        // 1 desc + 2 log + 1 commit = 4 journal writes; home untouched.
        assert_eq!(disk.stats().writes - w0, 4);
        let mut b = [0u8; BLOCK_SIZE];
        disk.read_block(5000, &mut b).unwrap();
        assert_eq!(b[0], 0, "home not written before checkpoint");
        assert_eq!(j.pending_checkpoints(), 1);
    }

    #[test]
    fn checkpoint_writes_home_copies() {
        let g = geo();
        let (mut be, disk) = backend();
        let mut j = Jbd2::format(&g, &mut be).unwrap();
        j.commit(&mut be, vec![(6000, buf(9))]).unwrap();
        j.checkpoint_all(&mut be).unwrap();
        let mut b = [0u8; BLOCK_SIZE];
        disk.read_block(6000, &mut b).unwrap();
        assert_eq!(b[0], 9);
        assert_eq!(j.stats.checkpoint_blocks, 1);
        assert_eq!(j.pending_checkpoints(), 0);
    }

    #[test]
    fn journal_wraps_and_forces_checkpoints() {
        let g = geo(); // 64-block journal → 63 slots
        let (mut be, disk) = backend();
        let mut j = Jbd2::format(&g, &mut be).unwrap();
        // Each txn: 1 desc + 10 log + 1 commit = 12 slots. 6+ txns wrap.
        for round in 0..20u64 {
            let blocks: Vec<(u64, Buf)> = (0..10).map(|i| (7000 + i, buf(round as u8))).collect();
            j.commit(&mut be, blocks).unwrap();
        }
        assert!(j.stats.checkpoint_blocks > 0, "wrap must force checkpoints");
        j.checkpoint_all(&mut be).unwrap();
        let mut b = [0u8; BLOCK_SIZE];
        disk.read_block(7000, &mut b).unwrap();
        assert_eq!(b[0], 19, "home must hold the newest committed version");
    }

    #[test]
    fn recovery_replays_committed_txns() {
        let g = geo();
        let (mut be, disk) = backend();
        let mut j = Jbd2::format(&g, &mut be).unwrap();
        j.commit(&mut be, vec![(8000, buf(1)), (8001, buf(2))])
            .unwrap();
        j.commit(&mut be, vec![(8000, buf(3))]).unwrap();
        // Crash before any checkpoint: home blocks still zero.
        drop(j);
        let j2 = Jbd2::recover(&g, &mut be).unwrap();
        assert_eq!(j2.stats.replayed_txns, 2);
        let mut b = [0u8; BLOCK_SIZE];
        disk.read_block(8000, &mut b).unwrap();
        assert_eq!(b[0], 3, "replay must apply txns in order");
        disk.read_block(8001, &mut b).unwrap();
        assert_eq!(b[0], 2);
    }

    #[test]
    fn recovery_ignores_uncommitted_tail() {
        let g = geo();
        let (mut be, disk) = backend();
        let mut j = Jbd2::format(&g, &mut be).unwrap();
        j.commit(&mut be, vec![(9000, buf(1))]).unwrap();
        // Forge a torn transaction: descriptor without commit block.
        let mut desc = [0u8; BLOCK_SIZE];
        desc[0..8].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[8..16].copy_from_slice(&j.seq.to_le_bytes());
        desc[16..20].copy_from_slice(&1u32.to_le_bytes());
        desc[20] = 1;
        desc[32..40].copy_from_slice(&9001u64.to_le_bytes());
        let slot = j.slot_block(j.head);
        be.write_block(slot, &desc).unwrap();
        be.write_block(slot + 1, &buf(7)[..]).unwrap();
        // No commit block → must not replay.
        drop(j);
        let j2 = Jbd2::recover(&g, &mut be).unwrap();
        assert_eq!(j2.stats.replayed_txns, 1);
        let mut b = [0u8; BLOCK_SIZE];
        disk.read_block(9001, &mut b).unwrap();
        assert_eq!(b[0], 0, "torn txn must not reach home");
        disk.read_block(9000, &mut b).unwrap();
        assert_eq!(b[0], 1);
    }

    #[test]
    fn recovery_after_checkpoint_is_idempotent() {
        let g = geo();
        let (mut be, disk) = backend();
        let mut j = Jbd2::format(&g, &mut be).unwrap();
        j.commit(&mut be, vec![(9500, buf(4))]).unwrap();
        j.checkpoint_all(&mut be).unwrap();
        drop(j);
        let j2 = Jbd2::recover(&g, &mut be).unwrap();
        assert_eq!(
            j2.stats.replayed_txns, 0,
            "checkpointed txns are past the tail"
        );
        let mut b = [0u8; BLOCK_SIZE];
        disk.read_block(9500, &mut b).unwrap();
        assert_eq!(b[0], 4);
    }

    #[test]
    fn multi_descriptor_transactions() {
        // > TAGS_PER_DESC blocks forces two descriptor blocks.
        let g = Geometry::compute(1 << 15, 2048, 100);
        let (mut be, disk) = backend();
        let mut j = Jbd2::format(&g, &mut be).unwrap();
        let n = TAGS_PER_DESC + 5;
        let blocks: Vec<(u64, Buf)> = (0..n as u64)
            .map(|i| (10_000 + i, buf((i % 250) as u8)))
            .collect();
        j.commit(&mut be, blocks).unwrap();
        assert_eq!(j.stats.desc_blocks, 2);
        drop(j);
        let j2 = Jbd2::recover(&g, &mut be).unwrap();
        assert_eq!(j2.stats.replayed_txns, 1);
        assert_eq!(j2.stats.replayed_blocks as usize, n);
        let mut b = [0u8; BLOCK_SIZE];
        disk.read_block(10_000 + TAGS_PER_DESC as u64, &mut b)
            .unwrap();
        assert_eq!(b[0] as usize, TAGS_PER_DESC % 250);
    }

    #[test]
    fn double_write_amplification_is_measurable() {
        // The motivating observation (§3.1): every block reaches the device
        // twice (journal + checkpoint) plus transaction metadata.
        let g = geo();
        let (mut be, disk) = backend();
        let mut j = Jbd2::format(&g, &mut be).unwrap();
        let w0 = disk.stats().writes;
        j.commit(
            &mut be,
            vec![(5000, buf(1)), (5001, buf(2)), (5002, buf(3))],
        )
        .unwrap();
        j.checkpoint_all(&mut be).unwrap();
        let writes = disk.stats().writes - w0;
        // 3 log + 3 checkpoint + 1 desc + 1 commit + 1 sb update = 9
        assert!(
            writes >= 8,
            "expected ≥ 2× amplification, got {writes} writes for 3 blocks"
        );
    }
}
