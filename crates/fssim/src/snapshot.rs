//! Cache-level counters surfaced through the backend trait (Fig. 12(c)
//! reports write hit rates; figure harnesses read them via
//! [`crate::CacheBackend::cache_snapshot`]).

/// Cache counters independent of which cache sits below the file system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    pub write_hits: u64,
    pub write_misses: u64,
    pub read_hits: u64,
    pub read_misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

impl std::ops::Add for CacheSnapshot {
    type Output = CacheSnapshot;

    fn add(self, o: CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            write_hits: self.write_hits + o.write_hits,
            write_misses: self.write_misses + o.write_misses,
            read_hits: self.read_hits + o.read_hits,
            read_misses: self.read_misses + o.read_misses,
            evictions: self.evictions + o.evictions,
            writebacks: self.writebacks + o.writebacks,
        }
    }
}

impl CacheSnapshot {
    pub fn write_hit_rate(&self) -> Option<f64> {
        let t = self.write_hits + self.write_misses;
        (t > 0).then(|| self.write_hits as f64 / t as f64)
    }

    pub fn read_hit_rate(&self) -> Option<f64> {
        let t = self.read_hits + self.read_misses;
        (t > 0).then(|| self.read_hits as f64 / t as f64)
    }

    pub fn delta(&self, e: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            write_hits: self.write_hits - e.write_hits,
            write_misses: self.write_misses - e.write_misses,
            read_hits: self.read_hits - e.read_hits,
            read_misses: self.read_misses - e.read_misses,
            evictions: self.evictions - e.evictions,
            writebacks: self.writebacks - e.writebacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_rates() {
        let s = CacheSnapshot {
            write_hits: 9,
            write_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.write_hit_rate(), Some(0.9));
        assert_eq!(CacheSnapshot::default().write_hit_rate(), None);
        assert_eq!(CacheSnapshot::default().read_hit_rate(), None);
    }

    #[test]
    fn snapshot_delta() {
        let a = CacheSnapshot {
            evictions: 2,
            ..Default::default()
        };
        let b = CacheSnapshot {
            evictions: 10,
            writebacks: 4,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.evictions, 8);
        assert_eq!(d.writebacks, 4);
    }
}
