//! The mini file system: flat namespace, inode table, block bitmap,
//! direct/indirect/double-indirect files, batched transactions.

use blockdev::BLOCK_SIZE;
use std::collections::HashMap;

use crate::backend::CacheBackend;
use crate::bytes;
use crate::error::FsError;
use crate::geometry::{Geometry, MAX_NAME_LEN, NAMES_PER_BLOCK, NAME_ENTRY_BYTES};
use crate::inode::{classify, BlockPath, Inode, INODE_BYTES, NO_BLOCK, PTRS_PER_BLOCK};
use crate::jbd2::{Jbd2, JournalMode};
use crate::pagecache::PageCache;

type Buf = Box<[u8; BLOCK_SIZE]>;

const SB_MAGIC: u64 = 0x4653_5349_4d53_4231; // "FSSIMSB1"

/// A file handle: the file's inode number.
pub type FileId = u64;

/// Operation counters for one mounted file system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsStats {
    pub creates: u64,
    pub deletes: u64,
    pub write_ops: u64,
    pub read_ops: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub fsyncs: u64,
    pub commits: u64,
    pub committed_blocks: u64,
}

impl std::ops::Add for FsStats {
    type Output = FsStats;

    fn add(self, o: FsStats) -> FsStats {
        FsStats {
            creates: self.creates + o.creates,
            deletes: self.deletes + o.deletes,
            write_ops: self.write_ops + o.write_ops,
            read_ops: self.read_ops + o.read_ops,
            bytes_written: self.bytes_written + o.bytes_written,
            bytes_read: self.bytes_read + o.bytes_read,
            fsyncs: self.fsyncs + o.fsyncs,
            commits: self.commits + o.commits,
            committed_blocks: self.committed_blocks + o.committed_blocks,
        }
    }
}

impl FsStats {
    pub fn delta(&self, e: &FsStats) -> FsStats {
        FsStats {
            creates: self.creates - e.creates,
            deletes: self.deletes - e.deletes,
            write_ops: self.write_ops - e.write_ops,
            read_ops: self.read_ops - e.read_ops,
            bytes_written: self.bytes_written - e.bytes_written,
            bytes_read: self.bytes_read - e.bytes_read,
            fsyncs: self.fsyncs - e.fsyncs,
            commits: self.commits - e.commits,
            committed_blocks: self.committed_blocks - e.committed_blocks,
        }
    }
}

/// The mounted file system.
pub struct FsSim {
    backend: Box<dyn CacheBackend>,
    geo: Geometry,
    mode: JournalMode,
    journal: Option<Jbd2>,
    pc: PageCache,
    /// name → (inode, name-table slot).
    names: HashMap<String, (u64, u64)>,
    free_name_slots: Vec<u64>,
    inodes: Vec<Inode>,
    free_inodes: Vec<u64>,
    /// One bit per data-area block; DRAM mirror of the on-disk bitmap.
    bitmap: Vec<u64>,
    free_data_blocks: u64,
    alloc_cursor: u64,
    stats: FsStats,
    /// Blocks per committed transaction, in commit order (Fig. 13).
    txn_sizes: Vec<u32>,
}

impl FsSim {
    /// Creates a new file system on `backend` and mounts it.
    ///
    /// In [`JournalMode::Tinca`] the backend must support transactions; in
    /// [`JournalMode::Jbd2`] a redo journal is formatted in the reserved
    /// journal region.
    pub fn mkfs(
        mut backend: Box<dyn CacheBackend>,
        geo: Geometry,
        mode: JournalMode,
    ) -> Result<FsSim, FsError> {
        if mode == JournalMode::Tinca && !backend.supports_txn() {
            return Err(FsError::Backend(
                "Tinca journal mode requires a transactional cache backend".into(),
            ));
        }
        // Superblock (the disk reads zeroes everywhere else, which decodes
        // as "all free" — no need to zero the metadata regions).
        let mut sb = [0u8; BLOCK_SIZE];
        sb[0..8].copy_from_slice(&SB_MAGIC.to_le_bytes());
        sb[8..16].copy_from_slice(&geo.total_blocks.to_le_bytes());
        sb[16..24].copy_from_slice(&geo.journal_blocks.to_le_bytes());
        sb[24..32].copy_from_slice(&geo.max_files.to_le_bytes());
        sb[32..40].copy_from_slice(&(geo.txn_block_limit as u64).to_le_bytes());
        sb[40] = match mode {
            JournalMode::None => 0,
            JournalMode::Jbd2 => 1,
            JournalMode::Tinca => 2,
        };
        backend.write_block(0, &sb).map_err(FsError::Backend)?;
        let journal = if mode == JournalMode::Jbd2 {
            Some(Jbd2::format(&geo, &mut *backend).map_err(FsError::Backend)?)
        } else {
            None
        };
        Ok(Self::fresh(backend, geo, mode, journal))
    }

    /// Mounts an existing file system (after a crash or clean shutdown):
    /// validates the superblock, runs journal recovery if in JBD2 mode,
    /// and rebuilds the DRAM mirrors from the committed on-disk state.
    ///
    /// (In Tinca mode the *cache* recovery — `TincaCache::recover` — must
    /// already have happened when constructing the backend.)
    pub fn mount(mut backend: Box<dyn CacheBackend>, geo: Geometry) -> Result<FsSim, FsError> {
        let mut sb = [0u8; BLOCK_SIZE];
        backend.read(0, &mut sb).map_err(FsError::Backend)?;
        if bytes::le_u64(&sb, 0) != SB_MAGIC {
            return Err(FsError::BadSuperblock("magic mismatch".into()));
        }
        let total = bytes::le_u64(&sb, 8);
        let jblocks = bytes::le_u64(&sb, 16);
        let max_files = bytes::le_u64(&sb, 24);
        if (total, jblocks, max_files) != (geo.total_blocks, geo.journal_blocks, geo.max_files) {
            return Err(FsError::BadSuperblock("geometry mismatch".into()));
        }
        let mode = match sb[40] {
            0 => JournalMode::None,
            1 => JournalMode::Jbd2,
            2 => JournalMode::Tinca,
            m => return Err(FsError::BadSuperblock(format!("unknown mode {m}"))),
        };
        let journal = match mode {
            JournalMode::Jbd2 => {
                Some(Jbd2::recover(&geo, &mut *backend).map_err(FsError::BadSuperblock)?)
            }
            _ => None,
        };
        let mut fs = Self::fresh(backend, geo, mode, journal);
        fs.rebuild_mirrors()?;
        Ok(fs)
    }

    fn fresh(
        backend: Box<dyn CacheBackend>,
        geo: Geometry,
        mode: JournalMode,
        journal: Option<Jbd2>,
    ) -> FsSim {
        let bitmap_words = (geo.data_blocks as usize).div_ceil(64);
        FsSim {
            backend,
            mode,
            journal,
            pc: PageCache::new(geo.dram_cache_blocks),
            names: HashMap::new(),
            free_name_slots: (0..geo.max_files).rev().collect(),
            inodes: vec![Inode::FREE; geo.max_files as usize],
            free_inodes: (0..geo.max_files).rev().collect(),
            bitmap: vec![0u64; bitmap_words],
            free_data_blocks: geo.data_blocks,
            alloc_cursor: 0,
            stats: FsStats::default(),
            txn_sizes: Vec::new(),
            geo,
        }
    }

    /// Rebuilds names/inodes/bitmap mirrors by scanning the metadata
    /// regions through the cache.
    fn rebuild_mirrors(&mut self) -> Result<(), FsError> {
        let geo = self.geo;
        let mut block = [0u8; BLOCK_SIZE];
        // Names.
        self.names.clear();
        self.free_name_slots.clear();
        for nb in 0..geo.name_blocks {
            self.backend
                .read(geo.name_off + nb, &mut block)
                .map_err(FsError::Backend)?;
            for i in 0..NAMES_PER_BLOCK {
                let slot = nb * NAMES_PER_BLOCK as u64 + i as u64;
                if slot >= geo.max_files {
                    break;
                }
                let e = &block[i * NAME_ENTRY_BYTES..(i + 1) * NAME_ENTRY_BYTES];
                let len = e[8] as usize;
                if len == 0 {
                    self.free_name_slots.push(slot);
                } else {
                    let ino = bytes::le_u64(e, 0);
                    let name = String::from_utf8_lossy(&e[9..9 + len]).into_owned();
                    self.names.insert(name, (ino, slot));
                }
            }
        }
        self.free_name_slots.reverse();
        // Inodes.
        self.free_inodes.clear();
        for ib in 0..geo.inode_blocks {
            self.backend
                .read(geo.inode_off + ib, &mut block)
                .map_err(FsError::Backend)?;
            for i in 0..crate::INODES_PER_BLOCK {
                let ino = ib * crate::INODES_PER_BLOCK as u64 + i as u64;
                if ino >= geo.max_files {
                    break;
                }
                let dec = Inode::decode(&block[i * INODE_BYTES..(i + 1) * INODE_BYTES]);
                if !dec.used {
                    self.free_inodes.push(ino);
                }
                self.inodes[ino as usize] = dec;
            }
        }
        self.free_inodes.reverse();
        // Bitmap.
        self.free_data_blocks = 0;
        for bb in 0..geo.bitmap_blocks {
            self.backend
                .read(geo.bitmap_off + bb, &mut block)
                .map_err(FsError::Backend)?;
            for w in 0..BLOCK_SIZE / 8 {
                let word_idx = bb as usize * (BLOCK_SIZE / 8) + w;
                if word_idx < self.bitmap.len() {
                    self.bitmap[word_idx] = bytes::le_u64(&block, w * 8);
                }
            }
        }
        for b in 0..geo.data_blocks {
            if !self.bit(b) {
                self.free_data_blocks += 1;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Staging helpers (everything funnels into the page-cache dirty set)
    // ------------------------------------------------------------------

    fn fetch_block(&mut self, blk: u64) -> Result<Buf, FsError> {
        if let Some(b) = self.pc.get(blk) {
            return Ok(Box::new(*b));
        }
        let mut buf: Buf = Box::new([0u8; BLOCK_SIZE]);
        self.backend
            .read(blk, &mut buf[..])
            .map_err(FsError::Backend)?;
        self.pc.insert_clean(blk, buf.clone());
        Ok(buf)
    }

    /// Mutates `blk` in the running transaction (read-modify-write).
    fn stage_mutate(
        &mut self,
        blk: u64,
        f: impl FnOnce(&mut [u8; BLOCK_SIZE]),
    ) -> Result<(), FsError> {
        if let Some(b) = self.pc.get_dirty_mut(blk) {
            f(b);
            return Ok(());
        }
        let mut buf = self.fetch_block(blk)?;
        f(&mut buf);
        self.pc.write(blk, buf);
        Ok(())
    }

    /// Replaces `blk` wholesale in the running transaction.
    fn stage_full(&mut self, blk: u64, data: Buf) {
        self.pc.write(blk, data);
    }

    fn stage_inode(&mut self, ino: u64) -> Result<(), FsError> {
        let (blk, off) = self.geo.inode_pos(ino);
        let bytes = self.inodes[ino as usize].encode();
        self.stage_mutate(blk, |b| b[off..off + INODE_BYTES].copy_from_slice(&bytes))
    }

    fn stage_name_entry(&mut self, slot: u64, ino: u64, name: Option<&str>) -> Result<(), FsError> {
        let (blk, off) = self.geo.name_entry_pos(slot);
        let mut entry = [0u8; NAME_ENTRY_BYTES];
        if let Some(n) = name {
            entry[0..8].copy_from_slice(&ino.to_le_bytes());
            entry[8] = n.len() as u8;
            entry[9..9 + n.len()].copy_from_slice(n.as_bytes());
        }
        self.stage_mutate(blk, |b| {
            b[off..off + NAME_ENTRY_BYTES].copy_from_slice(&entry);
        })
    }

    // ------------------------------------------------------------------
    // Bitmap / allocation
    // ------------------------------------------------------------------

    fn bit(&self, rel: u64) -> bool {
        self.bitmap[(rel / 64) as usize] & (1 << (rel % 64)) != 0
    }

    fn set_bit(&mut self, rel: u64, v: bool) -> Result<(), FsError> {
        let w = (rel / 64) as usize;
        if v {
            self.bitmap[w] |= 1 << (rel % 64);
        } else {
            self.bitmap[w] &= !(1 << (rel % 64));
        }
        // Stage the bitmap block containing this bit.
        let abs = self.geo.data_off + rel;
        let (bb, bit) = self.geo.bitmap_pos(abs);
        let byte = bit / 8;
        let mask = 1u8 << (bit % 8);
        self.stage_mutate(bb, |b| {
            if v {
                b[byte] |= mask;
            } else {
                b[byte] &= !mask;
            }
        })
    }

    /// Allocates one data block; returns its absolute disk block number.
    fn alloc_block(&mut self) -> Result<u64, FsError> {
        if self.free_data_blocks == 0 {
            return Err(FsError::NoSpace);
        }
        let n = self.geo.data_blocks;
        for probe in 0..n {
            let rel = (self.alloc_cursor + probe) % n;
            if !self.bit(rel) {
                self.alloc_cursor = (rel + 1) % n;
                self.set_bit(rel, true)?;
                self.free_data_blocks -= 1;
                return Ok(self.geo.data_off + rel);
            }
        }
        Err(FsError::NoSpace)
    }

    fn free_block(&mut self, abs: u64) -> Result<(), FsError> {
        debug_assert!(abs >= self.geo.data_off && abs < self.geo.total_blocks);
        let rel = abs - self.geo.data_off;
        debug_assert!(self.bit(rel), "double free of data block {abs}");
        self.set_bit(rel, false)?;
        self.free_data_blocks += 1;
        self.pc.forget(abs);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Pointer resolution
    // ------------------------------------------------------------------

    fn read_ptr(&mut self, blk: u64, slot: usize) -> Result<u64, FsError> {
        let buf = self.fetch_block(blk)?;
        Ok(bytes::le_u64(&buf[..], slot * 8))
    }

    fn write_ptr(&mut self, blk: u64, slot: usize, value: u64) -> Result<(), FsError> {
        self.stage_mutate(blk, |b| {
            b[slot * 8..slot * 8 + 8].copy_from_slice(&value.to_le_bytes());
        })
    }

    /// Resolves file block `fb` of inode `ino`, returning the data block or
    /// `NO_BLOCK` for a hole.
    fn resolve(&mut self, ino: u64, fb: u64) -> Result<u64, FsError> {
        let inode = self.inodes[ino as usize].clone();
        match classify(fb).ok_or(FsError::FileTooLarge)? {
            BlockPath::Direct(i) => Ok(inode.direct[i]),
            BlockPath::Indirect(i) => {
                if inode.indirect == NO_BLOCK {
                    return Ok(NO_BLOCK);
                }
                self.read_ptr(inode.indirect, i)
            }
            BlockPath::DoubleIndirect(i, j) => {
                if inode.dindirect == NO_BLOCK {
                    return Ok(NO_BLOCK);
                }
                let l2 = self.read_ptr(inode.dindirect, i)?;
                if l2 == NO_BLOCK {
                    return Ok(NO_BLOCK);
                }
                self.read_ptr(l2, j)
            }
        }
    }

    /// Resolves file block `fb`, allocating data and indirect blocks as
    /// needed (write path). Returns the block and whether it was freshly
    /// allocated — a fresh block may be a *reused* freed block whose old
    /// contents must never leak, so partial writes to it start from zero.
    fn resolve_alloc(&mut self, ino: u64, fb: u64) -> Result<(u64, bool), FsError> {
        match classify(fb).ok_or(FsError::FileTooLarge)? {
            BlockPath::Direct(i) => {
                if self.inodes[ino as usize].direct[i] == NO_BLOCK {
                    let b = self.alloc_block()?;
                    self.inodes[ino as usize].direct[i] = b;
                    self.stage_inode(ino)?;
                    return Ok((b, true));
                }
                Ok((self.inodes[ino as usize].direct[i], false))
            }
            BlockPath::Indirect(i) => {
                if self.inodes[ino as usize].indirect == NO_BLOCK {
                    let nb = self.alloc_block()?;
                    self.stage_full(nb, Box::new([0u8; BLOCK_SIZE]));
                    self.inodes[ino as usize].indirect = nb;
                    self.stage_inode(ino)?;
                }
                let ind = self.inodes[ino as usize].indirect;
                let ptr = self.read_ptr(ind, i)?;
                if ptr == NO_BLOCK {
                    let ptr = self.alloc_block()?;
                    self.write_ptr(ind, i, ptr)?;
                    return Ok((ptr, true));
                }
                Ok((ptr, false))
            }
            BlockPath::DoubleIndirect(i, j) => {
                if self.inodes[ino as usize].dindirect == NO_BLOCK {
                    let nb = self.alloc_block()?;
                    self.stage_full(nb, Box::new([0u8; BLOCK_SIZE]));
                    self.inodes[ino as usize].dindirect = nb;
                    self.stage_inode(ino)?;
                }
                let l1 = self.inodes[ino as usize].dindirect;
                let mut l2 = self.read_ptr(l1, i)?;
                if l2 == NO_BLOCK {
                    l2 = self.alloc_block()?;
                    self.stage_full(l2, Box::new([0u8; BLOCK_SIZE]));
                    self.write_ptr(l1, i, l2)?;
                }
                let ptr = self.read_ptr(l2, j)?;
                if ptr == NO_BLOCK {
                    let ptr = self.alloc_block()?;
                    self.write_ptr(l2, j, ptr)?;
                    return Ok((ptr, true));
                }
                Ok((ptr, false))
            }
        }
    }

    // ------------------------------------------------------------------
    // Public file operations
    // ------------------------------------------------------------------

    /// Creates an empty file.
    pub fn create(&mut self, name: &str) -> Result<FileId, FsError> {
        if name.len() > MAX_NAME_LEN {
            return Err(FsError::NameTooLong(name.into()));
        }
        if self.names.contains_key(name) {
            return Err(FsError::Exists(name.into()));
        }
        let ino = self.free_inodes.pop().ok_or(FsError::TooManyFiles)?;
        let Some(slot) = self.free_name_slots.pop() else {
            self.free_inodes.push(ino);
            return Err(FsError::TooManyFiles);
        };
        self.inodes[ino as usize] = Inode {
            used: true,
            ..Inode::FREE
        };
        self.stage_inode(ino)?;
        self.stage_name_entry(slot, ino, Some(name))?;
        self.names.insert(name.into(), (ino, slot));
        self.stats.creates += 1;
        self.maybe_commit()?;
        Ok(ino)
    }

    /// Opens an existing file.
    pub fn open(&self, name: &str) -> Result<FileId, FsError> {
        self.names
            .get(name)
            .map(|&(ino, _)| ino)
            .ok_or_else(|| FsError::NotFound(name.into()))
    }

    pub fn exists(&self, name: &str) -> bool {
        self.names.contains_key(name)
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.names.len()
    }

    pub fn file_size(&self, ino: FileId) -> u64 {
        self.inodes[ino as usize].size
    }

    /// Writes `data` at byte `offset` of the file, extending it if needed.
    pub fn write(&mut self, ino: FileId, offset: u64, data: &[u8]) -> Result<(), FsError> {
        debug_assert!(self.inodes[ino as usize].used, "write to free inode {ino}");
        let end = offset + data.len() as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let at = offset + pos as u64;
            let fb = at / BLOCK_SIZE as u64;
            let in_off = (at % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_off).min(data.len() - pos);
            let (blk, fresh) = self.resolve_alloc(ino, fb)?;
            if in_off == 0 && n == BLOCK_SIZE {
                let mut buf: Buf = Box::new([0u8; BLOCK_SIZE]);
                buf.copy_from_slice(&data[pos..pos + n]);
                self.stage_full(blk, buf);
            } else if fresh {
                // A freshly allocated (possibly reused) block: start from
                // zeroes so stale contents of a freed block never leak.
                let mut buf: Buf = Box::new([0u8; BLOCK_SIZE]);
                buf[in_off..in_off + n].copy_from_slice(&data[pos..pos + n]);
                self.stage_full(blk, buf);
            } else {
                self.stage_mutate(blk, |b| {
                    b[in_off..in_off + n].copy_from_slice(&data[pos..pos + n]);
                })?;
            }
            pos += n;
        }
        if end > self.inodes[ino as usize].size {
            self.inodes[ino as usize].size = end;
            self.stage_inode(ino)?;
        }
        self.stats.write_ops += 1;
        self.stats.bytes_written += data.len() as u64;
        self.maybe_commit()
    }

    /// Appends `data` to the end of the file.
    pub fn append(&mut self, ino: FileId, data: &[u8]) -> Result<(), FsError> {
        self.write(ino, self.inodes[ino as usize].size, data)
    }

    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read
    /// (short at end-of-file; holes read as zeroes).
    pub fn read(&mut self, ino: FileId, offset: u64, buf: &mut [u8]) -> Result<usize, FsError> {
        let size = self.inodes[ino as usize].size;
        if offset >= size {
            return Ok(0);
        }
        let want = buf.len().min((size - offset) as usize);
        let mut pos = 0usize;
        while pos < want {
            let at = offset + pos as u64;
            let fb = at / BLOCK_SIZE as u64;
            let in_off = (at % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_off).min(want - pos);
            let blk = self.resolve(ino, fb)?;
            if blk == NO_BLOCK {
                buf[pos..pos + n].fill(0);
            } else {
                let b = self.fetch_block(blk)?;
                buf[pos..pos + n].copy_from_slice(&b[in_off..in_off + n]);
            }
            pos += n;
        }
        self.stats.read_ops += 1;
        self.stats.bytes_read += want as u64;
        Ok(want)
    }

    /// Deletes a file, freeing all of its blocks.
    pub fn delete(&mut self, name: &str) -> Result<(), FsError> {
        let (ino, slot) = self
            .names
            .remove(name)
            .ok_or_else(|| FsError::NotFound(name.into()))?;
        let inode = self.inodes[ino as usize].clone();
        for d in inode.direct {
            if d != NO_BLOCK {
                self.free_block(d)?;
            }
        }
        if inode.indirect != NO_BLOCK {
            self.free_indirect(inode.indirect, 1)?;
        }
        if inode.dindirect != NO_BLOCK {
            self.free_indirect(inode.dindirect, 2)?;
        }
        self.inodes[ino as usize] = Inode::FREE;
        self.stage_inode(ino)?;
        self.stage_name_entry(slot, 0, None)?;
        self.free_inodes.push(ino);
        self.free_name_slots.push(slot);
        self.stats.deletes += 1;
        self.maybe_commit()
    }

    fn free_indirect(&mut self, blk: u64, depth: u32) -> Result<(), FsError> {
        for i in 0..PTRS_PER_BLOCK {
            let p = self.read_ptr(blk, i)?;
            if p == NO_BLOCK {
                continue;
            }
            if depth > 1 {
                self.free_indirect(p, depth - 1)?;
            } else {
                self.free_block(p)?;
            }
        }
        self.free_block(blk)
    }

    /// Shrinks (or logically extends) a file to `new_size` bytes. Data
    /// blocks wholly past the new end are freed; an extension leaves a
    /// hole (reads return zeroes), as POSIX `ftruncate` does.
    pub fn truncate(&mut self, ino: FileId, new_size: u64) -> Result<(), FsError> {
        let inode = self.inodes[ino as usize].clone();
        debug_assert!(inode.used, "truncate of free inode {ino}");
        let old_blocks = inode.block_count();
        let keep = new_size.div_ceil(BLOCK_SIZE as u64);
        // Free whole blocks past the new end, clearing their pointers.
        for fb in keep..old_blocks {
            let blk = self.resolve(ino, fb)?;
            if blk == NO_BLOCK {
                continue;
            }
            match classify(fb).ok_or(FsError::FileTooLarge)? {
                BlockPath::Direct(i) => {
                    self.inodes[ino as usize].direct[i] = NO_BLOCK;
                }
                BlockPath::Indirect(i) => {
                    let ind = self.inodes[ino as usize].indirect;
                    self.write_ptr(ind, i, NO_BLOCK)?;
                }
                BlockPath::DoubleIndirect(i, j) => {
                    let l1 = self.inodes[ino as usize].dindirect;
                    let l2 = self.read_ptr(l1, i)?;
                    self.write_ptr(l2, j, NO_BLOCK)?;
                }
            }
            self.free_block(blk)?;
        }
        // Zero the tail of the (kept) final partial block so a later
        // extension reads zeroes, not stale bytes.
        if new_size < inode.size && !new_size.is_multiple_of(BLOCK_SIZE as u64) {
            let fb = new_size / BLOCK_SIZE as u64;
            let blk = self.resolve(ino, fb)?;
            if blk != NO_BLOCK {
                let cut = (new_size % BLOCK_SIZE as u64) as usize;
                self.stage_mutate(blk, |b| b[cut..].fill(0))?;
            }
        }
        self.inodes[ino as usize].size = new_size;
        self.stage_inode(ino)?;
        self.maybe_commit()
    }

    /// Renames a file. Fails if `to` already exists.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        if to.len() > MAX_NAME_LEN {
            return Err(FsError::NameTooLong(to.into()));
        }
        if self.names.contains_key(to) {
            return Err(FsError::Exists(to.into()));
        }
        let (ino, slot) = self
            .names
            .remove(from)
            .ok_or_else(|| FsError::NotFound(from.into()))?;
        self.stage_name_entry(slot, ino, Some(to))?;
        self.names.insert(to.into(), (ino, slot));
        self.maybe_commit()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    fn maybe_commit(&mut self) -> Result<(), FsError> {
        if self.pc.dirty_len() >= self.geo.txn_block_limit {
            self.commit()?;
        }
        Ok(())
    }

    /// Commits the running transaction through the configured consistency
    /// mechanism. A no-op if nothing is staged.
    pub fn commit(&mut self) -> Result<(), FsError> {
        let dirty = self.pc.take_dirty();
        if dirty.is_empty() {
            return Ok(());
        }
        let _t = telemetry::span(telemetry::phase::FS_OP);
        let n = dirty.len();
        match self.mode {
            JournalMode::None => {
                for (blk, data) in &dirty {
                    self.backend
                        .write_block(*blk, &data[..])
                        .map_err(FsError::Backend)?;
                }
            }
            JournalMode::Jbd2 => {
                let Some(journal) = self.journal.as_mut() else {
                    return Err(FsError::BadSuperblock(
                        "mounted in JBD2 mode but the journal failed to open".into(),
                    ));
                };
                journal
                    .commit(&mut *self.backend, dirty)
                    .map_err(FsError::Backend)?;
            }
            JournalMode::Tinca => {
                self.backend.commit_txn(&dirty).map_err(FsError::Backend)?;
            }
        }
        self.stats.commits += 1;
        self.stats.committed_blocks += n as u64;
        self.txn_sizes.push(n as u32);
        Ok(())
    }

    /// `fsync`: makes everything written so far durable (data-journal mode
    /// commits the whole running transaction, as Ext4 does).
    pub fn fsync(&mut self) -> Result<(), FsError> {
        self.stats.fsyncs += 1;
        self.commit()
    }

    /// Orderly shutdown: commit, checkpoint the journal, flush the cache.
    pub fn unmount(mut self) -> Result<(), FsError> {
        self.commit()?;
        if let Some(j) = self.journal.as_mut() {
            j.checkpoint_all(&mut *self.backend)
                .map_err(FsError::Backend)?;
        }
        self.backend.flush_all().map_err(FsError::Backend)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn stats(&self) -> FsStats {
        self.stats
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    pub fn mode(&self) -> JournalMode {
        self.mode
    }

    /// Blocks per committed transaction, in commit order (Fig. 13).
    pub fn txn_sizes(&self) -> &[u32] {
        &self.txn_sizes
    }

    /// Journal statistics (JBD2 mode only).
    pub fn journal_stats(&self) -> Option<crate::jbd2::JournalStats> {
        self.journal.as_ref().map(|j| j.stats)
    }

    pub fn free_space_blocks(&self) -> u64 {
        self.free_data_blocks
    }

    /// Access to the cache backend (harnesses read device stats through it).
    pub fn backend(&self) -> &dyn CacheBackend {
        &*self.backend
    }

    pub fn backend_mut(&mut self) -> &mut dyn CacheBackend {
        &mut *self.backend
    }

    /// Invariant check for tests: DRAM bitmap free count matches the
    /// mirror, and every file's mapped blocks are marked allocated.
    pub fn check_consistency(&mut self) -> Result<(), String> {
        let mut counted = 0u64;
        for b in 0..self.geo.data_blocks {
            if !self.bit(b) {
                counted += 1;
            }
        }
        if counted != self.free_data_blocks {
            return Err(format!(
                "free count {} != bitmap free bits {counted}",
                self.free_data_blocks
            ));
        }
        let files: Vec<(String, u64)> = self
            .names
            .iter()
            .map(|(n, &(i, _))| (n.clone(), i))
            .collect();
        for (name, ino) in files {
            if !self.inodes[ino as usize].used {
                return Err(format!("file {name} points at free inode {ino}"));
            }
            let blocks = self.inodes[ino as usize].block_count();
            for fb in 0..blocks {
                let blk = self.resolve(ino, fb).map_err(|e| e.to_string())?;
                if blk != NO_BLOCK {
                    let rel = blk - self.geo.data_off;
                    if !self.bit(rel) {
                        return Err(format!("file {name} block {fb} -> {blk} marked free"));
                    }
                }
            }
        }
        Ok(())
    }
}
