//! Little-endian field decoding for on-disk structures.
//!
//! Every on-disk integer in fssim (superblocks, inodes, journal
//! descriptors, pointer blocks) is a fixed-width little-endian field at a
//! computed offset. Decoding via `buf[a..b].try_into().unwrap()` scatters
//! panicking conversions through crash-recovery code, where this crate
//! bans `unwrap`/`expect` (see `clippy.toml`); these helpers centralise
//! the conversion without any fallible step — the width is pinned by a
//! fixed-size copy. Out-of-range offsets still panic on the slice index,
//! exactly like the open-coded form, and indicate a caller bug (a
//! corrupted *value* is in-range by construction: callers read whole
//! blocks).

/// Reads the little-endian `u64` at byte offset `off` of `buf`.
pub(crate) fn le_u64(buf: &[u8], off: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(w)
}

/// Reads the little-endian `u32` at byte offset `off` of `buf`.
pub(crate) fn le_u32(buf: &[u8], off: usize) -> u32 {
    let mut w = [0u8; 4];
    w.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_at_offsets() {
        let mut buf = [0u8; 24];
        buf[8..16].copy_from_slice(&0xDEAD_BEEF_CAFE_u64.to_le_bytes());
        buf[16..20].copy_from_slice(&0x1234_5678_u32.to_le_bytes());
        assert_eq!(le_u64(&buf, 8), 0xDEAD_BEEF_CAFE);
        assert_eq!(le_u32(&buf, 16), 0x1234_5678);
        assert_eq!(le_u64(&buf, 0), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_offset_panics_like_slicing() {
        let buf = [0u8; 8];
        let _ = le_u64(&buf, 1);
    }
}
