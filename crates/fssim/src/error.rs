//! File-system error type.

use std::fmt;

/// Errors reported by [`crate::FsSim`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// No such file.
    NotFound(String),
    /// A file with this name already exists.
    Exists(String),
    /// File name longer than the name-table entry allows (55 bytes).
    NameTooLong(String),
    /// No free inodes / name slots.
    TooManyFiles,
    /// No free data blocks.
    NoSpace,
    /// Read/write beyond the maximum file size.
    FileTooLarge,
    /// The superblock is missing or damaged.
    BadSuperblock(String),
    /// The cache layer rejected a transaction.
    Backend(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(n) => write!(f, "no such file: {n}"),
            FsError::Exists(n) => write!(f, "file exists: {n}"),
            FsError::NameTooLong(n) => write!(f, "file name too long: {n}"),
            FsError::TooManyFiles => write!(f, "out of inodes or name slots"),
            FsError::NoSpace => write!(f, "out of data blocks"),
            FsError::FileTooLarge => write!(f, "file exceeds maximum size"),
            FsError::BadSuperblock(m) => write!(f, "bad superblock: {m}"),
            FsError::Backend(m) => write!(f, "cache backend error: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_subject() {
        assert!(FsError::NotFound("a.txt".into())
            .to_string()
            .contains("a.txt"));
        assert!(FsError::NoSpace.to_string().contains("data blocks"));
    }
}
