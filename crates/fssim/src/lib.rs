// Test code may unwrap/expect/panic freely; non-test code is held to the
// disallowed-methods ban in this crate's clippy.toml.
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]

//! # fssim — a mini block file system with pluggable crash consistency
//!
//! The paper compares two stacks (Fig. 1):
//!
//! * **Classic** — Ext4 + JBD2 redo journaling above a Flashcache-managed
//!   NVM block cache: every committed block is written twice (journal copy,
//!   then checkpoint copy), and every cache write synchronously rewrites a
//!   metadata block.
//! * **Tinca** — the same file system with journaling *offloaded* to the
//!   transactional NVM cache: JBD2's `start_this_handle` /
//!   `jbd2_journal_commit_transaction` are replaced by `tinca_init_txn` /
//!   `tinca_commit`, and checkpointing is removed entirely (§5.1).
//!
//! `fssim` reproduces that comparison in user space: a small block file
//! system (flat namespace, inode table, block bitmap, direct + indirect +
//! double-indirect pointers, DRAM page cache) whose *commit* step is
//! selected by [`JournalMode`]:
//!
//! * [`JournalMode::Jbd2`] — data-journaling redo log with descriptor /
//!   commit blocks, circular journal space, lazy checkpointing, and replay
//!   recovery; runs on any [`CacheBackend`].
//! * [`JournalMode::Tinca`] — one `commit_txn` call per transaction; needs
//!   a transactional backend.
//! * [`JournalMode::None`] — in-place writes, no crash consistency
//!   (the paper's "Ext4 without journaling" baseline of Figs. 3–4).
//!
//! ```
//! use fssim::stack::{build, StackConfig, System};
//!
//! let mut stack = build(&StackConfig::tiny(System::Tinca)).unwrap();
//! let f = stack.fs.create("greeting.txt").unwrap();
//! stack.fs.write(f, 0, b"hello nvm").unwrap();
//! stack.fs.fsync().unwrap(); // one Tinca transaction, no journal
//! let mut buf = [0u8; 9];
//! stack.fs.read(f, 0, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello nvm");
//! ```

mod backend;
mod bytes;
mod error;
mod fs;
mod geometry;
mod inode;
mod jbd2;
mod pagecache;
mod snapshot;
pub mod stack;

pub use backend::{CacheBackend, ClassicBackend, RawDiskBackend, TincaBackend, UbjBackend};
pub use error::FsError;
pub use fs::{FileId, FsSim, FsStats};
pub use geometry::Geometry;
pub use inode::{Inode, INODES_PER_BLOCK, MAX_FILE_BLOCKS};
pub use jbd2::{Jbd2, JournalMode, JournalStats};
pub use snapshot::CacheSnapshot;
