//! Cache-layer abstraction: the file system runs identically above Tinca,
//! Classic, or the bare disk; only the commit step differs.

use blockdev::{BlockDevice, BLOCK_SIZE};
use classic::ClassicCache;
use std::sync::Arc;
use tinca::TincaCache;
use ubj::UbjCache;

/// What the file system needs from the layer below it.
///
/// All I/O is fallible: the storage substrate can inject transient and
/// permanent disk faults, and each backend either absorbs them (Tinca's
/// retry/quarantine machinery) or surfaces them as a `String` the file
/// system wraps in `FsError::Backend`.
pub trait CacheBackend {
    /// Reads one block (cache-aware).
    fn read(&mut self, blk: u64, buf: &mut [u8]) -> Result<(), String>;

    /// Durably writes one block (used by JBD2 and no-journal modes; every
    /// call is persistent when it returns, which is the ordering JBD2's
    /// commit-record protocol relies on).
    fn write_block(&mut self, blk: u64, data: &[u8]) -> Result<(), String>;

    /// Atomically commits a set of blocks (used by Tinca mode).
    /// Backends without transactional support return an error.
    fn commit_txn(&mut self, blocks: &[(u64, Box<[u8; BLOCK_SIZE]>)]) -> Result<(), String>;

    /// Whether [`Self::commit_txn`] is supported.
    fn supports_txn(&self) -> bool;

    /// Writes every dirty cached block to disk (orderly shutdown).
    fn flush_all(&mut self) -> Result<(), String>;

    /// Reads without populating the cache (verification).
    fn read_nocache(&self, blk: u64, buf: &mut [u8]) -> Result<(), String>;

    /// Cache-internal invariant check (verification harnesses).
    fn check(&self) -> Result<(), String> {
        Ok(())
    }

    /// Cache counters for figure harnesses (zero for cacheless backends).
    fn cache_snapshot(&self) -> crate::CacheSnapshot {
        crate::CacheSnapshot::default()
    }

    /// Device flush barrier (REQ_FLUSH) from the file system. The legacy
    /// write-back cache drains dirty blocks to disk; a transactional NVM
    /// cache needs nothing — its commit *is* the durability point.
    fn flush_barrier(&mut self) -> Result<(), String> {
        Ok(())
    }

    /// NVM address ranges holding cache metadata (commit records, cache
    /// entries, ring buffer). Crash harnesses hand these to the
    /// persist-order analyzer so its torn-update rule applies only where
    /// tearing corrupts recovery. Empty for layers without NVM metadata.
    fn metadata_ranges(&self) -> Vec<std::ops::Range<usize>> {
        Vec::new()
    }

    /// Downcasting hook so harnesses can reach implementation-specific
    /// counters (e.g. UBJ's memcpy/stall statistics).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Tinca as the cache layer: `write_block` is a one-block transaction,
/// `commit_txn` maps directly onto `tinca_commit`.
pub struct TincaBackend {
    pub cache: TincaCache,
}

impl TincaBackend {
    pub fn new(cache: TincaCache) -> Self {
        Self { cache }
    }
}

impl CacheBackend for TincaBackend {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn read(&mut self, blk: u64, buf: &mut [u8]) -> Result<(), String> {
        self.cache.read(blk, buf).map_err(|e| e.to_string())
    }

    fn write_block(&mut self, blk: u64, data: &[u8]) -> Result<(), String> {
        let mut txn = self.cache.init_txn();
        txn.write(blk, data);
        self.cache.commit(&txn).map_err(|e| e.to_string())
    }

    fn commit_txn(&mut self, blocks: &[(u64, Box<[u8; BLOCK_SIZE]>)]) -> Result<(), String> {
        let mut txn = self.cache.init_txn();
        for (blk, data) in blocks {
            txn.write(*blk, &data[..]);
        }
        self.cache.commit(&txn).map_err(|e| e.to_string())
    }

    fn supports_txn(&self) -> bool {
        true
    }

    fn flush_all(&mut self) -> Result<(), String> {
        self.cache.flush_all().map_err(|e| e.to_string())
    }

    fn read_nocache(&self, blk: u64, buf: &mut [u8]) -> Result<(), String> {
        self.cache.read_nocache(blk, buf).map_err(|e| e.to_string())
    }

    fn check(&self) -> Result<(), String> {
        self.cache.check_consistency()
    }

    fn cache_snapshot(&self) -> crate::CacheSnapshot {
        let s = self.cache.stats();
        crate::CacheSnapshot {
            write_hits: s.write_hits,
            write_misses: s.write_misses,
            read_hits: s.read_hits,
            read_misses: s.read_misses,
            evictions: s.evictions,
            writebacks: s.writebacks,
        }
    }

    fn metadata_ranges(&self) -> Vec<std::ops::Range<usize>> {
        // Everything below the data area: header, ring, entry table.
        let metadata = 0..self.cache.layout().data_off;
        vec![metadata]
    }
}

/// Flashcache-like cache layer: no transactions; the FS must journal.
pub struct ClassicBackend {
    pub cache: ClassicCache,
}

impl ClassicBackend {
    pub fn new(cache: ClassicCache) -> Self {
        Self { cache }
    }
}

impl CacheBackend for ClassicBackend {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn read(&mut self, blk: u64, buf: &mut [u8]) -> Result<(), String> {
        self.cache.read(blk, buf).map_err(|e| e.to_string())
    }

    fn write_block(&mut self, blk: u64, data: &[u8]) -> Result<(), String> {
        self.cache.write(blk, data).map_err(|e| e.to_string())
    }

    fn commit_txn(&mut self, _blocks: &[(u64, Box<[u8; BLOCK_SIZE]>)]) -> Result<(), String> {
        Err("Classic cache has no transactional support — use JBD2 journaling above it".into())
    }

    fn supports_txn(&self) -> bool {
        false
    }

    fn flush_all(&mut self) -> Result<(), String> {
        self.cache.flush_all().map_err(|e| e.to_string())
    }

    fn read_nocache(&self, blk: u64, buf: &mut [u8]) -> Result<(), String> {
        self.cache.read_nocache(blk, buf).map_err(|e| e.to_string())
    }

    fn check(&self) -> Result<(), String> {
        self.cache.check_consistency()
    }

    fn cache_snapshot(&self) -> crate::CacheSnapshot {
        let s = self.cache.stats();
        crate::CacheSnapshot {
            write_hits: s.write_hits,
            write_misses: s.write_misses,
            read_hits: s.read_hits,
            read_misses: s.read_misses,
            evictions: s.evictions,
            writebacks: s.writebacks,
        }
    }

    fn flush_barrier(&mut self) -> Result<(), String> {
        self.cache.flush_barrier().map_err(|e| e.to_string())
    }
}

/// UBJ-like layer (§5.4.4 comparison baseline): the NVM *is* the buffer
/// cache; commits freeze blocks in place, checkpoints drain whole
/// transactions to disk.
pub struct UbjBackend {
    pub cache: UbjCache,
}

impl UbjBackend {
    pub fn new(cache: UbjCache) -> Self {
        Self { cache }
    }
}

impl CacheBackend for UbjBackend {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn read(&mut self, blk: u64, buf: &mut [u8]) -> Result<(), String> {
        self.cache.read(blk, buf);
        Ok(())
    }

    fn write_block(&mut self, blk: u64, data: &[u8]) -> Result<(), String> {
        let mut b: Box<[u8; BLOCK_SIZE]> = Box::new([0u8; BLOCK_SIZE]);
        b.copy_from_slice(data);
        self.cache.commit_txn(&[(blk, b)])
    }

    fn commit_txn(&mut self, blocks: &[(u64, Box<[u8; BLOCK_SIZE]>)]) -> Result<(), String> {
        self.cache.commit_txn(blocks)
    }

    fn supports_txn(&self) -> bool {
        true
    }

    fn flush_all(&mut self) -> Result<(), String> {
        self.cache.checkpoint_all();
        Ok(())
    }

    fn read_nocache(&self, blk: u64, buf: &mut [u8]) -> Result<(), String> {
        self.cache.read_nocache(blk, buf);
        Ok(())
    }

    fn check(&self) -> Result<(), String> {
        self.cache.check_consistency()
    }

    fn cache_snapshot(&self) -> crate::CacheSnapshot {
        let s = self.cache.stats();
        crate::CacheSnapshot {
            write_hits: s.write_hits,
            write_misses: s.write_misses,
            read_hits: s.read_hits,
            read_misses: s.read_misses,
            evictions: s.evictions,
            writebacks: s.checkpoint_blocks,
        }
    }
}

/// No cache at all — the file system talks straight to the disk.
/// Useful as a correctness baseline in tests.
pub struct RawDiskBackend {
    pub disk: Arc<dyn BlockDevice>,
}

impl RawDiskBackend {
    pub fn new(disk: Arc<dyn BlockDevice>) -> Self {
        Self { disk }
    }
}

impl CacheBackend for RawDiskBackend {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn read(&mut self, blk: u64, buf: &mut [u8]) -> Result<(), String> {
        self.disk.read_block(blk, buf).map_err(|e| e.to_string())
    }

    fn write_block(&mut self, blk: u64, data: &[u8]) -> Result<(), String> {
        self.disk.write_block(blk, data).map_err(|e| e.to_string())
    }

    fn commit_txn(&mut self, _blocks: &[(u64, Box<[u8; BLOCK_SIZE]>)]) -> Result<(), String> {
        Err("raw disk has no transactional support".into())
    }

    fn supports_txn(&self) -> bool {
        false
    }

    fn flush_all(&mut self) -> Result<(), String> {
        Ok(())
    }

    fn read_nocache(&self, blk: u64, buf: &mut [u8]) -> Result<(), String> {
        self.disk.read_block(blk, buf).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{DiskKind, SimDisk};
    use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};

    #[test]
    fn tinca_backend_supports_txn() {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 14, clock);
        let cache = TincaCache::format(
            nvm,
            disk,
            tinca::TincaConfig {
                ring_bytes: 4096,
                ..Default::default()
            },
        );
        let mut be = TincaBackend::new(cache);
        assert!(be.supports_txn());
        let blocks = vec![(5u64, Box::new([7u8; BLOCK_SIZE]))];
        be.commit_txn(&blocks).unwrap();
        let mut buf = [0u8; BLOCK_SIZE];
        be.read(5, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
    }

    #[test]
    fn classic_backend_rejects_txn() {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(2 << 20, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 14, clock);
        let cache = ClassicCache::format(
            nvm,
            disk,
            classic::ClassicConfig {
                assoc: 64,
                ..Default::default()
            },
        );
        let mut be = ClassicBackend::new(cache);
        assert!(!be.supports_txn());
        assert!(be.commit_txn(&[]).is_err());
        be.write_block(3, &[9u8; BLOCK_SIZE]).unwrap();
        let mut buf = [0u8; BLOCK_SIZE];
        be.read(3, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
    }

    #[test]
    fn raw_disk_round_trip() {
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 10, SimClock::new());
        let mut be = RawDiskBackend::new(disk);
        be.write_block(1, &[3u8; BLOCK_SIZE]).unwrap();
        let mut buf = [0u8; BLOCK_SIZE];
        be.read_nocache(1, &mut buf).unwrap();
        assert_eq!(buf[0], 3);
    }
}
