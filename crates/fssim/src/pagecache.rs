//! DRAM page cache: the running transaction's dirty blocks plus a bounded
//! clean read cache. Both stacks (Tinca and Classic) get the same page
//! cache, so DRAM caching never skews the comparison.

use std::collections::HashMap;

use blockdev::BLOCK_SIZE;

type Buf = Box<[u8; BLOCK_SIZE]>;

/// DRAM block cache with a dirty map (read-your-writes for the running
/// transaction) and a clean LRU.
pub struct PageCache {
    dirty: HashMap<u64, Buf>,
    dirty_order: Vec<u64>,
    clean: HashMap<u64, Buf>,
    clean_lru: Vec<u64>, // front = LRU; small enough for Vec ops
    clean_capacity: usize,
}

impl PageCache {
    pub fn new(clean_capacity: usize) -> Self {
        Self {
            dirty: HashMap::new(),
            dirty_order: Vec::new(),
            clean: HashMap::new(),
            clean_lru: Vec::new(),
            clean_capacity,
        }
    }

    /// Stages `data` as the dirty contents of `blk`.
    pub fn write(&mut self, blk: u64, data: Buf) {
        if self.dirty.insert(blk, data).is_none() {
            self.dirty_order.push(blk);
        }
        // A dirty copy supersedes any clean copy.
        if self.clean.remove(&blk).is_some() {
            self.clean_lru.retain(|&b| b != blk);
        }
    }

    /// Returns the newest cached contents of `blk`, if present.
    pub fn get(&mut self, blk: u64) -> Option<&[u8; BLOCK_SIZE]> {
        if let Some(b) = self.dirty.get(&blk) {
            return Some(b);
        }
        if self.clean.contains_key(&blk) {
            // Touch LRU.
            if let Some(pos) = self.clean_lru.iter().position(|&b| b == blk) {
                self.clean_lru.remove(pos);
                self.clean_lru.push(blk);
            }
            return self.clean.get(&blk).map(|b| &**b);
        }
        None
    }

    /// Mutable access to the dirty copy of `blk`, if staged.
    pub fn get_dirty_mut(&mut self, blk: u64) -> Option<&mut [u8; BLOCK_SIZE]> {
        self.dirty.get_mut(&blk).map(|b| &mut **b)
    }

    /// Inserts a clean copy (after a backend read), evicting the clean LRU
    /// block if at capacity. Dirty copies are never evicted.
    pub fn insert_clean(&mut self, blk: u64, data: Buf) {
        if self.dirty.contains_key(&blk) || self.clean_capacity == 0 {
            return;
        }
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.clean.entry(blk) {
            e.insert(data);
            return;
        }
        if self.clean.len() >= self.clean_capacity {
            let victim = self.clean_lru.remove(0);
            self.clean.remove(&victim);
        }
        self.clean.insert(blk, data);
        self.clean_lru.push(blk);
    }

    /// Number of dirty (staged) blocks.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Drains the dirty set in first-write order (commit time). The blocks
    /// move to the clean cache so subsequent reads still hit DRAM.
    pub fn take_dirty(&mut self) -> Vec<(u64, Buf)> {
        let mut out = Vec::with_capacity(self.dirty.len());
        for blk in self.dirty_order.drain(..) {
            if let Some(buf) = self.dirty.remove(&blk) {
                out.push((blk, buf));
            }
        }
        debug_assert!(self.dirty.is_empty());
        // Keep clean copies of the committed blocks (bounded).
        for (blk, buf) in &out {
            if self.clean_capacity > 0 && !self.clean.contains_key(blk) {
                if self.clean.len() >= self.clean_capacity {
                    let victim = self.clean_lru.remove(0);
                    self.clean.remove(&victim);
                }
                self.clean.insert(*blk, buf.clone());
                self.clean_lru.push(*blk);
            }
        }
        out
    }

    /// Forgets a block entirely (file deletion).
    pub fn forget(&mut self, blk: u64) {
        if self.dirty.remove(&blk).is_some() {
            self.dirty_order.retain(|&b| b != blk);
        }
        if self.clean.remove(&blk).is_some() {
            self.clean_lru.retain(|&b| b != blk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(b: u8) -> Buf {
        Box::new([b; BLOCK_SIZE])
    }

    #[test]
    fn read_your_writes() {
        let mut pc = PageCache::new(4);
        pc.write(1, buf(7));
        assert_eq!(pc.get(1).unwrap()[0], 7);
        assert_eq!(pc.dirty_len(), 1);
    }

    #[test]
    fn dirty_supersedes_clean() {
        let mut pc = PageCache::new(4);
        pc.insert_clean(1, buf(1));
        pc.write(1, buf(2));
        assert_eq!(pc.get(1).unwrap()[0], 2);
        let drained = pc.take_dirty();
        assert_eq!(drained.len(), 1);
        // Clean copy of the committed version remains readable.
        assert_eq!(pc.get(1).unwrap()[0], 2);
    }

    #[test]
    fn clean_lru_evicts_in_order() {
        let mut pc = PageCache::new(2);
        pc.insert_clean(1, buf(1));
        pc.insert_clean(2, buf(2));
        pc.get(1); // touch 1, so 2 becomes LRU
        pc.insert_clean(3, buf(3));
        assert!(pc.get(2).is_none(), "2 was LRU");
        assert!(pc.get(1).is_some());
        assert!(pc.get(3).is_some());
    }

    #[test]
    fn take_dirty_preserves_first_write_order() {
        let mut pc = PageCache::new(0);
        pc.write(5, buf(1));
        pc.write(3, buf(2));
        pc.write(5, buf(9)); // rewrite keeps original position
        let drained = pc.take_dirty();
        let order: Vec<u64> = drained.iter().map(|(b, _)| *b).collect();
        assert_eq!(order, vec![5, 3]);
        assert_eq!(drained[0].1[0], 9);
        assert_eq!(pc.dirty_len(), 0);
    }

    #[test]
    fn forget_removes_both_copies() {
        let mut pc = PageCache::new(4);
        pc.write(1, buf(1));
        pc.forget(1);
        assert!(pc.get(1).is_none());
        assert_eq!(pc.take_dirty().len(), 0);
        pc.insert_clean(2, buf(2));
        pc.forget(2);
        assert!(pc.get(2).is_none());
    }

    #[test]
    fn zero_capacity_keeps_no_clean_blocks() {
        let mut pc = PageCache::new(0);
        pc.insert_clean(1, buf(1));
        assert!(pc.get(1).is_none());
        pc.write(2, buf(2));
        let _ = pc.take_dirty();
        assert!(pc.get(2).is_none());
    }
}
