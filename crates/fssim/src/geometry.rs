//! On-disk layout of the mini file system.

use blockdev::BLOCK_SIZE;

/// Bytes per name-table entry (8 B inode + 1 B length + ≤55 B name).
pub const NAME_ENTRY_BYTES: usize = 64;
/// Name entries per block.
pub const NAMES_PER_BLOCK: usize = BLOCK_SIZE / NAME_ENTRY_BYTES;
/// Maximum file-name length.
pub const MAX_NAME_LEN: usize = 55;

/// Disk layout:
///
/// ```text
/// [0]              superblock
/// [1 .. j]         journal (JBD2 mode only; reserved in all modes)
/// [j .. n]         name table
/// [n .. i]         inode table
/// [i .. b]         block bitmap (covers the data area)
/// [b .. end]       data blocks
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    pub total_blocks: u64,
    pub journal_blocks: u64,
    pub max_files: u64,
    pub journal_off: u64,
    pub name_off: u64,
    pub name_blocks: u64,
    pub inode_off: u64,
    pub inode_blocks: u64,
    pub bitmap_off: u64,
    pub bitmap_blocks: u64,
    pub data_off: u64,
    pub data_blocks: u64,
    /// Commit the running transaction once it stages this many blocks
    /// (JBD2 batches transactions; the paper's Fig. 13 measures thousands
    /// of blocks per transaction).
    pub txn_block_limit: usize,
    /// DRAM page-cache capacity in clean blocks (both stacks get the same
    /// page cache so DRAM never skews the comparison; the UBJ stack sets 0
    /// because its buffer cache *is* the NVM).
    pub dram_cache_blocks: usize,
}

impl Geometry {
    /// Computes a layout for `total_blocks`, reserving `journal_blocks` for
    /// the redo journal and provisioning `max_files` files.
    pub fn compute(total_blocks: u64, journal_blocks: u64, max_files: u64) -> Geometry {
        Self::with_txn_limit(total_blocks, journal_blocks, max_files, 128)
    }

    /// [`Self::compute`] with an explicit transaction batch size.
    pub fn with_txn_limit(
        total_blocks: u64,
        journal_blocks: u64,
        max_files: u64,
        txn_block_limit: usize,
    ) -> Geometry {
        let journal_off = 1;
        let name_off = journal_off + journal_blocks;
        let name_blocks = max_files.div_ceil(NAMES_PER_BLOCK as u64);
        let inode_off = name_off + name_blocks;
        let inode_blocks = max_files.div_ceil(crate::INODES_PER_BLOCK as u64);
        let bitmap_off = inode_off + inode_blocks;
        // Solve for the bitmap size: each bitmap block maps 32768 data blocks.
        // Audited panic: a disk too small to hold its own metadata is a
        // configuration bug, caught while the geometry is being built —
        // never a runtime storage fault (the assert below is its twin).
        #[allow(clippy::disallowed_methods)]
        let remaining = total_blocks
            .checked_sub(bitmap_off)
            .expect("disk too small for metadata");
        let bits_per_block = (BLOCK_SIZE * 8) as u64;
        let bitmap_blocks = remaining.div_ceil(bits_per_block + 1).max(1);
        let data_off = bitmap_off + bitmap_blocks;
        let data_blocks = total_blocks - data_off;
        assert!(data_blocks > 16, "disk too small: no data area left");
        Geometry {
            total_blocks,
            journal_blocks,
            max_files,
            journal_off,
            name_off,
            name_blocks,
            inode_off,
            inode_blocks,
            bitmap_off,
            bitmap_blocks,
            data_off,
            data_blocks,
            txn_block_limit,
            dram_cache_blocks: 4096,
        }
    }

    /// Overrides the DRAM page-cache size.
    pub fn with_dram_cache(mut self, blocks: usize) -> Geometry {
        self.dram_cache_blocks = blocks;
        self
    }

    /// The block and in-block slot of name entry `slot`.
    pub fn name_entry_pos(&self, slot: u64) -> (u64, usize) {
        (
            self.name_off + slot / NAMES_PER_BLOCK as u64,
            (slot % NAMES_PER_BLOCK as u64) as usize * NAME_ENTRY_BYTES,
        )
    }

    /// The block and in-block slot of inode `ino`.
    pub fn inode_pos(&self, ino: u64) -> (u64, usize) {
        let per = crate::INODES_PER_BLOCK as u64;
        (
            self.inode_off + ino / per,
            (ino % per) as usize * crate::inode::INODE_BYTES,
        )
    }

    /// The bitmap block and bit index covering data block `b` (an absolute
    /// disk block in the data area).
    pub fn bitmap_pos(&self, b: u64) -> (u64, usize) {
        debug_assert!(b >= self.data_off && b < self.total_blocks);
        let rel = b - self.data_off;
        let bits = (BLOCK_SIZE * 8) as u64;
        (self.bitmap_off + rel / bits, (rel % bits) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let g = Geometry::compute(1 << 20, 2048, 10_000);
        assert!(g.journal_off < g.name_off);
        assert!(g.name_off < g.inode_off);
        assert!(g.inode_off < g.bitmap_off);
        assert!(g.bitmap_off < g.data_off);
        assert_eq!(g.data_off + g.data_blocks, g.total_blocks);
    }

    #[test]
    fn bitmap_covers_data_area() {
        let g = Geometry::compute(1 << 20, 2048, 10_000);
        let bits = g.bitmap_blocks * (BLOCK_SIZE * 8) as u64;
        assert!(bits >= g.data_blocks, "bitmap too small");
        // Last data block maps inside the bitmap region.
        let (bb, _) = g.bitmap_pos(g.total_blocks - 1);
        assert!(bb < g.data_off);
        assert!(bb >= g.bitmap_off);
    }

    #[test]
    fn positions_round_trip() {
        let g = Geometry::compute(1 << 18, 512, 1000);
        let (b0, o0) = g.name_entry_pos(0);
        assert_eq!((b0, o0), (g.name_off, 0));
        let (b1, o1) = g.name_entry_pos(NAMES_PER_BLOCK as u64 + 1);
        assert_eq!(b1, g.name_off + 1);
        assert_eq!(o1, NAME_ENTRY_BYTES);
        let (ib, io) = g.inode_pos(crate::INODES_PER_BLOCK as u64);
        assert_eq!(ib, g.inode_off + 1);
        assert_eq!(io, 0);
    }

    #[test]
    #[should_panic]
    fn tiny_disk_panics() {
        let _ = Geometry::compute(64, 32, 100_000);
    }
}
