//! Inodes: 256 bytes each, direct + indirect + double-indirect pointers.

use blockdev::BLOCK_SIZE;

use crate::bytes;

/// Bytes per on-disk inode.
pub const INODE_BYTES: usize = 256;
/// Inodes per 4 KB block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_BYTES;
/// Direct block pointers per inode.
pub const NDIRECT: usize = 12;
/// Block pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 8;
/// Maximum file size in blocks (≈ 1 GB with 4 KB blocks).
pub const MAX_FILE_BLOCKS: u64 =
    NDIRECT as u64 + PTRS_PER_BLOCK as u64 + (PTRS_PER_BLOCK * PTRS_PER_BLOCK) as u64;

/// Sentinel for "no block assigned".
pub const NO_BLOCK: u64 = 0;

/// An in-memory inode (the decoded form of 256 on-disk bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inode {
    pub used: bool,
    pub size: u64,
    pub direct: [u64; NDIRECT],
    pub indirect: u64,
    pub dindirect: u64,
}

impl Inode {
    pub const FREE: Inode = Inode {
        used: false,
        size: 0,
        direct: [NO_BLOCK; NDIRECT],
        indirect: NO_BLOCK,
        dindirect: NO_BLOCK,
    };

    /// Number of blocks `size` bytes occupy.
    pub fn block_count(&self) -> u64 {
        self.size.div_ceil(BLOCK_SIZE as u64)
    }

    pub fn encode(&self) -> [u8; INODE_BYTES] {
        let mut out = [0u8; INODE_BYTES];
        out[0] = self.used as u8;
        out[8..16].copy_from_slice(&self.size.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            out[16 + i * 8..24 + i * 8].copy_from_slice(&d.to_le_bytes());
        }
        let base = 16 + NDIRECT * 8;
        out[base..base + 8].copy_from_slice(&self.indirect.to_le_bytes());
        out[base + 8..base + 16].copy_from_slice(&self.dindirect.to_le_bytes());
        out
    }

    pub fn decode(raw: &[u8]) -> Inode {
        let mut ino = Inode::FREE;
        ino.used = raw[0] != 0;
        ino.size = bytes::le_u64(raw, 8);
        for i in 0..NDIRECT {
            ino.direct[i] = bytes::le_u64(raw, 16 + i * 8);
        }
        let base = 16 + NDIRECT * 8;
        ino.indirect = bytes::le_u64(raw, base);
        ino.dindirect = bytes::le_u64(raw, base + 8);
        ino
    }
}

/// Classification of a file-block index into the pointer hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockPath {
    Direct(usize),
    /// `(slot in indirect block)`
    Indirect(usize),
    /// `(slot in dindirect block, slot in second-level block)`
    DoubleIndirect(usize, usize),
}

/// Maps file block index `fb` to its pointer location.
pub fn classify(fb: u64) -> Option<BlockPath> {
    if fb < NDIRECT as u64 {
        return Some(BlockPath::Direct(fb as usize));
    }
    let fb = fb - NDIRECT as u64;
    if fb < PTRS_PER_BLOCK as u64 {
        return Some(BlockPath::Indirect(fb as usize));
    }
    let fb = fb - PTRS_PER_BLOCK as u64;
    if fb < (PTRS_PER_BLOCK * PTRS_PER_BLOCK) as u64 {
        return Some(BlockPath::DoubleIndirect(
            (fb / PTRS_PER_BLOCK as u64) as usize,
            (fb % PTRS_PER_BLOCK as u64) as usize,
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut ino = Inode::FREE;
        ino.used = true;
        ino.size = 123_456_789;
        ino.direct[0] = 42;
        ino.direct[11] = 99;
        ino.indirect = 1000;
        ino.dindirect = 2000;
        assert_eq!(Inode::decode(&ino.encode()), ino);
    }

    #[test]
    fn free_inode_is_zeroes() {
        assert!(Inode::FREE.encode().iter().all(|&b| b == 0));
        assert_eq!(Inode::decode(&[0u8; INODE_BYTES]), Inode::FREE);
    }

    #[test]
    fn block_count_rounds_up() {
        let mut ino = Inode::FREE;
        ino.size = 1;
        assert_eq!(ino.block_count(), 1);
        ino.size = BLOCK_SIZE as u64;
        assert_eq!(ino.block_count(), 1);
        ino.size = BLOCK_SIZE as u64 + 1;
        assert_eq!(ino.block_count(), 2);
    }

    #[test]
    fn classify_boundaries() {
        assert_eq!(classify(0), Some(BlockPath::Direct(0)));
        assert_eq!(classify(11), Some(BlockPath::Direct(11)));
        assert_eq!(classify(12), Some(BlockPath::Indirect(0)));
        assert_eq!(classify(12 + 511), Some(BlockPath::Indirect(511)));
        assert_eq!(classify(12 + 512), Some(BlockPath::DoubleIndirect(0, 0)));
        assert_eq!(
            classify(12 + 512 + 512 * 512 - 1),
            Some(BlockPath::DoubleIndirect(511, 511))
        );
        assert_eq!(classify(MAX_FILE_BLOCKS), None);
    }

    #[test]
    fn max_file_is_about_a_gigabyte() {
        let bytes = MAX_FILE_BLOCKS * BLOCK_SIZE as u64;
        assert!(bytes > 1 << 30);
    }
}
