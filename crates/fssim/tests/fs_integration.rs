// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! End-to-end file-system tests across all stack configurations.

use blockdev::BLOCK_SIZE;
use fssim::stack::{build, remount, Stack, StackConfig, System};
use fssim::FsError;

fn tiny(system: System) -> Stack {
    build(&StackConfig::tiny(system)).unwrap()
}

const ALL_SYSTEMS: [System; 7] = [
    System::Tinca,
    System::Classic,
    System::ClassicNoJournal,
    System::ClassicNoMeta,
    System::ClassicNoJournalNoMeta,
    System::TincaNoRoleSwitch,
    System::Ubj,
];

#[test]
fn create_write_read_on_every_system() {
    for sys in ALL_SYSTEMS {
        let mut s = tiny(sys);
        let f = s.fs.create("file.dat").unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        s.fs.write(f, 0, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        let n = s.fs.read(f, 0, &mut back).unwrap();
        assert_eq!(n, data.len(), "{}", sys.name());
        assert_eq!(back, data, "{}", sys.name());
        assert_eq!(s.fs.file_size(f), data.len() as u64);
        s.fs.check_consistency().unwrap();
    }
}

#[test]
fn unaligned_overwrites() {
    let mut s = tiny(System::Tinca);
    let f = s.fs.create("x").unwrap();
    s.fs.write(f, 0, &[1u8; 9000]).unwrap();
    s.fs.write(f, 100, &[2u8; 50]).unwrap();
    s.fs.write(f, 4090, &[3u8; 20]).unwrap(); // straddles block boundary
    let mut buf = vec![0u8; 9000];
    s.fs.read(f, 0, &mut buf).unwrap();
    assert!(buf[..100].iter().all(|&b| b == 1));
    assert!(buf[100..150].iter().all(|&b| b == 2));
    assert!(buf[150..4090].iter().all(|&b| b == 1));
    assert!(buf[4090..4110].iter().all(|&b| b == 3));
    assert!(buf[4110..].iter().all(|&b| b == 1));
}

#[test]
fn sparse_files_read_zero_holes() {
    let mut s = tiny(System::Tinca);
    let f = s.fs.create("sparse").unwrap();
    // Write one block far into the file; earlier blocks are holes.
    s.fs.write(f, 20 * BLOCK_SIZE as u64, &[7u8; 100]).unwrap();
    let mut buf = [9u8; 200];
    let n = s.fs.read(f, 5 * BLOCK_SIZE as u64, &mut buf).unwrap();
    assert_eq!(n, 200);
    assert!(buf.iter().all(|&b| b == 0), "holes must read as zeroes");
}

#[test]
fn large_file_through_indirect_blocks() {
    // > 12 direct + some of the indirect range, with verification.
    let mut s = build(&StackConfig {
        nvm_bytes: 16 << 20,
        disk_blocks: 1 << 17,
        ..StackConfig::tiny(System::Tinca)
    })
    .unwrap();
    let f = s.fs.create("big").unwrap();
    let chunk = vec![0xABu8; 64 * BLOCK_SIZE]; // 256 KB
    for i in 0..4u64 {
        s.fs.write(f, i * chunk.len() as u64, &chunk).unwrap();
    }
    assert_eq!(s.fs.file_size(f), 4 * chunk.len() as u64); // 1 MB > 48 KB direct
    let mut buf = vec![0u8; BLOCK_SIZE];
    // Verify a block deep in the indirect range.
    s.fs.read(f, 200 * BLOCK_SIZE as u64, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xAB));
    s.fs.check_consistency().unwrap();
}

#[test]
fn double_indirect_range_works() {
    let mut s = build(&StackConfig {
        nvm_bytes: 32 << 20,
        disk_blocks: 1 << 17,
        ..StackConfig::tiny(System::Tinca)
    })
    .unwrap();
    let f = s.fs.create("huge").unwrap();
    // One write beyond 12 + 512 blocks (the double-indirect threshold).
    let off = (12 + 512 + 100) * BLOCK_SIZE as u64;
    s.fs.write(f, off, &[0x5A; 8192]).unwrap();
    let mut buf = [0u8; 8192];
    s.fs.read(f, off, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x5A));
    s.fs.check_consistency().unwrap();
}

#[test]
fn delete_frees_space_and_name() {
    let mut s = tiny(System::Tinca);
    let free0 = s.fs.free_space_blocks();
    let f = s.fs.create("temp").unwrap();
    s.fs.write(f, 0, &vec![1u8; 40 * BLOCK_SIZE]).unwrap();
    assert!(s.fs.free_space_blocks() < free0);
    s.fs.delete("temp").unwrap();
    assert_eq!(s.fs.free_space_blocks(), free0, "all blocks must return");
    assert!(!s.fs.exists("temp"));
    assert!(matches!(s.fs.open("temp"), Err(FsError::NotFound(_))));
    // Name and inode are reusable.
    let f2 = s.fs.create("temp").unwrap();
    assert_eq!(s.fs.file_size(f2), 0);
    s.fs.check_consistency().unwrap();
}

#[test]
fn duplicate_create_fails() {
    let mut s = tiny(System::Classic);
    s.fs.create("a").unwrap();
    assert!(matches!(s.fs.create("a"), Err(FsError::Exists(_))));
}

#[test]
fn name_too_long_rejected() {
    let mut s = tiny(System::Tinca);
    let long = "x".repeat(100);
    assert!(matches!(s.fs.create(&long), Err(FsError::NameTooLong(_))));
}

#[test]
fn out_of_inodes_reported() {
    let mut cfg = StackConfig::tiny(System::Tinca);
    cfg.max_files = 4;
    let mut s = build(&cfg).unwrap();
    for i in 0..4 {
        s.fs.create(&format!("f{i}")).unwrap();
    }
    assert!(matches!(s.fs.create("f4"), Err(FsError::TooManyFiles)));
}

#[test]
fn out_of_space_reported() {
    let mut cfg = StackConfig::tiny(System::Tinca);
    cfg.disk_blocks = 1024;
    cfg.journal_blocks = 16;
    cfg.max_files = 16;
    let mut s = build(&cfg).unwrap();
    let f = s.fs.create("filler").unwrap();
    let chunk = vec![1u8; 64 * BLOCK_SIZE];
    let mut off = 0u64;
    let err = loop {
        match s.fs.write(f, off, &chunk) {
            Ok(()) => off += chunk.len() as u64,
            Err(e) => break e,
        }
    };
    assert!(matches!(err, FsError::NoSpace));
}

#[test]
fn many_files_and_remount_preserves_namespace() {
    for sys in [System::Tinca, System::Classic] {
        let cfg = StackConfig::tiny(sys);
        let mut s = build(&cfg).unwrap();
        for i in 0..100u32 {
            let f = s.fs.create(&format!("file-{i:03}")).unwrap();
            s.fs.write(f, 0, format!("contents of {i}").as_bytes())
                .unwrap();
        }
        s.fs.delete("file-050").unwrap();
        s.fs.fsync().unwrap();
        let (nvm, disk, clock) = (s.nvm.clone(), s.disk.clone(), s.clock.clone());
        drop(s.fs);
        let mut re = remount(&cfg, nvm, disk, clock).unwrap();
        assert_eq!(re.fs.file_count(), 99, "{}", sys.name());
        assert!(!re.fs.exists("file-050"));
        for i in [0u32, 25, 99] {
            let f = re.fs.open(&format!("file-{i:03}")).unwrap();
            let want = format!("contents of {i}");
            let mut buf = vec![0u8; want.len()];
            re.fs.read(f, 0, &mut buf).unwrap();
            assert_eq!(buf, want.as_bytes(), "{} file {i}", sys.name());
        }
        re.fs.check_consistency().unwrap();
    }
}

#[test]
fn txn_batching_commits_at_limit() {
    let mut cfg = StackConfig::tiny(System::Tinca);
    cfg.txn_block_limit = 8;
    let mut s = build(&cfg).unwrap();
    let f = s.fs.create("batch").unwrap();
    assert_eq!(s.fs.stats().commits, 0);
    // Enough distinct blocks to cross the limit.
    s.fs.write(f, 0, &vec![1u8; 16 * BLOCK_SIZE]).unwrap();
    assert!(
        s.fs.stats().commits >= 1,
        "batch limit must trigger a commit"
    );
    assert!(!s.fs.txn_sizes().is_empty());
}

#[test]
fn classic_journal_double_writes_vs_tinca() {
    // The paper's core claim, measured end-to-end through the FS: for the
    // same workload, Classic (JBD2 + Flashcache) flushes far more NVM
    // cache lines than Tinca (Fig. 3(a): journaling ≈ 2–2.9× traffic).
    let run = |sys: System| -> (u64, u64) {
        let mut s = tiny(sys);
        let f = s.fs.create("w").unwrap();
        let nvm0 = s.nvm.stats();
        let data = vec![7u8; 4 * BLOCK_SIZE];
        for i in 0..32u64 {
            s.fs.write(f, (i % 8) * data.len() as u64, &data).unwrap();
        }
        s.fs.fsync().unwrap();
        let d = s.nvm.stats().delta(&nvm0);
        (d.clflush, d.lines_written)
    };
    let (tinca_flush, _) = run(System::Tinca);
    let (classic_flush, _) = run(System::Classic);
    assert!(
        classic_flush as f64 > 2.0 * tinca_flush as f64,
        "Classic should flush ≳2× more: classic={classic_flush} tinca={tinca_flush}"
    );
}

#[test]
fn fsync_forces_commit() {
    let mut s = tiny(System::Classic);
    let f = s.fs.create("d").unwrap();
    s.fs.write(f, 0, &[1u8; 100]).unwrap();
    assert_eq!(s.fs.stats().commits, 0);
    s.fs.fsync().unwrap();
    assert_eq!(s.fs.stats().commits, 1);
    assert_eq!(s.fs.stats().fsyncs, 1);
    // Journal saw the transaction.
    assert!(s.fs.journal_stats().unwrap().commits == 1);
}

#[test]
fn unmount_then_mount_without_journal_replay() {
    let cfg = StackConfig::tiny(System::Classic);
    let mut s = build(&cfg).unwrap();
    let f = s.fs.create("z").unwrap();
    s.fs.write(f, 0, b"persist me").unwrap();
    let (nvm, disk, clock) = (s.nvm.clone(), s.disk.clone(), s.clock.clone());
    s.fs.unmount().unwrap();
    let mut re = remount(&cfg, nvm, disk, clock).unwrap();
    // Clean unmount checkpointed everything: replay had nothing to do.
    assert_eq!(re.fs.journal_stats().unwrap().replayed_txns, 0);
    let f = re.fs.open("z").unwrap();
    let mut buf = [0u8; 10];
    re.fs.read(f, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"persist me");
}

#[test]
fn truncate_shrinks_and_frees() {
    let mut s = tiny(System::Tinca);
    let free0 = s.fs.free_space_blocks();
    let f = s.fs.create("t").unwrap();
    s.fs.write(f, 0, &vec![7u8; 20 * BLOCK_SIZE]).unwrap();
    let free_full = s.fs.free_space_blocks();
    s.fs.truncate(f, 5 * BLOCK_SIZE as u64 + 100).unwrap();
    assert_eq!(s.fs.file_size(f), 5 * BLOCK_SIZE as u64 + 100);
    assert!(
        s.fs.free_space_blocks() > free_full,
        "blocks past the cut must free"
    );
    // Contents up to the cut survive; the freed range reads as zero after
    // re-extension.
    let mut buf = vec![0u8; 6 * BLOCK_SIZE];
    let n = s.fs.read(f, 0, &mut buf).unwrap();
    assert_eq!(n, 5 * BLOCK_SIZE + 100);
    assert!(buf[..n].iter().all(|&b| b == 7));
    s.fs.truncate(f, 10 * BLOCK_SIZE as u64).unwrap();
    let mut tail = vec![9u8; BLOCK_SIZE];
    s.fs.read(f, 7 * BLOCK_SIZE as u64, &mut tail).unwrap();
    assert!(tail.iter().all(|&b| b == 0), "extension reads zeroes");
    s.fs.delete("t").unwrap();
    assert_eq!(s.fs.free_space_blocks(), free0);
    s.fs.check_consistency().unwrap();
}

#[test]
fn truncate_partial_block_zeroes_stale_tail() {
    let mut s = tiny(System::Tinca);
    let f = s.fs.create("t2").unwrap();
    s.fs.write(f, 0, &[5u8; 3000]).unwrap();
    s.fs.truncate(f, 1000).unwrap();
    s.fs.write(f, 0, &[6u8; 500]).unwrap(); // keep the file short
                                            // Grow back over the previously-written range: old bytes must be gone.
    s.fs.truncate(f, 3000).unwrap();
    let mut buf = vec![1u8; 3000];
    s.fs.read(f, 0, &mut buf).unwrap();
    assert!(buf[..500].iter().all(|&b| b == 6));
    assert!(
        buf[500..1000].iter().all(|&b| b == 5),
        "bytes below the cut survive"
    );
    assert!(
        buf[1000..].iter().all(|&b| b == 0),
        "stale tail must read zero, got {:?}",
        &buf[1000..1010]
    );
}

#[test]
fn rename_preserves_contents_and_survives_remount() {
    let cfg = StackConfig::tiny(System::Tinca);
    let mut s = build(&cfg).unwrap();
    let f = s.fs.create("old-name").unwrap();
    s.fs.write(f, 0, b"payload").unwrap();
    s.fs.rename("old-name", "new-name").unwrap();
    assert!(!s.fs.exists("old-name"));
    assert!(matches!(
        s.fs.rename("old-name", "x"),
        Err(FsError::NotFound(_))
    ));
    s.fs.create("third").unwrap();
    assert!(matches!(
        s.fs.rename("third", "new-name"),
        Err(FsError::Exists(_))
    ));
    s.fs.fsync().unwrap();
    let (nvm, disk, clock) = (s.nvm.clone(), s.disk.clone(), s.clock.clone());
    drop(s.fs);
    let mut re = remount(&cfg, nvm, disk, clock).unwrap();
    let f = re.fs.open("new-name").unwrap();
    let mut buf = [0u8; 7];
    re.fs.read(f, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"payload");
    re.fs.check_consistency().unwrap();
}
