// Integration tests are exempt from the crate's unwrap/expect ban.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

//! Property tests: the mini file system must behave exactly like a flat
//! map of name → byte-vector under arbitrary operation sequences, on both
//! cache stacks, including across remounts.

use std::collections::HashMap;

use blockdev::BLOCK_SIZE;
use fssim::stack::{build, remount, Stack, StackConfig, System};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    Write {
        file: u8,
        offset: u16,
        len: u16,
        fill: u8,
    },
    Read {
        file: u8,
        offset: u16,
        len: u16,
    },
    Delete(u8),
    Fsync,
    Remount,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (0u8..12).prop_map(Op::Create),
        5 => (0u8..12, 0u16..20_000, 1u16..5_000, any::<u8>())
            .prop_map(|(file, offset, len, fill)| Op::Write { file, offset, len, fill }),
        3 => (0u8..12, 0u16..24_000, 1u16..5_000)
            .prop_map(|(file, offset, len)| Op::Read { file, offset, len }),
        1 => (0u8..12).prop_map(Op::Delete),
        1 => Just(Op::Fsync),
        1 => Just(Op::Remount),
    ]
}

fn name(i: u8) -> String {
    format!("pf{i}")
}

fn run_model(system: System, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let cfg = StackConfig::tiny(system);
    let mut stack: Stack = build(&cfg).unwrap();
    let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            Op::Create(i) => {
                let r = stack.fs.create(&name(i));
                prop_assert_eq!(r.is_ok(), !model.contains_key(&i), "create {}", i);
                if r.is_ok() {
                    model.insert(i, Vec::new());
                }
            }
            Op::Write {
                file,
                offset,
                len,
                fill,
            } => {
                let Some(contents) = model.get_mut(&file) else {
                    prop_assert!(stack.fs.open(&name(file)).is_err());
                    continue;
                };
                let ino = stack.fs.open(&name(file)).unwrap();
                let data = vec![fill; len as usize];
                stack.fs.write(ino, offset as u64, &data).unwrap();
                let end = offset as usize + len as usize;
                if contents.len() < end {
                    contents.resize(end, 0);
                }
                contents[offset as usize..end].copy_from_slice(&data);
            }
            Op::Read { file, offset, len } => {
                let Some(contents) = model.get(&file) else {
                    continue;
                };
                let ino = stack.fs.open(&name(file)).unwrap();
                let mut buf = vec![0u8; len as usize];
                let n = stack.fs.read(ino, offset as u64, &mut buf).unwrap();
                let want_n = contents
                    .len()
                    .saturating_sub(offset as usize)
                    .min(len as usize);
                prop_assert_eq!(n, want_n, "read length of file {}", file);
                if n > 0 {
                    prop_assert_eq!(
                        &buf[..n],
                        &contents[offset as usize..offset as usize + n],
                        "read contents of file {}",
                        file
                    );
                }
            }
            Op::Delete(i) => {
                let r = stack.fs.delete(&name(i));
                prop_assert_eq!(r.is_ok(), model.remove(&i).is_some(), "delete {}", i);
            }
            Op::Fsync => stack.fs.fsync().unwrap(),
            Op::Remount => {
                stack.fs.fsync().unwrap();
                let (nvm, disk, clock) =
                    (stack.nvm.clone(), stack.disk.clone(), stack.clock.clone());
                drop(stack.fs);
                stack = remount(&cfg, nvm, disk, clock).unwrap();
            }
        }
    }
    // Final: full model equality, then internal invariants.
    prop_assert_eq!(stack.fs.file_count(), model.len());
    for (&i, contents) in &model {
        let ino = stack.fs.open(&name(i)).unwrap();
        prop_assert_eq!(stack.fs.file_size(ino) as usize, contents.len());
        let mut buf = vec![0u8; contents.len()];
        stack.fs.read(ino, 0, &mut buf).unwrap();
        prop_assert_eq!(&buf, contents, "final contents of file {}", i);
    }
    stack.fs.check_consistency().map_err(TestCaseError::fail)?;
    stack.fs.backend().check().map_err(TestCaseError::fail)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fs_matches_model_on_tinca(ops in proptest::collection::vec(op_strategy(), 1..50)) {
        run_model(System::Tinca, ops)?;
    }

    #[test]
    fn fs_matches_model_on_classic_jbd2(ops in proptest::collection::vec(op_strategy(), 1..50)) {
        run_model(System::Classic, ops)?;
    }

    /// Block-aligned bulk writes exercise the full-block fast path.
    #[test]
    fn aligned_bulk_writes(nblocks in 1usize..40, fill in any::<u8>()) {
        let cfg = StackConfig::tiny(System::Tinca);
        let mut stack = build(&cfg).unwrap();
        let f = stack.fs.create("bulk").unwrap();
        let data = vec![fill; nblocks * BLOCK_SIZE];
        stack.fs.write(f, 0, &data).unwrap();
        stack.fs.fsync().unwrap();
        let mut back = vec![0u8; data.len()];
        let n = stack.fs.read(f, 0, &mut back).unwrap();
        prop_assert_eq!(n, data.len());
        prop_assert_eq!(back, data);
    }
}
