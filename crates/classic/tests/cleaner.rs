//! Tests for Classic's write-back cleaning machinery: the flush-barrier
//! drain, fallow (age-based) cleaning, and the dirty-threshold pool.

use blockdev::{BlockDevice, DiskKind, SimDisk, BLOCK_SIZE};
use classic::{ClassicCache, ClassicConfig};
use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};

fn setup(cfg: ClassicConfig) -> (ClassicCache, blockdev::Disk) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(4 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let cache = ClassicCache::format(nvm, disk.clone(), cfg);
    (cache, disk)
}

fn blk(b: u8) -> [u8; BLOCK_SIZE] {
    [b; BLOCK_SIZE]
}

#[test]
fn fallow_blocks_reach_disk_on_barrier() {
    let cfg = ClassicConfig {
        assoc: 64,
        fallow_age_writes: 16,
        ..ClassicConfig::default()
    };
    let (mut c, disk) = setup(cfg);
    // Block 1 goes dirty, then 20 other writes age it past the fallow window.
    c.write(1, &blk(0xAA)).unwrap();
    for i in 100..120u64 {
        c.write(i, &blk(1)).unwrap();
    }
    assert_eq!(disk.stats().writes, 0, "nothing cleaned before a barrier");
    c.flush_barrier().unwrap();
    let mut buf = [0u8; BLOCK_SIZE];
    disk.read_block(1, &mut buf).unwrap();
    assert_eq!(
        buf,
        blk(0xAA),
        "fallow block must be on disk after the barrier"
    );
    c.check_consistency().unwrap();
}

#[test]
fn hot_blocks_absorb_across_barriers() {
    let cfg = ClassicConfig {
        assoc: 64,
        fallow_age_writes: 64,
        ..ClassicConfig::default()
    };
    let (mut c, disk) = setup(cfg);
    // Rewrite the same block between barriers: it never goes fallow.
    for round in 0..20 {
        c.write(7, &blk(round)).unwrap();
        c.flush_barrier().unwrap();
    }
    let writes = disk.stats().writes;
    assert!(
        writes <= 1,
        "a constantly re-written block must be absorbed, got {writes} disk writes"
    );
}

#[test]
fn cold_versions_hit_disk_once_each() {
    // Journal-like pattern: a small region rewritten cyclically with long
    // gaps — every version must reach the disk (no absorption).
    let cfg = ClassicConfig {
        assoc: 64,
        fallow_age_writes: 2,
        ..ClassicConfig::default()
    };
    let (mut c, disk) = setup(cfg);
    let region: Vec<u64> = (200..264).collect(); // 64-block "journal"
    for wrap in 0..4u8 {
        for &b in &region {
            c.write(b, &blk(wrap)).unwrap();
        }
        c.flush_barrier().unwrap();
    }
    let writes = disk.stats().writes;
    // 4 wraps × 64 blocks: nearly every version cleaned (only the last
    // couple of writes per wrap are still within the fallow window).
    assert!(
        writes >= 3 * 62,
        "cyclic cold writes should reach disk every wrap: {writes}"
    );
}

#[test]
fn drain_can_be_disabled() {
    let cfg = ClassicConfig {
        assoc: 64,
        fallow_age_writes: 1,
        drain_on_flush: false,
        ..ClassicConfig::default()
    };
    let (mut c, disk) = setup(cfg);
    for i in 0..50u64 {
        c.write(i, &blk(1)).unwrap();
    }
    c.flush_barrier().unwrap();
    assert_eq!(
        disk.stats().writes,
        0,
        "disabled drain must not touch the disk"
    );
}

#[test]
fn barrier_cleaning_is_elevator_ordered() {
    let cfg = ClassicConfig {
        assoc: 256,
        fallow_age_writes: 4,
        ..ClassicConfig::default()
    };
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(4 << 20, NvmTech::Pcm), clock.clone());
    // HDD makes ordering observable through cost: sorted cleaning of a
    // contiguous range must be far cheaper than the same writes issued
    // randomly.
    let disk = SimDisk::new(DiskKind::Hdd, 1 << 16, clock.clone());
    let mut c = ClassicCache::format(nvm, disk.clone(), cfg);
    // Dirty a contiguous range in shuffled order.
    let mut order: Vec<u64> = (1000..1100).collect();
    order.reverse();
    for &b in &order {
        c.write(b, &blk(2)).unwrap();
    }
    for i in 0..8u64 {
        c.write(i, &blk(3)).unwrap(); // age the range
    }
    let t0 = clock.now_ns();
    c.flush_barrier().unwrap();
    let barrier_ns = clock.now_ns() - t0;
    // 100 sorted sequential-ish writes: mostly transfer + one seek, far
    // below 100 independent random writes (~100 × 5ms).
    assert!(
        barrier_ns < 200_000_000,
        "elevator-sorted drain too expensive: {barrier_ns} ns"
    );
    let mut buf = [0u8; BLOCK_SIZE];
    disk.read_block(1050, &mut buf).unwrap();
    assert_eq!(buf, blk(2));
}

#[test]
fn cleaned_blocks_stay_cached_and_clean() {
    let cfg = ClassicConfig {
        assoc: 64,
        fallow_age_writes: 4,
        ..ClassicConfig::default()
    };
    let (mut c, disk) = setup(cfg);
    c.write(5, &blk(9)).unwrap();
    for i in 100..110u64 {
        c.write(i, &blk(1)).unwrap();
    }
    c.flush_barrier().unwrap();
    assert!(c.contains(5), "cleaning must not evict");
    // A read still hits the cache, not the disk.
    let reads_before = disk.stats().reads;
    let mut buf = [0u8; BLOCK_SIZE];
    c.read(5, &mut buf).unwrap();
    assert_eq!(buf, blk(9));
    assert_eq!(disk.stats().reads, reads_before);
    // Flushing again writes nothing (already clean).
    let w = disk.stats().writes;
    c.flush_barrier().unwrap();
    assert_eq!(disk.stats().writes, w);
    c.check_consistency().unwrap();
}
