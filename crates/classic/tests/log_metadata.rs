//! Tests for the FlashTier/bcache-style metadata log scheme.

use blockdev::{BlockDevice, DiskKind, SimDisk, BLOCK_SIZE};
use classic::{ClassicCache, ClassicConfig, MetadataScheme};
use nvmsim::{CrashPolicy, NvmConfig, NvmDevice, NvmTech, SimClock};

fn cfg() -> ClassicConfig {
    ClassicConfig {
        assoc: 64,
        metadata_scheme: MetadataScheme::Log,
        ..ClassicConfig::default()
    }
}

fn setup() -> (ClassicCache, nvmsim::Nvm, blockdev::Disk) {
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(4 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let cache = ClassicCache::format(nvm.clone(), disk.clone(), cfg());
    (cache, nvm, disk)
}

fn blk(b: u8) -> [u8; BLOCK_SIZE] {
    [b; BLOCK_SIZE]
}

#[test]
fn log_appends_instead_of_block_rewrites() {
    let (mut c, nvm, _) = setup();
    let before = nvm.stats();
    c.write(1, &blk(1)).unwrap();
    c.write(2, &blk(2)).unwrap();
    let d = nvm.stats().delta(&before);
    let s = c.stats();
    assert_eq!(s.meta_log_appends, 2);
    assert_eq!(
        s.meta_block_writes, 0,
        "no metadata blocks outside checkpoints"
    );
    // Two data blocks (64 lines each) + two 16 B log records (1 line each).
    assert!(
        d.lines_written <= 2 * 64 + 4,
        "log scheme should write ~1 extra line per op: {}",
        d.lines_written
    );
    c.check_consistency().unwrap();
}

#[test]
fn log_scheme_is_much_cheaper_than_sync_block() {
    let run = |scheme: MetadataScheme| {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(4 << 20, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
        let mut c = ClassicCache::format(
            nvm.clone(),
            disk,
            ClassicConfig {
                assoc: 64,
                metadata_scheme: scheme,
                ..ClassicConfig::default()
            },
        );
        let before = nvm.stats();
        for i in 0..200u64 {
            c.write(i, &blk(1)).unwrap();
        }
        nvm.stats().delta(&before).clflush
    };
    let sync_block = run(MetadataScheme::SyncBlock);
    let log = run(MetadataScheme::Log);
    assert!(
        (log as f64) < 0.6 * sync_block as f64,
        "log metadata should flush far less: {log} vs {sync_block}"
    );
}

#[test]
fn recovery_replays_log_over_base() {
    let (mut c, nvm, disk) = setup();
    for i in 0..40u64 {
        c.write(i, &blk((i % 250) as u8)).unwrap();
    }
    // Invalidate one slot via eviction-like update path: overwrite 0.
    c.write(0, &blk(0xAA)).unwrap();
    drop(c);
    nvm.crash(CrashPolicy::LoseVolatile);
    let rec = ClassicCache::recover(nvm, disk, cfg()).unwrap();
    rec.check_consistency().unwrap();
    for i in 0..40u64 {
        assert!(rec.contains(i), "block {i} lost");
    }
    let mut buf = [0u8; BLOCK_SIZE];
    rec.read_nocache(0, &mut buf).unwrap();
    assert_eq!(buf, blk(0xAA), "the newest logged state must win");
}

#[test]
fn checkpoint_on_log_full_and_recovery_across_generations() {
    let (mut c, nvm, disk) = setup();
    // LOG_SLOTS is 4096: force past it so a checkpoint happens.
    for round in 0..3u64 {
        for i in 0..1500u64 {
            c.write(i % 300, &blk((round * 80 + i % 80) as u8)).unwrap();
        }
    }
    assert!(c.stats().meta_checkpoints >= 1, "log must have wrapped");
    // The DRAM state is authoritative; remember some blocks.
    let mut want = Vec::new();
    let mut buf = [0u8; BLOCK_SIZE];
    for i in [0u64, 77, 299] {
        c.read_nocache(i, &mut buf).unwrap();
        want.push((i, buf));
    }
    drop(c);
    nvm.crash(CrashPolicy::LoseVolatile);
    let rec = ClassicCache::recover(nvm, disk, cfg()).unwrap();
    rec.check_consistency().unwrap();
    for (i, w) in want {
        rec.read_nocache(i, &mut buf).unwrap();
        assert_eq!(
            buf, w,
            "block {i} state diverged across checkpoint generations"
        );
    }
}

#[test]
fn flush_barrier_logs_cleaned_slots() {
    let mut config = cfg();
    config.fallow_age_writes = 4;
    let clock = SimClock::new();
    let nvm = NvmDevice::new(NvmConfig::new(4 << 20, NvmTech::Pcm), clock.clone());
    let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
    let mut c = ClassicCache::format(nvm.clone(), disk.clone(), config.clone());
    c.write(5, &blk(9)).unwrap();
    for i in 100..110u64 {
        c.write(i, &blk(1)).unwrap();
    }
    let appends_before = c.stats().meta_log_appends;
    c.flush_barrier().unwrap();
    assert!(
        c.stats().meta_log_appends > appends_before,
        "cleaning must log state changes"
    );
    // Crash after the barrier: the clean state must be recovered (no
    // spurious re-writeback of block 5).
    drop(c);
    nvm.crash(CrashPolicy::LoseVolatile);
    let mut rec = ClassicCache::recover(nvm, disk.clone(), config).unwrap();
    let w = disk.stats().writes;
    rec.flush_all().unwrap();
    let rewritten = disk.stats().writes - w;
    assert!(
        rewritten < 11,
        "most blocks were already clean, rewrote {rewritten}"
    );
}
