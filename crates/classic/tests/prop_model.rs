//! Model-based property test: the Classic cache over its disk must behave
//! like a flat block map under arbitrary write/read/clean/restart
//! sequences.

use std::collections::HashMap;

use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
use classic::{ClassicCache, ClassicConfig};
use nvmsim::{CrashPolicy, NvmConfig, NvmDevice, NvmTech, SimClock};
use proptest::prelude::*;

const BLOCK_SPACE: u64 = 512;

#[derive(Clone, Debug)]
enum Op {
    Write {
        blk: u64,
        fill: u8,
    },
    Read(u64),
    Barrier,
    FlushAll,
    /// Clean restart (no volatile loss mid-write): recover from metadata.
    Restart,
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..BLOCK_SPACE, any::<u8>()).prop_map(|(blk, fill)| Op::Write { blk, fill }),
        3 => (0..BLOCK_SPACE).prop_map(Op::Read),
        1 => Just(Op::Barrier),
        1 => Just(Op::FlushAll),
        1 => Just(Op::Restart),
    ]
}

fn cfg() -> ClassicConfig {
    ClassicConfig {
        assoc: 32,
        fallow_age_writes: 16,
        ..ClassicConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn classic_matches_flat_block_map(seq in proptest::collection::vec(ops(), 1..80)) {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(1 << 20, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
        let mut cache = ClassicCache::format(nvm.clone(), disk.clone(), cfg());
        let mut model: HashMap<u64, u8> = HashMap::new();
        let mut buf = [0u8; BLOCK_SIZE];
        for op in seq {
            match op {
                Op::Write { blk, fill } => {
                    cache.write(blk, &[fill; BLOCK_SIZE]).unwrap();
                    model.insert(blk, fill);
                }
                Op::Read(blk) => {
                    cache.read(blk, &mut buf).unwrap();
                    let want = model.get(&blk).copied().unwrap_or(0);
                    prop_assert_eq!(buf, [want; BLOCK_SIZE], "read of block {}", blk);
                }
                Op::Barrier => cache.flush_barrier().unwrap(),
                Op::FlushAll => {
                    cache.flush_all().unwrap();
                    // After a full flush, the DISK alone matches the model.
                    for (&blk, &want) in &model {
                        use blockdev::BlockDevice;
                        disk.read_block(blk, &mut buf).unwrap();
                        prop_assert_eq!(buf, [want; BLOCK_SIZE], "disk block {}", blk);
                    }
                }
                Op::Restart => {
                    cache.flush_barrier().unwrap(); // barrier, then clean restart
                    drop(cache);
                    nvm.crash(CrashPolicy::PersistAll);
                    cache = ClassicCache::recover(nvm.clone(), disk.clone(), cfg())
                        .map_err(TestCaseError::fail)?;
                }
            }
            cache.check_consistency().map_err(TestCaseError::fail)?;
        }
        // Final sweep through the cache view.
        for (&blk, &want) in &model {
            cache.read(blk, &mut buf).unwrap();
            prop_assert_eq!(buf, [want; BLOCK_SIZE], "final read of {}", blk);
        }
    }
}
