//! The Classic (Flashcache-like) write-back cache.

use std::collections::HashMap;
use std::sync::Arc;

use blockdev::{BlockDevice, BLOCK_SIZE};
use nvmsim::Nvm;

use crate::meta::{
    decode_log_record, encode_log_record, ClassicLayout, SlotRecord, ASSOC_OFF, LOG_SLOTS, MAGIC,
    MAGIC_OFF, NUM_BLOCKS_OFF, RECORDS_PER_META_BLOCK, RECORD_BYTES,
};
use crate::setlru::SetLru;
use crate::{ClassicConfig, ClassicError, ClassicStats, MetadataScheme};

/// Header offset of the metadata-log generation counter.
const GEN_OFF: usize = 24;

/// Shared handle to the backing disk.
pub type DynDisk = Arc<dyn BlockDevice>;

/// A Flashcache-style set-associative write-back NVM cache.
///
/// No transactional interface: callers issue single-block [`write`]s and
/// [`read`]s; each write synchronously persists the data block *and* the
/// 4 KB metadata block covering its slot (unless `sync_metadata` is off).
/// Crash consistency of file data is the responsibility of the journaling
/// file system above.
///
/// [`write`]: Self::write
/// [`read`]: Self::read
pub struct ClassicCache {
    nvm: Nvm,
    disk: DynDisk,
    layout: ClassicLayout,
    cfg: ClassicConfig,
    /// disk block → slot.
    index: HashMap<u64, u32>,
    /// DRAM mirror of every slot's record (authoritative copy of the
    /// metadata area; what a metadata-block write serialises).
    records: Vec<SlotRecord>,
    lru: SetLru,
    /// Dirty blocks per set (drives the `dirty_thresh_pct` cleaner).
    set_dirty: Vec<u32>,
    /// Monotone cache block-write counter (the fallow-cleaning clock).
    write_seq: u64,
    /// Next free metadata-log slot (Log scheme).
    log_cursor: usize,
    /// Current metadata-log generation (Log scheme).
    gen: u32,
    /// `write_seq` at each slot's most recent write (0 if never written).
    last_write: Vec<u64>,
    stats: ClassicStats,
}

impl ClassicCache {
    /// Formats the NVM region and creates an empty cache.
    pub fn format(nvm: Nvm, disk: DynDisk, cfg: ClassicConfig) -> Self {
        let layout = ClassicLayout::compute(nvm.capacity(), cfg.assoc);
        // Zero the metadata area (all records invalid).
        let zeros = vec![0u8; BLOCK_SIZE];
        for mb in 0..layout.meta_blocks {
            nvm.write(layout.meta_block_addr(mb), &zeros);
            nvm.clflush(layout.meta_block_addr(mb), BLOCK_SIZE);
        }
        nvm.sfence();
        nvm.atomic_write_u64(NUM_BLOCKS_OFF, layout.num_blocks as u64);
        nvm.atomic_write_u64(ASSOC_OFF, layout.assoc as u64);
        nvm.atomic_write_u64(GEN_OFF, 0);
        nvm.persist(0, 64);
        nvm.atomic_write_u64(MAGIC_OFF, MAGIC);
        nvm.persist(MAGIC_OFF, 8);
        Self::from_parts(nvm, disk, cfg, layout)
    }

    /// Opens a formatted region after a crash/restart, rebuilding the DRAM
    /// index from the persistent metadata blocks. Dirty blocks stay dirty;
    /// torn data blocks are *not* detected (the journaling FS above
    /// re-writes them from its journal).
    pub fn recover(nvm: Nvm, disk: DynDisk, cfg: ClassicConfig) -> Result<Self, String> {
        let magic = nvm.read_u64(MAGIC_OFF);
        if magic != MAGIC {
            return Err(format!("not a Classic cache region (magic {magic:#x})"));
        }
        let layout = ClassicLayout::compute(nvm.capacity(), cfg.assoc);
        let num_blocks = nvm.read_u64(NUM_BLOCKS_OFF);
        let assoc = nvm.read_u64(ASSOC_OFF);
        if (num_blocks, assoc) != (layout.num_blocks as u64, layout.assoc as u64) {
            return Err("header/configuration mismatch".into());
        }
        let mut cache = Self::from_parts(nvm, disk, cfg, layout);
        // Base state: the persistent metadata array (the last checkpoint,
        // in the Log scheme; the live state in SyncBlock).
        let mut raw = [0u8; RECORD_BYTES];
        for slot in 0..layout.num_blocks {
            cache.nvm.read(layout.record_addr(slot), &mut raw);
            cache.records[slot as usize] = SlotRecord::decode(&raw);
        }
        if cache.cfg.metadata_scheme == MetadataScheme::Log {
            // Replay the current generation's log records, in order, over
            // the base. Records are appended sequentially, so the current
            // generation forms a prefix of the log.
            cache.gen = cache.nvm.read_u64(GEN_OFF) as u32;
            let mut cursor = 0usize;
            while cursor < LOG_SLOTS {
                let raw = cache.nvm.read_u128(layout.log_slot_addr(cursor));
                match decode_log_record(raw) {
                    Some((gen, slot, rec)) if gen == cache.gen => {
                        if (slot as usize) < cache.records.len() {
                            cache.records[slot as usize] = rec;
                        }
                        cursor += 1;
                    }
                    _ => break,
                }
            }
            cache.log_cursor = cursor;
        }
        // Rebuild the DRAM structures from the resolved records.
        for slot in 0..layout.num_blocks {
            let rec = cache.records[slot as usize];
            if rec.valid {
                cache.index.insert(rec.disk_blk, slot);
                cache.lru.push_mru(slot);
                if rec.dirty {
                    cache.set_dirty[(slot / layout.assoc) as usize] += 1;
                }
            }
        }
        cache.stats.recoveries = 1;
        Ok(cache)
    }

    fn from_parts(nvm: Nvm, disk: DynDisk, cfg: ClassicConfig, layout: ClassicLayout) -> Self {
        ClassicCache {
            nvm,
            disk,
            cfg,
            index: HashMap::new(),
            records: vec![SlotRecord::INVALID; layout.num_blocks as usize],
            lru: SetLru::new(layout.num_blocks, layout.num_sets, layout.assoc),
            set_dirty: vec![0; layout.num_sets as usize],
            write_seq: 0,
            log_cursor: 0,
            gen: 0,
            last_write: vec![0; layout.num_blocks as usize],
            stats: ClassicStats::default(),
            layout,
        }
    }

    /// Writes one block through the cache (write-back): data into the slot
    /// (in place on a hit), then the covering metadata block, both with
    /// full flush+fence persistence (Flashcache's synchronous update).
    /// Errors if slot-making or cleaning needed the disk and it failed.
    pub fn write(&mut self, disk_blk: u64, data: &[u8]) -> Result<(), ClassicError> {
        assert_eq!(data.len(), BLOCK_SIZE);
        let slot = match self.index.get(&disk_blk) {
            Some(&slot) => {
                self.stats.write_hits += 1;
                self.lru.touch(slot);
                slot
            }
            None => {
                self.stats.write_misses += 1;
                let slot = self.take_slot(disk_blk)?;
                self.index.insert(disk_blk, slot);
                self.lru.push_mru(slot);
                slot
            }
        };
        // In-place data write (no COW — a crash can tear this block).
        let addr = self.layout.data_addr(slot);
        self.nvm.write(addr, data);
        self.nvm.persist(addr, BLOCK_SIZE);
        self.write_seq += 1;
        self.last_write[slot as usize] = self.write_seq;
        self.set_record(
            slot,
            SlotRecord {
                valid: true,
                dirty: true,
                disk_blk,
            },
        );
        self.clean_set(self.layout.set_of(disk_blk))
    }

    /// Flashcache's proactive cleaner: while the set holds more dirty
    /// blocks than `dirty_thresh_pct` allows, write the LRU-most dirty
    /// blocks back to disk and mark them clean.
    fn clean_set(&mut self, set: u32) -> Result<(), ClassicError> {
        let allowed = (self.layout.assoc * self.cfg.dirty_thresh_pct / 100).max(1);
        if self.set_dirty[set as usize] <= allowed {
            return Ok(());
        }
        // Collect dirty slots in LRU→MRU order.
        let mut order: Vec<u32> = Vec::new();
        let mut cur = self.lru.lru_of_set(set);
        while let Some(slot) = cur {
            if self.records[slot as usize].dirty {
                order.push(slot);
            }
            cur = self.lru.next_towards_mru(slot);
        }
        let mut buf = [0u8; BLOCK_SIZE];
        for slot in order {
            if self.set_dirty[set as usize] <= allowed {
                break;
            }
            let rec = self.records[slot as usize];
            self.nvm.read(self.layout.data_addr(slot), &mut buf);
            self.disk
                .write_block(rec.disk_blk, &buf)
                .map_err(|e| ClassicError::io("cleaner writeback", rec.disk_blk, e))?;
            self.stats.writebacks += 1;
            self.set_record(
                slot,
                SlotRecord {
                    dirty: false,
                    ..rec
                },
            );
        }
        Ok(())
    }

    /// Reads one block through the cache.
    pub fn read(&mut self, disk_blk: u64, buf: &mut [u8]) -> Result<(), ClassicError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        if let Some(&slot) = self.index.get(&disk_blk) {
            self.nvm.read(self.layout.data_addr(slot), buf);
            self.lru.touch(slot);
            self.stats.read_hits += 1;
            return Ok(());
        }
        self.disk
            .read_block(disk_blk, buf)
            .map_err(|e| ClassicError::io("read miss fill", disk_blk, e))?;
        self.stats.read_misses += 1;
        if self.cfg.cache_reads {
            let slot = self.take_slot(disk_blk)?;
            self.index.insert(disk_blk, slot);
            self.lru.push_mru(slot);
            let addr = self.layout.data_addr(slot);
            self.nvm.write(addr, buf);
            self.nvm.persist(addr, BLOCK_SIZE);
            self.set_record(
                slot,
                SlotRecord {
                    valid: true,
                    dirty: false,
                    disk_blk,
                },
            );
        }
        Ok(())
    }

    /// Finds a slot in `disk_blk`'s set, evicting the set's LRU victim if
    /// the set is full.
    fn take_slot(&mut self, disk_blk: u64) -> Result<u32, ClassicError> {
        let set = self.layout.set_of(disk_blk);
        // A free (invalid) slot in the set?
        for slot in self.layout.set_slots(set) {
            if !self.records[slot as usize].valid {
                return Ok(slot);
            }
        }
        let victim = self
            .lru
            .lru_of_set(set)
            .expect("full set must have linked slots");
        self.evict(victim)?;
        Ok(victim)
    }

    fn evict(&mut self, slot: u32) -> Result<(), ClassicError> {
        let rec = self.records[slot as usize];
        debug_assert!(rec.valid);
        if rec.dirty {
            let mut buf = [0u8; BLOCK_SIZE];
            self.nvm.read(self.layout.data_addr(slot), &mut buf);
            self.disk
                .write_block(rec.disk_blk, &buf)
                .map_err(|e| ClassicError::io("eviction writeback", rec.disk_blk, e))?;
            self.stats.writebacks += 1;
        }
        self.index.remove(&rec.disk_blk);
        self.lru.remove(slot);
        // Invalidate persistently before the slot is reused.
        self.set_record(slot, SlotRecord::INVALID);
        self.stats.evictions += 1;
        Ok(())
    }

    /// Updates a slot's record and synchronously persists it per the
    /// configured scheme: Flashcache rewrites the whole 4 KB metadata
    /// block (the write-amplification source of §3.2); FlashTier/bcache
    /// append one 16 B log record.
    fn set_record(&mut self, slot: u32, rec: SlotRecord) {
        let set = (slot / self.layout.assoc) as usize;
        let was_dirty = self.records[slot as usize].valid && self.records[slot as usize].dirty;
        let now_dirty = rec.valid && rec.dirty;
        match (was_dirty, now_dirty) {
            (false, true) => self.set_dirty[set] += 1,
            (true, false) => self.set_dirty[set] -= 1,
            _ => {}
        }
        self.records[slot as usize] = rec;
        if !self.cfg.sync_metadata {
            return;
        }
        match self.cfg.metadata_scheme {
            MetadataScheme::SyncBlock => {
                self.write_meta_block(self.layout.meta_block_of(slot));
            }
            MetadataScheme::Log => self.append_log(slot),
        }
    }

    /// Appends one record to the metadata log, checkpointing first if the
    /// log is full.
    fn append_log(&mut self, slot: u32) {
        if self.log_cursor == LOG_SLOTS {
            self.checkpoint_metadata();
        }
        let raw = encode_log_record(self.gen, slot, self.records[slot as usize]);
        let addr = self.layout.log_slot_addr(self.log_cursor);
        self.nvm.atomic_write_u128(addr, raw);
        self.nvm.persist(addr, RECORD_BYTES);
        self.log_cursor += 1;
        self.stats.meta_log_appends += 1;
    }

    /// Writes the whole metadata array as the new base, then bumps the
    /// generation (the atomic commit point that retires every log record),
    /// restarting the log.
    fn checkpoint_metadata(&mut self) {
        for mb in 0..self.layout.meta_blocks {
            self.write_meta_block(mb);
        }
        self.gen += 1;
        self.nvm.atomic_write_u64(GEN_OFF, self.gen as u64);
        self.nvm.persist(GEN_OFF, 8);
        self.log_cursor = 0;
        self.stats.meta_checkpoints += 1;
    }

    /// Writes back every dirty block (orderly shutdown / verification).
    /// Stops at the first disk error — the remaining dirty blocks stay
    /// dirty and a later retry resumes where this one failed.
    pub fn flush_all(&mut self) -> Result<(), ClassicError> {
        let mut buf = [0u8; BLOCK_SIZE];
        for slot in 0..self.layout.num_blocks {
            let rec = self.records[slot as usize];
            if rec.valid && rec.dirty {
                self.nvm.read(self.layout.data_addr(slot), &mut buf);
                self.disk
                    .write_block(rec.disk_blk, &buf)
                    .map_err(|e| ClassicError::io("flush writeback", rec.disk_blk, e))?;
                self.stats.writebacks += 1;
                self.set_record(
                    slot,
                    SlotRecord {
                        dirty: false,
                        ..rec
                    },
                );
            }
        }
        Ok(())
    }

    /// Handles a device flush barrier (REQ_FLUSH) from the file system:
    /// cleans the least-recently-used dirty blocks of every set down to
    /// the `dirty_thresh_pct` pool, in elevator (ascending disk block)
    /// order, persisting the affected metadata blocks in one batched pass
    /// (Flashcache's cleaner batches metadata I/O).
    ///
    /// Hot blocks re-dirtied within the pool keep absorbing writes, but
    /// every colder version — journal copies prominently — reaches the
    /// SSD, which is the disk write amplification of §3.1 / Fig. 7(c).
    /// No-op when `drain_on_flush` is disabled.
    pub fn flush_barrier(&mut self) -> Result<(), ClassicError> {
        if !self.cfg.drain_on_flush {
            return Ok(());
        }
        let allowed = (self.layout.assoc * self.cfg.dirty_thresh_pct / 100).max(1);
        let mut to_clean: Vec<(u64, u32)> = Vec::new();
        // Fallow pass: dirty blocks not re-written within the fallow age
        // (journal copies prominently: the log only returns to a slot a
        // full wrap later).
        let fallow_before = self.write_seq.saturating_sub(self.cfg.fallow_age_writes);
        for slot in 0..self.layout.num_blocks {
            let rec = self.records[slot as usize];
            if rec.valid && rec.dirty && self.last_write[slot as usize] <= fallow_before {
                to_clean.push((rec.disk_blk, slot));
            }
        }
        // Threshold pass: each set's LRU-most dirty slots beyond its pool.
        for set in 0..self.layout.num_sets {
            let excess = self.set_dirty[set as usize].saturating_sub(allowed);
            if excess == 0 {
                continue;
            }
            let mut remaining = excess;
            let mut cur = self.lru.lru_of_set(set);
            while let (Some(slot), true) = (cur, remaining > 0) {
                if self.records[slot as usize].dirty
                    && self.last_write[slot as usize] > fallow_before
                {
                    to_clean.push((self.records[slot as usize].disk_blk, slot));
                    remaining -= 1;
                }
                cur = self.lru.next_towards_mru(slot);
            }
        }
        if to_clean.is_empty() {
            return Ok(());
        }
        to_clean.sort_unstable(); // elevator order
        let mut buf = [0u8; BLOCK_SIZE];
        let mut touched_slots: Vec<u32> = Vec::new();
        for (disk_blk, slot) in to_clean {
            self.nvm.read(self.layout.data_addr(slot), &mut buf);
            self.disk
                .write_block(disk_blk, &buf)
                .map_err(|e| ClassicError::io("barrier writeback", disk_blk, e))?;
            self.stats.writebacks += 1;
            let set = (slot / self.layout.assoc) as usize;
            self.set_dirty[set] -= 1;
            let rec = self.records[slot as usize];
            self.records[slot as usize] = SlotRecord {
                dirty: false,
                ..rec
            };
            touched_slots.push(slot);
        }
        if self.cfg.sync_metadata {
            match self.cfg.metadata_scheme {
                MetadataScheme::SyncBlock => {
                    // Batch: one write per affected metadata block
                    // (Flashcache's cleaner batches metadata I/O).
                    let mut touched_meta: Vec<usize> = touched_slots
                        .iter()
                        .map(|&s| self.layout.meta_block_of(s))
                        .collect();
                    touched_meta.sort_unstable();
                    touched_meta.dedup();
                    for mb in touched_meta {
                        self.write_meta_block(mb);
                    }
                }
                MetadataScheme::Log => {
                    for slot in touched_slots {
                        self.append_log(slot);
                    }
                }
            }
        }
        Ok(())
    }

    /// Serialises and persists one metadata block from the DRAM mirror.
    fn write_meta_block(&mut self, mb: usize) {
        let first = mb * RECORDS_PER_META_BLOCK;
        let mut image = [0u8; BLOCK_SIZE];
        for i in 0..RECORDS_PER_META_BLOCK {
            let s = first + i;
            if s < self.records.len() {
                image[i * RECORD_BYTES..(i + 1) * RECORD_BYTES]
                    .copy_from_slice(&self.records[s].encode());
            }
        }
        let addr = self.layout.meta_block_addr(mb);
        self.nvm.write(addr, &image);
        self.nvm.persist(addr, BLOCK_SIZE);
        self.stats.meta_block_writes += 1;
    }

    /// Reads `disk_blk` without populating the cache (verification).
    pub fn read_nocache(&self, disk_blk: u64, buf: &mut [u8]) -> Result<(), ClassicError> {
        assert_eq!(buf.len(), BLOCK_SIZE);
        if let Some(&slot) = self.index.get(&disk_blk) {
            self.nvm.read(self.layout.data_addr(slot), buf);
            Ok(())
        } else {
            self.disk
                .read_block(disk_blk, buf)
                .map_err(|e| ClassicError::io("uncached read", disk_blk, e))
        }
    }

    pub fn stats(&self) -> ClassicStats {
        self.stats
    }

    pub fn layout(&self) -> &ClassicLayout {
        &self.layout
    }

    pub fn nvm(&self) -> &Nvm {
        &self.nvm
    }

    pub fn disk(&self) -> &DynDisk {
        &self.disk
    }

    pub fn contains(&self, disk_blk: u64) -> bool {
        self.index.contains_key(&disk_blk)
    }

    pub fn cached_blocks(&self) -> usize {
        self.index.len()
    }

    /// Invariant self-check (tests): DRAM mirror ↔ NVM records ↔ index.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut raw = [0u8; RECORD_BYTES];
        let mut valid = 0usize;
        for slot in 0..self.layout.num_blocks {
            let mem = self.records[slot as usize];
            // In the SyncBlock scheme the record area mirrors DRAM exactly;
            // in the Log scheme it is only the last checkpoint base (the
            // deltas live in the log, exercised by the recovery tests).
            if self.cfg.sync_metadata && self.cfg.metadata_scheme == MetadataScheme::SyncBlock {
                self.nvm.read(self.layout.record_addr(slot), &mut raw);
                let persisted = SlotRecord::decode(&raw);
                if persisted != mem {
                    return Err(format!("slot {slot}: NVM {persisted:?} != DRAM {mem:?}"));
                }
            }
            if mem.valid {
                valid += 1;
                let set = self.layout.set_of(mem.disk_blk);
                if !self.layout.set_slots(set).contains(&slot) {
                    return Err(format!(
                        "slot {slot} holds block {} of foreign set",
                        mem.disk_blk
                    ));
                }
                if self.index.get(&mem.disk_blk) != Some(&slot) {
                    return Err(format!("slot {slot} not indexed"));
                }
                if !self.lru.contains(slot) {
                    return Err(format!("valid slot {slot} not in LRU"));
                }
            } else if self.lru.contains(slot) {
                return Err(format!("invalid slot {slot} linked in LRU"));
            }
        }
        if valid != self.index.len() {
            return Err(format!(
                "index size {} != valid slots {valid}",
                self.index.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{DiskKind, SimDisk};
    use nvmsim::{CrashPolicy, NvmConfig, NvmDevice, NvmTech, SimClock};

    fn setup(assoc: u32) -> (ClassicCache, Nvm, blockdev::Disk) {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(2 << 20, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
        let cfg = ClassicConfig {
            assoc,
            ..ClassicConfig::default()
        };
        let cache = ClassicCache::format(nvm.clone(), disk.clone(), cfg);
        (cache, nvm, disk)
    }

    fn blk(b: u8) -> [u8; BLOCK_SIZE] {
        [b; BLOCK_SIZE]
    }

    #[test]
    fn write_read_round_trip() {
        let (mut c, _, _) = setup(64);
        c.write(10, &blk(1)).unwrap();
        let mut buf = [0u8; BLOCK_SIZE];
        c.read(10, &mut buf).unwrap();
        assert_eq!(buf, blk(1));
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(c.stats().read_hits, 1);
        c.check_consistency().unwrap();
    }

    #[test]
    fn every_write_rewrites_a_metadata_block() {
        let (mut c, nvm, _) = setup(64);
        let before = nvm.stats();
        c.write(1, &blk(1)).unwrap();
        c.write(2, &blk(2)).unwrap();
        let d = nvm.stats().delta(&before);
        assert_eq!(c.stats().meta_block_writes, 2);
        // Two data blocks + two metadata blocks, each 64 dirty lines.
        assert!(
            d.lines_written >= 4 * 64,
            "lines written: {}",
            d.lines_written
        );
        c.check_consistency().unwrap();
    }

    #[test]
    fn metadata_updates_can_be_disabled() {
        let clock = SimClock::new();
        let nvm = NvmDevice::new(NvmConfig::new(2 << 20, NvmTech::Pcm), clock.clone());
        let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
        let cfg = ClassicConfig {
            assoc: 64,
            sync_metadata: false,
            ..ClassicConfig::default()
        };
        let mut c = ClassicCache::format(nvm.clone(), disk, cfg);
        let before = nvm.stats();
        c.write(1, &blk(1)).unwrap();
        let d = nvm.stats().delta(&before);
        assert_eq!(c.stats().meta_block_writes, 0);
        assert!(
            d.lines_written < 70,
            "only the data block should be written"
        );
    }

    #[test]
    fn write_hit_overwrites_in_place() {
        let (mut c, _, _) = setup(64);
        c.write(5, &blk(1)).unwrap();
        c.write(5, &blk(2)).unwrap();
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.cached_blocks(), 1);
        let mut buf = [0u8; BLOCK_SIZE];
        c.read(5, &mut buf).unwrap();
        assert_eq!(buf, blk(2));
    }

    #[test]
    fn set_conflict_evicts_within_set() {
        let (mut c, _, disk) = setup(4);
        let l = *c.layout();
        // Find 5 disk blocks hashing to the same set.
        let target = l.set_of(0);
        let mut same_set = vec![];
        let mut b = 0u64;
        while same_set.len() < 5 {
            if l.set_of(b) == target {
                same_set.push(b);
            }
            b += 1;
        }
        for (i, &sb) in same_set.iter().enumerate() {
            c.write(sb, &blk(i as u8 + 1)).unwrap();
        }
        // The set holds 4 slots: the first block must have been evicted
        // even though the rest of the cache is empty.
        assert!(
            !c.contains(same_set[0]),
            "set conflict must evict within the set"
        );
        assert_eq!(c.stats().evictions, 1);
        let mut buf = [0u8; BLOCK_SIZE];
        disk.read_block(same_set[0], &mut buf)
            .expect("classic cache assumes a fault-free disk");
        assert_eq!(buf, blk(1));
        c.check_consistency().unwrap();
    }

    #[test]
    fn recover_rebuilds_index_from_metadata_blocks() {
        let (mut c, nvm, disk) = setup(64);
        c.write(7, &blk(9)).unwrap();
        c.write(8, &blk(10)).unwrap();
        drop(c);
        nvm.crash(CrashPolicy::LoseVolatile);
        let rec = ClassicCache::recover(
            nvm,
            disk,
            ClassicConfig {
                assoc: 64,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rec.contains(7) && rec.contains(8));
        let mut buf = [0u8; BLOCK_SIZE];
        rec.read_nocache(7, &mut buf).unwrap();
        assert_eq!(buf, blk(9));
        rec.check_consistency().unwrap();
    }

    #[test]
    fn in_place_overwrite_can_tear_across_crash() {
        // Documents the baseline's weakness (why it needs a journal above):
        // a crash during a write-hit overwrite may leave a mixed block.
        let mut torn = false;
        for seed in 0..300u64 {
            let clock = SimClock::new();
            let nvm = NvmDevice::new(NvmConfig::new(2 << 20, NvmTech::Pcm), clock.clone());
            let disk = SimDisk::new(DiskKind::Ssd, 1 << 16, clock);
            let cfg = ClassicConfig {
                assoc: 64,
                ..ClassicConfig::default()
            };
            let mut c = ClassicCache::format(nvm.clone(), disk.clone(), cfg.clone());
            c.write(3, &blk(1)).unwrap();
            // Second write crashes mid-flush.
            nvm.set_trip(Some(20));
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.write(3, &blk(2))));
            nvm.set_trip(None);
            if r.is_ok() {
                continue;
            }
            drop(c);
            nvm.crash(CrashPolicy::Random(seed));
            let rec = ClassicCache::recover(nvm, disk, cfg).unwrap();
            let mut buf = [0u8; BLOCK_SIZE];
            rec.read_nocache(3, &mut buf).unwrap();
            if buf.iter().any(|&x| x != buf[0]) {
                torn = true;
                break;
            }
        }
        assert!(
            torn,
            "in-place overwrite should be tearable — that is the point of the baseline"
        );
    }

    #[test]
    fn flush_all_cleans_dirty_blocks() {
        let (mut c, _, disk) = setup(64);
        for i in 0..5u64 {
            c.write(i, &blk(i as u8 + 1)).unwrap();
        }
        c.flush_all().unwrap();
        let mut buf = [0u8; BLOCK_SIZE];
        for i in 0..5u64 {
            disk.read_block(i, &mut buf)
                .expect("classic cache assumes a fault-free disk");
            assert_eq!(buf, blk(i as u8 + 1));
        }
        let w = disk.stats().writes;
        c.flush_all().unwrap();
        assert_eq!(disk.stats().writes, w, "second flush writes nothing");
        c.check_consistency().unwrap();
    }

    #[test]
    fn read_miss_fill_is_clean() {
        let (mut c, _, disk) = setup(64);
        disk.write_block(40, &blk(4))
            .expect("classic cache assumes a fault-free disk");
        let mut buf = [0u8; BLOCK_SIZE];
        c.read(40, &mut buf).unwrap();
        assert_eq!(buf, blk(4));
        assert!(c.contains(40));
        // Evicting it must not write back.
        let w = disk.stats().writes;
        c.flush_all().unwrap();
        assert_eq!(disk.stats().writes, w);
    }
}
