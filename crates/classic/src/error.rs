//! Error type for the Classic cache.

use std::fmt;

use blockdev::IoError;

/// A backing-disk failure surfaced by the Classic cache.
///
/// The Classic baseline has no retry or quarantine machinery — that is
/// Tinca's contribution — so any disk error aborts the operation in
/// progress and is handed to the caller (the journaling file system
/// above, which treats it like a failed bio).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassicError {
    /// The cache operation that needed the disk (`"writeback"`,
    /// `"read miss fill"`, ...).
    pub op: &'static str,
    /// The disk block the failed request addressed.
    pub disk_blk: u64,
    /// The underlying device error.
    pub source: IoError,
}

impl ClassicError {
    /// Tags a disk error with the cache operation it interrupted.
    pub fn io(op: &'static str, disk_blk: u64, source: IoError) -> ClassicError {
        ClassicError {
            op,
            disk_blk,
            source,
        }
    }
}

impl fmt::Display for ClassicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "classic cache {} of disk block {} failed: {}",
            self.op, self.disk_blk, self.source
        )
    }
}

impl std::error::Error for ClassicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_op_and_block() {
        let e = ClassicError::io("writeback", 42, IoError::BadBlock { blk: 42 });
        let s = e.to_string();
        assert!(s.contains("writeback") && s.contains("42"));
    }
}
