//! Per-set LRU lists over cache slots, sharing one pair of link arrays.

const NIL: u32 = u32::MAX;

/// LRU ordering for every set of a set-associative cache. Slot indices are
/// global; each set has its own head (MRU) and tail (LRU).
#[derive(Clone, Debug)]
pub struct SetLru {
    prev: Vec<u32>,
    next: Vec<u32>,
    linked: Vec<bool>,
    head: Vec<u32>, // per set
    tail: Vec<u32>,
    assoc: u32,
}

impl SetLru {
    pub fn new(num_slots: u32, num_sets: u32, assoc: u32) -> Self {
        assert_eq!(num_slots, num_sets * assoc);
        Self {
            prev: vec![NIL; num_slots as usize],
            next: vec![NIL; num_slots as usize],
            linked: vec![false; num_slots as usize],
            head: vec![NIL; num_sets as usize],
            tail: vec![NIL; num_sets as usize],
            assoc,
        }
    }

    fn set_of(&self, slot: u32) -> usize {
        (slot / self.assoc) as usize
    }

    pub fn contains(&self, slot: u32) -> bool {
        self.linked[slot as usize]
    }

    pub fn push_mru(&mut self, slot: u32) {
        assert!(!self.linked[slot as usize], "slot {slot} already linked");
        let set = self.set_of(slot);
        let s = slot as usize;
        self.prev[s] = NIL;
        self.next[s] = self.head[set];
        if self.head[set] != NIL {
            self.prev[self.head[set] as usize] = slot;
        } else {
            self.tail[set] = slot;
        }
        self.head[set] = slot;
        self.linked[s] = true;
    }

    pub fn remove(&mut self, slot: u32) {
        assert!(self.linked[slot as usize], "slot {slot} not linked");
        let set = self.set_of(slot);
        let s = slot as usize;
        let (p, n) = (self.prev[s], self.next[s]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head[set] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail[set] = p;
        }
        self.prev[s] = NIL;
        self.next[s] = NIL;
        self.linked[s] = false;
    }

    pub fn touch(&mut self, slot: u32) {
        let set = self.set_of(slot);
        if self.head[set] == slot {
            return;
        }
        self.remove(slot);
        self.push_mru(slot);
    }

    /// LRU slot of `set`, if the set has any linked slot.
    pub fn lru_of_set(&self, set: u32) -> Option<u32> {
        let t = self.tail[set as usize];
        (t != NIL).then_some(t)
    }

    /// The next slot towards the MRU end (for LRU→MRU walks).
    pub fn next_towards_mru(&self, slot: u32) -> Option<u32> {
        let p = self.prev[slot as usize];
        (p != NIL).then_some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_set_isolation() {
        let mut l = SetLru::new(8, 2, 4);
        l.push_mru(0); // set 0
        l.push_mru(5); // set 1
        l.push_mru(1); // set 0
        assert_eq!(l.lru_of_set(0), Some(0));
        assert_eq!(l.lru_of_set(1), Some(5));
        l.touch(0);
        assert_eq!(l.lru_of_set(0), Some(1));
        assert_eq!(l.lru_of_set(1), Some(5), "other set untouched");
    }

    #[test]
    fn remove_updates_tail() {
        let mut l = SetLru::new(4, 1, 4);
        l.push_mru(0);
        l.push_mru(1);
        l.remove(0);
        assert_eq!(l.lru_of_set(0), Some(1));
        l.remove(1);
        assert_eq!(l.lru_of_set(0), None);
    }

    #[test]
    fn touch_mru_noop() {
        let mut l = SetLru::new(4, 1, 4);
        l.push_mru(2);
        l.push_mru(3);
        l.touch(3);
        assert_eq!(l.lru_of_set(0), Some(2));
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_push_panics() {
        let mut l = SetLru::new(4, 1, 4);
        l.push_mru(0);
        l.push_mru(0);
    }
}
