//! Block-format cache metadata (Flashcache style) and NVM layout.

use blockdev::BLOCK_SIZE;

/// Magic for a formatted Classic region.
pub const MAGIC: u64 = 0x434c_4153_5349_4331; // "CLASSIC1"
pub const MAGIC_OFF: usize = 0;
pub const NUM_BLOCKS_OFF: usize = 8;
pub const ASSOC_OFF: usize = 16;
pub const HEADER_BYTES: usize = BLOCK_SIZE;

/// Bytes per slot record. Flashcache's on-SSD metadata is per-slot block
/// state packed into metadata blocks; 16 B per slot mirrors its layout.
pub const RECORD_BYTES: usize = 16;
/// Slot records per 4 KB metadata block.
pub const RECORDS_PER_META_BLOCK: usize = BLOCK_SIZE / RECORD_BYTES;
/// Size of the metadata append-log region (FlashTier/bcache scheme).
pub const LOG_BYTES: usize = 64 << 10;
/// 16 B log records in the log region.
pub const LOG_SLOTS: usize = LOG_BYTES / RECORD_BYTES;

/// Tag bit marking a log slot as holding a record (so a record that
/// *invalidates* a slot is distinguishable from an empty log slot).
const LOG_PRESENT: u64 = 1 << 7;

const FLAG_VALID: u64 = 1 << 0;
const FLAG_DIRTY: u64 = 1 << 1;

/// One slot's metadata record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRecord {
    pub valid: bool,
    pub dirty: bool,
    /// On-disk block number cached in this slot.
    pub disk_blk: u64,
}

impl SlotRecord {
    pub const INVALID: SlotRecord = SlotRecord {
        valid: false,
        dirty: false,
        disk_blk: 0,
    };

    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        if self.valid {
            let mut flags = FLAG_VALID;
            if self.dirty {
                flags |= FLAG_DIRTY;
            }
            let lo = flags | (self.disk_blk << 8);
            out[..8].copy_from_slice(&lo.to_le_bytes());
        }
        out
    }

    pub fn decode(raw: &[u8]) -> SlotRecord {
        let lo = u64::from_le_bytes(raw[..8].try_into().unwrap());
        if lo & FLAG_VALID == 0 {
            return SlotRecord::INVALID;
        }
        SlotRecord {
            valid: true,
            dirty: lo & FLAG_DIRTY != 0,
            disk_blk: lo >> 8,
        }
    }
}

/// NVM partitioning for the Classic cache:
/// header | metadata blocks | metadata log | data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassicLayout {
    pub meta_off: usize,
    pub meta_blocks: usize,
    /// Metadata append-log region ([`MetadataScheme::Log`]); always
    /// reserved so both schemes share one layout.
    ///
    /// [`MetadataScheme::Log`]: crate::MetadataScheme::Log
    pub log_off: usize,
    pub data_off: usize,
    pub num_blocks: u32,
    pub num_sets: u32,
    pub assoc: u32,
}

impl ClassicLayout {
    /// Partitions `capacity` bytes with `assoc`-way sets. The slot count is
    /// rounded down to a whole number of sets.
    pub fn compute(capacity: usize, assoc: u32) -> ClassicLayout {
        assert!(
            capacity > HEADER_BYTES + 2 * BLOCK_SIZE,
            "NVM region too small"
        );
        assert!(
            capacity > HEADER_BYTES + LOG_BYTES + 2 * BLOCK_SIZE,
            "NVM region too small"
        );
        let usable = capacity - HEADER_BYTES - LOG_BYTES;
        let mut num_blocks = usable / (BLOCK_SIZE + RECORD_BYTES);
        // Whole sets only (the last partial set would skew the hash).
        num_blocks -= num_blocks % assoc.min(num_blocks as u32) as usize;
        assert!(num_blocks > 0, "capacity below one set");
        loop {
            let meta_blocks = num_blocks.div_ceil(RECORDS_PER_META_BLOCK);
            let total =
                HEADER_BYTES + meta_blocks * BLOCK_SIZE + LOG_BYTES + num_blocks * BLOCK_SIZE;
            if total <= capacity {
                let assoc = assoc.min(num_blocks as u32);
                let log_off = HEADER_BYTES + meta_blocks * BLOCK_SIZE;
                return ClassicLayout {
                    meta_off: HEADER_BYTES,
                    meta_blocks,
                    log_off,
                    data_off: log_off + LOG_BYTES,
                    num_blocks: num_blocks as u32,
                    num_sets: num_blocks as u32 / assoc,
                    assoc,
                };
            }
            num_blocks -= assoc as usize;
            assert!(num_blocks > 0, "capacity below one set");
        }
    }

    /// Byte address of log slot `i`.
    pub fn log_slot_addr(&self, i: usize) -> usize {
        debug_assert!(i < LOG_SLOTS);
        self.log_off + i * RECORD_BYTES
    }

    /// The set a disk block hashes to (Flashcache hashes the block number).
    pub fn set_of(&self, disk_blk: u64) -> u32 {
        // Fibonacci hash of the block number, reduced to a set.
        let h = disk_blk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as u32 % self.num_sets
    }

    /// Slot range `[start, end)` of a set.
    pub fn set_slots(&self, set: u32) -> std::ops::Range<u32> {
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Byte address of data block `slot`.
    pub fn data_addr(&self, slot: u32) -> usize {
        debug_assert!(slot < self.num_blocks);
        self.data_off + slot as usize * BLOCK_SIZE
    }

    /// Index of the metadata block covering `slot`.
    pub fn meta_block_of(&self, slot: u32) -> usize {
        slot as usize / RECORDS_PER_META_BLOCK
    }

    /// Byte address of metadata block `mb`.
    pub fn meta_block_addr(&self, mb: usize) -> usize {
        debug_assert!(mb < self.meta_blocks);
        self.meta_off + mb * BLOCK_SIZE
    }

    /// Byte offset of `slot`'s record inside the metadata area.
    pub fn record_addr(&self, slot: u32) -> usize {
        self.meta_off + slot as usize * RECORD_BYTES
    }
}

/// Encodes one metadata-log record: `(generation, slot, state)`.
pub fn encode_log_record(gen: u32, slot: u32, rec: SlotRecord) -> u128 {
    let lo = u64::from_le_bytes(rec.encode()[..8].try_into().unwrap()) | LOG_PRESENT;
    let hi = (gen as u64) | ((slot as u64) << 32);
    (lo as u128) | ((hi as u128) << 64)
}

/// Decodes a log record; `None` for an empty slot.
pub fn decode_log_record(raw: u128) -> Option<(u32, u32, SlotRecord)> {
    let lo = raw as u64;
    if lo & LOG_PRESENT == 0 {
        return None;
    }
    let hi = (raw >> 64) as u64;
    let mut bytes = [0u8; RECORD_BYTES];
    bytes[..8].copy_from_slice(&(lo & !LOG_PRESENT).to_le_bytes());
    Some((hi as u32, (hi >> 32) as u32, SlotRecord::decode(&bytes)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_record_round_trip() {
        for rec in [
            SlotRecord {
                valid: true,
                dirty: true,
                disk_blk: 9999,
            },
            SlotRecord::INVALID,
        ] {
            let raw = encode_log_record(7, 42, rec);
            let (gen, slot, dec) = decode_log_record(raw).unwrap();
            assert_eq!((gen, slot, dec), (7, 42, rec));
        }
        assert_eq!(decode_log_record(0), None);
    }

    #[test]
    fn log_region_between_meta_and_data() {
        let l = ClassicLayout::compute(8 << 20, 64);
        assert_eq!(l.log_off, l.meta_off + l.meta_blocks * BLOCK_SIZE);
        assert_eq!(l.data_off, l.log_off + LOG_BYTES);
        assert_eq!(l.log_slot_addr(1) - l.log_slot_addr(0), RECORD_BYTES);
    }

    #[test]
    fn record_round_trip() {
        for (valid, dirty, blk) in [(true, true, 12345u64), (true, false, 0), (false, false, 0)] {
            let r = if valid {
                SlotRecord {
                    valid,
                    dirty,
                    disk_blk: blk,
                }
            } else {
                SlotRecord::INVALID
            };
            assert_eq!(SlotRecord::decode(&r.encode()), r);
        }
    }

    #[test]
    fn layout_fits_and_is_set_aligned() {
        for cap in [2 << 20, 32 << 20] {
            let l = ClassicLayout::compute(cap, 64);
            assert_eq!(l.num_blocks % l.assoc, 0);
            let total = l.data_off + l.num_blocks as usize * BLOCK_SIZE;
            assert!(total <= cap);
            assert!(l.num_sets >= 1);
        }
    }

    #[test]
    fn small_cache_clamps_assoc() {
        let l = ClassicLayout::compute(2 << 20, 100_000);
        assert!(l.assoc <= l.num_blocks);
        assert_eq!(l.num_sets, 1);
    }

    #[test]
    fn set_of_is_stable_and_in_range() {
        let l = ClassicLayout::compute(8 << 20, 64);
        for blk in [0u64, 1, 999, 1 << 40] {
            let s = l.set_of(blk);
            assert_eq!(s, l.set_of(blk));
            assert!(s < l.num_sets);
        }
    }

    #[test]
    fn sets_partition_slots() {
        let l = ClassicLayout::compute(8 << 20, 64);
        let mut covered = 0;
        for s in 0..l.num_sets {
            let r = l.set_slots(s);
            covered += r.len();
        }
        assert_eq!(covered as u32, l.num_blocks);
    }

    #[test]
    fn meta_block_covers_256_records() {
        let l = ClassicLayout::compute(8 << 20, 64);
        assert_eq!(l.meta_block_of(0), 0);
        assert_eq!(l.meta_block_of(255), 0);
        assert_eq!(l.meta_block_of(256), 1);
    }
}
