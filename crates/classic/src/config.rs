//! Configuration for the Classic (Flashcache-like) cache.

/// How cache metadata is persisted (§1 of the paper surveys all three
/// points in this space: Flashcache synchronously rewrites metadata
/// *blocks*; FlashTier and bcache append to a metadata *log*; Tinca uses
/// fine-grained atomically-written entries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetadataScheme {
    /// Flashcache: rewrite the whole 4 KB metadata block per update.
    SyncBlock,
    /// FlashTier/bcache: append a 16 B record to a metadata log; when the
    /// log fills, checkpoint the full metadata array and restart it.
    Log,
}

/// Tuning knobs for [`crate::ClassicCache`].
#[derive(Clone, Debug)]
pub struct ClassicConfig {
    /// Set associativity (Flashcache default: 512 blocks per set).
    pub assoc: u32,
    /// Whether cache metadata is synchronously persisted on every write
    /// (Flashcache behaviour). `false` regenerates Fig. 4's "no metadata
    /// update" bars — unsafe, measurement only.
    pub sync_metadata: bool,
    /// Metadata persistence scheme (see [`MetadataScheme`]).
    pub metadata_scheme: MetadataScheme,
    /// Whether read misses populate the cache.
    pub cache_reads: bool,
    /// Per-set dirty-block threshold in percent (Flashcache's
    /// `dirty_thresh_pct`, default 20): when a set exceeds it, the LRU
    /// dirty blocks are proactively cleaned to disk. This background
    /// cleaning is why journal blocks reach the SSD even while cached —
    /// a major source of Classic's disk write amplification (§3, Fig. 7c).
    pub dirty_thresh_pct: u32,
    /// Whether a device flush barrier (REQ_FLUSH from the journaling FS
    /// above) drains all dirty blocks to disk. The legacy stack treats the
    /// cache as a volatile block device and flushes conservatively at
    /// every journal commit; Tinca needs no such drain because its NVM
    /// commit *is* the durability point. Default `true`.
    pub drain_on_flush: bool,
    /// Fallow cleaning age (Flashcache's `fallow_delay`, 15 min of wall
    /// time by default): dirty blocks not re-written for this many cache
    /// block-writes are cleaned at the next flush barrier. Hot pages are
    /// re-written well within the window and keep absorbing writes;
    /// journal-region copies go fallow before the log wraps over them and
    /// reach the SSD — the disk write amplification of Fig. 7(c). The
    /// default (256) is the wall-clock default scaled to simulated write
    /// intensity.
    pub fallow_age_writes: u64,
}

impl Default for ClassicConfig {
    fn default() -> Self {
        Self {
            assoc: 512,
            sync_metadata: true,
            metadata_scheme: MetadataScheme::SyncBlock,
            cache_reads: true,
            dirty_thresh_pct: 20,
            drain_on_flush: true,
            fallow_age_writes: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_flashcache() {
        let c = ClassicConfig::default();
        assert_eq!(c.assoc, 512);
        assert!(c.sync_metadata);
        assert!(c.cache_reads);
        assert_eq!(c.dirty_thresh_pct, 20);
        assert_eq!(c.metadata_scheme, MetadataScheme::SyncBlock);
    }
}
