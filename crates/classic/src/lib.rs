//! # classic — the Flashcache-like baseline NVM cache
//!
//! The paper's competitor ("**Classic**", §5.1) is a three-layer stack:
//! Ext4 with JBD2 journaling on top, Flashcache as the cache manager in
//! the middle, and an NVM-based *block device* below. This crate provides
//! the middle layer faithfully:
//!
//! * **Set-associative** mapping (Flashcache's default: 512-block sets,
//!   LRU within a set) — a hot block range can thrash its set even while
//!   the cache has global headroom, which is one reason the paper measures
//!   an 80 % write hit rate for Classic vs 93 % for Tinca (Fig. 12c).
//! * **Block-format metadata, synchronously updated** (§3.2): every data
//!   block write rewrites the whole 4 KB metadata block covering its slot
//!   — the full 64-cache-line flush storm the paper blames for the
//!   metadata write amplification of Fig. 4.
//! * **In-place overwrites** on write hits — no COW, so a crash can tear a
//!   block. That is acceptable for the baseline because the journaling
//!   file system above recovers torn blocks from its redo journal.
//! * **No transactions** — the file system must journal (double writes).
//!
//! The `sync_metadata` knob disables metadata persistence to regenerate
//! Fig. 4 (throughput head-room of metadata updates).
//!
//! ```
//! use blockdev::{DiskKind, SimDisk, BLOCK_SIZE};
//! use classic::{ClassicCache, ClassicConfig};
//! use nvmsim::{NvmConfig, NvmDevice, NvmTech, SimClock};
//!
//! let clock = SimClock::new();
//! let nvm = NvmDevice::new(NvmConfig::new(2 << 20, NvmTech::Pcm), clock.clone());
//! let disk = SimDisk::new(DiskKind::Ssd, 1 << 14, clock);
//! let mut cache = ClassicCache::format(nvm, disk, ClassicConfig { assoc: 64, ..Default::default() });
//! cache.write(42, &[1u8; BLOCK_SIZE]).unwrap();
//! assert_eq!(cache.stats().meta_block_writes, 1); // synchronous 4 KB metadata write
//! ```

mod cache;
mod config;
mod error;
mod meta;
mod setlru;
mod stats;

pub use cache::ClassicCache;
pub use config::{ClassicConfig, MetadataScheme};
pub use error::ClassicError;
pub use meta::{ClassicLayout, SlotRecord};
pub use stats::ClassicStats;
