//! Counters for the Classic cache.

/// Cumulative counters for one [`crate::ClassicCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassicStats {
    pub read_hits: u64,
    pub read_misses: u64,
    pub write_hits: u64,
    pub write_misses: u64,
    /// Metadata blocks written to NVM (the synchronous-update overhead).
    pub meta_block_writes: u64,
    /// 16 B records appended to the metadata log (FlashTier/bcache scheme).
    pub meta_log_appends: u64,
    /// Log-full checkpoints of the whole metadata array.
    pub meta_checkpoints: u64,
    pub evictions: u64,
    pub writebacks: u64,
    pub recoveries: u64,
}

impl ClassicStats {
    pub fn write_hit_rate(&self) -> Option<f64> {
        let total = self.write_hits + self.write_misses;
        (total > 0).then(|| self.write_hits as f64 / total as f64)
    }

    pub fn read_hit_rate(&self) -> Option<f64> {
        let total = self.read_hits + self.read_misses;
        (total > 0).then(|| self.read_hits as f64 / total as f64)
    }

    pub fn delta(&self, e: &ClassicStats) -> ClassicStats {
        ClassicStats {
            read_hits: self.read_hits - e.read_hits,
            read_misses: self.read_misses - e.read_misses,
            write_hits: self.write_hits - e.write_hits,
            write_misses: self.write_misses - e.write_misses,
            meta_block_writes: self.meta_block_writes - e.meta_block_writes,
            meta_log_appends: self.meta_log_appends - e.meta_log_appends,
            meta_checkpoints: self.meta_checkpoints - e.meta_checkpoints,
            evictions: self.evictions - e.evictions,
            writebacks: self.writebacks - e.writebacks,
            recoveries: self.recoveries - e.recoveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_delta() {
        let s = ClassicStats {
            write_hits: 1,
            write_misses: 3,
            ..Default::default()
        };
        assert_eq!(s.write_hit_rate(), Some(0.25));
        assert_eq!(s.read_hit_rate(), None);
        let t = ClassicStats {
            write_hits: 5,
            write_misses: 3,
            ..Default::default()
        };
        assert_eq!(t.delta(&s).write_hits, 4);
    }
}
