//! Optional event-trace recording for persist-order analysis.
//!
//! When [`crate::NvmConfig::trace_events`] is set, the device appends one
//! [`TracedOp`] per store, atomic store, `clflush`ed line, `sfence`, crash,
//! commit annotation, synchronization annotation, and post-crash read. The
//! `persistcheck` crate replays this stream through its rule engine to find
//! persist-ordering bugs the way `pmemcheck` does for real pmem programs.
//!
//! Tracing is off by default and the recording path is a single
//! `Option` test per operation, so benchmarks with tracing disabled
//! measure exactly the same simulated time and statistics.
//!
//! ## Provenance
//!
//! Every [`TracedOp`] carries the issuing thread's stable trace id and the
//! transaction id active on that thread (if any), read from thread-local
//! context *inside* the recording branch — a tracing-disabled device never
//! touches the thread-locals. Harnesses that need deterministic thread
//! numbering (e.g. the pool scaling bench) pin ids with
//! [`set_trace_thread`]; everyone else gets a process-unique id lazily on
//! first traced event. Transaction scopes are delimited with
//! [`txn_scope`] (RAII) or [`set_trace_txn`].
//!
//! ## Synchronization events
//!
//! The four `note_*` sync annotations on [`crate::NvmDevice`]
//! (`LockAcquire`/`LockRelease`/`AtomicLoadAcquire`/`AtomicStoreRelease`,
//! each naming a sync-object id) let the happens-before engine in
//! `persistcheck` build cross-thread edges: release-type events publish
//! the issuing thread's history on the object, acquire-type events adopt
//! it. They are pure annotations — no clock, stats, or persistence-event
//! side effects.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};

/// One recorded device event.
///
/// Addresses are device byte offsets; `line` numbers are cache-line
/// indices (`addr / CACHE_LINE`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Plain CPU store covering `[addr, addr + len)`. Volatile until the
    /// covering lines are flushed and fenced; 8-byte failure atomicity.
    Store { addr: usize, len: usize },
    /// Failure-atomic store (`len` is 8 or 16). Still volatile until
    /// flushed and fenced, but never tears.
    AtomicStore { addr: usize, len: usize },
    /// `clflush`/`clflushopt`/`clwb` of one cache line. `staged` is true
    /// when the line was dirty and its write-back entered the open fence
    /// epoch; false for a clean-line flush (a no-op, and a perf smell).
    Clflush { line: usize, staged: bool },
    /// `sfence`. `staged_lines` is how many flushed lines the fence made
    /// durable; zero means the fence ordered nothing (a perf smell).
    Sfence { staged_lines: usize },
    /// Client annotation ([`crate::NvmDevice::note_commit`]): the commit
    /// record in `[addr, addr + len)` has just been persisted, and the
    /// protocol now considers everything it references durable.
    Commit { addr: usize, len: usize },
    /// Simulated power failure.
    Crash,
    /// Read of `[addr, addr + len)` issued after a crash and before the
    /// next commit annotation — i.e. recovery inspecting survivor state.
    ReadAfterRecovery { addr: usize, len: usize },
    /// Sync annotation: the issuing thread acquired mutex `obj`
    /// ([`crate::NvmDevice::note_lock_acquire`]). Establishes a
    /// happens-before edge from the last release of `obj`.
    LockAcquire { obj: u64 },
    /// Sync annotation: the issuing thread released mutex `obj`,
    /// publishing its history to the next acquirer.
    LockRelease { obj: u64 },
    /// Sync annotation: an acquire-ordered atomic load of sync object
    /// `obj` (e.g. a follower observing a leader-published result).
    AtomicLoadAcquire { obj: u64 },
    /// Sync annotation: a release-ordered atomic store to sync object
    /// `obj` (e.g. a leader publishing a commit result).
    AtomicStoreRelease { obj: u64 },
}

impl TraceEvent {
    /// Short lowercase mnemonic, for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Store { .. } => "store",
            TraceEvent::AtomicStore { .. } => "atomic-store",
            TraceEvent::Clflush { .. } => "clflush",
            TraceEvent::Sfence { .. } => "sfence",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Crash => "crash",
            TraceEvent::ReadAfterRecovery { .. } => "read-after-recovery",
            TraceEvent::LockAcquire { .. } => "lock-acquire",
            TraceEvent::LockRelease { .. } => "lock-release",
            TraceEvent::AtomicLoadAcquire { .. } => "atomic-load-acquire",
            TraceEvent::AtomicStoreRelease { .. } => "atomic-store-release",
        }
    }

    /// True for the four synchronization annotations.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            TraceEvent::LockAcquire { .. }
                | TraceEvent::LockRelease { .. }
                | TraceEvent::AtomicLoadAcquire { .. }
                | TraceEvent::AtomicStoreRelease { .. }
        )
    }
}

/// A [`TraceEvent`] plus its logical timestamp and provenance: the 0-based
/// ordinal of the event in the recorded stream, the issuing thread's trace
/// id, and the transaction id active on that thread. Analyzer reports cite
/// the ordinals; the happens-before engine keys on `thread`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedOp {
    pub seq: u64,
    /// Stable trace id of the issuing thread (see [`trace_thread`]).
    pub thread: u32,
    /// Transaction id active on the issuing thread, if any.
    pub txn: Option<u64>,
    /// Originating device. A single device always records `0`;
    /// [`crate::merge_shard_traces`] stamps each op with its shard index so
    /// analyzers can keep fence-epoch and commit-window state per device
    /// (an sfence only orders write-backs of its own device).
    pub device: u32,
    pub event: TraceEvent,
}

impl TracedOp {
    /// Hand-builds an event on thread 0 with no transaction — for tests
    /// and analyzer fixtures that synthesize traces without a device.
    pub fn new(seq: u64, event: TraceEvent) -> Self {
        TracedOp {
            seq,
            thread: 0,
            txn: None,
            device: 0,
            event,
        }
    }

    /// Hand-builds an event with explicit thread provenance.
    pub fn on_thread(seq: u64, thread: u32, event: TraceEvent) -> Self {
        TracedOp {
            seq,
            thread,
            txn: None,
            device: 0,
            event,
        }
    }
}

/// Next process-unique trace thread id handed out lazily.
static NEXT_TRACE_THREAD: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TRACE_THREAD: Cell<Option<u32>> = const { Cell::new(None) };
    static TRACE_TXN: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The calling thread's trace id, assigning a fresh process-unique one on
/// first use. Only consulted when a traced device records an event.
pub fn trace_thread() -> u32 {
    TRACE_THREAD.with(|c| match c.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TRACE_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(Some(id));
            id
        }
    })
}

/// Pins the calling thread's trace id (harnesses that want deterministic
/// thread numbering across runs — e.g. worker `i` of a scaling bench).
pub fn set_trace_thread(id: u32) {
    TRACE_THREAD.with(|c| c.set(Some(id)));
}

/// Sets (or with `None` clears) the transaction id stamped on this
/// thread's subsequent traced events.
pub fn set_trace_txn(txn: Option<u64>) {
    TRACE_TXN.with(|c| c.set(txn));
}

/// The transaction id active on the calling thread, if any.
pub fn trace_txn() -> Option<u64> {
    TRACE_TXN.with(Cell::get)
}

/// RAII transaction scope: events traced on this thread while the guard
/// lives carry `txn`; dropping restores the previous scope (scopes nest).
#[must_use = "the scope tags events only while the guard lives"]
pub struct TxnScope {
    prev: Option<u64>,
}

/// Opens a [`TxnScope`] for `txn` on the calling thread.
pub fn txn_scope(txn: u64) -> TxnScope {
    let prev = TRACE_TXN.with(|c| c.replace(Some(txn)));
    TxnScope { prev }
}

impl Drop for TxnScope {
    fn drop(&mut self) {
        TRACE_TXN.with(|c| c.set(self.prev));
    }
}

/// The recording buffer held inside the device state.
#[derive(Debug, Default)]
pub(crate) struct TraceBuf {
    ops: Vec<TracedOp>,
    /// Events recorded before the most recent `take()`, so `seq` keeps
    /// increasing across partial drains.
    base: u64,
}

impl TraceBuf {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        let seq = self.base + self.ops.len() as u64;
        self.ops.push(TracedOp {
            seq,
            thread: trace_thread(),
            txn: trace_txn(),
            device: 0,
            event,
        });
    }

    pub(crate) fn take(&mut self) -> Vec<TracedOp> {
        self.base += self.ops.len() as u64;
        std::mem::take(&mut self.ops)
    }

    pub(crate) fn snapshot(&self) -> Vec<TracedOp> {
        self.ops.clone()
    }

    pub(crate) fn len(&self) -> u64 {
        self.base + self.ops.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_scopes_nest_and_restore() {
        set_trace_txn(None);
        assert_eq!(trace_txn(), None);
        {
            let _a = txn_scope(7);
            assert_eq!(trace_txn(), Some(7));
            {
                let _b = txn_scope(9);
                assert_eq!(trace_txn(), Some(9));
            }
            assert_eq!(trace_txn(), Some(7));
        }
        assert_eq!(trace_txn(), None);
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let mine = trace_thread();
        assert_eq!(trace_thread(), mine, "id is sticky");
        let other = std::thread::spawn(trace_thread).join().unwrap();
        assert_ne!(mine, other, "each thread gets its own id");
        set_trace_thread(500);
        assert_eq!(trace_thread(), 500);
    }

    #[test]
    fn push_stamps_provenance() {
        set_trace_thread(42);
        let _t = txn_scope(11);
        let mut buf = TraceBuf::default();
        buf.push(TraceEvent::Crash);
        let ops = buf.take();
        assert_eq!(ops[0].thread, 42);
        assert_eq!(ops[0].txn, Some(11));
    }
}
