//! Optional event-trace recording for persist-order analysis.
//!
//! When [`crate::NvmConfig::trace_events`] is set, the device appends one
//! [`TracedOp`] per store, atomic store, `clflush`ed line, `sfence`, crash,
//! commit annotation, and post-crash read. The `persistcheck` crate replays
//! this stream through its rule engine to find persist-ordering bugs the
//! way `pmemcheck` does for real pmem programs.
//!
//! Tracing is off by default and the recording path is a single
//! `Option` test per operation, so benchmarks with tracing disabled
//! measure exactly the same simulated time and statistics.

/// One recorded device event.
///
/// Addresses are device byte offsets; `line` numbers are cache-line
/// indices (`addr / CACHE_LINE`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Plain CPU store covering `[addr, addr + len)`. Volatile until the
    /// covering lines are flushed and fenced; 8-byte failure atomicity.
    Store { addr: usize, len: usize },
    /// Failure-atomic store (`len` is 8 or 16). Still volatile until
    /// flushed and fenced, but never tears.
    AtomicStore { addr: usize, len: usize },
    /// `clflush`/`clflushopt`/`clwb` of one cache line. `staged` is true
    /// when the line was dirty and its write-back entered the open fence
    /// epoch; false for a clean-line flush (a no-op, and a perf smell).
    Clflush { line: usize, staged: bool },
    /// `sfence`. `staged_lines` is how many flushed lines the fence made
    /// durable; zero means the fence ordered nothing (a perf smell).
    Sfence { staged_lines: usize },
    /// Client annotation ([`crate::NvmDevice::note_commit`]): the commit
    /// record in `[addr, addr + len)` has just been persisted, and the
    /// protocol now considers everything it references durable.
    Commit { addr: usize, len: usize },
    /// Simulated power failure.
    Crash,
    /// Read of `[addr, addr + len)` issued after a crash and before the
    /// next commit annotation — i.e. recovery inspecting survivor state.
    ReadAfterRecovery { addr: usize, len: usize },
}

impl TraceEvent {
    /// Short lowercase mnemonic, for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Store { .. } => "store",
            TraceEvent::AtomicStore { .. } => "atomic-store",
            TraceEvent::Clflush { .. } => "clflush",
            TraceEvent::Sfence { .. } => "sfence",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Crash => "crash",
            TraceEvent::ReadAfterRecovery { .. } => "read-after-recovery",
        }
    }
}

/// A [`TraceEvent`] plus its logical timestamp: the 0-based ordinal of the
/// event in the recorded stream. Analyzer reports cite these ordinals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedOp {
    pub seq: u64,
    pub event: TraceEvent,
}

/// The recording buffer held inside the device state.
#[derive(Debug, Default)]
pub(crate) struct TraceBuf {
    ops: Vec<TracedOp>,
    /// Events recorded before the most recent `take()`, so `seq` keeps
    /// increasing across partial drains.
    base: u64,
}

impl TraceBuf {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        let seq = self.base + self.ops.len() as u64;
        self.ops.push(TracedOp { seq, event });
    }

    pub(crate) fn take(&mut self) -> Vec<TracedOp> {
        self.base += self.ops.len() as u64;
        std::mem::take(&mut self.ops)
    }

    pub(crate) fn snapshot(&self) -> Vec<TracedOp> {
        self.ops.clone()
    }

    pub(crate) fn len(&self) -> u64 {
        self.base + self.ops.len() as u64
    }
}
