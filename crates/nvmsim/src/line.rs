//! Cache-line bookkeeping for the volatile overlay.

/// Size of a CPU cache line in bytes (the paper's platform: 64 B).
pub const CACHE_LINE: usize = 64;
/// Failure-atomicity unit of a plain store, in bytes.
pub const WORD_SIZE: usize = 8;
/// Words per cache line.
pub const WORDS_PER_LINE: usize = CACHE_LINE / WORD_SIZE;

/// One cache line held in the volatile overlay ("in the CPU cache").
///
/// `dirty` is a bitmask over the line's eight 8-byte words; a set bit means
/// the word differs (or may differ) from the persistent image. `pair_lead`
/// marks words that are the *leading* half of a 16-byte atomic store — on a
/// crash such a word and its successor persist all-or-nothing.
#[derive(Clone, Debug)]
pub struct LineBuf {
    pub data: [u8; CACHE_LINE],
    pub dirty: u8,
    pub pair_lead: u8,
}

impl LineBuf {
    /// A clean line initialised from the persistent image.
    pub fn clean(data: [u8; CACHE_LINE]) -> Self {
        Self {
            data,
            dirty: 0,
            pair_lead: 0,
        }
    }

    /// Marks words `[first, last]` dirty and clears any atomic pairing that
    /// overlaps them (a later plain store breaks 16-byte atomicity).
    pub fn mark_dirty_words(&mut self, first: usize, last: usize) {
        debug_assert!(first <= last && last < WORDS_PER_LINE);
        for w in first..=last {
            self.dirty |= 1 << w;
            // Clear pair bits where `w` is the lead or the trailing half.
            self.pair_lead &= !(1u8 << w);
            if w > 0 {
                self.pair_lead &= !(1u8 << (w - 1));
            }
        }
    }

    /// Marks word `w` and `w + 1` as one 16-byte atomic unit.
    pub fn mark_atomic_pair(&mut self, w: usize) {
        debug_assert!(w + 1 < WORDS_PER_LINE);
        self.dirty |= (1 << w) | (1 << (w + 1));
        self.pair_lead |= 1 << w;
        // The trailing word cannot itself lead a pair.
        self.pair_lead &= !(1u8 << (w + 1));
    }

    /// True if no word differs from the persistent image.
    pub fn is_clean(&self) -> bool {
        self.dirty == 0
    }
}

/// A snapshot of a line taken at `clflush` time; it persists (possibly
/// partially, at word granularity) when the crash model decides so, or
/// fully at the next `sfence`.
#[derive(Clone, Debug)]
pub struct FlushRecord {
    pub line: usize,
    pub data: [u8; CACHE_LINE],
    pub dirty: u8,
    pub pair_lead: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_store_breaks_pair() {
        let mut l = LineBuf::clean([0; CACHE_LINE]);
        l.mark_atomic_pair(2);
        assert_eq!(l.pair_lead, 1 << 2);
        assert_eq!(l.dirty, (1 << 2) | (1 << 3));
        // Overwrite the trailing half with a plain store.
        l.mark_dirty_words(3, 3);
        assert_eq!(l.pair_lead, 0, "pair must be dissolved");
    }

    #[test]
    fn plain_store_on_lead_breaks_pair() {
        let mut l = LineBuf::clean([0; CACHE_LINE]);
        l.mark_atomic_pair(4);
        l.mark_dirty_words(4, 4);
        assert_eq!(l.pair_lead, 0);
    }

    #[test]
    fn dirty_mask_accumulates() {
        let mut l = LineBuf::clean([0; CACHE_LINE]);
        l.mark_dirty_words(0, 1);
        l.mark_dirty_words(7, 7);
        assert_eq!(l.dirty, 0b1000_0011);
        assert!(!l.is_clean());
    }

    #[test]
    fn pair_of_pairs_keeps_each_lead() {
        let mut l = LineBuf::clean([0; CACHE_LINE]);
        l.mark_atomic_pair(0);
        l.mark_atomic_pair(2);
        assert_eq!(l.pair_lead, 0b0101);
        assert_eq!(l.dirty, 0b1111);
    }

    #[test]
    fn repeat_atomic_pair_is_idempotent() {
        let mut l = LineBuf::clean([0; CACHE_LINE]);
        l.mark_atomic_pair(6);
        l.mark_atomic_pair(6);
        assert_eq!(l.pair_lead, 1 << 6);
    }
}
