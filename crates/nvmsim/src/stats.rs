//! Counters the paper's evaluation reports for the NVM cache device.

/// Cumulative counters for one NVM device.
///
/// The evaluation of the paper normalises `clflush` executions against
/// write operations / file operations / TPC-C transactions (Figs. 7–11),
/// so `clflush` is counted per instruction, and dirty-line write-backs are
/// tracked separately as `lines_written`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NvmStats {
    /// `clflush` instructions executed (dirty or clean lines).
    pub clflush: u64,
    /// `sfence` instructions executed.
    pub sfence: u64,
    /// 8- or 16-byte atomic stores executed.
    pub atomic_stores: u64,
    /// Cache lines actually written back to the NVM medium.
    pub lines_written: u64,
    /// Cache lines read from the NVM medium.
    pub lines_read: u64,
    /// Bytes stored through the write path (before any flush).
    pub bytes_stored: u64,
    /// Bytes read through the read path.
    pub bytes_read: u64,
}

impl NvmStats {
    /// Per-field difference `self - earlier` (counters are monotone).
    pub fn delta(&self, earlier: &NvmStats) -> NvmStats {
        NvmStats {
            clflush: self.clflush - earlier.clflush,
            sfence: self.sfence - earlier.sfence,
            atomic_stores: self.atomic_stores - earlier.atomic_stores,
            lines_written: self.lines_written - earlier.lines_written,
            lines_read: self.lines_read - earlier.lines_read,
            bytes_stored: self.bytes_stored - earlier.bytes_stored,
            bytes_read: self.bytes_read - earlier.bytes_read,
        }
    }

    /// Per-field sum `self + other` (aggregating per-shard devices into
    /// one pool-wide view).
    pub fn merge(&self, o: &NvmStats) -> NvmStats {
        NvmStats {
            clflush: self.clflush + o.clflush,
            sfence: self.sfence + o.sfence,
            atomic_stores: self.atomic_stores + o.atomic_stores,
            lines_written: self.lines_written + o.lines_written,
            lines_read: self.lines_read + o.lines_read,
            bytes_stored: self.bytes_stored + o.bytes_stored,
            bytes_read: self.bytes_read + o.bytes_read,
        }
    }

    /// Bytes written back to the medium (`lines_written × 64`).
    pub fn bytes_written_back(&self) -> u64 {
        self.lines_written * crate::CACHE_LINE as u64
    }
}

/// Device-wide endurance summary (see [`crate::NvmDevice::wear_summary`]).
///
/// The paper's motivation: "considering the limited write endurance of
/// some NVM technologies, double writes adversely affect the lifetime of
/// NVM cache" (§1). `max_line_writes` bounds the lifetime: the device dies
/// when its hottest line exceeds the medium's endurance (Table 1: PCM
/// 10^6–10^8 cycles).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WearSummary {
    pub total_line_writes: u64,
    pub max_line_writes: u32,
    pub hottest_line_addr: usize,
    pub lines_touched: u64,
    pub lines_total: u64,
}

impl WearSummary {
    /// Mean writes per line over the whole device.
    pub fn mean_line_writes(&self) -> f64 {
        if self.lines_total == 0 {
            return 0.0;
        }
        self.total_line_writes as f64 / self.lines_total as f64
    }

    /// Wear concentration: hottest line vs device mean (1.0 = perfectly
    /// level). Without wear levelling this bounds achievable lifetime.
    pub fn concentration(&self) -> f64 {
        let mean = self.mean_line_writes();
        if mean == 0.0 {
            return 0.0;
        }
        self.max_line_writes as f64 / mean
    }

    /// Projected lifetime in device-overwrite units for a medium enduring
    /// `cycles` writes per line: how many times the whole device's worth
    /// of data could be written before the hottest line wears out.
    pub fn lifetime_device_writes(&self, cycles: u64) -> f64 {
        if self.max_line_writes == 0 || self.total_line_writes == 0 {
            return f64::INFINITY;
        }
        // Scale current total traffic by cycles/max: the traffic multiple
        // until the hottest line hits the endurance limit, normalised to
        // device capacity.
        let traffic_multiple = cycles as f64 / self.max_line_writes as f64;
        traffic_multiple * self.total_line_writes as f64 / self.lines_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = NvmStats {
            clflush: 10,
            sfence: 4,
            ..Default::default()
        };
        let b = NvmStats {
            clflush: 25,
            sfence: 9,
            lines_written: 3,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.clflush, 15);
        assert_eq!(d.sfence, 5);
        assert_eq!(d.lines_written, 3);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let a = NvmStats {
            clflush: 10,
            sfence: 4,
            bytes_read: 7,
            ..Default::default()
        };
        let b = NvmStats {
            clflush: 5,
            atomic_stores: 2,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.clflush, 15);
        assert_eq!(m.sfence, 4);
        assert_eq!(m.atomic_stores, 2);
        assert_eq!(m.bytes_read, 7);
    }

    #[test]
    fn writeback_bytes() {
        let s = NvmStats {
            lines_written: 2,
            ..Default::default()
        };
        assert_eq!(s.bytes_written_back(), 128);
    }

    #[test]
    fn wear_summary_math() {
        let w = WearSummary {
            total_line_writes: 1000,
            max_line_writes: 100,
            hottest_line_addr: 64,
            lines_touched: 50,
            lines_total: 100,
        };
        assert_eq!(w.mean_line_writes(), 10.0);
        assert_eq!(w.concentration(), 10.0);
        // 10^6-cycle medium: 10^6/100 traffic multiples × 10 mean writes.
        assert_eq!(w.lifetime_device_writes(1_000_000), 100_000.0);
        assert_eq!(WearSummary::default().concentration(), 0.0);
        assert_eq!(
            WearSummary::default().lifetime_device_writes(10),
            f64::INFINITY
        );
    }
}
