//! The NVM device: a persistent image plus a volatile CPU-cache overlay.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::line::{FlushRecord, LineBuf, CACHE_LINE, WORDS_PER_LINE, WORD_SIZE};
use crate::trace::TraceBuf;
use crate::{NvmConfig, NvmStats, SimClock, TraceEvent, TracedOp, WearSummary};

/// Panic payload thrown when an armed crash trip fires (see
/// [`NvmDevice::set_trip`]). `crashsim` catches this with `catch_unwind`
/// to emulate a power failure at an exact persistence event.
#[derive(Clone, Copy, Debug)]
pub struct CrashTripped {
    /// The persistence-event ordinal at which the trip fired.
    pub event: u64,
}

/// How a simulated crash treats data that has not been fenced to NVM.
#[derive(Clone, Copy, Debug)]
pub enum CrashPolicy {
    /// Everything volatile is lost: un-fenced flushes and dirty lines drop.
    /// The most adversarial *ordered* outcome.
    LoseVolatile,
    /// Everything reaches NVM: flushed epochs and dirty lines all persist.
    PersistAll,
    /// Each dirty word / atomic unit independently persists or drops,
    /// decided by an RNG with the given seed. Models write-back reordering
    /// between fences plus spontaneous cache eviction.
    Random(u64),
}

struct State {
    persistent: Vec<u8>,
    overlay: HashMap<usize, LineBuf>,
    epoch: Vec<FlushRecord>,
    stats: NvmStats,
    /// Media writes per cache line (endurance accounting — the paper's
    /// lifetime argument for avoiding double writes, §1/§3.1).
    wear: Vec<u32>,
    events: u64,
    trip_at: Option<u64>,
    /// Event recorder for persist-order analysis; `None` unless
    /// [`NvmConfig::trace_events`] is set.
    trace: Option<TraceBuf>,
    /// True between a crash and the next commit annotation; reads in this
    /// window are traced as [`TraceEvent::ReadAfterRecovery`].
    in_recovery: bool,
    /// Media-fault hook: line indices whose persistent image is "poisoned"
    /// (uncorrectable media error). Loads still return the stored bytes —
    /// the simulator does not corrupt data — but callers that opt in via
    /// [`NvmDevice::check_poison`] can observe the fault and take a
    /// degraded-mode path. A media write to the line scrubs the poison,
    /// as rewriting a failed line does on real NVDIMMs.
    poison: std::collections::HashSet<usize>,
}

/// Appends to the trace when recording is enabled; free of clock and
/// event-counter side effects, so traced runs simulate identically.
fn record(st: &mut State, event: impl FnOnce() -> TraceEvent) {
    if let Some(t) = &mut st.trace {
        t.push(event());
    }
}

/// Cloneable handle to an [`NvmDevice`].
pub type Nvm = Arc<NvmDevice>;

std::thread_local! {
    /// Per-thread stack of latency-diversion clocks; see [`divert_charges`].
    static DIVERTED_CLOCKS: std::cell::RefCell<Vec<SimClock>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`divert_charges`]; dropping it restores the
/// previous charging target (the device clock, or an outer scope's clock).
pub struct ChargeScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ChargeScope {
    fn drop(&mut self) {
        DIVERTED_CLOCKS.with(|d| {
            d.borrow_mut().pop();
        });
    }
}

/// Diverts this thread's NVM latency charges to `clock` until the returned
/// guard drops. Stores, loads, flushes, and fences issued by the thread
/// still mutate device state, count persistence events, and appear in the
/// trace exactly as before — only the *latency* lands on the private clock
/// instead of the device's shared one.
///
/// This is the overlap model for concurrent commit staging (wall = max,
/// busy = sum, the same discipline `workloads::mtfio` and the destage lane
/// use): each writer stages its payload against a private clock seeded
/// from the shared time, and the sequencer advances the shared clock to
/// the maximum staging completion instant. Scopes nest; the innermost
/// wins. Not `Send` — a scope must stay on the thread that opened it.
pub fn divert_charges(clock: SimClock) -> ChargeScope {
    DIVERTED_CLOCKS.with(|d| d.borrow_mut().push(clock));
    ChargeScope {
        _not_send: std::marker::PhantomData,
    }
}

/// A simulated byte-addressable NVM device.
///
/// All methods take `&self`; the device is internally synchronised and is
/// shared between the cache layer, the recovery code, and crash-injection
/// harnesses via [`Nvm`] (an `Arc`).
pub struct NvmDevice {
    cfg: NvmConfig,
    clock: SimClock,
    state: Mutex<State>,
}

impl NvmDevice {
    /// Creates a zero-initialised device and returns a shared handle.
    pub fn new(cfg: NvmConfig, clock: SimClock) -> Nvm {
        let persistent = vec![0u8; cfg.capacity];
        let lines = cfg.capacity / CACHE_LINE;
        let trace = cfg.trace_events.then(TraceBuf::default);
        Arc::new(Self {
            cfg,
            clock,
            state: Mutex::new(State {
                persistent,
                overlay: HashMap::new(),
                epoch: Vec::new(),
                stats: NvmStats::default(),
                wear: vec![0; lines],
                events: 0,
                trip_at: None,
                trace,
                in_recovery: false,
                poison: std::collections::HashSet::new(),
            }),
        })
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// The device's configuration.
    pub fn config(&self) -> &NvmConfig {
        &self.cfg
    }

    /// The simulated clock this device charges latency against.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> NvmStats {
        self.state.lock().stats
    }

    /// Arms a crash trip: after `events_from_now` more persistence events
    /// (`clflush`, `sfence`, or atomic store), the device panics with
    /// [`CrashTripped`]. `None` disarms.
    pub fn set_trip(&self, events_from_now: Option<u64>) {
        let mut st = self.state.lock();
        st.trip_at = events_from_now.map(|n| st.events + n);
    }

    /// Total persistence events so far (used to size crash-fuzz sweeps).
    pub fn events(&self) -> u64 {
        self.state.lock().events
    }

    /// Charges `ns` of device latency: to the thread's diversion clock if a
    /// [`divert_charges`] scope is active, else to the device's shared clock.
    fn charge(&self, ns: u64) {
        let diverted = DIVERTED_CLOCKS.with(|d| {
            if let Some(c) = d.borrow().last() {
                c.advance(ns);
                true
            } else {
                false
            }
        });
        if !diverted {
            self.clock.advance(ns);
        }
    }

    fn check_range(&self, addr: usize, len: usize) {
        assert!(
            addr.checked_add(len)
                .is_some_and(|end| end <= self.cfg.capacity),
            "NVM access out of range: addr={addr} len={len} cap={}",
            self.cfg.capacity
        );
    }

    /// Plain stores of `buf` at `addr`. Lands in the volatile overlay; not
    /// durable until flushed and fenced.
    pub fn write(&self, addr: usize, buf: &[u8]) {
        self.check_range(addr, buf.len());
        if buf.is_empty() {
            return;
        }
        let _t = telemetry::span(telemetry::phase::NVM_STORE);
        let mut st = self.state.lock();
        record(&mut st, || TraceEvent::Store {
            addr,
            len: buf.len(),
        });
        let mut pos = 0usize;
        let mut lines = 0u64;
        while pos < buf.len() {
            let a = addr + pos;
            let line = a / CACHE_LINE;
            let off = a % CACHE_LINE;
            let n = (CACHE_LINE - off).min(buf.len() - pos);
            let lb = overlay_line(&mut st, line);
            lb.data[off..off + n].copy_from_slice(&buf[pos..pos + n]);
            let first_w = off / WORD_SIZE;
            let last_w = (off + n - 1) / WORD_SIZE;
            lb.mark_dirty_words(first_w, last_w);
            pos += n;
            lines += 1;
        }
        st.stats.bytes_stored += buf.len() as u64;
        self.charge(self.cfg.store_ns * lines);
    }

    /// Reads `buf.len()` bytes at `addr`, seeing the newest (possibly
    /// volatile) data, as a CPU load would.
    pub fn read(&self, addr: usize, buf: &mut [u8]) {
        self.check_range(addr, buf.len());
        if buf.is_empty() {
            return;
        }
        let _t = telemetry::span(telemetry::phase::NVM_READ);
        let mut st = self.state.lock();
        if st.in_recovery {
            record(&mut st, || TraceEvent::ReadAfterRecovery {
                addr,
                len: buf.len(),
            });
        }
        let mut pos = 0usize;
        let mut media_lines = 0u64;
        let mut cached_lines = 0u64;
        while pos < buf.len() {
            let a = addr + pos;
            let line = a / CACHE_LINE;
            let off = a % CACHE_LINE;
            let n = (CACHE_LINE - off).min(buf.len() - pos);
            if let Some(lb) = st.overlay.get(&line) {
                buf[pos..pos + n].copy_from_slice(&lb.data[off..off + n]);
                cached_lines += 1;
            } else {
                let base = line * CACHE_LINE;
                buf[pos..pos + n].copy_from_slice(&st.persistent[base + off..base + off + n]);
                media_lines += 1;
            }
            pos += n;
        }
        st.stats.bytes_read += buf.len() as u64;
        st.stats.lines_read += media_lines;
        self.charge(self.cfg.tech.read_ns() * media_lines + self.cfg.store_ns * cached_lines);
    }

    /// 8-byte failure-atomic store (plain `mov` of an aligned u64).
    pub fn atomic_write_u64(&self, addr: usize, value: u64) {
        assert!(
            addr.is_multiple_of(8),
            "atomic u64 store must be 8-byte aligned"
        );
        self.check_range(addr, 8);
        let _t = telemetry::span(telemetry::phase::NVM_ATOMIC_STORE);
        let mut st = self.state.lock();
        record(&mut st, || TraceEvent::AtomicStore { addr, len: 8 });
        let line = addr / CACHE_LINE;
        let off = addr % CACHE_LINE;
        let lb = overlay_line(&mut st, line);
        lb.data[off..off + 8].copy_from_slice(&value.to_le_bytes());
        let w = off / WORD_SIZE;
        lb.mark_dirty_words(w, w);
        st.stats.atomic_stores += 1;
        st.stats.bytes_stored += 8;
        self.charge(self.cfg.atomic_store_ns);
        self.bump_event(st);
    }

    /// 16-byte failure-atomic store (`LOCK cmpxchg16b`, §4.2 of the paper).
    /// The two words persist all-or-nothing across a crash.
    pub fn atomic_write_u128(&self, addr: usize, value: u128) {
        assert!(
            addr.is_multiple_of(16),
            "atomic u128 store must be 16-byte aligned"
        );
        self.check_range(addr, 16);
        let _t = telemetry::span(telemetry::phase::NVM_ATOMIC_STORE);
        let mut st = self.state.lock();
        record(&mut st, || TraceEvent::AtomicStore { addr, len: 16 });
        let line = addr / CACHE_LINE;
        let off = addr % CACHE_LINE;
        let lb = overlay_line(&mut st, line);
        lb.data[off..off + 16].copy_from_slice(&value.to_le_bytes());
        lb.mark_atomic_pair(off / WORD_SIZE);
        st.stats.atomic_stores += 1;
        st.stats.bytes_stored += 16;
        self.charge(self.cfg.atomic_store_ns);
        self.bump_event(st);
    }

    /// Convenience aligned u64 load.
    pub fn read_u64(&self, addr: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Convenience aligned u128 load.
    pub fn read_u128(&self, addr: usize) -> u128 {
        let mut b = [0u8; 16];
        self.read(addr, &mut b);
        u128::from_le_bytes(b)
    }

    /// Executes `clflush` for every cache line overlapping `[addr, addr+len)`.
    /// Flushed data is ordered/durable only after the next [`Self::sfence`].
    pub fn clflush(&self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.check_range(addr, len);
        // Held across the armed-trip panic too: the guard exits during
        // unwind, so flush time up to the crash point stays attributed.
        let _t = telemetry::span(telemetry::phase::NVM_FLUSH);
        let first = addr / CACHE_LINE;
        let last = (addr + len - 1) / CACHE_LINE;
        let mut st = self.state.lock();
        for line in first..=last {
            st.stats.clflush += 1;
            let rec = match st.overlay.get_mut(&line) {
                Some(lb) if !lb.is_clean() => {
                    let rec = FlushRecord {
                        line,
                        data: lb.data,
                        dirty: lb.dirty,
                        pair_lead: lb.pair_lead,
                    };
                    lb.dirty = 0;
                    lb.pair_lead = 0;
                    Some(rec)
                }
                _ => None,
            };
            let staged = rec.is_some();
            record(&mut st, || TraceEvent::Clflush { line, staged });
            if let Some(rec) = rec {
                st.epoch.push(rec);
                st.stats.lines_written += 1;
                st.wear[line] += 1;
                self.charge(self.cfg.flush_dirty_ns());
            } else {
                telemetry::mark(telemetry::phase::NVM_FLUSH_CLEAN, 1);
                self.charge(self.cfg.clflush_clean_ns);
            }
            if let Some(event) = bump_event(&mut st) {
                drop(st);
                std::panic::panic_any(CrashTripped { event });
            }
        }
    }

    /// Executes `sfence`: all previously flushed lines become durable, in
    /// order, before any later store may persist.
    pub fn sfence(&self) {
        let _t = telemetry::span(telemetry::phase::NVM_FENCE);
        let mut st = self.state.lock();
        let staged_lines = st.epoch.len();
        if staged_lines == 0 {
            telemetry::mark(telemetry::phase::NVM_FENCE_EMPTY, 1);
        }
        record(&mut st, || TraceEvent::Sfence { staged_lines });
        let epoch = std::mem::take(&mut st.epoch);
        for rec in epoch {
            apply_record(&mut st.persistent, &rec, u8::MAX);
            st.poison.remove(&rec.line);
        }
        // With an invalidating flush (clflush/clflushopt) the written-back
        // lines leave the CPU cache: drop the clean overlay copies (this
        // also bounds overlay memory). `clwb` keeps them cached, so later
        // reads stay at cache speed.
        if self.cfg.flush_instr.invalidates() {
            st.overlay.retain(|_, lb| !lb.is_clean());
        }
        st.stats.sfence += 1;
        self.charge(self.cfg.sfence_ns);
        self.bump_event(st);
    }

    /// `clflush` the range then `sfence` — the paper's standard persist
    /// sequence for a store.
    pub fn persist(&self, addr: usize, len: usize) {
        self.clflush(addr, len);
        self.sfence();
    }

    /// Simulates a power failure. Volatile state is resolved according to
    /// `policy`, then discarded; the device keeps running on the surviving
    /// persistent image (as after a reboot). Any armed trip is cleared.
    pub fn crash(&self, policy: CrashPolicy) {
        let mut st = self.state.lock();
        record(&mut st, || TraceEvent::Crash);
        st.in_recovery = true;
        match policy {
            CrashPolicy::LoseVolatile => {}
            CrashPolicy::PersistAll => {
                let epoch = std::mem::take(&mut st.epoch);
                for rec in epoch {
                    apply_record(&mut st.persistent, &rec, u8::MAX);
                    st.poison.remove(&rec.line);
                }
                let mut lines: Vec<usize> = st.overlay.keys().copied().collect();
                lines.sort_unstable();
                for line in lines {
                    let lb = st.overlay[&line].clone();
                    if !lb.is_clean() {
                        let rec = FlushRecord {
                            line,
                            data: lb.data,
                            dirty: lb.dirty,
                            pair_lead: lb.pair_lead,
                        };
                        apply_record(&mut st.persistent, &rec, u8::MAX);
                        st.poison.remove(&line);
                    }
                }
            }
            CrashPolicy::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let epoch = std::mem::take(&mut st.epoch);
                for rec in epoch {
                    let keep = random_keep_mask(&mut rng, &rec);
                    apply_record(&mut st.persistent, &rec, keep);
                    if rec.dirty & keep != 0 {
                        st.poison.remove(&rec.line);
                    }
                }
                let mut lines: Vec<usize> = st.overlay.keys().copied().collect();
                lines.sort_unstable();
                for line in lines {
                    let lb = st.overlay[&line].clone();
                    if lb.is_clean() {
                        continue;
                    }
                    let rec = FlushRecord {
                        line,
                        data: lb.data,
                        dirty: lb.dirty,
                        pair_lead: lb.pair_lead,
                    };
                    let keep = random_keep_mask(&mut rng, &rec);
                    apply_record(&mut st.persistent, &rec, keep);
                    if rec.dirty & keep != 0 {
                        st.poison.remove(&rec.line);
                    }
                }
            }
        }
        st.overlay.clear();
        st.epoch.clear();
        st.trip_at = None;
    }

    /// Endurance summary: media writes per line across the device.
    pub fn wear_summary(&self) -> WearSummary {
        let st = self.state.lock();
        let mut max = 0u32;
        let mut hottest = 0usize;
        let mut touched = 0u64;
        let mut total = 0u64;
        for (i, &w) in st.wear.iter().enumerate() {
            total += w as u64;
            if w > 0 {
                touched += 1;
            }
            if w > max {
                max = w;
                hottest = i;
            }
        }
        WearSummary {
            total_line_writes: total,
            max_line_writes: max,
            hottest_line_addr: hottest * CACHE_LINE,
            lines_touched: touched,
            lines_total: st.wear.len() as u64,
        }
    }

    /// Media writes so far to the line containing `addr`.
    pub fn wear_of(&self, addr: usize) -> u32 {
        self.state.lock().wear[addr / CACHE_LINE]
    }

    /// Endurance summary restricted to `[addr_lo, addr_hi)` — e.g. a
    /// cache's payload area, excluding its pointer/metadata hotspots.
    pub fn wear_summary_range(&self, addr_lo: usize, addr_hi: usize) -> WearSummary {
        let st = self.state.lock();
        let lo = addr_lo / CACHE_LINE;
        let hi = (addr_hi / CACHE_LINE).min(st.wear.len());
        let mut max = 0u32;
        let mut hottest = lo;
        let mut touched = 0u64;
        let mut total = 0u64;
        for i in lo..hi {
            let w = st.wear[i];
            total += w as u64;
            if w > 0 {
                touched += 1;
            }
            if w > max {
                max = w;
                hottest = i;
            }
        }
        WearSummary {
            total_line_writes: total,
            max_line_writes: max,
            hottest_line_addr: hottest * CACHE_LINE,
            lines_touched: touched,
            lines_total: (hi - lo) as u64,
        }
    }

    /// Reads directly from the persistent image, bypassing the overlay —
    /// what a post-crash reboot would observe. Intended for tests and
    /// recovery verification.
    pub fn read_persistent(&self, addr: usize, buf: &mut [u8]) {
        self.check_range(addr, buf.len());
        let st = self.state.lock();
        buf.copy_from_slice(&st.persistent[addr..addr + buf.len()]);
    }

    /// Annotates the trace: the commit record in `[addr, addr + len)` was
    /// just persisted, so the protocol now relies on everything it
    /// references being durable. Pure annotation — no clock, statistics,
    /// or persistence-event side effects — and a no-op unless tracing is
    /// enabled, so commit paths may call it unconditionally.
    pub fn note_commit(&self, addr: usize, len: usize) {
        let mut st = self.state.lock();
        if st.trace.is_none() {
            return;
        }
        self.check_range(addr, len);
        record(&mut st, || TraceEvent::Commit { addr, len });
        st.in_recovery = false;
    }

    /// Annotates the trace: the calling thread just acquired mutex `obj`.
    /// The happens-before engine draws an edge from the last release of
    /// `obj`. Pure annotation — no clock, statistics, or persistence-event
    /// side effects — and a no-op unless tracing is enabled, so lock paths
    /// may call it unconditionally.
    pub fn note_lock_acquire(&self, obj: u64) {
        if !self.cfg.trace_events {
            return;
        }
        let mut st = self.state.lock();
        record(&mut st, || TraceEvent::LockAcquire { obj });
    }

    /// Annotates the trace: the calling thread is about to release mutex
    /// `obj`, publishing its history to the next acquirer. Pure annotation
    /// (see [`Self::note_lock_acquire`]).
    pub fn note_lock_release(&self, obj: u64) {
        if !self.cfg.trace_events {
            return;
        }
        let mut st = self.state.lock();
        record(&mut st, || TraceEvent::LockRelease { obj });
    }

    /// Annotates the trace: the calling thread performed an acquire-ordered
    /// atomic load of sync object `obj` (adopting the history published by
    /// the last release-store to it). Pure annotation.
    pub fn note_atomic_load_acquire(&self, obj: u64) {
        if !self.cfg.trace_events {
            return;
        }
        let mut st = self.state.lock();
        record(&mut st, || TraceEvent::AtomicLoadAcquire { obj });
    }

    /// Annotates the trace: the calling thread performed a release-ordered
    /// atomic store to sync object `obj` (publishing its history to later
    /// acquire-loads). Pure annotation.
    pub fn note_atomic_store_release(&self, obj: u64) {
        if !self.cfg.trace_events {
            return;
        }
        let mut st = self.state.lock();
        record(&mut st, || TraceEvent::AtomicStoreRelease { obj });
    }

    /// Simulates a power failure at an *exact* persist frontier: of the
    /// flush records staged in the currently open fence epoch, exactly
    /// those whose line is in `keep` persist (in staging order); the rest
    /// drop, along with all dirty overlay lines. This is the primitive the
    /// crash-frontier enumerator uses to visit every reachable crash state
    /// between two fences, instead of sampling one with
    /// [`CrashPolicy::Random`]. Like [`Self::crash`], the device keeps
    /// running on the surviving image and any armed trip is cleared.
    pub fn crash_frontier(&self, keep: &std::collections::HashSet<usize>) {
        let mut st = self.state.lock();
        record(&mut st, || TraceEvent::Crash);
        st.in_recovery = true;
        let epoch = std::mem::take(&mut st.epoch);
        for rec in epoch {
            if keep.contains(&rec.line) {
                apply_record(&mut st.persistent, &rec, u8::MAX);
                st.poison.remove(&rec.line);
            }
        }
        st.overlay.clear();
        st.trip_at = None;
    }

    /// Marks the cache line containing `addr` as a media fault: the line's
    /// persistent image is "poisoned" (uncorrectable error). Fault
    /// injection hook for crash/fault campaigns; no clock or stats side
    /// effects.
    pub fn poison(&self, addr: usize) {
        self.check_range(addr, 1);
        self.state.lock().poison.insert(addr / CACHE_LINE);
    }

    /// Clears a poison mark set by [`Self::poison`] without writing the
    /// line (models an explicit management-level scrub).
    pub fn clear_poison(&self, addr: usize) {
        self.state.lock().poison.remove(&(addr / CACHE_LINE));
    }

    /// Returns the base address of the first poisoned line overlapping
    /// `[addr, addr + len)`, or `None` if the range is healthy. Readers
    /// that care about media faults call this before trusting a load.
    pub fn check_poison(&self, addr: usize, len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        self.check_range(addr, len);
        let st = self.state.lock();
        let first = addr / CACHE_LINE;
        let last = (addr + len - 1) / CACHE_LINE;
        (first..=last)
            .find(|line| st.poison.contains(line))
            .map(|line| line * CACHE_LINE)
    }

    /// Number of currently poisoned lines.
    pub fn poisoned_lines(&self) -> usize {
        self.state.lock().poison.len()
    }

    /// Whether event tracing is enabled on this device.
    pub fn is_tracing(&self) -> bool {
        self.cfg.trace_events
    }

    /// Drains and returns the recorded trace. Sequence numbers keep
    /// increasing across drains. Empty when tracing is disabled.
    pub fn take_trace(&self) -> Vec<TracedOp> {
        let mut st = self.state.lock();
        st.trace.as_mut().map(TraceBuf::take).unwrap_or_default()
    }

    /// Clones the recorded-but-not-drained trace without consuming it.
    pub fn trace_snapshot(&self) -> Vec<TracedOp> {
        let st = self.state.lock();
        st.trace
            .as_ref()
            .map(TraceBuf::snapshot)
            .unwrap_or_default()
    }

    /// Total events recorded so far, including drained ones.
    pub fn trace_len(&self) -> u64 {
        let st = self.state.lock();
        st.trace.as_ref().map_or(0, TraceBuf::len)
    }

    fn bump_event(&self, st: parking_lot::MutexGuard<'_, State>) {
        let mut st = st;
        if let Some(event) = bump_event(&mut st) {
            drop(st);
            std::panic::panic_any(CrashTripped { event });
        }
    }
}

/// Increments the persistence-event counter; returns `Some(event)` if an
/// armed trip fired (the caller must drop the lock and panic).
fn bump_event(st: &mut State) -> Option<u64> {
    st.events += 1;
    match st.trip_at {
        Some(t) if st.events >= t => Some(st.events),
        _ => None,
    }
}

fn overlay_line(st: &mut State, line: usize) -> &mut LineBuf {
    if !st.overlay.contains_key(&line) {
        let base = line * CACHE_LINE;
        let mut data = [0u8; CACHE_LINE];
        data.copy_from_slice(&st.persistent[base..base + CACHE_LINE]);
        st.overlay.insert(line, LineBuf::clean(data));
    }
    st.overlay.get_mut(&line).unwrap()
}

/// Applies the words of `rec` selected by `keep & rec.dirty` to the image.
fn apply_record(persistent: &mut [u8], rec: &FlushRecord, keep: u8) {
    let base = rec.line * CACHE_LINE;
    let mask = rec.dirty & keep;
    for w in 0..WORDS_PER_LINE {
        if mask & (1 << w) != 0 {
            let o = w * WORD_SIZE;
            persistent[base + o..base + o + WORD_SIZE].copy_from_slice(&rec.data[o..o + WORD_SIZE]);
        }
    }
}

/// Chooses, per dirty word, whether it persists — honouring 16-byte atomic
/// pairs (both words share one coin flip).
fn random_keep_mask(rng: &mut StdRng, rec: &FlushRecord) -> u8 {
    let mut keep = 0u8;
    let mut w = 0;
    while w < WORDS_PER_LINE {
        let bit = 1u8 << w;
        if rec.dirty & bit == 0 {
            w += 1;
            continue;
        }
        if rec.pair_lead & bit != 0 {
            if rng.gen::<bool>() {
                keep |= bit | (bit << 1);
            }
            w += 2;
        } else {
            if rng.gen::<bool>() {
                keep |= bit;
            }
            w += 1;
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmTech;

    fn dev() -> Nvm {
        NvmDevice::new(NvmConfig::new(4096, NvmTech::Pcm), SimClock::new())
    }

    #[test]
    fn diverted_charges_land_on_the_private_clock() {
        let d = dev();
        let shared_before = d.clock().now_ns();
        let private = SimClock::new();
        private.advance_to(shared_before);
        {
            let _scope = divert_charges(private.clone());
            d.write(0, &[0xAA; 64]);
            d.clflush(0, 64);
        }
        // State changed, events counted, but the shared clock stood still.
        assert_eq!(d.clock().now_ns(), shared_before);
        assert!(private.now_ns() > shared_before, "staging time was charged");
        assert!(d.events() > 0, "flush still counted as a persistence event");
        // Outside the scope, charging reverts to the shared clock.
        d.sfence();
        assert!(d.clock().now_ns() > shared_before);
        let mut b = [0u8; 64];
        d.read(0, &mut b);
        assert_eq!(b, [0xAA; 64]);
    }

    #[test]
    fn divert_scopes_nest_innermost_wins() {
        let d = dev();
        let outer = SimClock::new();
        let inner = SimClock::new();
        let _o = divert_charges(outer.clone());
        {
            let _i = divert_charges(inner.clone());
            d.write(0, &[1u8; 64]);
        }
        d.write(64, &[2u8; 64]);
        assert!(inner.now_ns() > 0, "inner scope charged the inner clock");
        assert!(outer.now_ns() > 0, "after pop, outer clock charges resume");
        assert_eq!(d.clock().now_ns(), 0);
    }

    #[test]
    fn read_your_writes_before_flush() {
        let d = dev();
        d.write(100, b"hello");
        let mut b = [0u8; 5];
        d.read(100, &mut b);
        assert_eq!(&b, b"hello");
    }

    #[test]
    fn unflushed_write_lost_on_crash() {
        let d = dev();
        d.write(0, &[0xAA; 64]);
        d.crash(CrashPolicy::LoseVolatile);
        let mut b = [0u8; 64];
        d.read(0, &mut b);
        assert_eq!(b, [0u8; 64]);
    }

    #[test]
    fn flushed_but_unfenced_write_lost_under_lose_volatile() {
        let d = dev();
        d.write(0, &[0xAA; 64]);
        d.clflush(0, 64);
        d.crash(CrashPolicy::LoseVolatile);
        let mut b = [0u8; 64];
        d.read(0, &mut b);
        assert_eq!(b, [0u8; 64]);
    }

    #[test]
    fn fenced_write_survives_any_crash() {
        for policy in [
            CrashPolicy::LoseVolatile,
            CrashPolicy::PersistAll,
            CrashPolicy::Random(7),
        ] {
            let d = dev();
            d.write(0, &[0xAB; 64]);
            d.persist(0, 64);
            d.crash(policy);
            let mut b = [0u8; 64];
            d.read(0, &mut b);
            assert_eq!(b, [0xAB; 64]);
        }
    }

    #[test]
    fn persist_all_keeps_unflushed_stores() {
        let d = dev();
        d.write(128, &[0x11; 8]);
        d.crash(CrashPolicy::PersistAll);
        assert_eq!(d.read_u64(128), u64::from_le_bytes([0x11; 8]));
    }

    #[test]
    fn atomic_u128_never_tears() {
        let old: u128 = 0x1111_1111_1111_1111_2222_2222_2222_2222;
        let new: u128 = 0x3333_3333_3333_3333_4444_4444_4444_4444;
        for seed in 0..64 {
            let d = dev();
            d.write(0, &old.to_le_bytes());
            d.persist(0, 16);
            d.atomic_write_u128(0, new);
            d.clflush(0, 16);
            // Crash before the fence: the store may or may not persist,
            // but must never be half-applied.
            d.crash(CrashPolicy::Random(seed));
            let got = d.read_u128(0);
            assert!(
                got == old || got == new,
                "torn 16B atomic: {got:#x} (seed {seed})"
            );
        }
    }

    #[test]
    fn plain_16_byte_write_can_tear() {
        let old = [0u8; 16];
        let new = [0xFFu8; 16];
        let mut torn = false;
        for seed in 0..256 {
            let d = dev();
            d.write(0, &old);
            d.persist(0, 16);
            d.write(0, &new);
            d.clflush(0, 16);
            d.crash(CrashPolicy::Random(seed));
            let mut got = [0u8; 16];
            d.read(0, &mut got);
            if got != old && got != new {
                torn = true;
                break;
            }
        }
        assert!(torn, "expected some seed to tear a plain 16B write");
    }

    #[test]
    fn fence_orders_epochs() {
        // Epoch 1 is fenced, epoch 2 is not: after an adversarial crash the
        // first write must survive even though the second is lost.
        let d = dev();
        d.write(0, &[1u8; 8]);
        d.persist(0, 8);
        d.write(64, &[2u8; 8]);
        d.clflush(64, 8);
        d.crash(CrashPolicy::LoseVolatile);
        assert_eq!(d.read_u64(0), u64::from_le_bytes([1; 8]));
        assert_eq!(d.read_u64(64), 0);
    }

    #[test]
    fn rewrite_after_flush_keeps_flushed_version_on_fence() {
        let d = dev();
        d.write(0, &[1u8; 8]);
        d.clflush(0, 8);
        d.write(0, &[2u8; 8]); // dirty again, newer value volatile
        d.sfence(); // applies the flushed snapshot (value 1)
        d.crash(CrashPolicy::LoseVolatile);
        assert_eq!(d.read_u64(0), u64::from_le_bytes([1; 8]));
    }

    #[test]
    fn stats_count_flushes_and_fences() {
        let d = dev();
        d.write(0, &[7u8; 256]);
        d.clflush(0, 256); // 4 lines, all dirty
        d.sfence();
        d.clflush(0, 256); // 4 lines, now clean
        let s = d.stats();
        assert_eq!(s.clflush, 8);
        assert_eq!(s.lines_written, 4);
        assert_eq!(s.sfence, 1);
        assert_eq!(s.bytes_stored, 256);
    }

    #[test]
    fn clean_flush_is_cheaper() {
        let d = dev();
        d.write(0, &[1u8; 64]);
        let t0 = d.clock().now_ns();
        d.clflush(0, 64);
        let dirty_cost = d.clock().now_ns() - t0;
        d.sfence();
        let t1 = d.clock().now_ns();
        d.clflush(0, 64);
        let clean_cost = d.clock().now_ns() - t1;
        assert!(dirty_cost > clean_cost);
    }

    #[test]
    fn trip_fires_at_exact_event() {
        let d = dev();
        d.write(0, &[1u8; 64]);
        d.set_trip(Some(2)); // 1st event: clflush below; 2nd: sfence
        d.clflush(0, 64);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.sfence()));
        let err = r.expect_err("trip should fire");
        let t = err.downcast_ref::<CrashTripped>().expect("payload type");
        assert_eq!(t.event, 2);
        // Events fire after the instruction takes effect, so the fence has
        // already made the write durable; the device stays usable.
        d.crash(CrashPolicy::LoseVolatile);
        assert_eq!(d.read_u64(0), u64::from_le_bytes([1; 8]));
    }

    #[test]
    fn read_persistent_bypasses_overlay() {
        let d = dev();
        d.write(0, &[9u8; 8]);
        let mut b = [1u8; 8];
        d.read_persistent(0, &mut b);
        assert_eq!(b, [0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let d = dev();
        d.write(4090, &[0u8; 16]);
    }

    #[test]
    fn wear_counts_media_writes_per_line() {
        let d = dev();
        d.write(0, &[1u8; 64]);
        d.persist(0, 64);
        d.write(0, &[2u8; 64]);
        d.persist(0, 64);
        d.write(128, &[3u8; 64]);
        d.persist(128, 64);
        assert_eq!(d.wear_of(0), 2);
        assert_eq!(d.wear_of(130), 1);
        assert_eq!(d.wear_of(64), 0);
        let w = d.wear_summary();
        assert_eq!(w.total_line_writes, 3);
        assert_eq!(w.max_line_writes, 2);
        assert_eq!(w.hottest_line_addr, 0);
        assert_eq!(w.lines_touched, 2);
    }

    #[test]
    fn clwb_keeps_lines_cached_for_fast_rereads() {
        use crate::FlushInstr;
        let mk = |instr: FlushInstr| {
            let cfg = NvmConfig::new(4096, NvmTech::Pcm).with_flush_instr(instr);
            NvmDevice::new(cfg, SimClock::new())
        };
        // clflush: after persist, the re-read pays media latency.
        let d = mk(FlushInstr::Clflush);
        d.write(0, &[1u8; 64]);
        d.persist(0, 64);
        let r0 = d.stats().lines_read;
        let mut b = [0u8; 64];
        d.read(0, &mut b);
        assert_eq!(d.stats().lines_read - r0, 1, "clflush evicts → media read");
        // clwb: the line stays cached.
        let d = mk(FlushInstr::Clwb);
        d.write(0, &[1u8; 64]);
        d.persist(0, 64);
        let r0 = d.stats().lines_read;
        d.read(0, &mut b);
        assert_eq!(d.stats().lines_read - r0, 0, "clwb retains → cache read");
        // Durability is identical.
        d.crash(CrashPolicy::LoseVolatile);
        d.read(0, &mut b);
        assert_eq!(b, [1u8; 64]);
    }

    fn traced_dev() -> Nvm {
        NvmDevice::new(
            NvmConfig::new(4096, NvmTech::Pcm).with_tracing(),
            SimClock::new(),
        )
    }

    #[test]
    fn tracing_off_records_nothing() {
        let d = dev();
        assert!(!d.is_tracing());
        d.write(0, &[1u8; 64]);
        d.persist(0, 64);
        d.note_commit(0, 8);
        assert_eq!(d.trace_len(), 0);
        assert!(d.take_trace().is_empty());
    }

    #[test]
    fn trace_records_event_stream_in_order() {
        use crate::TraceEvent as E;
        let d = traced_dev();
        d.write(0, &[1u8; 64]);
        d.clflush(0, 64);
        d.sfence();
        d.atomic_write_u64(64, 7);
        d.note_commit(64, 8);
        let t = d.take_trace();
        let kinds: Vec<_> = t.iter().map(|op| op.event.kind()).collect();
        assert_eq!(
            kinds,
            ["store", "clflush", "sfence", "atomic-store", "commit"]
        );
        assert_eq!(t[0].seq, 0);
        assert_eq!(t[4].seq, 4);
        assert_eq!(
            t[1].event,
            E::Clflush {
                line: 0,
                staged: true
            }
        );
        assert_eq!(t[2].event, E::Sfence { staged_lines: 1 });
        assert_eq!(t[4].event, E::Commit { addr: 64, len: 8 });
    }

    #[test]
    fn trace_marks_clean_flushes_and_empty_fences() {
        use crate::TraceEvent as E;
        let d = traced_dev();
        d.write(0, &[1u8; 64]);
        d.persist(0, 64);
        d.clflush(0, 64); // clean: nothing to stage
        d.sfence(); // empty epoch
        let t = d.take_trace();
        assert_eq!(
            t[3].event,
            E::Clflush {
                line: 0,
                staged: false
            }
        );
        assert_eq!(t[4].event, E::Sfence { staged_lines: 0 });
    }

    #[test]
    fn trace_survives_crash_and_tags_recovery_reads() {
        use crate::TraceEvent as E;
        let d = traced_dev();
        d.write(0, &[1u8; 8]);
        d.persist(0, 8);
        d.crash(CrashPolicy::LoseVolatile);
        let _ = d.read_u64(0); // recovery inspecting survivor state
        d.note_commit(0, 8); // recovery done
        let _ = d.read_u64(0); // normal read: not traced
        let t = d.take_trace();
        let kinds: Vec<_> = t.iter().map(|op| op.event.kind()).collect();
        assert_eq!(
            kinds,
            [
                "store",
                "clflush",
                "sfence",
                "crash",
                "read-after-recovery",
                "commit"
            ]
        );
        assert_eq!(t[4].event, E::ReadAfterRecovery { addr: 0, len: 8 });
    }

    #[test]
    fn trace_seq_keeps_increasing_across_drains() {
        let d = traced_dev();
        d.write(0, &[1u8; 8]);
        let a = d.take_trace();
        d.sfence();
        let b = d.take_trace();
        assert_eq!(a[0].seq, 0);
        assert_eq!(b[0].seq, 1);
        assert_eq!(d.trace_len(), 2);
    }

    #[test]
    fn tracing_does_not_change_time_stats_or_events() {
        let run = |d: Nvm| {
            d.write(0, &[5u8; 128]);
            d.persist(0, 128);
            d.atomic_write_u64(256, 9);
            d.persist(256, 8);
            d.note_commit(256, 8);
            (d.clock().now_ns(), d.events(), d.stats())
        };
        let (t0, e0, s0) = run(dev());
        let (t1, e1, s1) = run(traced_dev());
        assert_eq!(t0, t1, "tracing must not change simulated time");
        assert_eq!(e0, e1, "tracing must not change persistence-event count");
        assert_eq!(s0.clflush, s1.clflush);
        assert_eq!(s0.sfence, s1.sfence);
        assert_eq!(s0.bytes_stored, s1.bytes_stored);
    }

    #[test]
    fn sync_notes_are_traced_with_provenance() {
        use crate::TraceEvent as E;
        crate::set_trace_thread(3);
        let d = traced_dev();
        d.note_lock_acquire(10);
        {
            let _t = crate::txn_scope(77);
            d.write(0, &[1u8; 8]);
        }
        d.note_lock_release(10);
        d.note_atomic_store_release(11);
        d.note_atomic_load_acquire(11);
        let t = d.take_trace();
        let kinds: Vec<_> = t.iter().map(|op| op.event.kind()).collect();
        assert_eq!(
            kinds,
            [
                "lock-acquire",
                "store",
                "lock-release",
                "atomic-store-release",
                "atomic-load-acquire"
            ]
        );
        assert_eq!(t[0].event, E::LockAcquire { obj: 10 });
        assert!(t[0].event.is_sync());
        assert!(!t[1].event.is_sync());
        assert_eq!(t[1].txn, Some(77), "store inside the txn scope is tagged");
        assert_eq!(t[2].txn, None, "scope closed before the release");
        for op in &t {
            assert_eq!(op.thread, 3);
        }
    }

    #[test]
    fn sync_notes_are_pure_annotations() {
        let d = dev();
        let t0 = d.clock().now_ns();
        let (s0, e0) = (d.stats(), d.events());
        d.note_lock_acquire(1);
        d.note_lock_release(1);
        d.note_atomic_load_acquire(2);
        d.note_atomic_store_release(2);
        assert_eq!(d.clock().now_ns(), t0);
        assert_eq!(d.stats(), s0);
        assert_eq!(d.events(), e0);
        assert_eq!(d.trace_len(), 0, "tracing off records nothing");
    }

    #[test]
    fn crash_frontier_persists_exactly_the_kept_lines() {
        use std::collections::HashSet;
        let d = dev();
        d.write(0, &[1u8; 64]);
        d.write(64, &[2u8; 64]);
        d.write(128, &[3u8; 64]);
        d.clflush(0, 192); // three lines staged in the open epoch
        d.write(256, &[4u8; 64]); // dirty, never flushed
        let keep: HashSet<usize> = [0usize, 2].into_iter().collect();
        d.crash_frontier(&keep);
        assert_eq!(d.read_u64(0), u64::from_le_bytes([1; 8]), "kept");
        assert_eq!(d.read_u64(64), 0, "staged but dropped");
        assert_eq!(d.read_u64(128), u64::from_le_bytes([3; 8]), "kept");
        assert_eq!(d.read_u64(256), 0, "dirty overlay always lost");
    }

    #[test]
    fn crash_frontier_applies_same_line_records_in_order() {
        use std::collections::HashSet;
        let d = dev();
        d.write(0, &[1u8; 8]);
        d.clflush(0, 8);
        d.write(0, &[2u8; 8]);
        d.clflush(0, 8); // second record for the same line, later in epoch
        let keep: HashSet<usize> = [0usize].into_iter().collect();
        d.crash_frontier(&keep);
        assert_eq!(
            d.read_u64(0),
            u64::from_le_bytes([2; 8]),
            "later staging wins"
        );
    }

    #[test]
    fn crash_frontier_full_keep_matches_fence() {
        use std::collections::HashSet;
        let d = dev();
        d.write(0, &[7u8; 128]);
        d.clflush(0, 128);
        let keep: HashSet<usize> = [0usize, 1].into_iter().collect();
        d.crash_frontier(&keep);
        let d2 = dev();
        d2.write(0, &[7u8; 128]);
        d2.persist(0, 128);
        d2.crash(CrashPolicy::LoseVolatile);
        let (mut a, mut b) = ([0u8; 128], [0u8; 128]);
        d.read(0, &mut a);
        d2.read(0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn poison_marks_lines_and_check_finds_first() {
        let d = dev();
        assert_eq!(d.poisoned_lines(), 0);
        d.poison(130); // line 2 (bytes 128..192)
        assert_eq!(d.poisoned_lines(), 1);
        assert_eq!(d.check_poison(0, 64), None);
        assert_eq!(d.check_poison(100, 64), Some(128), "range touches line 2");
        assert_eq!(d.check_poison(128, 64), Some(128));
        assert_eq!(d.check_poison(192, 64), None);
        assert_eq!(d.check_poison(128, 0), None, "empty range is healthy");
        d.clear_poison(191);
        assert_eq!(d.check_poison(0, 4096), None);
    }

    #[test]
    fn media_write_scrubs_poison() {
        let d = dev();
        d.poison(64);
        d.write(64, &[0xEE; 64]);
        assert_eq!(
            d.check_poison(64, 64),
            Some(64),
            "volatile store does not scrub"
        );
        d.persist(64, 64);
        assert_eq!(d.check_poison(64, 64), None, "media write-back scrubs");
        // Crash-applied dirty lines scrub too.
        d.poison(0);
        d.write(0, &[0x11; 64]);
        d.crash(CrashPolicy::PersistAll);
        assert_eq!(d.check_poison(0, 64), None);
    }

    #[test]
    fn poison_does_not_corrupt_data_or_charge_time() {
        let d = dev();
        d.write(0, &[0x42; 64]);
        d.persist(0, 64);
        let t0 = d.clock().now_ns();
        let (s0, e0) = (d.stats(), d.events());
        d.poison(0);
        let _ = d.check_poison(0, 64);
        assert_eq!(d.clock().now_ns(), t0);
        assert_eq!(d.stats(), s0);
        assert_eq!(d.events(), e0);
        let mut b = [0u8; 64];
        d.read(0, &mut b);
        assert_eq!(b, [0x42; 64], "loads still see stored bytes");
    }

    #[test]
    fn clock_charges_media_latency_on_flush() {
        let d = dev();
        d.write(0, &[1u8; 64]);
        let t0 = d.clock().now_ns();
        d.clflush(0, 64);
        // PCM write = 240ns + 40ns overhead
        assert_eq!(d.clock().now_ns() - t0, 280);
    }
}
