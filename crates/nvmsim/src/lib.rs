//! # nvmsim — byte-addressable NVM device simulator
//!
//! This crate models the persistence semantics the Tinca paper (SC'17)
//! depends on:
//!
//! * CPU stores land in a **volatile cache** (the *overlay*), not in NVM.
//! * `clflush` writes a cache line back towards NVM, but the write-back is
//!   only guaranteed ordered/durable after the next `sfence`.
//! * Between two fences, flushed lines may persist in **any order** — a
//!   crash may persist an arbitrary subset of the current fence epoch.
//! * Plain stores have 8-byte failure atomicity; `cmpxchg16b`-style stores
//!   ([`NvmDevice::atomic_write_u128`]) have 16-byte failure atomicity.
//! * Un-flushed dirty lines may *also* spontaneously persist (cache
//!   eviction happens at arbitrary times on real hardware).
//!
//! Every operation is charged against a shared [`SimClock`] using the
//! latency model of the selected [`NvmTech`] (NVDIMM/DRAM, STT-RAM, PCM,
//! ReRAM — Table 1 of the paper), and counted in [`NvmStats`] (the paper
//! reports `clflush`-per-operation as a first-class metric).
//!
//! Crash injection for recovery testing is built in: [`NvmDevice::set_trip`]
//! arms a panic at the N-th persistence event, which `crashsim` catches to
//! simulate a power failure at exactly that point.
//!
//! ```
//! use nvmsim::{CrashPolicy, NvmConfig, NvmDevice, NvmTech, SimClock};
//!
//! let dev = NvmDevice::new(NvmConfig::new(4096, NvmTech::Pcm), SimClock::new());
//! dev.write(0, b"hello");
//! dev.persist(0, 5);          // clflush + sfence: durable
//! dev.write(64, b"world");    // never flushed: volatile
//! dev.crash(CrashPolicy::LoseVolatile);
//! let mut buf = [0u8; 5];
//! dev.read(0, &mut buf);
//! assert_eq!(&buf, b"hello");
//! dev.read(64, &mut buf);
//! assert_eq!(&buf, &[0; 5]);
//! ```

mod config;
mod device;
mod line;
mod shard;
mod stats;
mod trace;

// The clock lives in `telemetry` (the observability layer reads it to
// attribute simulated ns); re-exported here so device users are unaffected.
pub use telemetry::SimClock;

pub use config::{FlushInstr, NvmConfig, NvmTech};
pub use device::{divert_charges, ChargeScope, CrashPolicy, CrashTripped, Nvm, NvmDevice};
pub use line::{CACHE_LINE, WORDS_PER_LINE, WORD_SIZE};
pub use shard::{merge_shard_traces, shard_devices};
pub use stats::{NvmStats, WearSummary};
pub use trace::{
    set_trace_thread, set_trace_txn, trace_thread, trace_txn, txn_scope, TraceEvent, TracedOp,
    TxnScope,
};
