//! NVM technology presets and device configuration.

/// Byte-addressable NVM technology, per Table 1 of the paper and the
/// emulation deltas used by its prototype (§5.1, §5.4.1).
///
/// The paper's prototype uses an NVDIMM (DRAM-speed) and emulates slower
/// technologies by adding write/read delays: PCM +180 ns/+50 ns and
/// STT-RAM +50 ns/+50 ns on top of DRAM's ~60 ns access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NvmTech {
    /// DRAM-backed NVDIMM — DRAM latencies, durable contents.
    Nvdimm,
    /// Spin-transfer torque RAM: DRAM + 50 ns/50 ns (paper §5.4.1).
    SttRam,
    /// Phase-change memory: DRAM + 50 ns read / +180 ns write (paper §5.1).
    /// This is the paper's default NVM medium.
    Pcm,
    /// Resistive RAM: modelled like PCM's slower band (Table 1 lists
    /// 200–300 ns reads and ~140 MB/s writes; the evaluation skips it,
    /// we include it as an extension).
    Reram,
}

impl NvmTech {
    /// Read latency of one 64-byte cache line, in nanoseconds.
    pub fn read_ns(self) -> u64 {
        match self {
            NvmTech::Nvdimm => 60,
            NvmTech::SttRam => 110,
            NvmTech::Pcm => 110,
            NvmTech::Reram => 250,
        }
    }

    /// Write (cache-line write-back) latency of one 64-byte line, in ns.
    pub fn write_ns(self) -> u64 {
        match self {
            NvmTech::Nvdimm => 60,
            NvmTech::SttRam => 110,
            NvmTech::Pcm => 240,
            NvmTech::Reram => 300,
        }
    }

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            NvmTech::Nvdimm => "NVDIMM",
            NvmTech::SttRam => "STT-RAM",
            NvmTech::Pcm => "PCM",
            NvmTech::Reram => "ReRAM",
        }
    }

    /// All technologies, in the order Table 1 lists them.
    pub fn all() -> [NvmTech; 4] {
        [
            NvmTech::Nvdimm,
            NvmTech::SttRam,
            NvmTech::Reram,
            NvmTech::Pcm,
        ]
    }
}

/// Which cache-line write-back instruction the software uses (§2.1 of the
/// paper: `clflushopt` and `clwb` "have been proposed to substitute
/// `clflush` but still bring in overheads").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushInstr {
    /// Serialising flush + invalidate (the paper's platform supports only
    /// this). Subsequent reads of the line pay media latency again.
    Clflush,
    /// Optimised flush + invalidate: weaker ordering, lower overhead.
    Clflushopt,
    /// Write-back without invalidation: the line stays cached, so
    /// subsequent reads stay at cache speed.
    Clwb,
}

impl FlushInstr {
    /// Instruction overhead excluding the media write.
    pub fn overhead_ns(self) -> u64 {
        match self {
            FlushInstr::Clflush => 40,
            FlushInstr::Clflushopt => 25,
            FlushInstr::Clwb => 20,
        }
    }

    /// Whether the line is evicted from the CPU cache by the flush.
    pub fn invalidates(self) -> bool {
        !matches!(self, FlushInstr::Clwb)
    }

    pub fn name(self) -> &'static str {
        match self {
            FlushInstr::Clflush => "clflush",
            FlushInstr::Clflushopt => "clflushopt",
            FlushInstr::Clwb => "clwb",
        }
    }
}

/// Full configuration for an [`crate::NvmDevice`].
#[derive(Clone, Debug)]
pub struct NvmConfig {
    /// Device capacity in bytes (must be a multiple of the cache line size).
    pub capacity: usize,
    /// Technology latency preset.
    pub tech: NvmTech,
    /// Which flush instruction the software issues.
    pub flush_instr: FlushInstr,
    /// Cost of executing the flush on a dirty line, *excluding* the media
    /// write (instruction + write-combining overhead).
    pub clflush_overhead_ns: u64,
    /// Cost of `clflush` on a clean line (instruction only).
    pub clflush_clean_ns: u64,
    /// Cost of `sfence`.
    pub sfence_ns: u64,
    /// Cost of a regular store, per cache line touched.
    pub store_ns: u64,
    /// Cost of a `LOCK cmpxchg16b`-class atomic store.
    pub atomic_store_ns: u64,
    /// Records a [`crate::TracedOp`] per device event for persist-order
    /// analysis (the `persistcheck` crate). Off by default; recording does
    /// not advance the simulated clock or the persistence-event counter,
    /// so traced and untraced runs behave identically.
    pub trace_events: bool,
}

impl NvmConfig {
    /// Configuration with the paper's default medium (emulated PCM).
    pub fn new(capacity: usize, tech: NvmTech) -> Self {
        assert!(
            capacity.is_multiple_of(crate::CACHE_LINE),
            "capacity must be line-aligned"
        );
        Self {
            capacity,
            tech,
            flush_instr: FlushInstr::Clflush,
            clflush_overhead_ns: FlushInstr::Clflush.overhead_ns(),
            clflush_clean_ns: 20,
            sfence_ns: 20,
            store_ns: 2,
            atomic_store_ns: 15,
            trace_events: false,
        }
    }

    /// Latency charged for flushing one dirty line.
    pub fn flush_dirty_ns(&self) -> u64 {
        self.clflush_overhead_ns + self.tech.write_ns()
    }

    /// Switches the flush instruction, adjusting the overhead costs.
    pub fn with_flush_instr(mut self, instr: FlushInstr) -> Self {
        self.flush_instr = instr;
        self.clflush_overhead_ns = instr.overhead_ns();
        self.clflush_clean_ns = instr.overhead_ns() / 2;
        self
    }

    /// Enables event-trace recording (see [`Self::trace_events`]).
    pub fn with_tracing(mut self) -> Self {
        self.trace_events = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_is_slower_to_write_than_nvdimm() {
        assert!(NvmTech::Pcm.write_ns() > NvmTech::Nvdimm.write_ns());
        assert_eq!(NvmTech::Pcm.write_ns() - NvmTech::Nvdimm.write_ns(), 180);
        assert_eq!(NvmTech::Pcm.read_ns() - NvmTech::Nvdimm.read_ns(), 50);
    }

    #[test]
    fn sttram_is_symmetric_delta() {
        assert_eq!(NvmTech::SttRam.write_ns() - NvmTech::Nvdimm.write_ns(), 50);
        assert_eq!(NvmTech::SttRam.read_ns() - NvmTech::Nvdimm.read_ns(), 50);
    }

    #[test]
    fn flush_cost_includes_media_write() {
        let cfg = NvmConfig::new(4096, NvmTech::Pcm);
        assert_eq!(cfg.flush_dirty_ns(), 40 + 240);
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn rejects_unaligned_capacity() {
        let _ = NvmConfig::new(100, NvmTech::Pcm);
    }

    #[test]
    fn names_cover_all() {
        for t in NvmTech::all() {
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn flush_instr_ordering() {
        use FlushInstr::*;
        assert!(Clflush.overhead_ns() > Clflushopt.overhead_ns());
        assert!(Clflushopt.overhead_ns() > Clwb.overhead_ns());
        assert!(Clflush.invalidates());
        assert!(Clflushopt.invalidates());
        assert!(!Clwb.invalidates());
    }

    #[test]
    fn with_flush_instr_updates_costs() {
        let cfg = NvmConfig::new(4096, NvmTech::Pcm).with_flush_instr(FlushInstr::Clwb);
        assert_eq!(cfg.clflush_overhead_ns, 20);
        assert_eq!(cfg.flush_instr, FlushInstr::Clwb);
    }
}
