//! Carving one NVM budget into per-shard devices.
//!
//! A sharded cache front-end partitions the NVM region into `N`
//! independent sub-regions. Each sub-region is modelled as its own
//! [`NvmDevice`] with its **own** [`SimClock`]: shards of a real NVDIMM
//! serve flushes from disjoint address ranges concurrently, so per-shard
//! time advances independently and pool wall-clock time is the *maximum*
//! over shard clocks, not the sum. Each shard device also keeps its own
//! event trace, so persist-order analysis audits every shard's commit
//! stream in isolation.

use crate::{NvmConfig, NvmDevice, SimClock, TraceEvent, TracedOp, CACHE_LINE};

/// Splits `cfg.capacity` evenly over `shards` devices, each with its own
/// clock and a per-shard copy of every other knob (tech, flush
/// instruction, tracing). Per-shard capacity is rounded down to the
/// cache-line size; the remainder bytes are simply not modelled.
pub fn shard_devices(cfg: &NvmConfig, shards: usize) -> Vec<crate::Nvm> {
    assert!(shards >= 1, "need at least one shard");
    let per = (cfg.capacity / shards) / CACHE_LINE * CACHE_LINE;
    assert!(
        per >= CACHE_LINE,
        "capacity {} too small for {} shards",
        cfg.capacity,
        shards
    );
    (0..shards)
        .map(|_| {
            let shard_cfg = NvmConfig {
                capacity: per,
                ..cfg.clone()
            };
            NvmDevice::new(shard_cfg, SimClock::new())
        })
        .collect()
}

/// Merges per-shard traces into one stream over the pool's unified
/// address space.
///
/// Shard `i`'s addresses (and `clflush` line numbers) are rebased by
/// `i * shard_capacity` bytes, so lines of different shards never alias —
/// exactly the partitioning [`shard_devices`] models — and every op is
/// stamped with `device = i`, so analyzers keep fence-epoch and
/// commit-window state per device: shard `i`'s `sfence` orders only shard
/// `i`'s write-backs, never another shard's. Sync-object ids are
/// pool-global and pass through unchanged, as do thread ids: a thread
/// keeps one stable id across every shard it touches, which is what lets
/// the happens-before engine follow it between shards.
///
/// Events interleave deterministically by (per-shard ordinal, shard
/// index) — a round-robin merge — and are re-numbered with fresh global
/// `seq` ordinals. There is no cross-shard timeline to recover (each
/// shard device has its own clock); any deterministic interleaving is
/// equally valid for analysis because the per-thread and per-line
/// orderings the rules consume are preserved within each shard stream.
pub fn merge_shard_traces(per_shard: Vec<Vec<TracedOp>>, shard_capacity: usize) -> Vec<TracedOp> {
    assert!(
        shard_capacity.is_multiple_of(CACHE_LINE),
        "shard capacity must be line-aligned"
    );
    let mut tagged: Vec<(u64, usize, TracedOp)> = Vec::new();
    for (shard, ops) in per_shard.into_iter().enumerate() {
        let addr_base = shard * shard_capacity;
        let line_base = addr_base / CACHE_LINE;
        for mut op in ops {
            op.device = shard as u32;
            match &mut op.event {
                TraceEvent::Store { addr, .. }
                | TraceEvent::AtomicStore { addr, .. }
                | TraceEvent::Commit { addr, .. }
                | TraceEvent::ReadAfterRecovery { addr, .. } => *addr += addr_base,
                TraceEvent::Clflush { line, .. } => *line += line_base,
                TraceEvent::Sfence { .. }
                | TraceEvent::Crash
                | TraceEvent::LockAcquire { .. }
                | TraceEvent::LockRelease { .. }
                | TraceEvent::AtomicLoadAcquire { .. }
                | TraceEvent::AtomicStoreRelease { .. } => {}
            }
            tagged.push((op.seq, shard, op));
        }
    }
    tagged.sort_by_key(|&(seq, shard, _)| (seq, shard));
    tagged
        .into_iter()
        .enumerate()
        .map(|(i, (_, _, mut op))| {
            op.seq = i as u64;
            op
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmTech;

    #[test]
    fn splits_capacity_evenly_and_line_aligned() {
        let cfg = NvmConfig::new(1 << 20, NvmTech::Pcm);
        let devs = shard_devices(&cfg, 4);
        assert_eq!(devs.len(), 4);
        for d in &devs {
            assert_eq!(d.capacity(), (1 << 20) / 4);
            assert_eq!(d.capacity() % CACHE_LINE, 0);
        }
    }

    #[test]
    fn clocks_are_independent() {
        let cfg = NvmConfig::new(64 << 10, NvmTech::Pcm);
        let devs = shard_devices(&cfg, 2);
        devs[0].write(0, &[1u8; 64]);
        devs[0].persist(0, 64);
        assert!(devs[0].clock().now_ns() > 0);
        assert_eq!(
            devs[1].clock().now_ns(),
            0,
            "shard 1 must not be charged for shard 0's flush"
        );
    }

    #[test]
    fn one_shard_keeps_full_capacity() {
        let cfg = NvmConfig::new(256 << 10, NvmTech::Nvdimm);
        let devs = shard_devices(&cfg, 1);
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].capacity(), 256 << 10);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_over_sharding() {
        let cfg = NvmConfig::new(CACHE_LINE, NvmTech::Pcm);
        let _ = shard_devices(&cfg, 2);
    }

    #[test]
    fn merge_rebases_addresses_and_renumbers() {
        use crate::TraceEvent as E;
        let cfg = NvmConfig::new(8192, NvmTech::Pcm).with_tracing();
        let devs = shard_devices(&cfg, 2);
        let per = devs[0].capacity();
        devs[0].write(0, &[1u8; 8]);
        devs[0].persist(0, 8);
        devs[1].write(64, &[2u8; 8]);
        devs[1].persist(64, 8);
        devs[1].note_commit(64, 8);
        let merged =
            merge_shard_traces(devs.iter().map(|d| d.take_trace()).collect::<Vec<_>>(), per);
        // Round-robin by per-shard ordinal: s0#0, s1#0, s0#1, s1#1, …
        assert_eq!(merged.len(), 7);
        for (i, op) in merged.iter().enumerate() {
            assert_eq!(op.seq, i as u64, "fresh global ordinals");
            assert!(op.device < 2, "device tag is the shard index");
        }
        assert_eq!(merged[0].device, 0);
        assert_eq!(merged[1].device, 1);
        assert_eq!(merged[0].event, E::Store { addr: 0, len: 8 });
        assert_eq!(
            merged[1].event,
            E::Store {
                addr: per + 64,
                len: 8
            }
        );
        let lines: Vec<usize> = merged
            .iter()
            .filter_map(|op| match op.event {
                E::Clflush { line, .. } => Some(line),
                _ => None,
            })
            .collect();
        assert_eq!(lines, [0, (per + 64) / CACHE_LINE]);
        assert_eq!(
            merged.last().unwrap().event,
            E::Commit {
                addr: per + 64,
                len: 8
            }
        );
    }

    #[test]
    fn merge_keeps_sync_objects_and_threads_unrebased() {
        let cfg = NvmConfig::new(8192, NvmTech::Pcm).with_tracing();
        let devs = shard_devices(&cfg, 2);
        crate::set_trace_thread(9);
        devs[0].note_lock_acquire(5);
        devs[1].note_lock_release(5);
        let merged = merge_shard_traces(
            devs.iter().map(|d| d.take_trace()).collect::<Vec<_>>(),
            devs[0].capacity(),
        );
        assert_eq!(merged[0].event, crate::TraceEvent::LockAcquire { obj: 5 });
        assert_eq!(merged[1].event, crate::TraceEvent::LockRelease { obj: 5 });
        assert_eq!(merged[0].thread, 9);
        assert_eq!(merged[1].thread, 9);
    }
}
