//! Carving one NVM budget into per-shard devices.
//!
//! A sharded cache front-end partitions the NVM region into `N`
//! independent sub-regions. Each sub-region is modelled as its own
//! [`NvmDevice`] with its **own** [`SimClock`]: shards of a real NVDIMM
//! serve flushes from disjoint address ranges concurrently, so per-shard
//! time advances independently and pool wall-clock time is the *maximum*
//! over shard clocks, not the sum. Each shard device also keeps its own
//! event trace, so persist-order analysis audits every shard's commit
//! stream in isolation.

use crate::{NvmConfig, NvmDevice, SimClock, CACHE_LINE};

/// Splits `cfg.capacity` evenly over `shards` devices, each with its own
/// clock and a per-shard copy of every other knob (tech, flush
/// instruction, tracing). Per-shard capacity is rounded down to the
/// cache-line size; the remainder bytes are simply not modelled.
pub fn shard_devices(cfg: &NvmConfig, shards: usize) -> Vec<crate::Nvm> {
    assert!(shards >= 1, "need at least one shard");
    let per = (cfg.capacity / shards) / CACHE_LINE * CACHE_LINE;
    assert!(
        per >= CACHE_LINE,
        "capacity {} too small for {} shards",
        cfg.capacity,
        shards
    );
    (0..shards)
        .map(|_| {
            let shard_cfg = NvmConfig {
                capacity: per,
                ..cfg.clone()
            };
            NvmDevice::new(shard_cfg, SimClock::new())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmTech;

    #[test]
    fn splits_capacity_evenly_and_line_aligned() {
        let cfg = NvmConfig::new(1 << 20, NvmTech::Pcm);
        let devs = shard_devices(&cfg, 4);
        assert_eq!(devs.len(), 4);
        for d in &devs {
            assert_eq!(d.capacity(), (1 << 20) / 4);
            assert_eq!(d.capacity() % CACHE_LINE, 0);
        }
    }

    #[test]
    fn clocks_are_independent() {
        let cfg = NvmConfig::new(64 << 10, NvmTech::Pcm);
        let devs = shard_devices(&cfg, 2);
        devs[0].write(0, &[1u8; 64]);
        devs[0].persist(0, 64);
        assert!(devs[0].clock().now_ns() > 0);
        assert_eq!(
            devs[1].clock().now_ns(),
            0,
            "shard 1 must not be charged for shard 0's flush"
        );
    }

    #[test]
    fn one_shard_keeps_full_capacity() {
        let cfg = NvmConfig::new(256 << 10, NvmTech::Nvdimm);
        let devs = shard_devices(&cfg, 1);
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].capacity(), 256 << 10);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_over_sharding() {
        let cfg = NvmConfig::new(CACHE_LINE, NvmTech::Pcm);
        let _ = shard_devices(&cfg, 2);
    }
}
