//! Property tests of the NVM crash model: the invariants every layer
//! above relies on, under arbitrary store/flush/fence interleavings.

use nvmsim::{CrashPolicy, NvmConfig, NvmDevice, NvmTech, SimClock};
use proptest::prelude::*;

const CAP: usize = 8192;

#[derive(Clone, Debug)]
enum Op {
    Write { addr: u16, len: u8, fill: u8 },
    Atomic8 { word: u16, val: u64 },
    Atomic16 { pair: u16, val: u128 },
    Flush { addr: u16, len: u8 },
    Fence,
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u16..(CAP as u16 - 255), 1u8..=255, any::<u8>())
            .prop_map(|(addr, len, fill)| Op::Write { addr, len, fill }),
        2 => (0u16..(CAP / 8) as u16, any::<u64>()).prop_map(|(word, val)| Op::Atomic8 { word, val }),
        2 => (0u16..(CAP / 16) as u16, any::<u128>())
            .prop_map(|(pair, val)| Op::Atomic16 { pair, val }),
        3 => (0u16..(CAP as u16 - 255), 1u8..=255).prop_map(|(addr, len)| Op::Flush { addr, len }),
        2 => Just(Op::Fence),
    ]
}

/// A byte-granular shadow model of the persistence semantics.
struct Shadow {
    /// Guaranteed-durable contents (as of the last applicable fence).
    durable: Vec<u8>,
    /// Volatile view (what reads must return pre-crash).
    volatile: Vec<u8>,
    /// Stored since last flush (not yet staged).
    dirty: Vec<bool>,
    /// Flushed but not yet fenced: *all* snapshots taken since the last
    /// fence, oldest first (two un-fenced flushes of one line can leave
    /// either snapshot on the medium after a crash).
    staged: Vec<Vec<u8>>,
}

impl Shadow {
    fn new() -> Shadow {
        Shadow {
            durable: vec![0; CAP],
            volatile: vec![0; CAP],
            dirty: vec![false; CAP],
            staged: vec![Vec::new(); CAP],
        }
    }

    fn write(&mut self, addr: usize, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.volatile[addr + i] = b;
            self.dirty[addr + i] = true;
        }
    }

    fn flush(&mut self, addr: usize, len: usize) {
        // Whole cache lines are staged, snapshotting flush-time contents.
        let first = addr / 64 * 64;
        let last = (addr + len - 1) / 64 * 64 + 64;
        for i in first..last.min(CAP) {
            if self.dirty[i] {
                self.dirty[i] = false;
                let v = self.volatile[i];
                self.staged[i].push(v);
            }
        }
    }

    fn fence(&mut self) {
        for i in 0..CAP {
            if let Some(&v) = self.staged[i].last() {
                self.durable[i] = v;
                self.staged[i].clear();
            }
        }
    }

    /// True if a crash can only leave the durable value at byte `i`.
    fn guaranteed(&self, i: usize) -> bool {
        !self.dirty[i] && self.staged[i].is_empty() && self.durable[i] == self.volatile[i]
    }

    /// The set of values byte `i` may legally hold after a crash.
    fn legal(&self, i: usize) -> Vec<u8> {
        let mut v = vec![self.durable[i], self.volatile[i]];
        v.extend_from_slice(&self.staged[i]);
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// (1) Reads always see the newest data. (2) After a crash, every
    /// store that was flushed + fenced reads back exactly; every byte
    /// reads as either its durable or its newest volatile value — never
    /// anything else.
    #[test]
    fn crash_preserves_fenced_prefix(seq in proptest::collection::vec(ops(), 1..80), seed in any::<u64>()) {
        let dev = NvmDevice::new(NvmConfig::new(CAP, NvmTech::Pcm), SimClock::new());
        let mut shadow = Shadow::new();
        for op in &seq {
            match *op {
                Op::Write { addr, len, fill } => {
                    let data = vec![fill; len as usize];
                    dev.write(addr as usize, &data);
                    shadow.write(addr as usize, &data);
                }
                Op::Atomic8 { word, val } => {
                    let addr = word as usize * 8;
                    dev.atomic_write_u64(addr, val);
                    shadow.write(addr, &val.to_le_bytes());
                }
                Op::Atomic16 { pair, val } => {
                    let addr = pair as usize * 16;
                    dev.atomic_write_u128(addr, val);
                    shadow.write(addr, &val.to_le_bytes());
                }
                Op::Flush { addr, len } => {
                    dev.clflush(addr as usize, len as usize);
                    shadow.flush(addr as usize, len as usize);
                }
                Op::Fence => {
                    dev.sfence();
                    shadow.fence();
                }
            }
        }
        // Pre-crash: reads see the newest data everywhere.
        let mut pre = vec![0u8; CAP];
        dev.read(0, &mut pre);
        prop_assert_eq!(&pre, &shadow.volatile, "pre-crash read mismatch");

        dev.crash(CrashPolicy::Random(seed));
        let mut post = vec![0u8; CAP];
        dev.read(0, &mut post);
        for (i, &got) in post.iter().enumerate() {
            if shadow.guaranteed(i) {
                prop_assert_eq!(
                    got,
                    shadow.durable[i],
                    "guaranteed-durable byte {} lost",
                    i
                );
            } else {
                // May be the durable, staged, or newest value — never
                // anything else.
                prop_assert!(
                    shadow.legal(i).contains(&got),
                    "byte {} holds {} which is none of {:?}",
                    i,
                    got,
                    shadow.legal(i)
                );
            }
        }
    }

    /// LoseVolatile is the floor: exactly the fenced state survives.
    #[test]
    fn lose_volatile_yields_exact_fenced_state(seq in proptest::collection::vec(ops(), 1..60)) {
        let dev = NvmDevice::new(NvmConfig::new(CAP, NvmTech::Pcm), SimClock::new());
        let mut shadow = Shadow::new();
        for op in &seq {
            match *op {
                Op::Write { addr, len, fill } => {
                    let data = vec![fill; len as usize];
                    dev.write(addr as usize, &data);
                    shadow.write(addr as usize, &data);
                }
                Op::Atomic8 { word, val } => {
                    dev.atomic_write_u64(word as usize * 8, val);
                    shadow.write(word as usize * 8, &val.to_le_bytes());
                }
                Op::Atomic16 { pair, val } => {
                    dev.atomic_write_u128(pair as usize * 16, val);
                    shadow.write(pair as usize * 16, &val.to_le_bytes());
                }
                Op::Flush { addr, len } => {
                    dev.clflush(addr as usize, len as usize);
                    shadow.flush(addr as usize, len as usize);
                }
                Op::Fence => {
                    dev.sfence();
                    shadow.fence();
                }
            }
        }
        dev.crash(CrashPolicy::LoseVolatile);
        let mut post = vec![0u8; CAP];
        dev.read(0, &mut post);
        prop_assert_eq!(&post, &shadow.durable);
    }
}
