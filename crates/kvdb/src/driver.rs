//! The TPC-C record driver for kvdb: the same seeded key stream the
//! block-level benchmarks use ([`workloads::tpcc::gen_txn_keys`]),
//! applied as KV transactions. One stream, two durability personalities
//! — the WAL-elimination figure runs the *identical* plan against
//! [`crate::WalStore`] and [`crate::TincaStore`].

use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::tpcc::{gen_txn_keys, RecordKey, Regions, TxnKeys};

use crate::db::Db;
use crate::store::{KvError, PageStore};

/// Bytes per TPC-C record value (a scaled-down row image).
pub const VALUE_LEN: usize = 120;

/// One planned KV transaction: the record keys it touches and the exact
/// encoded writes `apply` will issue (also the crash oracle's staged set).
#[derive(Clone, Debug)]
pub struct KvTxn {
    pub keys: TxnKeys,
    /// Encoded key → value, for every in-place write and append.
    pub writes: Vec<(Vec<u8>, Vec<u8>)>,
}

/// Deterministic record image for `key` as of commit `seq`: the commit
/// sequence is recoverable from the first 8 bytes, so verification can
/// tell *which* transaction's write survived a crash.
pub fn value_for(key: &RecordKey, seq: u64) -> Vec<u8> {
    let enc = key.encode();
    let mut v = Vec::with_capacity(VALUE_LEN);
    v.extend_from_slice(&seq.to_le_bytes());
    while v.len() < VALUE_LEN {
        v.extend_from_slice(&enc);
    }
    v.truncate(VALUE_LEN);
    v
}

/// Seeded generator of TPC-C KV transactions.
pub struct KvTpccDriver {
    rng: StdRng,
    regions: Regions,
    warehouses: u32,
    cursors: Vec<u64>,
    seq: u64,
}

impl KvTpccDriver {
    /// A driver rolling the standard transaction mix over `warehouses`
    /// warehouses. The region layout (256 pages per warehouse) only
    /// shapes row skew here; record placement is the B-tree's business.
    pub fn new(seed: u64, warehouses: u32) -> KvTpccDriver {
        KvTpccDriver {
            rng: StdRng::seed_from_u64(seed),
            regions: Regions::new(256),
            warehouses,
            cursors: vec![0; warehouses as usize],
            seq: 0,
        }
    }

    /// Rolls the next transaction. The home warehouse rotates so every
    /// warehouse's hot rows get traffic.
    pub fn next_txn(&mut self) -> KvTxn {
        self.seq += 1;
        let home = (self.seq % u64::from(self.warehouses)) as u32;
        let keys = gen_txn_keys(
            &mut self.rng,
            &self.regions,
            home,
            self.warehouses,
            &mut self.cursors,
        );
        let writes = keys
            .writes
            .iter()
            .chain(keys.appends.iter())
            .map(|k| (k.encode().to_vec(), value_for(k, self.seq)))
            .collect();
        KvTxn { keys, writes }
    }

    /// Transactions rolled so far (= the commit seq of the last one).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Applies one planned transaction: reads its read set, writes its write
/// set, commits. The `Db` transaction makes all of it atomic-durable.
pub fn apply_txn<S: PageStore>(db: &mut Db<S>, txn: &KvTxn) -> Result<(), KvError> {
    db.begin()?;
    for k in &txn.keys.reads {
        let _ = db.get(&k.encode())?;
    }
    for (k, v) in &txn.writes {
        db.put(k, v)?;
    }
    db.commit()
}
