//! The WAL-free durability personality: dirty pages become one Tinca
//! pool transaction, and the ring commit *is* the durability point.
//!
//! No log, no replay, no checkpoint: the pool's commit protocol (and,
//! for batches whose pages map to more than one shard, the persistent
//! two-phase spanning path) already gives the all-or-nothing guarantee
//! the [`crate::store::PageStore`] contract demands. Page `p` lives at
//! disk block `p`, so with more than one shard the ever-present meta
//! page (page 0, shard 0) plus any odd-id page makes the commit a
//! spanning transaction — the kvdb crash campaigns exercise that path
//! on every multi-page commit.

use blockdev::{BlockDevice, Disk, DiskKind, SimDisk, BLOCK_SIZE};
use nvmsim::{shard_devices, Nvm, NvmConfig, NvmTech, SimClock};
use tinca::{PoolConfig, TincaConfig, TincaPool};

use crate::page::PAGE_SIZE;
use crate::store::{KvError, PageStore, StoreStats};

/// Sizing for a [`TincaStore`]'s devices and pool.
#[derive(Clone, Debug)]
pub struct TincaStoreConfig {
    /// Commit-ring shards (page id modulo shards picks the shard).
    pub shards: usize,
    /// NVM bytes per shard.
    pub nvm_bytes_per_shard: usize,
    /// Disk size in blocks (= the store's page capacity).
    pub disk_blocks: u64,
    /// Per-shard commit ring bytes.
    pub ring_bytes: usize,
    /// Trace NVM persistence events (crash harnesses need this).
    pub traced: bool,
}

impl Default for TincaStoreConfig {
    fn default() -> Self {
        TincaStoreConfig {
            shards: 2,
            nvm_bytes_per_shard: 2 << 20,
            disk_blocks: 1 << 16,
            ring_bytes: 16 << 10,
            traced: false,
        }
    }
}

impl TincaStoreConfig {
    fn nvm_config(&self) -> NvmConfig {
        let cfg = NvmConfig::new(self.shards * self.nvm_bytes_per_shard, NvmTech::Pcm);
        if self.traced {
            cfg.with_tracing()
        } else {
            cfg
        }
    }

    fn pool_config(&self) -> PoolConfig {
        PoolConfig {
            shards: self.shards,
            cache: TincaConfig {
                ring_bytes: self.ring_bytes,
                ..TincaConfig::default()
            },
            ..PoolConfig::default()
        }
    }
}

/// Journal-free page store: one Tinca pool transaction per KV commit.
pub struct TincaStore {
    pool: TincaPool,
    devices: Vec<Nvm>,
    disk: Disk,
    clock: SimClock,
    cfg: TincaStoreConfig,
    commits: u64,
    pages_committed: u64,
}

impl TincaStore {
    /// Fresh devices, freshly formatted pool.
    pub fn format(cfg: TincaStoreConfig) -> TincaStore {
        let devices = shard_devices(&cfg.nvm_config(), cfg.shards);
        let clock = SimClock::new();
        let disk = SimDisk::new(DiskKind::Ssd, cfg.disk_blocks, clock.clone());
        let pool = TincaPool::format(devices.clone(), disk.clone(), cfg.pool_config());
        TincaStore {
            pool,
            devices,
            disk,
            clock,
            cfg,
            commits: 0,
            pages_committed: 0,
        }
    }

    /// Recovers a pool on surviving devices (the crash-and-remount path;
    /// DRAM counters restart, exactly as a reboot would restart them).
    pub fn recover(
        devices: Vec<Nvm>,
        disk: Disk,
        clock: SimClock,
        cfg: TincaStoreConfig,
    ) -> Result<TincaStore, KvError> {
        let pool = TincaPool::recover(devices.clone(), disk.clone(), cfg.pool_config())
            .map_err(|e| KvError::Store(format!("pool recovery: {e}")))?;
        Ok(TincaStore {
            pool,
            devices,
            disk,
            clock,
            cfg,
            commits: 0,
            pages_committed: 0,
        })
    }

    /// The shard devices (crash harnesses arm trips and crash these).
    pub fn devices(&self) -> &[Nvm] {
        &self.devices
    }

    /// The backing disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The simulated clock driving this store's devices.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The live pool.
    pub fn pool(&self) -> &TincaPool {
        &self.pool
    }

    /// The store's sizing config (crash cycles rebuild from this).
    pub fn config(&self) -> &TincaStoreConfig {
        &self.cfg
    }

    /// Tears the store down to its surviving parts for a crash cycle.
    pub fn into_parts(self) -> (Vec<Nvm>, Disk, SimClock, TincaStoreConfig) {
        (self.devices, self.disk, self.clock, self.cfg)
    }
}

impl PageStore for TincaStore {
    fn read_page(&mut self, id: u32, buf: &mut [u8; PAGE_SIZE]) -> Result<(), KvError> {
        self.pool
            .read(u64::from(id), buf)
            .map_err(|e| KvError::Store(format!("pool read of page {id}: {e}")))
    }

    fn commit_pages(&mut self, dirty: &[(u32, [u8; PAGE_SIZE])]) -> Result<(), KvError> {
        let mut txn = self.pool.init_txn();
        for (id, img) in dirty {
            txn.write(u64::from(*id), img);
        }
        self.pool
            .commit(txn)
            .map_err(|e| KvError::Store(format!("pool commit: {e}")))?;
        self.commits += 1;
        self.pages_committed += dirty.len() as u64;
        Ok(())
    }

    fn page_capacity(&self) -> u32 {
        u32::try_from(self.cfg.disk_blocks).unwrap_or(u32::MAX)
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            commits: self.commits,
            pages_committed: self.pages_committed,
            nvm_bytes: self
                .devices
                .iter()
                .map(|d| d.stats().bytes_written_back())
                .sum(),
            disk_bytes: self.disk.stats().writes * BLOCK_SIZE as u64,
        }
    }
}
