//! The ordered KV store: a B-tree of fixed-size pages over a
//! [`PageStore`], with single-writer transactions.
//!
//! All tree mutation happens in a DRAM page cache; `commit` encodes the
//! dirty nodes (plus the meta page, which rides in **every** commit so
//! the committed root is always consistent with the committed pages) and
//! hands them to the store as one atomic batch. There is no programmatic
//! abort: a crash discards DRAM, and the store's recovery guarantees the
//! batch was all-or-nothing — the same contract Tinca gives the
//! journal-free file system, one level up.
//!
//! Structure policy: nodes split when their encoding would overflow the
//! page; a leaf that empties is freed and unlinked from its parent (a
//! non-root branch that loses every separator survives as a one-child
//! chain node, keeping all leaves at uniform depth), and a root branch
//! with no separator collapses into its single child. `validate` walks
//! the committed tree re-checking exactly these invariants — the crash
//! oracles run it after every recovery.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use crate::page::{
    decode_meta, decode_node, encode_meta, encode_node, is_blank, Meta, Node, MAX_KEY, MAX_VAL,
    PAGE_SIZE,
};
use crate::store::{KvError, PageStore};

/// Decoded pages kept in DRAM before clean ones become eviction
/// candidates. Dirty pages are pinned until commit.
const CACHE_PAGES: usize = 1024;

/// An owned key/value pair, as returned by scans.
pub type KvPair = (Vec<u8>, Vec<u8>);

/// Validation work-list entry: (child page, lower bound, upper bound).
type ChildBounds = (u32, Option<Vec<u8>>, Option<Vec<u8>>);

/// An embedded ordered KV store over a [`PageStore`].
pub struct Db<S: PageStore> {
    store: S,
    /// Decoded node cache. A `BTreeMap` keyed by page id keeps eviction
    /// deterministic, so crash-replay event streams are replay-stable.
    cache: BTreeMap<u32, Node>,
    dirty: BTreeSet<u32>,
    meta: Meta,
    commit_seq: u64,
    in_txn: bool,
}

impl<S: PageStore> Db<S> {
    /// Opens (or formats) a store. A blank page 0 means a fresh store:
    /// an empty root leaf and the meta page are committed immediately,
    /// so even a never-written database recovers to a valid tree.
    pub fn open(mut store: S) -> Result<Db<S>, KvError> {
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page(0, &mut buf)?;
        if is_blank(&buf) {
            let meta = Meta {
                root: 1,
                page_count: 2,
                free: Vec::new(),
            };
            let mut db = Db {
                store,
                cache: BTreeMap::new(),
                dirty: BTreeSet::new(),
                meta,
                commit_seq: 0,
                in_txn: false,
            };
            db.cache.insert(1, Node::Leaf(Vec::new()));
            db.dirty.insert(1);
            db.write_batch()?;
            return Ok(db);
        }
        let (meta, lsn) = decode_meta(&buf).map_err(|err| KvError::Corrupt { page: 0, err })?;
        Ok(Db {
            store,
            cache: BTreeMap::new(),
            dirty: BTreeSet::new(),
            meta,
            commit_seq: lsn,
            in_txn: false,
        })
    }

    /// The underlying store (device-stats access).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable store access (crash harnesses arm trips and run
    /// device-level checks through this; the store's pages are not
    /// touched behind the cache's back).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Consumes the database, returning the store.
    pub fn into_store(self) -> S {
        self.store
    }

    /// Commits executed so far (the meta page's lsn).
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    // -- transaction lifecycle ---------------------------------------------

    /// Starts the (single) writer transaction.
    pub fn begin(&mut self) -> Result<(), KvError> {
        if self.in_txn {
            return Err(KvError::TxnState("begin inside an open transaction"));
        }
        self.in_txn = true;
        Ok(())
    }

    /// Commits the open transaction: encodes every dirty node plus the
    /// meta page and applies them through the store as one atomic batch.
    /// A read-only transaction commits without touching the store.
    pub fn commit(&mut self) -> Result<(), KvError> {
        if !self.in_txn {
            return Err(KvError::TxnState("commit with no open transaction"));
        }
        if !self.dirty.is_empty() {
            self.write_batch()?;
        }
        self.in_txn = false;
        self.evict();
        Ok(())
    }

    fn write_batch(&mut self) -> Result<(), KvError> {
        self.commit_seq += 1;
        let lsn = self.commit_seq;
        let mut batch: Vec<(u32, [u8; PAGE_SIZE])> = Vec::with_capacity(self.dirty.len() + 1);
        batch.push((
            0,
            encode_meta(&self.meta, lsn).map_err(|err| KvError::Corrupt { page: 0, err })?,
        ));
        for &id in &self.dirty {
            let node = self.cache.get(&id).ok_or(KvError::TxnState(
                "dirty page missing from cache (internal bug)",
            ))?;
            batch.push((
                id,
                encode_node(node, lsn).map_err(|err| KvError::Corrupt { page: id, err })?,
            ));
        }
        self.store.commit_pages(&batch)?;
        self.dirty.clear();
        Ok(())
    }

    /// Drops clean decoded pages (lowest id first — deterministic) until
    /// the cache fits its budget again.
    fn evict(&mut self) {
        while self.cache.len() > CACHE_PAGES {
            let Some(id) = self
                .cache
                .keys()
                .copied()
                .find(|id| !self.dirty.contains(id))
            else {
                return; // everything dirty: pinned until commit
            };
            self.cache.remove(&id);
        }
    }

    // -- node access -------------------------------------------------------

    /// Faults page `id` into the cache and removes it for exclusive use;
    /// callers must put it back.
    fn take_node(&mut self, id: u32) -> Result<Node, KvError> {
        if let Some(n) = self.cache.remove(&id) {
            return Ok(n);
        }
        let mut buf = [0u8; PAGE_SIZE];
        self.store.read_page(id, &mut buf)?;
        let (node, _) = decode_node(&buf).map_err(|err| KvError::Corrupt { page: id, err })?;
        Ok(node)
    }

    fn alloc(&mut self) -> Result<u32, KvError> {
        if let Some(id) = self.meta.free.pop() {
            return Ok(id);
        }
        if self.meta.page_count >= self.store.page_capacity() {
            return Err(KvError::Full);
        }
        let id = self.meta.page_count;
        self.meta.page_count += 1;
        Ok(id)
    }

    fn free_page(&mut self, id: u32) {
        self.cache.remove(&id);
        self.dirty.remove(&id);
        if self.meta.free.len() < Meta::free_capacity() {
            self.meta.free.push(id);
        }
        // Beyond the meta page's free-list capacity the id leaks — a
        // documented bound the workloads never reach.
    }

    // -- reads -------------------------------------------------------------

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        let mut id = self.meta.root;
        loop {
            let node = self.take_node(id)?;
            let next = match &node {
                Node::Leaf(entries) => {
                    let out = entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1.clone());
                    self.cache.insert(id, node);
                    return Ok(out);
                }
                Node::Branch { first, seps } => child_for(*first, seps, key),
            };
            self.cache.insert(id, node);
            id = next;
        }
    }

    /// Ordered range scan over `[lo, hi)`; `None` bounds are open.
    pub fn scan(&mut self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> Result<Vec<KvPair>, KvError> {
        let mut out = Vec::new();
        let root = self.meta.root;
        self.scan_rec(root, lo, hi, &mut out)?;
        Ok(out)
    }

    /// The full committed-and-staged contents — what the crash oracles
    /// diff against their expected maps.
    pub fn scan_all(&mut self) -> Result<Vec<KvPair>, KvError> {
        self.scan(Bound::Unbounded, Bound::Unbounded)
    }

    fn scan_rec(
        &mut self,
        id: u32,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        out: &mut Vec<KvPair>,
    ) -> Result<(), KvError> {
        let node = self.take_node(id)?;
        match &node {
            Node::Leaf(entries) => {
                for (k, v) in entries {
                    if in_lo(lo, k) && in_hi(hi, k) {
                        out.push((k.clone(), v.clone()));
                    }
                }
            }
            Node::Branch { first, seps } => {
                // Child i covers [seps[i-1].0, seps[i].0) (open-ended at
                // the edges); prune subtrees wholly outside the range.
                let children: Vec<u32> = std::iter::once(*first)
                    .chain(seps.iter().map(|(_, c)| *c))
                    .collect();
                let lower = |i: usize| -> Option<&[u8]> {
                    if i == 0 {
                        None
                    } else {
                        Some(seps[i - 1].0.as_slice())
                    }
                };
                let upper = |i: usize| -> Option<&[u8]> { seps.get(i).map(|(k, _)| k.as_slice()) };
                let kids: Vec<(usize, u32)> = children
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(i, _)| {
                        let below = matches!((upper(i), lo), (Some(u), Bound::Included(l)) if u <= l)
                            || matches!((upper(i), lo), (Some(u), Bound::Excluded(l)) if u <= l);
                        let above = match (lower(i), hi) {
                            (Some(l), Bound::Included(h)) => l > h,
                            (Some(l), Bound::Excluded(h)) => l >= h,
                            _ => false,
                        };
                        !below && !above
                    })
                    .collect();
                self.cache.insert(id, node);
                for (_, child) in kids {
                    self.scan_rec(child, lo, hi, out)?;
                }
                return Ok(());
            }
        }
        self.cache.insert(id, node);
        Ok(())
    }

    // -- writes ------------------------------------------------------------

    /// Inserts or replaces `key`.
    pub fn put(&mut self, key: &[u8], val: &[u8]) -> Result<(), KvError> {
        if !self.in_txn {
            return Err(KvError::TxnState("put outside a transaction"));
        }
        if key.is_empty() || key.len() > MAX_KEY {
            return Err(KvError::KeyTooLarge(key.len()));
        }
        if val.len() > MAX_VAL {
            return Err(KvError::ValTooLarge(val.len()));
        }
        let root = self.meta.root;
        if let Some((sep, right)) = self.insert_rec(root, key, val)? {
            // Root split: grow the tree by one level.
            let new_root = self.alloc()?;
            self.cache.insert(
                new_root,
                Node::Branch {
                    first: root,
                    seps: vec![(sep, right)],
                },
            );
            self.dirty.insert(new_root);
            self.meta.root = new_root;
        }
        Ok(())
    }

    fn insert_rec(
        &mut self,
        id: u32,
        key: &[u8],
        val: &[u8],
    ) -> Result<Option<(Vec<u8>, u32)>, KvError> {
        let mut node = self.take_node(id)?;
        let split = match &mut node {
            Node::Leaf(entries) => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => entries[i].1 = val.to_vec(),
                    Err(i) => entries.insert(i, (key.to_vec(), val.to_vec())),
                }
                self.dirty.insert(id);
                if node.fits() {
                    None
                } else {
                    let Node::Leaf(entries) = &mut node else {
                        return Err(KvError::TxnState("leaf changed kind (internal bug)"));
                    };
                    let right_entries = split_half(entries);
                    let sep = right_entries[0].0.clone();
                    let right = self.alloc()?;
                    self.cache.insert(right, Node::Leaf(right_entries));
                    self.dirty.insert(right);
                    Some((sep, right))
                }
            }
            Node::Branch { first, seps } => {
                let child = child_for(*first, seps, key);
                // Reinsert before recursing so the child's own descent
                // can fault pages freely.
                self.cache.insert(id, node);
                let promoted = self.insert_rec(child, key, val)?;
                node = self.take_node(id)?;
                let Some((sep, new_child)) = promoted else {
                    self.cache.insert(id, node);
                    return Ok(None);
                };
                let Node::Branch { seps, .. } = &mut node else {
                    return Err(KvError::TxnState("branch changed kind (internal bug)"));
                };
                let pos = seps.partition_point(|(k, _)| k.as_slice() <= sep.as_slice());
                seps.insert(pos, (sep, new_child));
                self.dirty.insert(id);
                if node.fits() {
                    None
                } else {
                    let Node::Branch { seps, .. } = &mut node else {
                        return Err(KvError::TxnState("branch changed kind (internal bug)"));
                    };
                    let mid = seps.len() / 2;
                    let mut right_seps = seps.split_off(mid);
                    let (promote_key, right_first) = right_seps.remove(0);
                    let right = self.alloc()?;
                    self.cache.insert(
                        right,
                        Node::Branch {
                            first: right_first,
                            seps: right_seps,
                        },
                    );
                    self.dirty.insert(right);
                    Some((promote_key, right))
                }
            }
        };
        self.cache.insert(id, node);
        Ok(split)
    }

    /// Removes `key`; returns whether it was present.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, KvError> {
        if !self.in_txn {
            return Err(KvError::TxnState("delete outside a transaction"));
        }
        let root = self.meta.root;
        let (removed, emptied) = self.delete_rec(root, key)?;
        if emptied {
            // The whole tree emptied: reset the root to an empty leaf in
            // place (the root id never dangles).
            self.cache.insert(root, Node::Leaf(Vec::new()));
            self.dirty.insert(root);
        }
        // A root branch left with no separator collapses into its single
        // child, shrinking every path uniformly.
        loop {
            let node = self.take_node(self.meta.root)?;
            if let Node::Branch { first, seps } = &node {
                if seps.is_empty() {
                    let old = self.meta.root;
                    let first = *first;
                    self.free_page(old);
                    self.meta.root = first;
                    continue;
                }
            }
            self.cache.insert(self.meta.root, node);
            break;
        }
        Ok(removed)
    }

    /// Returns `(removed, subtree_now_empty)`.
    fn delete_rec(&mut self, id: u32, key: &[u8]) -> Result<(bool, bool), KvError> {
        let mut node = self.take_node(id)?;
        match &mut node {
            Node::Leaf(entries) => {
                let removed = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        entries.remove(i);
                        self.dirty.insert(id);
                        true
                    }
                    Err(_) => false,
                };
                let empty = entries.is_empty();
                self.cache.insert(id, node);
                Ok((removed, removed && empty))
            }
            Node::Branch { first, seps } => {
                let child = child_for(*first, seps, key);
                self.cache.insert(id, node);
                let (removed, child_empty) = self.delete_rec(child, key)?;
                if !child_empty {
                    return Ok((removed, false));
                }
                // Unlink and free the emptied child.
                self.free_page(child);
                let mut node = self.take_node(id)?;
                let Node::Branch { first, seps } = &mut node else {
                    return Err(KvError::TxnState("branch changed kind (internal bug)"));
                };
                let now_empty = if *first == child {
                    if let Some(c) = seps.first().map(|(_, c)| *c) {
                        *first = c;
                        seps.remove(0);
                        false
                    } else {
                        // Childless non-root branch: report empty so the
                        // parent unlinks us too.
                        true
                    }
                } else if let Some(pos) = seps.iter().position(|(_, c)| *c == child) {
                    seps.remove(pos);
                    false
                } else {
                    return Err(KvError::TxnState("freed child not found in parent"));
                };
                self.dirty.insert(id);
                self.cache.insert(id, node);
                Ok((removed, now_empty))
            }
        }
    }

    // -- validation (crash-oracle support) ---------------------------------

    /// Walks the tree re-checking structural invariants: every reachable
    /// page decodes (magic + CRC + sorted keys), separators bound their
    /// subtrees, all leaves sit at the same depth, no page is reachable
    /// twice or also on the free list, and every id is inside the
    /// allocation frontier.
    pub fn validate(&mut self) -> Result<(), String> {
        let mut seen = BTreeSet::new();
        let root = self.meta.root;
        let mut leaf_depth = None;
        self.validate_rec(root, None, None, 0, &mut seen, &mut leaf_depth)?;
        for id in &self.meta.free {
            if seen.contains(id) {
                return Err(format!("page {id} is both reachable and on the free list"));
            }
            if *id >= self.meta.page_count {
                return Err(format!(
                    "free page {id} beyond allocation frontier {}",
                    self.meta.page_count
                ));
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn validate_rec(
        &mut self,
        id: u32,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        depth: usize,
        seen: &mut BTreeSet<u32>,
        leaf_depth: &mut Option<usize>,
    ) -> Result<(), String> {
        if id >= self.meta.page_count {
            return Err(format!(
                "page {id} beyond allocation frontier {}",
                self.meta.page_count
            ));
        }
        if !seen.insert(id) {
            return Err(format!("page {id} reachable twice"));
        }
        let node = self.take_node(id).map_err(|e| e.to_string())?;
        let in_bounds =
            |k: &[u8]| -> bool { lo.is_none_or(|l| k >= l) && hi.is_none_or(|h| k < h) };
        let result = match &node {
            Node::Leaf(entries) => {
                match *leaf_depth {
                    None => *leaf_depth = Some(depth),
                    Some(d) if d != depth => {
                        return Err(format!("leaf {id} at depth {depth}, expected {d}"));
                    }
                    _ => {}
                }
                entries
                    .iter()
                    .find(|(k, _)| !in_bounds(k))
                    .map_or(Ok(()), |(k, _)| {
                        Err(format!("leaf {id} key {k:?} outside separator bounds"))
                    })
            }
            Node::Branch { first, seps } => {
                if let Some((k, _)) = seps.iter().find(|(k, _)| !in_bounds(k)) {
                    return Err(format!("branch {id} separator {k:?} outside bounds"));
                }
                let children: Vec<ChildBounds> = {
                    let mut out = Vec::with_capacity(seps.len() + 1);
                    let mut prev_lo: Option<Vec<u8>> = lo.map(<[u8]>::to_vec);
                    for i in 0..=seps.len() {
                        let child = if i == 0 { *first } else { seps[i - 1].1 };
                        let upper = seps
                            .get(i)
                            .map(|(k, _)| k.clone())
                            .or_else(|| hi.map(<[u8]>::to_vec));
                        out.push((child, prev_lo.clone(), upper.clone()));
                        prev_lo = seps.get(i).map(|(k, _)| k.clone());
                    }
                    out
                };
                self.cache.insert(id, node);
                for (child, clo, chi) in children {
                    self.validate_rec(
                        child,
                        clo.as_deref(),
                        chi.as_deref(),
                        depth + 1,
                        seen,
                        leaf_depth,
                    )?;
                }
                return Ok(());
            }
        };
        self.cache.insert(id, node);
        result
    }
}

/// The child of a branch that covers `key`.
fn child_for(first: u32, seps: &[(Vec<u8>, u32)], key: &[u8]) -> u32 {
    let pos = seps.partition_point(|(k, _)| k.as_slice() <= key);
    if pos == 0 {
        first
    } else {
        seps[pos - 1].1
    }
}

/// Splits `entries` at the byte-size midpoint; returns the right half.
fn split_half(entries: &mut Vec<(Vec<u8>, Vec<u8>)>) -> Vec<(Vec<u8>, Vec<u8>)> {
    let total: usize = entries.iter().map(|(k, v)| 3 + k.len() + v.len()).sum();
    let mut acc = 0usize;
    let mut split_at = entries.len() / 2; // fallback: count midpoint
    for (i, (k, v)) in entries.iter().enumerate() {
        acc += 3 + k.len() + v.len();
        if acc >= total / 2 {
            split_at = i + 1;
            break;
        }
    }
    let split_at = split_at.clamp(1, entries.len() - 1);
    entries.split_off(split_at)
}

fn in_lo(lo: Bound<&[u8]>, k: &[u8]) -> bool {
    match lo {
        Bound::Included(l) => k >= l,
        Bound::Excluded(l) => k > l,
        Bound::Unbounded => true,
    }
}

fn in_hi(hi: Bound<&[u8]>, k: &[u8]) -> bool {
    match hi {
        Bound::Included(h) => k <= h,
        Bound::Excluded(h) => k < h,
        Bound::Unbounded => true,
    }
}
