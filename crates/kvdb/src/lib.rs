//! kvdb — an embedded transactional B-tree KV personality over Tinca.
//!
//! The paper's argument is that a transactional NVM cache lets the
//! *file system* shed its journal. This crate makes the same argument
//! one level up the storage stack, where the "journaling of journal"
//! problem (§2.2) classically lives: an embedded ordered KV store whose
//! commit unit is a batch of dirty B-tree pages, with two durability
//! personalities behind one [`PageStore`] seam:
//!
//! * **WalMode** ([`WalStore`]) — the conventional shape: an ARIES-lite
//!   redo WAL on a journaling file system over the classic
//!   Ext4+JBD2+Flashcache stack. Every logical page travels through the
//!   app WAL, the FS journal, the FS home location, and the database
//!   file.
//! * **TincaMode** ([`TincaStore`]) — no WAL anywhere: each KV commit
//!   stages its dirty pages as one Tinca pool transaction and the ring
//!   commit is the durability point. Commits whose pages map to more
//!   than one shard ride the pool's persistent two-phase spanning path.
//!
//! Both personalities are driven by the same TPC-C record stream
//! ([`KvTpccDriver`]), crash-fuzzed by the same campaigns
//! ([`crash`]), and compared by the `wal_elim` bench figure.
//!
//! ```
//! use kvdb::{Db, TincaStore, TincaStoreConfig};
//!
//! let mut db = Db::open(TincaStore::format(TincaStoreConfig::default())).unwrap();
//! db.begin().unwrap();
//! db.put(b"k1", b"v1").unwrap();
//! db.commit().unwrap(); // one pool transaction; ring commit = durable
//! assert_eq!(db.get(b"k1").unwrap().as_deref(), Some(&b"v1"[..]));
//! ```
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]

pub mod crash;
pub mod db;
pub mod driver;
pub mod page;
pub mod store;
pub mod tincastore;
pub mod wal;

pub use crash::{
    tinca_kv_frontier_campaign, tinca_kv_fuzz_campaign, wal_kv_frontier_campaign,
    wal_kv_fuzz_campaign, TincaKvApp, WalKvApp,
};
pub use db::{Db, KvPair};
pub use driver::{apply_txn, value_for, KvTpccDriver, KvTxn, VALUE_LEN};
pub use page::{Meta, Node, PageError, MAX_KEY, MAX_VAL, PAGE_SIZE};
pub use store::{KvError, PageStore, StoreStats};
pub use tincastore::{TincaStore, TincaStoreConfig};
pub use wal::{WalConfig, WalStore};
