//! Fixed-size B-tree page codec.
//!
//! Every kvdb page is one 4 KB block (the unit both personalities commit:
//! a Tinca transaction block, or a WAL page image). A page starts with a
//! 24-byte header:
//!
//! ```text
//! [0..4)   magic  "KVPG"
//! [4]      kind   0 = meta, 1 = branch, 2 = leaf
//! [5]      pad    0
//! [6..8)   nkeys  u16 LE (leaf/branch entry count; 0 for meta)
//! [8..16)  lsn    u64 LE (commit sequence that last wrote the page)
//! [16..20) crc    CRC-32 (IEEE) over the whole page with this field zeroed
//! [20..24) extra  reserved, 0
//! ```
//!
//! Bodies are packed little-endian records:
//!
//! * **leaf** — `nkeys` × `[klen u8][vlen u16][key][val]`, keys strictly
//!   ascending;
//! * **branch** — `[first_child u32]` then `nkeys` ×
//!   `[klen u8][child u32][key]`: `first_child` holds keys `< key₀`,
//!   `childᵢ` holds keys `≥ keyᵢ` and `< keyᵢ₊₁`;
//! * **meta** (page 0) — `[root u32][page_count u32][free_len u32]` then
//!   `free_len` × `[u32]` free page ids.
//!
//! The decode path validates magic, kind, CRC, bounds, and key order, so
//! a torn or stale page surfaces as [`PageError`] — the crash oracles
//! treat any decode failure on a reachable page as a torn-page violation.

use std::fmt;

/// Page size — one cache/disk block.
pub const PAGE_SIZE: usize = blockdev::BLOCK_SIZE;
/// Header bytes before the body.
pub const HEADER_LEN: usize = 24;
/// Longest encodable key.
pub const MAX_KEY: usize = 64;
/// Longest encodable value.
pub const MAX_VAL: usize = 1024;

const MAGIC: [u8; 4] = *b"KVPG";
const CRC_OFF: usize = 16;

/// Why a page failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageError {
    BadMagic,
    BadKind(u8),
    BadCrc { stored: u32, computed: u32 },
    Truncated,
    KeysOutOfOrder,
    Oversized,
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageError::BadMagic => write!(f, "bad page magic"),
            PageError::BadKind(k) => write!(f, "unknown page kind {k}"),
            PageError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            PageError::Truncated => write!(f, "record runs past the page end"),
            PageError::KeysOutOfOrder => write!(f, "keys not strictly ascending"),
            PageError::Oversized => write!(f, "encoded page exceeds {PAGE_SIZE} bytes"),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A decoded B-tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Sorted `(key, value)` records.
    Leaf(Vec<(Vec<u8>, Vec<u8>)>),
    /// `first` holds keys below `seps[0].0`; `seps[i].1` holds keys in
    /// `[seps[i].0, seps[i+1].0)`.
    Branch {
        first: u32,
        seps: Vec<(Vec<u8>, u32)>,
    },
}

impl Node {
    /// Bytes this node would occupy encoded (header included).
    pub fn encoded_len(&self) -> usize {
        match self {
            Node::Leaf(entries) => {
                HEADER_LEN
                    + entries
                        .iter()
                        .map(|(k, v)| 3 + k.len() + v.len())
                        .sum::<usize>()
            }
            Node::Branch { seps, .. } => {
                HEADER_LEN + 4 + seps.iter().map(|(k, _)| 5 + k.len()).sum::<usize>()
            }
        }
    }

    /// Whether the node still fits one page.
    pub fn fits(&self) -> bool {
        self.encoded_len() <= PAGE_SIZE
    }
}

/// The meta page (page 0): tree root, allocation frontier, free list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Meta {
    pub root: u32,
    pub page_count: u32,
    pub free: Vec<u32>,
}

impl Meta {
    /// Free-list ids the 4 KB meta page can hold. Beyond this, freed
    /// pages are leaked (documented bound; never reached by the drivers).
    pub fn free_capacity() -> usize {
        (PAGE_SIZE - HEADER_LEN - 12) / 4
    }
}

fn header(kind: u8, nkeys: u16, lsn: u64) -> [u8; PAGE_SIZE] {
    let mut page = [0u8; PAGE_SIZE];
    page[0..4].copy_from_slice(&MAGIC);
    page[4] = kind;
    page[6..8].copy_from_slice(&nkeys.to_le_bytes());
    page[8..16].copy_from_slice(&lsn.to_le_bytes());
    page
}

fn seal(mut page: [u8; PAGE_SIZE]) -> [u8; PAGE_SIZE] {
    let crc = crc32(&page);
    page[CRC_OFF..CRC_OFF + 4].copy_from_slice(&crc.to_le_bytes());
    page
}

fn check_seal(buf: &[u8; PAGE_SIZE]) -> Result<(), PageError> {
    if buf[0..4] != MAGIC {
        return Err(PageError::BadMagic);
    }
    let stored = u32::from_le_bytes([buf[16], buf[17], buf[18], buf[19]]);
    let mut unsealed = *buf;
    unsealed[CRC_OFF..CRC_OFF + 4].fill(0);
    let computed = crc32(&unsealed);
    if stored != computed {
        return Err(PageError::BadCrc { stored, computed });
    }
    Ok(())
}

/// Encodes a node; `Err(Oversized)` if it no longer fits (callers split
/// before encoding, so this is a defensive check).
pub fn encode_node(node: &Node, lsn: u64) -> Result<[u8; PAGE_SIZE], PageError> {
    if !node.fits() {
        return Err(PageError::Oversized);
    }
    match node {
        Node::Leaf(entries) => {
            let mut page = header(2, entries.len() as u16, lsn);
            let mut off = HEADER_LEN;
            for (k, v) in entries {
                page[off] = k.len() as u8;
                page[off + 1..off + 3].copy_from_slice(&(v.len() as u16).to_le_bytes());
                off += 3;
                page[off..off + k.len()].copy_from_slice(k);
                off += k.len();
                page[off..off + v.len()].copy_from_slice(v);
                off += v.len();
            }
            Ok(seal(page))
        }
        Node::Branch { first, seps } => {
            let mut page = header(1, seps.len() as u16, lsn);
            page[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&first.to_le_bytes());
            let mut off = HEADER_LEN + 4;
            for (k, child) in seps {
                page[off] = k.len() as u8;
                page[off + 1..off + 5].copy_from_slice(&child.to_le_bytes());
                off += 5;
                page[off..off + k.len()].copy_from_slice(k);
                off += k.len();
            }
            Ok(seal(page))
        }
    }
}

/// Decodes a node page, validating magic, CRC, bounds, and key order.
/// Returns the node and the `lsn` it was stamped with.
pub fn decode_node(buf: &[u8; PAGE_SIZE]) -> Result<(Node, u64), PageError> {
    check_seal(buf)?;
    let kind = buf[4];
    let nkeys = u16::from_le_bytes([buf[6], buf[7]]) as usize;
    let lsn = u64::from_le_bytes(buf[8..16].try_into().map_err(|_| PageError::Truncated)?);
    let take = |off: &mut usize, n: usize| -> Result<&[u8], PageError> {
        if *off + n > PAGE_SIZE {
            return Err(PageError::Truncated);
        }
        let s = &buf[*off..*off + n];
        *off += n;
        Ok(s)
    };
    match kind {
        2 => {
            let mut off = HEADER_LEN;
            let mut entries = Vec::with_capacity(nkeys);
            for _ in 0..nkeys {
                let hdr = take(&mut off, 3)?;
                let (klen, vlen) = (
                    hdr[0] as usize,
                    u16::from_le_bytes([hdr[1], hdr[2]]) as usize,
                );
                if klen > MAX_KEY || vlen > MAX_VAL {
                    return Err(PageError::Truncated);
                }
                let k = take(&mut off, klen)?.to_vec();
                let v = take(&mut off, vlen)?.to_vec();
                if let Some((prev, _)) = entries.last() {
                    if *prev >= k {
                        return Err(PageError::KeysOutOfOrder);
                    }
                }
                entries.push((k, v));
            }
            Ok((Node::Leaf(entries), lsn))
        }
        1 => {
            let mut off = HEADER_LEN;
            let first = u32::from_le_bytes(
                take(&mut off, 4)?
                    .try_into()
                    .map_err(|_| PageError::Truncated)?,
            );
            let mut seps = Vec::with_capacity(nkeys);
            for _ in 0..nkeys {
                let hdr = take(&mut off, 5)?;
                let klen = hdr[0] as usize;
                if klen > MAX_KEY {
                    return Err(PageError::Truncated);
                }
                let child =
                    u32::from_le_bytes(hdr[1..5].try_into().map_err(|_| PageError::Truncated)?);
                let k = take(&mut off, klen)?.to_vec();
                if let Some((prev, _)) = seps.last() {
                    if *prev >= k {
                        return Err(PageError::KeysOutOfOrder);
                    }
                }
                seps.push((k, child));
            }
            Ok((Node::Branch { first, seps }, lsn))
        }
        k => Err(PageError::BadKind(k)),
    }
}

/// Encodes the meta page.
pub fn encode_meta(meta: &Meta, lsn: u64) -> Result<[u8; PAGE_SIZE], PageError> {
    if meta.free.len() > Meta::free_capacity() {
        return Err(PageError::Oversized);
    }
    let mut page = header(0, 0, lsn);
    let mut off = HEADER_LEN;
    page[off..off + 4].copy_from_slice(&meta.root.to_le_bytes());
    page[off + 4..off + 8].copy_from_slice(&meta.page_count.to_le_bytes());
    page[off + 8..off + 12].copy_from_slice(&(meta.free.len() as u32).to_le_bytes());
    off += 12;
    for id in &meta.free {
        page[off..off + 4].copy_from_slice(&id.to_le_bytes());
        off += 4;
    }
    Ok(seal(page))
}

/// Decodes the meta page; returns it and its `lsn`.
pub fn decode_meta(buf: &[u8; PAGE_SIZE]) -> Result<(Meta, u64), PageError> {
    check_seal(buf)?;
    if buf[4] != 0 {
        return Err(PageError::BadKind(buf[4]));
    }
    let lsn = u64::from_le_bytes(buf[8..16].try_into().map_err(|_| PageError::Truncated)?);
    let off = HEADER_LEN;
    let word =
        |o: usize| -> u32 { u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]) };
    let root = word(off);
    let page_count = word(off + 4);
    let free_len = word(off + 8) as usize;
    if off + 12 + free_len * 4 > PAGE_SIZE {
        return Err(PageError::Truncated);
    }
    let free = (0..free_len).map(|i| word(off + 12 + i * 4)).collect();
    Ok((
        Meta {
            root,
            page_count,
            free,
        },
        lsn,
    ))
}

/// Whether a raw page is entirely zero — i.e. never written by kvdb
/// (fresh store). Distinguishes "format me" from "corrupt".
pub fn is_blank(buf: &[u8; PAGE_SIZE]) -> bool {
    buf.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn leaf_round_trips() {
        let node = Node::Leaf(vec![
            (b"alpha".to_vec(), b"1".to_vec()),
            (b"beta".to_vec(), vec![0xAB; 100]),
            (b"gamma".to_vec(), Vec::new()),
        ]);
        let page = encode_node(&node, 42).unwrap();
        assert_eq!(decode_node(&page).unwrap(), (node, 42));
    }

    #[test]
    fn branch_round_trips() {
        let node = Node::Branch {
            first: 7,
            seps: vec![(b"k1".to_vec(), 9), (b"k2".to_vec(), 12)],
        };
        let page = encode_node(&node, 3).unwrap();
        assert_eq!(decode_node(&page).unwrap(), (node, 3));
    }

    #[test]
    fn meta_round_trips() {
        let meta = Meta {
            root: 5,
            page_count: 17,
            free: vec![3, 9, 11],
        };
        let page = encode_meta(&meta, 8).unwrap();
        assert_eq!(decode_meta(&page).unwrap(), (meta, 8));
    }

    #[test]
    fn corruption_is_detected() {
        let node = Node::Leaf(vec![(b"k".to_vec(), b"v".to_vec())]);
        let mut page = encode_node(&node, 1).unwrap();
        page[100] ^= 0x01;
        assert!(matches!(decode_node(&page), Err(PageError::BadCrc { .. })));
        let blank = [0u8; PAGE_SIZE];
        assert!(is_blank(&blank));
        assert_eq!(decode_node(&blank), Err(PageError::BadMagic));
    }

    #[test]
    fn out_of_order_keys_rejected() {
        // Encode bypassing the sorted-insert invariant.
        let node = Node::Leaf(vec![
            (b"z".to_vec(), b"1".to_vec()),
            (b"a".to_vec(), b"2".to_vec()),
        ]);
        let page = encode_node(&node, 1).unwrap();
        assert_eq!(decode_node(&page), Err(PageError::KeysOutOfOrder));
    }

    #[test]
    fn oversized_node_refused() {
        let entries: Vec<_> = (0..10u8)
            .map(|i| (vec![i; MAX_KEY], vec![i; MAX_VAL]))
            .collect();
        let node = Node::Leaf(entries);
        assert!(!node.fits());
        assert_eq!(encode_node(&node, 1), Err(PageError::Oversized));
    }
}
