//! Crash campaigns for both kvdb durability personalities.
//!
//! Each personality gets a [`RecoverableApp`]: a seeded TPC-C KV plan
//! runs with a crash trip armed on an NVM device, the power is pulled
//! mid-commit, the store recovers (WAL replay for [`WalStore`], ring
//! recovery — spanning two-phase included — for [`TincaStore`]), and the
//! recovered database is verified against a committed-KV oracle:
//!
//! * B-tree structural invariants hold ([`Db::validate`]);
//! * every NVM event trace passes the persist-order analyzer (per shard
//!   *and* merged, for the pool-backed store);
//! * the full contents equal the committed map, or the committed map
//!   plus the in-flight transaction's writes — all-or-nothing at the KV
//!   transaction level, across every page and shard the commit touched.
//!
//! On top of the random trip sweep, both personalities get a bounded
//! exhaustive frontier campaign through
//! [`crashsim::frontier_enumerate`]: a probe run harvests every fence
//! epoch, and each reachable persist frontier is materialised, recovered,
//! and verified.

use std::collections::{BTreeMap, HashSet};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crashsim::{
    campaign, epochs_from_trace, frontier_enumerate, quiet_crash_panics, run_recoverable,
    AppOutcome, CampaignReport, FailureMode, FrontierReport, RecoverableApp,
};
use fssim::stack::{remount, StackConfig};
use nvmsim::{merge_shard_traces, CrashPolicy, CrashTripped};
use persistcheck::{CheckConfig, Checker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::db::Db;
use crate::driver::{apply_txn, KvTpccDriver, KvTxn};
use crate::store::{KvError, PageStore};
use crate::tincastore::{TincaStore, TincaStoreConfig};
use crate::wal::{WalConfig, WalStore};

/// Warehouses in the crash-campaign TPC-C plans (small, so row conflicts
/// and page rewrites are frequent).
const WAREHOUSES: u32 = 2;

fn plan_txns(seed: u64, txns: usize) -> Vec<KvTxn> {
    let mut driver = KvTpccDriver::new(seed ^ 0x5EED, WAREHOUSES);
    (0..txns).map(|_| driver.next_txn()).collect()
}

/// Applies the plan until the armed trip fires. Returns `(crashed,
/// committed_count, workload_bug)` — a `KvError` with no crash is a
/// genuine bug, never folded into crash verification.
fn run_plan<S: PageStore>(
    db: &mut Db<S>,
    plan: &[KvTxn],
    committed: &mut BTreeMap<Vec<u8>, Vec<u8>>,
    committed_count: &mut usize,
) -> (bool, Option<String>) {
    let outcome = {
        let committed = &mut *committed;
        let committed_count = &mut *committed_count;
        catch_unwind(AssertUnwindSafe(move || -> Result<(), KvError> {
            for txn in &plan[*committed_count..] {
                apply_txn(db, txn)?;
                for (k, v) in &txn.writes {
                    committed.insert(k.clone(), v.clone());
                }
                *committed_count += 1;
            }
            Ok(())
        }))
    };
    match outcome {
        Ok(Ok(())) => (false, None),
        Ok(Err(e)) => (false, Some(format!("workload error with no crash: {e}"))),
        Err(p) if p.downcast_ref::<CrashTripped>().is_some() => (true, None),
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// The shared KV oracle: structural validity plus all-or-nothing
/// contents. `staged` is the in-flight transaction's write set (empty if
/// the workload completed).
fn check_kv_state<S: PageStore>(
    db: &mut Db<S>,
    committed: &BTreeMap<Vec<u8>, Vec<u8>>,
    staged: &[(Vec<u8>, Vec<u8>)],
) -> Result<(), String> {
    db.validate()?;
    let contents: BTreeMap<Vec<u8>, Vec<u8>> = db
        .scan_all()
        .map_err(|e| format!("scan after recovery: {e}"))?
        .into_iter()
        .collect();
    if contents == *committed {
        return Ok(());
    }
    let mut with_staged = committed.clone();
    for (k, v) in staged {
        with_staged.insert(k.clone(), v.clone());
    }
    if contents == with_staged {
        return Ok(());
    }
    // Describe the first divergence from the nearer oracle state.
    let diff = |want: &BTreeMap<Vec<u8>, Vec<u8>>| -> String {
        if contents.len() != want.len() {
            return format!("{} keys, expected {}", contents.len(), want.len());
        }
        contents
            .iter()
            .zip(want.iter())
            .find(|(a, b)| a != b)
            .map(|((k, _), _)| format!("first divergent key {k:?}"))
            .unwrap_or_else(|| "divergence not localised".into())
    };
    Err(format!(
        "torn KV state: vs committed: {}; vs committed+staged: {}",
        diff(committed),
        diff(&with_staged)
    ))
}

// ---------------------------------------------------------------------------
// WalMode app
// ---------------------------------------------------------------------------

/// The WAL-personality crash application: TPC-C KV transactions on a
/// [`WalStore`] over the classic Ext4+JBD2 stack, tripped on the single
/// NVM device.
pub struct WalKvApp {
    db: Option<Db<WalStore>>,
    wal_cfg: WalConfig,
    metadata_ranges: Vec<Range<usize>>,
    plan: Vec<KvTxn>,
    committed: BTreeMap<Vec<u8>, Vec<u8>>,
    committed_count: usize,
    trip: u64,
    seed: u64,
    mode: FailureMode,
    fail: Option<String>,
    _seed_span: telemetry::Span,
}

impl WalKvApp {
    /// Builds the stack, formats the store, rolls the plan, arms the
    /// trip `1..trip_max` events past setup.
    pub fn new(
        seed: u64,
        txns: usize,
        trip_max: u64,
        mode: FailureMode,
    ) -> Result<WalKvApp, String> {
        quiet_crash_panics();
        let mut rng = StdRng::seed_from_u64(seed);
        let wal_cfg = WalConfig {
            checkpoint_bytes: 96 << 10,
            page_capacity: 4096,
            traced: true,
        };
        let store = WalStore::tiny(wal_cfg).map_err(|e| format!("wal setup: {e}"))?;
        telemetry::swap_clock(&store.stack().clock);
        let _seed_span = telemetry::span(telemetry::phase::CRASH_SEED);
        let metadata_ranges = store.stack().fs.backend().metadata_ranges();
        let db = Db::open(store).map_err(|e| format!("db format: {e}"))?;
        let plan = plan_txns(seed, txns);
        let trip = rng.gen_range(1..trip_max.max(2));
        db.store().stack().nvm.set_trip(Some(trip));
        Ok(WalKvApp {
            db: Some(db),
            wal_cfg,
            metadata_ranges,
            plan,
            committed: BTreeMap::new(),
            committed_count: 0,
            trip,
            seed,
            mode,
            fail: None,
            _seed_span,
        })
    }

    fn tag(&self, e: String) -> String {
        format!("wal seed {} trip {}: {e}", self.seed, self.trip)
    }
}

impl RecoverableApp for WalKvApp {
    fn run_to_trip(&mut self) -> bool {
        let Some(db) = self.db.as_mut() else {
            return false;
        };
        let (crashed, bug) = run_plan(
            db,
            &self.plan,
            &mut self.committed,
            &mut self.committed_count,
        );
        if let Some(db) = self.db.as_ref() {
            db.store().stack().nvm.set_trip(None);
        }
        if let Some(b) = bug {
            // Surface through crash_recover → Violation.
            self.fail = Some(b);
            return true;
        }
        crashed
    }

    fn crash_recover(&mut self) -> Result<(), String> {
        if let Some(f) = self.fail.take() {
            return Err(self.tag(f));
        }
        let Some(db) = self.db.take() else {
            return Err("no live db at crash".into());
        };
        let stack = db.into_store().into_stack();
        let cfg: StackConfig = stack.config.clone();
        let (nvm, disk, clock) = (stack.nvm, stack.disk, stack.clock);
        drop(stack.fs);
        let policy = match self.mode {
            FailureMode::PowerPull => CrashPolicy::Random(self.seed ^ 0xD1CE),
            FailureMode::ProcessKill => CrashPolicy::PersistAll,
        };
        nvm.crash(policy);
        let rebooted = remount(&cfg, nvm, disk, clock)
            .map_err(|e| self.tag(format!("remount failed: {e}")))?;
        let store = WalStore::mount(rebooted, self.wal_cfg)
            .map_err(|e| self.tag(format!("WAL recovery failed: {e}")))?;
        let db = Db::open(store).map_err(|e| self.tag(format!("db reopen failed: {e}")))?;
        self.db = Some(db);
        Ok(())
    }

    fn verify(&mut self) -> Result<(), String> {
        let prefix = format!("wal seed {} trip {}", self.seed, self.trip);
        let Some(db) = self.db.as_mut() else {
            return Err("no live db at verify".into());
        };
        // Persist-order cleanliness of the whole trace (format, workload,
        // crash, WAL recovery).
        let mut checker = Checker::new(CheckConfig::with_metadata(self.metadata_ranges.clone()));
        checker.push_all(&db.store().stack().nvm.take_trace());
        let report = checker.report();
        if !report.is_clean() {
            return Err(format!("{prefix}: persist-order violation: {report}"));
        }
        // FS + cache internals under the store.
        {
            let stack = db.store_mut().stack_mut();
            stack
                .fs
                .backend()
                .check()
                .map_err(|e| format!("cache internals: {e}"))
                .and_then(|()| {
                    stack
                        .fs
                        .check_consistency()
                        .map_err(|e| format!("fs internals: {e}"))
                })
                .map_err(|e| format!("{prefix}: {e}"))?;
        }
        let staged = if self.committed_count < self.plan.len() {
            self.plan[self.committed_count].writes.clone()
        } else {
            Vec::new()
        };
        check_kv_state(db, &self.committed, &staged).map_err(|e| format!("{prefix}: {e}"))
    }
}

// ---------------------------------------------------------------------------
// TincaMode app
// ---------------------------------------------------------------------------

/// The Tinca-personality crash application: the same TPC-C KV plan on a
/// [`TincaStore`] pool, tripped on one shard's device; all shards are
/// power-cycled together.
pub struct TincaKvApp {
    db: Option<Db<TincaStore>>,
    metadata_ranges: Vec<Vec<Range<usize>>>,
    plan: Vec<KvTxn>,
    committed: BTreeMap<Vec<u8>, Vec<u8>>,
    committed_count: usize,
    shards: usize,
    trip_shard: usize,
    trip: u64,
    seed: u64,
    mode: FailureMode,
    fail: Option<String>,
    _seed_span: telemetry::Span,
}

impl TincaKvApp {
    /// Formats a small sharded pool store, rolls the plan, arms the trip
    /// `1..trip_max` events past setup on shard `seed % shards`.
    pub fn new(
        seed: u64,
        txns: usize,
        trip_max: u64,
        mode: FailureMode,
    ) -> Result<TincaKvApp, String> {
        quiet_crash_panics();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TincaStoreConfig {
            shards: 2,
            nvm_bytes_per_shard: 256 << 10,
            disk_blocks: 1 << 16,
            ring_bytes: 4096,
            traced: true,
        };
        let shards = cfg.shards;
        let store = TincaStore::format(cfg);
        telemetry::swap_clock(store.clock());
        let _seed_span = telemetry::span(telemetry::phase::CRASH_SEED);
        let metadata_ranges: Vec<_> = (0..shards)
            .map(|s| store.pool().shard_metadata_ranges(s))
            .collect();
        let db = Db::open(store).map_err(|e| format!("db format: {e}"))?;
        let plan = plan_txns(seed, txns);
        let trip_shard = (seed % shards as u64) as usize;
        let trip = rng.gen_range(1..trip_max.max(2));
        db.store().devices()[trip_shard].set_trip(Some(trip));
        Ok(TincaKvApp {
            db: Some(db),
            metadata_ranges,
            plan,
            committed: BTreeMap::new(),
            committed_count: 0,
            shards,
            trip_shard,
            trip,
            seed,
            mode,
            fail: None,
            _seed_span,
        })
    }

    fn tag(&self, e: String) -> String {
        format!(
            "tinca seed {} trip {}@shard{}: {e}",
            self.seed, self.trip, self.trip_shard
        )
    }
}

impl RecoverableApp for TincaKvApp {
    fn run_to_trip(&mut self) -> bool {
        let Some(db) = self.db.as_mut() else {
            return false;
        };
        let (crashed, bug) = run_plan(
            db,
            &self.plan,
            &mut self.committed,
            &mut self.committed_count,
        );
        if let Some(db) = self.db.as_ref() {
            db.store().devices()[self.trip_shard].set_trip(None);
        }
        if let Some(b) = bug {
            self.fail = Some(b);
            return true;
        }
        crashed
    }

    fn crash_recover(&mut self) -> Result<(), String> {
        if let Some(f) = self.fail.take() {
            return Err(self.tag(f));
        }
        let Some(db) = self.db.take() else {
            return Err("no live db at crash".into());
        };
        let (devices, disk, clock, cfg) = db.into_store().into_parts();
        for (s, d) in devices.iter().enumerate() {
            let policy = match self.mode {
                FailureMode::PowerPull => {
                    CrashPolicy::Random(self.seed ^ 0xD1CE ^ ((s as u64) << 17))
                }
                FailureMode::ProcessKill => CrashPolicy::PersistAll,
            };
            d.crash(policy);
        }
        let store = TincaStore::recover(devices, disk, clock, cfg)
            .map_err(|e| self.tag(format!("pool recovery failed: {e}")))?;
        let db = Db::open(store).map_err(|e| self.tag(format!("db reopen failed: {e}")))?;
        self.db = Some(db);
        Ok(())
    }

    fn verify(&mut self) -> Result<(), String> {
        let prefix = format!(
            "tinca seed {} trip {}@shard{}",
            self.seed, self.trip, self.trip_shard
        );
        let Some(db) = self.db.as_mut() else {
            return Err("no live db at verify".into());
        };
        db.store()
            .pool()
            .check_consistency()
            .map_err(|e| format!("{prefix}: inconsistent internals: {e}"))?;

        // Per-shard and merged persist-order cleanliness (the merged view
        // audits the spanning intent publish/resolve/retire stores too).
        let traces: Vec<_> = db
            .store()
            .devices()
            .iter()
            .map(|d| d.take_trace())
            .collect();
        for (s, trace) in traces.iter().enumerate() {
            let mut checker =
                Checker::new(CheckConfig::with_metadata(self.metadata_ranges[s].clone()));
            checker.push_all(trace);
            let report = checker.report();
            if !report.is_clean() {
                return Err(format!(
                    "{prefix}: shard {s} persist-order violation: {report}"
                ));
            }
        }
        let shard_capacity = db.store().devices()[0].capacity();
        let merged_ranges: Vec<_> = self
            .metadata_ranges
            .iter()
            .enumerate()
            .flat_map(|(s, ranges)| {
                let base = s * shard_capacity;
                ranges.iter().map(move |r| r.start + base..r.end + base)
            })
            .collect();
        let mut checker = Checker::new(CheckConfig::with_metadata(merged_ranges));
        checker.push_all(&merge_shard_traces(traces, shard_capacity));
        let report = checker.report();
        if !report.is_clean() {
            return Err(format!(
                "{prefix}: merged-trace persist-order violation: {report}"
            ));
        }

        let staged = if self.committed_count < self.plan.len() {
            self.plan[self.committed_count].writes.clone()
        } else {
            Vec::new()
        };
        let _ = self.shards;
        check_kv_state(db, &self.committed, &staged).map_err(|e| format!("{prefix}: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

fn app_or_violation<A: RecoverableApp>(app: Result<A, String>) -> AppOutcome {
    match app {
        Ok(mut a) => run_recoverable(&mut a),
        Err(e) => AppOutcome::Violation(e),
    }
}

/// Random trip sweep over the WAL personality.
pub fn wal_kv_fuzz_campaign(
    base_seed: u64,
    runs: u64,
    txns: usize,
    trip_max: u64,
    mode: FailureMode,
) -> CampaignReport {
    campaign(runs, false, |i| {
        app_or_violation(WalKvApp::new(base_seed + i, txns, trip_max, mode))
    })
}

/// Random trip sweep over the Tinca personality.
pub fn tinca_kv_fuzz_campaign(
    base_seed: u64,
    runs: u64,
    txns: usize,
    trip_max: u64,
    mode: FailureMode,
) -> CampaignReport {
    campaign(runs, false, |i| {
        app_or_violation(TincaKvApp::new(base_seed + i, txns, trip_max, mode))
    })
}

// ---------------------------------------------------------------------------
// Frontier enumeration
// ---------------------------------------------------------------------------

/// Bounded exhaustive frontier enumeration for the WAL personality: a
/// probe run harvests the single device's fence epochs; every reachable
/// persist frontier of every workload epoch is materialised, the stack
/// remounted, the WAL replayed, and the KV oracle checked.
pub fn wal_kv_frontier_campaign(seed: u64, txns: usize, cap_per_epoch: usize) -> FrontierReport {
    quiet_crash_panics();
    let mut report = FrontierReport {
        cap_per_epoch: cap_per_epoch.max(2),
        ..FrontierReport::default()
    };
    let wal_cfg = WalConfig {
        checkpoint_bytes: 96 << 10,
        page_capacity: 4096,
        traced: true,
    };
    let plan = plan_txns(seed, txns);

    // Probe: full run, no trip.
    let (epochs, start) = {
        let store = match WalStore::tiny(wal_cfg) {
            Ok(s) => s,
            Err(e) => {
                report.violations.push(format!("probe setup: {e}"));
                return report;
            }
        };
        telemetry::swap_clock(&store.stack().clock);
        let mut db = match Db::open(store) {
            Ok(d) => d,
            Err(e) => {
                report.violations.push(format!("probe format: {e}"));
                return report;
            }
        };
        let start = db.store().stack().nvm.events();
        for txn in &plan {
            if let Err(e) = apply_txn(&mut db, txn) {
                report.violations.push(format!("probe run failed: {e}"));
                return report;
            }
        }
        (
            epochs_from_trace(&db.store().stack().nvm.take_trace()),
            start,
        )
    };

    frontier_enumerate(
        seed,
        cap_per_epoch,
        &[epochs],
        &[start],
        None,
        |_, rel_trip, keep| run_wal_state(&plan, wal_cfg, rel_trip, keep),
    )
}

fn run_wal_state(
    plan: &[KvTxn],
    wal_cfg: WalConfig,
    rel_trip: u64,
    keep: &[usize],
) -> Result<(), String> {
    let store = WalStore::tiny(wal_cfg).map_err(|e| format!("setup: {e}"))?;
    telemetry::swap_clock(&store.stack().clock);
    let metadata_ranges = store.stack().fs.backend().metadata_ranges();
    let mut db = Db::open(store).map_err(|e| format!("format: {e}"))?;
    let mut committed = BTreeMap::new();
    let mut committed_count = 0usize;
    db.store().stack().nvm.set_trip(Some(rel_trip));
    let (crashed, bug) = run_plan(&mut db, plan, &mut committed, &mut committed_count);
    db.store().stack().nvm.set_trip(None);
    if let Some(b) = bug {
        return Err(b);
    }
    if !crashed {
        return Err("trip did not fire on replay (workload not deterministic?)".into());
    }
    let stack = db.into_store().into_stack();
    let cfg = stack.config.clone();
    let (nvm, disk, clock) = (stack.nvm, stack.disk, stack.clock);
    drop(stack.fs);
    let keep_set: HashSet<usize> = keep.iter().copied().collect();
    nvm.crash_frontier(&keep_set);
    let rebooted = remount(&cfg, nvm, disk, clock).map_err(|e| format!("remount failed: {e}"))?;
    let store =
        WalStore::mount(rebooted, wal_cfg).map_err(|e| format!("WAL recovery failed: {e}"))?;
    let mut db = Db::open(store).map_err(|e| format!("db reopen failed: {e}"))?;

    let mut checker = Checker::new(CheckConfig::with_metadata(metadata_ranges));
    checker.push_all(&db.store().stack().nvm.take_trace());
    let report = checker.report();
    if !report.is_clean() {
        return Err(format!("persist-order violation: {report}"));
    }
    let staged = if committed_count < plan.len() {
        plan[committed_count].writes.clone()
    } else {
        Vec::new()
    };
    check_kv_state(&mut db, &committed, &staged)
}

/// Frontier enumeration for the Tinca personality: epochs are harvested
/// and enumerated on **every** shard device in turn — the commit-ring
/// writes, the spanning intent record on shard 0, and the second
/// fragment's ring on shard 1 all get their frontiers crashed.
pub fn tinca_kv_frontier_campaign(seed: u64, txns: usize, cap_per_epoch: usize) -> FrontierReport {
    quiet_crash_panics();
    let mut report = FrontierReport {
        cap_per_epoch: cap_per_epoch.max(2),
        ..FrontierReport::default()
    };
    let cfg = TincaStoreConfig {
        shards: 2,
        nvm_bytes_per_shard: 256 << 10,
        disk_blocks: 1 << 16,
        ring_bytes: 4096,
        traced: true,
    };
    let plan = plan_txns(seed, txns);

    // Probe: full run, no trip, harvest every device's epochs.
    let (epochs_per_dev, starts) = {
        let store = TincaStore::format(cfg.clone());
        telemetry::swap_clock(store.clock());
        let mut db = match Db::open(store) {
            Ok(d) => d,
            Err(e) => {
                report.violations.push(format!("probe format: {e}"));
                return report;
            }
        };
        let starts: Vec<u64> = db.store().devices().iter().map(|d| d.events()).collect();
        for txn in &plan {
            if let Err(e) = apply_txn(&mut db, txn) {
                report.violations.push(format!("probe run failed: {e}"));
                return report;
            }
        }
        let epochs: Vec<_> = db
            .store()
            .devices()
            .iter()
            .map(|d| epochs_from_trace(&d.take_trace()))
            .collect();
        (epochs, starts)
    };

    frontier_enumerate(
        seed,
        cap_per_epoch,
        &epochs_per_dev,
        &starts,
        Some("shard"),
        |s, rel_trip, keep| run_tinca_state(&cfg, &plan, s, rel_trip, keep),
    )
}

fn run_tinca_state(
    cfg: &TincaStoreConfig,
    plan: &[KvTxn],
    trip_shard: usize,
    rel_trip: u64,
    keep: &[usize],
) -> Result<(), String> {
    let store = TincaStore::format(cfg.clone());
    telemetry::swap_clock(store.clock());
    let metadata_ranges: Vec<_> = (0..cfg.shards)
        .map(|s| store.pool().shard_metadata_ranges(s))
        .collect();
    let mut db = Db::open(store).map_err(|e| format!("format: {e}"))?;
    let mut committed = BTreeMap::new();
    let mut committed_count = 0usize;
    db.store().devices()[trip_shard].set_trip(Some(rel_trip));
    let (crashed, bug) = run_plan(&mut db, plan, &mut committed, &mut committed_count);
    db.store().devices()[trip_shard].set_trip(None);
    if let Some(b) = bug {
        return Err(b);
    }
    if !crashed {
        return Err("trip did not fire on replay (stream not deterministic?)".into());
    }
    let (devices, disk, clock, cfg) = db.into_store().into_parts();
    let keep_set: HashSet<usize> = keep.iter().copied().collect();
    devices[trip_shard].crash_frontier(&keep_set);
    for (s, d) in devices.iter().enumerate() {
        if s != trip_shard {
            d.crash(CrashPolicy::LoseVolatile);
        }
    }
    let store = TincaStore::recover(devices, disk, clock, cfg)
        .map_err(|e| format!("pool recovery failed: {e}"))?;
    let mut db = Db::open(store).map_err(|e| format!("db reopen failed: {e}"))?;

    db.store()
        .pool()
        .check_consistency()
        .map_err(|e| format!("inconsistent internals: {e}"))?;
    let traces: Vec<_> = db
        .store()
        .devices()
        .iter()
        .map(|d| d.take_trace())
        .collect();
    for (s, trace) in traces.iter().enumerate() {
        let mut checker = Checker::new(CheckConfig::with_metadata(metadata_ranges[s].clone()));
        checker.push_all(trace);
        let report = checker.report();
        if !report.is_clean() {
            return Err(format!("shard {s} persist-order violation: {report}"));
        }
    }
    let shard_capacity = db.store().devices()[0].capacity();
    let merged_ranges: Vec<_> = metadata_ranges
        .iter()
        .enumerate()
        .flat_map(|(s, ranges)| {
            let base = s * shard_capacity;
            ranges.iter().map(move |r| r.start + base..r.end + base)
        })
        .collect();
    let mut checker = Checker::new(CheckConfig::with_metadata(merged_ranges));
    checker.push_all(&merge_shard_traces(traces, shard_capacity));
    let report = checker.report();
    if !report.is_clean() {
        return Err(format!("merged-trace persist-order violation: {report}"));
    }
    let staged = if committed_count < plan.len() {
        plan[committed_count].writes.clone()
    } else {
        Vec::new()
    };
    check_kv_state(&mut db, &committed, &staged)
}
